/**
 * @file
 * Baseline 1: gprof-style call-graph CPU profiling [Graham et al.,
 * CC'82], over the same trace streams.
 *
 * The profiler attributes Running samples to callstack frames:
 * exclusive time to the topmost frame, inclusive time to every frame
 * on the stack. It is deliberately single-aspect — it sees CPU only.
 * The benches use it to demonstrate the paper's motivation: device
 * drivers consume ~1.6 % CPU, so a CPU profiler reports nothing
 * alarming while a driver-induced 800 ms UI stall is in the trace.
 */

#ifndef TRACELENS_BASELINE_CALLGRAPH_H
#define TRACELENS_BASELINE_CALLGRAPH_H

#include <string>
#include <vector>

#include "src/trace/stream.h"

namespace tracelens
{

/** Per-frame CPU attribution. */
struct ProfileEntry
{
    FrameId frame = kNoFrame;
    DurationNs inclusive = 0; //!< Frame anywhere on the sampled stack.
    DurationNs exclusive = 0; //!< Frame topmost on the sampled stack.
    std::uint64_t samples = 0;
};

/** Per-component (module) CPU attribution. */
struct ComponentProfileEntry
{
    std::string component;
    DurationNs inclusive = 0;
    std::uint64_t samples = 0;
};

/** gprof-style flat + component profile over Running samples. */
class CallGraphProfiler
{
  public:
    explicit CallGraphProfiler(const TraceCorpus &corpus);

    /** Flat profile, sorted by inclusive time descending. */
    std::vector<ProfileEntry> profile() const;

    /**
     * Component rollup (a frame's module counted once per sample even
     * if the module has several frames on the stack), sorted by
     * inclusive time descending.
     */
    std::vector<ComponentProfileEntry> byComponent() const;

    /** Total sampled CPU time in the corpus. */
    DurationNs totalCpu() const;

    /** Render the top @p n rows of the flat profile. */
    std::string renderTop(std::size_t n) const;

  private:
    const TraceCorpus &corpus_;
};

} // namespace tracelens

#endif // TRACELENS_BASELINE_CALLGRAPH_H
