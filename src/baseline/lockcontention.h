/**
 * @file
 * Baseline 2: single-lock contention analysis in the style of Tallent
 * et al. [PPoPP'10].
 *
 * The analyzer pairs each wait event with its unwait, groups blocking
 * time by the *waiting callsite* (topmost frame of the wait stack),
 * and records which callsite signalled the wakeup. It covers exactly
 * one interaction aspect — one lock hop — and deliberately does not
 * follow the signalling thread's own waits, so multi-lock propagation
 * chains (the paper's Figure 1) surface only as their first hop.
 */

#ifndef TRACELENS_BASELINE_LOCKCONTENTION_H
#define TRACELENS_BASELINE_LOCKCONTENTION_H

#include <string>
#include <vector>

#include "src/trace/stream.h"

namespace tracelens
{

/** Aggregated blocking at one wait callsite. */
struct ContentionEntry
{
    FrameId waitSite = kNoFrame;    //!< Topmost frame of the waiters.
    DurationNs blocked = 0;         //!< Total blocking time.
    std::uint64_t waits = 0;        //!< Number of wait events.
    DurationNs maxBlocked = 0;      //!< Longest single wait.
    /** Most frequent signalling callsite (topmost unwait frame). */
    FrameId dominantUnwaitSite = kNoFrame;
};

/** Per-callsite lock/blocking profile. */
class LockContentionAnalyzer
{
  public:
    explicit LockContentionAnalyzer(const TraceCorpus &corpus);

    /** Contention table, sorted by blocked time descending. */
    std::vector<ContentionEntry> analyze() const;

    /** Total blocking time across all wait events. */
    DurationNs totalBlocked() const;

    /** Render the top @p n rows. */
    std::string renderTop(std::size_t n) const;

  private:
    const TraceCorpus &corpus_;
};

} // namespace tracelens

#endif // TRACELENS_BASELINE_LOCKCONTENTION_H
