/**
 * @file
 * Baseline 3: StackMine-style costly callstack-pattern mining
 * [Han et al., ICSE'12] — the paper's own prior work, which discovers
 * *within-thread* callstack patterns by cost, but (as the paper notes)
 * does not characterize the cross-thread behaviour that cost
 * propagation creates.
 *
 * Simplified faithful core: wait events are paired and their durations
 * restored; each wait is keyed by the top @c suffixDepth frames of its
 * callstack (the "pattern"); patterns aggregate total cost, count, and
 * max, and are ranked by total cost. The comparison bench shows that
 * the Figure-1 incident yields four high-cost *separate* stack
 * patterns, with nothing connecting them to the se.sys/disk root
 * cause.
 */

#ifndef TRACELENS_BASELINE_STACKMINE_H
#define TRACELENS_BASELINE_STACKMINE_H

#include <string>
#include <vector>

#include "src/trace/stream.h"

namespace tracelens
{

/** One costly callstack pattern. */
struct CostlyStackPattern
{
    /** Top-of-stack frames, innermost first. */
    std::vector<FrameId> suffix;
    DurationNs cost = 0;       //!< Total restored wait duration.
    std::uint64_t waits = 0;   //!< Number of wait events merged.
    DurationNs maxCost = 0;    //!< Longest single wait.

    /** Render the suffix as "a <- b <- c". */
    std::string render(const SymbolTable &symbols) const;
};

/** Costly-pattern miner over wait events. */
class StackMineAnalyzer
{
  public:
    /**
     * @param corpus The trace corpus.
     * @param suffix_depth Frames (from the top) forming a pattern key.
     */
    explicit StackMineAnalyzer(const TraceCorpus &corpus,
                               std::size_t suffix_depth = 3);

    /** Mine patterns over all streams, ranked by total cost. */
    std::vector<CostlyStackPattern> mine() const;

    /** Render the top @p n patterns. */
    std::string renderTop(std::size_t n) const;

  private:
    const TraceCorpus &corpus_;
    std::size_t suffixDepth_;
};

} // namespace tracelens

#endif // TRACELENS_BASELINE_STACKMINE_H
