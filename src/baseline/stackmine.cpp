/**
 * @file
 * Baseline 3 implementation: within-thread costly callstack-pattern
 * mining in the StackMine style.
 */

#include "src/baseline/stackmine.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "src/util/table.h"

namespace tracelens
{

std::string
CostlyStackPattern::render(const SymbolTable &symbols) const
{
    std::ostringstream oss;
    for (std::size_t i = 0; i < suffix.size(); ++i) {
        if (i)
            oss << " <- ";
        oss << symbols.frameName(suffix[i]);
    }
    return oss.str();
}

StackMineAnalyzer::StackMineAnalyzer(const TraceCorpus &corpus,
                                     std::size_t suffix_depth)
    : corpus_(corpus), suffixDepth_(suffix_depth == 0 ? 1 : suffix_depth)
{
}

std::vector<CostlyStackPattern>
StackMineAnalyzer::mine() const
{
    struct SuffixHash
    {
        std::size_t
        operator()(const std::vector<FrameId> &v) const
        {
            std::size_t h = 0xcbf29ce484222325ULL;
            for (FrameId f : v) {
                h ^= f;
                h *= 0x100000001b3ULL;
            }
            return h;
        }
    };

    std::unordered_map<std::vector<FrameId>, CostlyStackPattern,
                       SuffixHash>
        patterns;

    const SymbolTable &symbols = corpus_.symbols();
    std::vector<std::uint32_t> paired;
    for (std::uint32_t s = 0; s < corpus_.streamCount(); ++s) {
        const EventColumns &columns = corpus_.stream(s).columns();
        // Pair waits with unwaits (FIFO per thread) to restore costs.
        pairWaitsFifo(columns, paired);
        const auto types = columns.types();
        const auto timestamps = columns.timestamps();
        const auto stacks = columns.stacks();
        for (std::uint32_t w = 0; w < columns.size(); ++w) {
            if (types[w] != EventType::Wait ||
                paired[w] == kNoEventIndex ||
                stacks[w] == kNoCallstack)
                continue;

            const auto frames = symbols.stackFrames(stacks[w]);
            if (frames.empty())
                continue;
            std::vector<FrameId> suffix;
            const std::size_t depth =
                std::min(suffixDepth_, frames.size());
            for (std::size_t i = 0; i < depth; ++i)
                suffix.push_back(frames[frames.size() - 1 - i]);

            CostlyStackPattern &pattern = patterns[suffix];
            if (pattern.waits == 0)
                pattern.suffix = suffix;
            const DurationNs blocked =
                timestamps[paired[w]] - timestamps[w];
            pattern.cost += blocked;
            pattern.maxCost = std::max(pattern.maxCost, blocked);
            ++pattern.waits;
        }
    }

    std::vector<CostlyStackPattern> result;
    result.reserve(patterns.size());
    for (auto &[suffix, pattern] : patterns)
        result.push_back(std::move(pattern));
    std::sort(result.begin(), result.end(),
              [](const CostlyStackPattern &a,
                 const CostlyStackPattern &b) {
                  if (a.cost != b.cost)
                      return a.cost > b.cost;
                  return a.suffix < b.suffix;
              });
    return result;
}

std::string
StackMineAnalyzer::renderTop(std::size_t n) const
{
    const auto patterns = mine();
    TextTable table({"Stack pattern (top frames)", "Cost", "Waits",
                     "Max"});
    for (std::size_t i = 0; i < std::min(n, patterns.size()); ++i) {
        const CostlyStackPattern &p = patterns[i];
        table.addRow({p.render(corpus_.symbols()),
                      TextTable::ms(toMs(p.cost)),
                      std::to_string(p.waits),
                      TextTable::ms(toMs(p.maxCost))});
    }
    return table.render();
}

} // namespace tracelens
