/**
 * @file
 * Baseline 2 implementation: wait/unwait pairing and per-resource
 * blocking-time aggregation for lock-contention ranking.
 */

#include "src/baseline/lockcontention.h"

#include <algorithm>
#include <unordered_map>

#include "src/util/table.h"

namespace tracelens
{

namespace
{

struct SiteStats
{
    ContentionEntry entry;
    std::unordered_map<FrameId, std::uint64_t> unwaitSites;
};

FrameId
topFrame(const SymbolTable &symbols, CallstackId stack)
{
    if (stack == kNoCallstack)
        return kNoFrame;
    const auto frames = symbols.stackFrames(stack);
    return frames.empty() ? kNoFrame : frames.back();
}

} // namespace

LockContentionAnalyzer::LockContentionAnalyzer(const TraceCorpus &corpus)
    : corpus_(corpus)
{
}

std::vector<ContentionEntry>
LockContentionAnalyzer::analyze() const
{
    const SymbolTable &symbols = corpus_.symbols();
    std::unordered_map<FrameId, SiteStats> sites;

    std::vector<std::uint32_t> paired;
    for (std::uint32_t s = 0; s < corpus_.streamCount(); ++s) {
        const EventColumns &columns = corpus_.stream(s).columns();
        // FIFO wait/unwait pairing per waiting thread.
        pairWaitsFifo(columns, paired);
        const auto types = columns.types();
        const auto timestamps = columns.timestamps();
        const auto stacks = columns.stacks();
        for (std::uint32_t w = 0; w < columns.size(); ++w) {
            if (types[w] != EventType::Wait ||
                paired[w] == kNoEventIndex)
                continue;
            const FrameId site = topFrame(symbols, stacks[w]);
            if (site == kNoFrame)
                continue;
            const std::uint32_t u = paired[w];
            SiteStats &stats = sites[site];
            stats.entry.waitSite = site;
            const DurationNs blocked = timestamps[u] - timestamps[w];
            stats.entry.blocked += blocked;
            stats.entry.maxBlocked =
                std::max(stats.entry.maxBlocked, blocked);
            ++stats.entry.waits;
            ++stats.unwaitSites[topFrame(symbols, stacks[u])];
        }
    }

    std::vector<ContentionEntry> result;
    result.reserve(sites.size());
    for (auto &[site, stats] : sites) {
        FrameId dominant = kNoFrame;
        std::uint64_t best = 0;
        for (const auto &[frame, count] : stats.unwaitSites) {
            if (count > best ||
                (count == best && frame < dominant)) {
                best = count;
                dominant = frame;
            }
        }
        stats.entry.dominantUnwaitSite = dominant;
        result.push_back(stats.entry);
    }
    std::sort(result.begin(), result.end(),
              [](const ContentionEntry &a, const ContentionEntry &b) {
                  if (a.blocked != b.blocked)
                      return a.blocked > b.blocked;
                  return a.waitSite < b.waitSite;
              });
    return result;
}

DurationNs
LockContentionAnalyzer::totalBlocked() const
{
    DurationNs total = 0;
    for (const ContentionEntry &e : analyze())
        total += e.blocked;
    return total;
}

std::string
LockContentionAnalyzer::renderTop(std::size_t n) const
{
    const auto entries = analyze();
    const SymbolTable &symbols = corpus_.symbols();
    TextTable table({"Wait site", "Blocked", "Waits", "Max",
                     "Signalled by"});
    for (std::size_t i = 0; i < std::min(n, entries.size()); ++i) {
        const ContentionEntry &e = entries[i];
        table.addRow(
            {symbols.frameName(e.waitSite),
             TextTable::ms(toMs(e.blocked)),
             std::to_string(e.waits), TextTable::ms(toMs(e.maxBlocked)),
             e.dominantUnwaitSite == kNoFrame
                 ? "<unknown>"
                 : symbols.frameName(e.dominantUnwaitSite)});
    }
    return table.render();
}

} // namespace tracelens
