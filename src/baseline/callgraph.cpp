/**
 * @file
 * Baseline 1 implementation: flat/cumulative CPU attribution of Running
 * samples to callstack frames, gprof-style.
 */

#include "src/baseline/callgraph.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "src/util/table.h"

namespace tracelens
{

CallGraphProfiler::CallGraphProfiler(const TraceCorpus &corpus)
    : corpus_(corpus)
{
}

std::vector<ProfileEntry>
CallGraphProfiler::profile() const
{
    std::unordered_map<FrameId, ProfileEntry> entries;
    for (std::uint32_t s = 0; s < corpus_.streamCount(); ++s) {
        for (const Event &e : corpus_.stream(s).events()) {
            if (e.type != EventType::Running ||
                e.stack == kNoCallstack) {
                continue;
            }
            const auto frames = corpus_.symbols().stackFrames(e.stack);
            if (frames.empty())
                continue;
            // Inclusive: each distinct frame on the stack once.
            std::unordered_set<FrameId> seen;
            for (FrameId f : frames) {
                if (!seen.insert(f).second)
                    continue;
                ProfileEntry &entry = entries[f];
                entry.frame = f;
                entry.inclusive += e.cost;
                ++entry.samples;
            }
            entries[frames.back()].exclusive += e.cost;
        }
    }

    std::vector<ProfileEntry> result;
    result.reserve(entries.size());
    for (auto &[frame, entry] : entries)
        result.push_back(entry);
    std::sort(result.begin(), result.end(),
              [](const ProfileEntry &a, const ProfileEntry &b) {
                  if (a.inclusive != b.inclusive)
                      return a.inclusive > b.inclusive;
                  return a.frame < b.frame;
              });
    return result;
}

std::vector<ComponentProfileEntry>
CallGraphProfiler::byComponent() const
{
    std::unordered_map<std::uint32_t, ComponentProfileEntry> rollup;
    for (std::uint32_t s = 0; s < corpus_.streamCount(); ++s) {
        for (const Event &e : corpus_.stream(s).events()) {
            if (e.type != EventType::Running ||
                e.stack == kNoCallstack) {
                continue;
            }
            const auto frames = corpus_.symbols().stackFrames(e.stack);
            std::unordered_set<std::uint32_t> seen;
            for (FrameId f : frames) {
                const std::uint32_t comp =
                    corpus_.symbols().componentId(f);
                if (!seen.insert(comp).second)
                    continue;
                ComponentProfileEntry &entry = rollup[comp];
                if (entry.component.empty())
                    entry.component = corpus_.symbols().componentName(f);
                entry.inclusive += e.cost;
                ++entry.samples;
            }
        }
    }
    std::vector<ComponentProfileEntry> result;
    result.reserve(rollup.size());
    for (auto &[comp, entry] : rollup)
        result.push_back(entry);
    std::sort(result.begin(), result.end(),
              [](const ComponentProfileEntry &a,
                 const ComponentProfileEntry &b) {
                  if (a.inclusive != b.inclusive)
                      return a.inclusive > b.inclusive;
                  return a.component < b.component;
              });
    return result;
}

DurationNs
CallGraphProfiler::totalCpu() const
{
    DurationNs total = 0;
    for (std::uint32_t s = 0; s < corpus_.streamCount(); ++s) {
        for (const Event &e : corpus_.stream(s).events()) {
            if (e.type == EventType::Running)
                total += e.cost;
        }
    }
    return total;
}

std::string
CallGraphProfiler::renderTop(std::size_t n) const
{
    const auto entries = profile();
    const DurationNs total = totalCpu();
    TextTable table({"Function", "Incl", "Excl", "Incl%"});
    for (std::size_t i = 0; i < std::min(n, entries.size()); ++i) {
        const ProfileEntry &e = entries[i];
        table.addRow({corpus_.symbols().frameName(e.frame),
                      TextTable::ms(toMs(e.inclusive)),
                      TextTable::ms(toMs(e.exclusive)),
                      TextTable::pct(total
                                         ? static_cast<double>(
                                               e.inclusive) /
                                               static_cast<double>(total)
                                         : 0.0)});
    }
    return table.render();
}

} // namespace tracelens
