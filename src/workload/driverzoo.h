/**
 * @file
 * The synthetic driver zoo: the ten driver categories of the paper's
 * Table 4, each with a concrete module name used in callstack frames.
 *
 * The paper anonymizes driver names (fv.sys, fs.sys, se.sys, ...); we
 * use the same anonymized convention. classifyModule() maps a module
 * name back to its category — the Table 4 bench uses it to categorize
 * mined patterns by driver type.
 */

#ifndef TRACELENS_WORKLOAD_DRIVERZOO_H
#define TRACELENS_WORKLOAD_DRIVERZOO_H

#include <optional>
#include <string_view>
#include <vector>

namespace tracelens
{

/** Driver categories, in the column order of the paper's Table 4. */
enum class DriverType
{
    FileSystem = 0,       //!< fs.sys, stor.sys
    FileSystemFilter = 1, //!< fv.sys (virtualization), av_flt.sys (AV)
    Network = 2,          //!< net.sys, tcpip.sys
    StorageEncryption = 3,//!< se.sys
    DiskProtection = 4,   //!< dp.sys
    Graphics = 5,         //!< graphics.sys
    StorageBackup = 6,    //!< bk.sys
    IoCache = 7,          //!< iocache.sys
    Mouse = 8,            //!< mou.sys
    Acpi = 9,             //!< acpi.sys
};

/** Number of driver categories. */
inline constexpr std::size_t kDriverTypeCount = 10;

/** Table-4 column heading for a category. */
std::string_view driverTypeName(DriverType type);

/** All categories in Table-4 order. */
const std::vector<DriverType> &allDriverTypes();

/**
 * Category of a driver module name ("fs.sys" -> FileSystem), or
 * nullopt for non-driver modules and unknown drivers.
 */
std::optional<DriverType> classifyModule(std::string_view module);

/**
 * Category of a function signature ("fs.sys!Read" -> FileSystem), or
 * nullopt when the signature's module is not a known driver.
 */
std::optional<DriverType> classifySignature(std::string_view signature);

} // namespace tracelens

#endif // TRACELENS_WORKLOAD_DRIVERZOO_H
