/**
 * @file
 * Corpus generator: synthesizes a whole deployment fleet of machines,
 * each running several concurrent scenario instances plus background
 * interference, standing in for the paper's 19,500 real-world ETW
 * trace streams.
 *
 * Machine environments vary (disk class, encryption, cache, fault
 * pressure, background load), so the same scenario lands sometimes in
 * the fast and sometimes in the slow class — exactly the contrast the
 * causality analysis mines.
 */

#ifndef TRACELENS_WORKLOAD_GENERATOR_H
#define TRACELENS_WORKLOAD_GENERATOR_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/trace/stream.h"
#include "src/workload/scenarios.h"

namespace tracelens
{

/** Fleet-level generation parameters. */
struct CorpusSpec
{
    std::uint64_t seed = 20140301;
    /** Number of machines (= trace streams). */
    std::uint32_t machines = 150;
    /** Concurrent scenario instances per machine (inclusive range). */
    std::uint32_t minInstancesPerMachine = 6;
    std::uint32_t maxInstancesPerMachine = 10;
    /** Fraction of machines with storage encryption. */
    double encryptedFraction = 0.55;
    /** Fraction of machines with an HDD (vs. SSD). */
    double hddFraction = 0.45;
    /** Fraction of machines with the disk-protection driver. */
    double diskProtectionFraction = 0.08;
    /** Fraction of heavily loaded ("stressed") machines. */
    double stressedFraction = 0.35;
    /** Restrict generation to these scenarios (empty = all). */
    std::vector<std::string> onlyScenarios;
};

/** Generate a corpus per @p spec (deterministic in spec.seed). */
TraceCorpus generateCorpus(const CorpusSpec &spec);

/**
 * Generate the same fleet as generateCorpus(spec), sliced into
 * @p shards self-contained corpora of contiguous machine blocks —
 * the multi-file layout the streaming ingestion layer
 * (src/trace/source.h) consumes. Deterministic in spec.seed.
 */
std::vector<TraceCorpus> generateShardedCorpus(const CorpusSpec &spec,
                                               std::size_t shards);

/**
 * Generate a single machine's stream into @p corpus with explicit
 * parameters (used by tests and focused benches).
 */
void generateMachine(TraceCorpus &corpus, const CorpusSpec &spec,
                     std::uint32_t machine_index, Rng &rng);

} // namespace tracelens

#endif // TRACELENS_WORKLOAD_GENERATOR_H
