/**
 * @file
 * A simulated Windows machine: one SimKernel wired with the driver
 * zoo's resources (locks, devices, worker pools) plus op builders that
 * compile driver interactions into thread-script actions.
 *
 * The op builders encode the interaction topologies the paper
 * describes:
 *
 *  - file I/O descends the driver stack fv.sys (filter, FileTable
 *    lock) -> fs.sys (MDU lock) -> iocache.sys -> dp.sys ->
 *    se.sys/disk, with the encrypted read handed to a *shared* system
 *    worker via a system-service call (the Figure-1 chain);
 *  - access checks RPC into a single security-service process whose
 *    workers inspect requests under one database lock (the paper's
 *    "single process and database" bottleneck);
 *  - network requests descend tcpip.sys -> net.sys -> the network
 *    device with heavy-tailed latency;
 *  - GPU rendering contends a GPU lock inside graphics.sys and may
 *    take a hard fault whose page read goes through the storage stack
 *    on a system worker (the RQ3 graphics case);
 *  - background antivirus / backup / config-manager threads generate
 *    the cross-application interference that shares waits across
 *    concurrently-running scenario instances.
 *
 * All randomness is drawn at script-build time from the machine's
 * seeded RNG, so a machine builds a deterministic trace.
 */

#ifndef TRACELENS_WORKLOAD_MACHINE_H
#define TRACELENS_WORKLOAD_MACHINE_H

#include <string>
#include <string_view>

#include "src/simkernel/kernel.h"
#include "src/util/rng.h"

namespace tracelens
{

/** Per-machine environment knobs (sampled by the corpus generator). */
struct MachineConfig
{
    std::uint32_t cores = 4;

    /** Storage encryption (se.sys) present in the storage stack. */
    bool storageEncryption = true;
    /** IO cache driver present. */
    bool ioCache = true;
    /** Disk-protection driver present (blocks I/O during bursts). */
    bool diskProtection = false;

    /** Median disk service time (ms); sigma is log-space dispersion. */
    double diskMedianMs = 2.0;
    double diskSigma = 0.8;
    /** Median network round trip (ms). */
    double netMedianMs = 12.0;
    double netSigma = 1.1;
    /** GPU present/render service time (ms). */
    double gpuMedianMs = 2.0;
    double gpuSigma = 0.5;

    /** Cache hit probability for file reads. */
    double cacheHitRate = 0.6;
    /** Probability a pageable access takes a hard fault. */
    double hardFaultRate = 0.05;
    /** Hard-fault page-read size factor (multiplies disk time). */
    double hardFaultDiskFactor = 150.0;

    /** Security-service database inspection time (ms, median). */
    double dbHoldMs = 1.5;

    /** Shared system worker threads serving storage/page jobs. */
    std::uint32_t systemWorkers = 2;
    /** Security-service worker threads. */
    std::uint32_t serviceWorkers = 1;
    /** Application worker-pool threads (shared by all instances). */
    std::uint32_t appWorkers = 1;
};

/**
 * One machine = one trace stream. Create, spawn instances/background
 * load, then run() exactly once.
 */
class Machine
{
  public:
    Machine(TraceCorpus &corpus, std::string stream_name,
            MachineConfig config, std::uint64_t seed);

    SimKernel &kernel() { return kernel_; }
    Rng &rng() { return rng_; }
    const MachineConfig &config() const { return config_; }

    /** @name Driver-op builders (append actions to a script)
     * @{
     */
    /** Full file read through the filter/FS/storage stack. */
    void appendFileRead(Script &script);
    /** File write (journal + data) through the same stack. */
    void appendFileWrite(Script &script);
    /** Access check: synchronous RPC into the security service. */
    void appendAccessCheck(Script &script);
    /** Network round trip through tcpip.sys/net.sys. */
    void appendNetRequest(Script &script);
    /** GPU render + present; may take a hard fault when allowed. */
    void appendGpuRender(Script &script, bool may_hard_fault);
    /** Mouse position query (tiny). */
    void appendMouseQuery(Script &script);
    /** ACPI power/thermal query (tiny lock-protected read). */
    void appendAcpiQuery(Script &script);
    /** Pure application computation (no drivers). */
    void appendAppCompute(Script &script, double lo_ms, double hi_ms);
    /**
     * Delegate @p ops to the shared per-machine application worker
     * pool and block until completion. The client's wait carries only
     * app/kernel frames, so the *workers'* driver waits become the
     * top-level driver waits of every instance blocked on the pool —
     * the paper's cross-instance cost propagation. All instances of a
     * machine share one pool, so concurrent instances share the same
     * underlying wait events (driving D_wait/D_waitdist above 1).
     */
    void appendDelegated(Script &script, Script ops);
    /** @} */

    /** @name Background interference
     * @{
     */
    /** Antivirus worker scanning files through the filter stack. */
    void spawnAntivirusWorker(TimeNs start, int file_ops);
    /** Backup worker streaming file reads. */
    void spawnBackupWorker(TimeNs start, int file_ops);
    /** Config-manager worker doing small registry-file reads. */
    void spawnConfigManagerWorker(TimeNs start, int ops);
    /** Disk-protection burst: dp.sys halts disk I/O for @p hold. */
    void spawnDiskProtectionBurst(TimeNs start, DurationNs hold);
    /** Extra browser worker contending the FileTable lock. */
    void spawnBrowserWorker(TimeNs start, int file_ops);
    /** @} */

    /**
     * Spawn a scenario-instance thread: @p body wrapped in
     * Begin/EndInstance markers under a process frame.
     */
    ThreadId spawnInstance(std::string_view scenario,
                           std::string_view process_frame, Script body,
                           TimeNs start);

    /** Run the simulation; returns the stream index. */
    std::uint32_t run() { return kernel_.run(); }

    /** @name Sampled service times (exposed for scenario builders)
     * @{
     */
    DurationNs diskTime();
    DurationNs netTime();
    DurationNs gpuTime();
    /** Uniform small CPU burst in [lo_us, hi_us] microseconds. */
    DurationNs smallCompute(double lo_us, double hi_us);
    /** @} */

  private:
    /** The storage-stack tail: cache, protection, encryption, disk. */
    void appendStorageAccess(Script &script, bool is_write,
                             double disk_factor);

    /** Build the page-read job script of a hard fault. */
    std::shared_ptr<const Script> makePageReadJob();

    TraceCorpus &corpus_;
    MachineConfig config_;
    Rng rng_;
    SimKernel kernel_;

    // Locks.
    LockId fileTableLock_;
    LockId mduLock_;
    LockId cacheLock_;
    LockId gpuLock_;
    LockId dbLock_;
    LockId dpLock_;
    LockId acpiLock_;
    LockId socketLock_;
    LockId bkLock_;
    LockId mouLock_;

    // Devices.
    DeviceId disk_;
    DeviceId net_;
    DeviceId gpu_;

    // Worker channels.
    ChannelId sysWorkerChannel_;
    ChannelId serviceChannel_;
    ChannelId appWorkerChannel_;
};

} // namespace tracelens

#endif // TRACELENS_WORKLOAD_MACHINE_H
