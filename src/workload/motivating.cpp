/**
 * @file
 * Hand-scripted Figure-1 incident and other deterministic case
 * studies used by tests and examples.
 */

#include "src/workload/motivating.h"

#include "src/simkernel/kernel.h"
#include "src/util/logging.h"

namespace tracelens
{

CaseHandles
buildMotivatingExample(TraceCorpus &corpus)
{
    SimKernel sim(corpus, "fig1-machine");

    const LockId file_table = sim.createLock();
    const LockId mdu = sim.createLock();
    const DeviceId disk = sim.createDevice("DiskService");
    const ChannelId sys_chan = sim.createChannel();

    // T_S,W0: the system worker that will serve the encrypted read.
    sim.spawnThread({actPush(sim.frame("kernel!Worker")),
                     actReceiveJob(sys_chan), actJump(1)});

    // The se.sys read+decrypt job: the root cost of the incident
    // (hundreds of milliseconds of disk service plus decryption CPU).
    auto read_decrypt = std::make_shared<const Script>(Script{
        actPush(sim.frame("se.sys!ReadDecrypt")),
        actHardware(disk, fromMs(760)),
        actCompute(fromMs(30)),
    });

    // T_C,W0: Configuration Manager worker — first MDU owner; it
    // issues the system-service call into se.sys (dependency (1)).
    sim.spawnThread(
        {
            actPush(sim.frame("cm.exe!Worker")),
            actPush(sim.frame("kernel!OpenFile")),
            actPush(sim.frame("fs.sys!AcquireMDU")),
            actAcquire(mdu),
            actCompute(fromMs(1)),
            actPush(sim.frame("fs.sys!Read")),
            actSubmitJob(sys_chan, read_decrypt, /*wait=*/true),
            actPop(),
            actRelease(mdu), // propagates the delay to T_A,W0 (2)
            actPop(),
            actPop(),
            actPop(),
        },
        fromMs(0));

    // T_A,W0: AntiVirus worker — second MDU contender.
    sim.spawnThread(
        {
            actPush(sim.frame("av.exe!Worker")),
            actPush(sim.frame("kernel!OpenFile")),
            actPush(sim.frame("fs.sys!AcquireMDU")),
            actAcquire(mdu),
            actCompute(fromMs(2)),
            actRelease(mdu), // propagates to T_B,W1 (3)
            actPop(),
            actPop(),
            actPop(),
        },
        fromMs(1));

    // T_B,W1: browser worker — FileTable owner that joins the MDU
    // contention while holding the FileTable lock (dependency (4)).
    sim.spawnThread(
        {
            actPush(sim.frame("browser.exe!Worker")),
            actPush(sim.frame("kernel!CreateFile")),
            actPush(sim.frame("fv.sys!QueryFileTable")),
            actAcquire(file_table),
            actCompute(fromMs(1)),
            actPush(sim.frame("fs.sys!AcquireMDU")),
            actAcquire(mdu),
            actCompute(fromMs(1)),
            actRelease(mdu),
            actPop(),
            actRelease(file_table), // propagates to T_B,W0 (5)
            actPop(),
            actPop(),
            actPop(),
        },
        fromMs(2));

    // T_B,W0: browser worker — second FileTable contender.
    sim.spawnThread(
        {
            actPush(sim.frame("browser.exe!Worker")),
            actPush(sim.frame("kernel!CreateFile")),
            actPush(sim.frame("fv.sys!QueryFileTable")),
            actAcquire(file_table),
            actCompute(fromMs(1)),
            actRelease(file_table), // propagates to T_B,UI (6)
            actPop(),
            actPop(),
            actPop(),
        },
        fromMs(3));

    // T_B,UI: the browser UI thread creating the tab — the thread on
    // which the user perceives the >800 ms delay.
    const std::uint32_t scenario = sim.scenario("BrowserTabCreate");
    const ThreadId ui = sim.spawnThread(
        {
            actPush(sim.frame("browser.exe!TabCreate")),
            actBeginInstance(scenario),
            actPush(sim.frame("kernel!OpenFile")),
            actPush(sim.frame("fv.sys!QueryFileTable")),
            actAcquire(file_table),
            actCompute(fromMs(2)),
            actRelease(file_table),
            actPop(),
            actPop(),
            actCompute(fromMs(40)), // rendering the new tab
            actEndInstance(),
            actPop(),
        },
        fromMs(4));

    CaseHandles handles;
    handles.initiatingThread = ui;
    handles.instance = static_cast<std::uint32_t>(
        corpus.instances().size()); // next registered instance
    handles.stream = sim.run();
    TL_ASSERT(handles.instance < corpus.instances().size(),
              "motivating example registered no instance");
    return handles;
}

CaseHandles
buildGraphicsHardFaultCase(TraceCorpus &corpus)
{
    SimKernel sim(corpus, "rq3-graphics-machine");

    const LockId gpu_lock = sim.createLock();
    const DeviceId disk = sim.createDevice("DiskService");
    const ChannelId sys_chan = sim.createChannel();

    // T_S,W1: the worker that performs the page read through se.sys.
    sim.spawnThread({actPush(sim.frame("kernel!Worker")),
                     actReceiveJob(sys_chan), actJump(1)});

    // The ~4.7 s page read on the storage-encrypted system.
    auto page_read = std::make_shared<const Script>(Script{
        actPush(sim.frame("se.sys!ReadDecrypt")),
        actHardware(disk, fromMs(4600)),
        actCompute(fromMs(60)),
    });

    // T_S,W0: system thread running a graphics.sys routine that holds
    // the GPU resources and takes a hard fault initializing an
    // internal (pageable) structure.
    sim.spawnThread(
        {
            actPush(sim.frame("kernel!Worker")),
            actPush(sim.frame("graphics.sys!EventRoutine")),
            actAcquire(gpu_lock),
            actCompute(fromMs(1)),
            actPush(sim.frame("graphics.sys!InitStruct")),
            actSubmitJob(sys_chan, page_read, /*wait=*/true),
            actPop(),
            actCompute(fromMs(2)),
            actRelease(gpu_lock),
            actPop(),
            actPop(),
        },
        fromMs(0));

    // T_U,UI: the UI thread that needs the GPU and freezes.
    const std::uint32_t scenario = sim.scenario("AppNonResponsive");
    const ThreadId ui = sim.spawnThread(
        {
            actPush(sim.frame("app.exe!UI")),
            actBeginInstance(scenario),
            actPush(sim.frame("graphics.sys!AcquireGpu")),
            actAcquire(gpu_lock),
            actCompute(fromMs(3)),
            actRelease(gpu_lock),
            actPop(),
            actCompute(fromMs(20)),
            actEndInstance(),
            actPop(),
        },
        fromMs(1));

    CaseHandles handles;
    handles.initiatingThread = ui;
    handles.instance =
        static_cast<std::uint32_t>(corpus.instances().size());
    handles.stream = sim.run();
    TL_ASSERT(handles.instance < corpus.instances().size(),
              "hard-fault case registered no instance");
    return handles;
}

} // namespace tracelens
