/**
 * @file
 * Simulated-machine wiring and driver-op script compilation.
 */

#include "src/workload/machine.h"

#include "src/util/logging.h"

namespace tracelens
{

Machine::Machine(TraceCorpus &corpus, std::string stream_name,
                 MachineConfig config, std::uint64_t seed)
    : corpus_(corpus), config_(config), rng_(seed),
      kernel_(corpus, std::move(stream_name),
              SimConfig{config.cores, kMillisecond, 600 * kSecond})
{
    fileTableLock_ = kernel_.createLock();
    mduLock_ = kernel_.createLock();
    cacheLock_ = kernel_.createLock();
    gpuLock_ = kernel_.createLock();
    dbLock_ = kernel_.createLock();
    dpLock_ = kernel_.createLock();
    acpiLock_ = kernel_.createLock();
    socketLock_ = kernel_.createLock();
    bkLock_ = kernel_.createLock();
    mouLock_ = kernel_.createLock();

    disk_ = kernel_.createDevice("DiskService");
    net_ = kernel_.createDevice("NetworkService",
                             "ndis.sys!ReceiveIndication");
    gpu_ = kernel_.createDevice("GpuService");

    sysWorkerChannel_ = kernel_.createChannel();
    serviceChannel_ = kernel_.createChannel();
    appWorkerChannel_ = kernel_.createChannel();

    // Shared system worker pool (serves encrypted reads & page faults).
    const FrameId worker_frame = kernel_.frame("kernel!Worker");
    for (std::uint32_t i = 0; i < config_.systemWorkers; ++i) {
        kernel_.spawnThread({actPush(worker_frame),
                             actReceiveJob(sysWorkerChannel_),
                             actJump(1)});
    }

    // Security-service process: single process, shared database lock.
    const FrameId service_frame = kernel_.frame("avsvc.exe!ServiceLoop");
    for (std::uint32_t i = 0; i < config_.serviceWorkers; ++i) {
        kernel_.spawnThread({actPush(service_frame),
                             actReceiveJob(serviceChannel_),
                             actJump(1)});
    }

    // Application worker pool shared by every instance on the machine.
    const FrameId app_worker_frame = kernel_.frame("app.exe!WorkerLoop");
    for (std::uint32_t i = 0; i < config_.appWorkers; ++i) {
        kernel_.spawnThread({actPush(app_worker_frame),
                             actReceiveJob(appWorkerChannel_),
                             actJump(1)});
    }
}

void
Machine::appendDelegated(Script &script, Script ops)
{
    // The client's wait stack is app/kernel only (kernel!WaitForWorker
    // is not a driver frame), so the analysis descends into the shared
    // worker's events.
    script.push_back(actPush(kernel_.frame("kernel!WaitForWorker")));
    script.push_back(actSubmitJob(
        appWorkerChannel_, std::make_shared<const Script>(std::move(ops)),
        /*wait=*/true));
    script.push_back(actPop());
}

DurationNs
Machine::diskTime()
{
    return fromMs(rng_.logNormal(config_.diskMedianMs,
                                 config_.diskSigma));
}

DurationNs
Machine::netTime()
{
    return fromMs(rng_.logNormal(config_.netMedianMs, config_.netSigma));
}

DurationNs
Machine::gpuTime()
{
    return fromMs(rng_.logNormal(config_.gpuMedianMs, config_.gpuSigma));
}

DurationNs
Machine::smallCompute(double lo_us, double hi_us)
{
    return static_cast<DurationNs>(rng_.uniform(lo_us, hi_us) *
                                   kMicrosecond);
}

std::shared_ptr<const Script>
Machine::makePageReadJob()
{
    Script job;
    const DurationNs page_read =
        static_cast<DurationNs>(static_cast<double>(diskTime()) *
                                config_.hardFaultDiskFactor);
    if (config_.storageEncryption) {
        job.push_back(actPush(kernel_.frame("se.sys!ReadDecrypt")));
        job.push_back(actHardware(disk_, page_read));
        job.push_back(actCompute(smallCompute(1125, 3000)));
    } else {
        job.push_back(actPush(kernel_.frame("fs.sys!PageRead")));
        job.push_back(actHardware(disk_, page_read));
    }
    // Job frames are auto-unwound after the completion unwait, so the
    // unwait carries the storage signature.
    return std::make_shared<const Script>(std::move(job));
}

void
Machine::appendStorageAccess(Script &script, bool is_write,
                             double disk_factor)
{
    // IO cache lookup.
    if (config_.ioCache) {
        script.push_back(actPush(kernel_.frame("iocache.sys!Lookup")));
        script.push_back(actAcquire(cacheLock_));
        script.push_back(actCompute(smallCompute(10, 45)));
        script.push_back(actRelease(cacheLock_));
        script.push_back(actPop());
        if (!is_write && rng_.chance(config_.cacheHitRate)) {
            // Served from cache: a short copy, no disk.
            script.push_back(actCompute(smallCompute(22, 67)));
            return;
        }
    }

    // Disk protection gate (contended only during motion bursts).
    if (config_.diskProtection) {
        script.push_back(actPush(kernel_.frame("dp.sys!CheckMotion")));
        script.push_back(actAcquire(dpLock_));
        script.push_back(actRelease(dpLock_));
        script.push_back(actPop());
    }

    const auto scaled = static_cast<DurationNs>(
        static_cast<double>(diskTime()) * disk_factor);
    if (config_.storageEncryption) {
        // Encrypted media: the read/decrypt (or encrypt/write) runs on
        // a shared system worker via a system-service call.
        Script job;
        job.push_back(actPush(kernel_.frame(
            is_write ? "se.sys!EncryptWrite" : "se.sys!ReadDecrypt")));
        job.push_back(actHardware(disk_, scaled));
        job.push_back(actCompute(smallCompute(600, 1950)));
        script.push_back(actSubmitJob(
            sysWorkerChannel_,
            std::make_shared<const Script>(std::move(job)),
            /*wait=*/true));
    } else {
        script.push_back(actHardware(disk_, scaled));
    }
}

void
Machine::appendFileRead(Script &script)
{
    // Filter driver: FileTable query under the FileTable lock, holding
    // it across the call into the file system (Figure-1 hierarchy).
    // Entry points vary by request type, widening the signature space
    // the miner sees (real filters expose many dispatch routines).
    static const char *const kFilterEntries[] = {
        "fv.sys!QueryFileTable", "fv.sys!QueryFileTable",
        "fv.sys!ResolveReparse", "fv.sys!PreCreateCallback"};
    script.push_back(actPush(kernel_.frame(
        kFilterEntries[rng_.uniformInt(0, 3)])));
    script.push_back(actAcquire(fileTableLock_));
    script.push_back(actCompute(smallCompute(33, 135)));

    script.push_back(actPush(kernel_.frame("fs.sys!AcquireMDU")));
    script.push_back(actAcquire(mduLock_));
    script.push_back(actCompute(smallCompute(22, 67)));

    static const char *const kReadEntries[] = {
        "fs.sys!Read", "fs.sys!Read", "fs.sys!ReadAhead",
        "fs.sys!QueryAttributes"};
    script.push_back(actPush(kernel_.frame(
        kReadEntries[rng_.uniformInt(0, 3)])));
    appendStorageAccess(script, /*is_write=*/false, 1.0);
    script.push_back(actPop()); // fs.sys read entry

    script.push_back(actRelease(mduLock_));
    script.push_back(actPop()); // fs.sys!AcquireMDU

    script.push_back(actCompute(smallCompute(10, 55)));
    script.push_back(actRelease(fileTableLock_));
    script.push_back(actPop()); // fv.sys!QueryFileTable
}

void
Machine::appendFileWrite(Script &script)
{
    script.push_back(actPush(kernel_.frame("fv.sys!QueryFileTable")));
    script.push_back(actAcquire(fileTableLock_));
    script.push_back(actCompute(smallCompute(33, 112)));

    script.push_back(actPush(kernel_.frame("fs.sys!AcquireMDU")));
    script.push_back(actAcquire(mduLock_));
    script.push_back(actCompute(smallCompute(33, 100)));

    // bk.sys intercepts writes to keep its snapshot consistent.
    script.push_back(actPush(kernel_.frame("bk.sys!SnapshotWrite")));
    script.push_back(actAcquire(bkLock_));
    script.push_back(actCompute(smallCompute(10, 40)));
    script.push_back(actRelease(bkLock_));
    script.push_back(actPop());

    script.push_back(actPush(kernel_.frame("fs.sys!Write")));
    appendStorageAccess(script, /*is_write=*/true, 1.2);
    script.push_back(actPop());

    script.push_back(actRelease(mduLock_));
    script.push_back(actPop());
    script.push_back(actRelease(fileTableLock_));
    script.push_back(actPop());
}

void
Machine::appendAccessCheck(Script &script)
{
    // Client side: an app-level RPC wait (no driver frames), so the
    // service's driver waits become the shared top-level driver waits
    // of every blocked requester — the cross-instance propagation the
    // impact analysis measures as D_wait/D_waitdist.
    Script job;
    job.push_back(actPush(kernel_.frame("av_flt.sys!InspectRequest")));
    job.push_back(actAcquire(dbLock_));
    job.push_back(actCompute(
        fromMs(rng_.logNormal(config_.dbHoldMs, 0.5))));
    // Inspection consults signature files on disk.
    appendFileRead(job);
    job.push_back(actRelease(dbLock_));
    script.push_back(actPush(kernel_.frame("rpc!SendRequest")));
    script.push_back(actSubmitJob(
        serviceChannel_, std::make_shared<const Script>(std::move(job)),
        /*wait=*/true));
    script.push_back(actPop());
}

void
Machine::appendNetRequest(Script &script)
{
    static const char *const kTcpEntries[] = {
        "tcpip.sys!Transmit", "tcpip.sys!Transmit",
        "tcpip.sys!Connect", "tcpip.sys!QueryDns"};
    script.push_back(actPush(kernel_.frame(
        kTcpEntries[rng_.uniformInt(0, 3)])));
    script.push_back(actCompute(smallCompute(22, 67)));
    static const char *const kNetEntries[] = {
        "net.sys!Send", "net.sys!Receive", "net.sys!WaitForData",
        "net.sys!PollCompletion"};
    script.push_back(actPush(kernel_.frame(
        kNetEntries[rng_.uniformInt(0, 3)])));
    script.push_back(actCompute(smallCompute(10, 45)));
    script.push_back(actHardware(net_, netTime()));
    script.push_back(actPop());
    script.push_back(actPop());
}

void
Machine::appendGpuRender(Script &script, bool may_hard_fault)
{
    script.push_back(actPush(kernel_.frame("graphics.sys!AcquireGpu")));
    script.push_back(actAcquire(gpuLock_));
    if (may_hard_fault && rng_.chance(config_.hardFaultRate)) {
        // Hard fault while initializing a pageable structure: the page
        // read is served by a shared system worker through the storage
        // stack (the RQ3 graphics.sys case).
        script.push_back(actPush(kernel_.frame(
            "graphics.sys!InitStruct")));
        script.push_back(actSubmitJob(sysWorkerChannel_,
                                      makePageReadJob(),
                                      /*wait=*/true));
        script.push_back(actPop());
    }
    script.push_back(actCompute(smallCompute(450, 1575)));
    script.push_back(actRelease(gpuLock_));
    script.push_back(actPush(kernel_.frame("graphics.sys!Present")));
    script.push_back(actHardware(gpu_, gpuTime()));
    script.push_back(actPop());
    script.push_back(actPop());
}

void
Machine::appendMouseQuery(Script &script)
{
    script.push_back(actPush(kernel_.frame("mou.sys!GetPosition")));
    script.push_back(actCompute(smallCompute(10, 45)));
    script.push_back(actPop());
}

void
Machine::appendAcpiQuery(Script &script)
{
    script.push_back(actPush(kernel_.frame("acpi.sys!QueryPower")));
    script.push_back(actAcquire(acpiLock_));
    script.push_back(actCompute(smallCompute(33, 100)));
    script.push_back(actRelease(acpiLock_));
    script.push_back(actPop());
}

void
Machine::appendAppCompute(Script &script, double lo_ms, double hi_ms)
{
    script.push_back(actCompute(fromMs(rng_.uniform(lo_ms, hi_ms))));
}

void
Machine::spawnAntivirusWorker(TimeNs start, int file_ops)
{
    Script script;
    script.push_back(actPush(kernel_.frame("av.exe!Worker")));
    script.push_back(actPush(kernel_.frame("av_flt.sys!ScanWorker")));
    for (int i = 0; i < file_ops; ++i) {
        appendFileRead(script);
        script.push_back(actCompute(smallCompute(112, 450)));
        script.push_back(
            actSleep(fromMs(rng_.uniform(0.5, 5.0))));
    }
    script.push_back(actPop());
    script.push_back(actPop());
    kernel_.spawnThread(std::move(script), start);
}

void
Machine::spawnBackupWorker(TimeNs start, int file_ops)
{
    Script script;
    script.push_back(actPush(kernel_.frame("backup.exe!Worker")));
    script.push_back(actPush(kernel_.frame("bk.sys!StreamRead")));
    for (int i = 0; i < file_ops; ++i) {
        script.push_back(actAcquire(bkLock_));
        appendFileRead(script);
        script.push_back(actRelease(bkLock_));
        script.push_back(actSleep(fromMs(rng_.uniform(0.2, 2.0))));
    }
    script.push_back(actPop());
    script.push_back(actPop());
    kernel_.spawnThread(std::move(script), start);
}

void
Machine::spawnConfigManagerWorker(TimeNs start, int ops)
{
    Script script;
    script.push_back(actPush(kernel_.frame("cm.exe!Worker")));
    for (int i = 0; i < ops; ++i) {
        appendFileRead(script);
        script.push_back(actCompute(smallCompute(112, 450)));
        script.push_back(actSleep(fromMs(rng_.uniform(1.0, 8.0))));
    }
    script.push_back(actPop());
    kernel_.spawnThread(std::move(script), start);
}

void
Machine::spawnDiskProtectionBurst(TimeNs start, DurationNs hold)
{
    TL_ASSERT(config_.diskProtection,
              "disk-protection burst needs dp.sys enabled");
    Script script;
    script.push_back(actPush(kernel_.frame("dp.sys!MotionSensor")));
    script.push_back(actAcquire(dpLock_));
    script.push_back(actCompute(smallCompute(45, 112)));
    script.push_back(actSleep(hold));
    script.push_back(actRelease(dpLock_));
    script.push_back(actPop());
    kernel_.spawnThread(std::move(script), start);
}

void
Machine::spawnBrowserWorker(TimeNs start, int file_ops)
{
    Script script;
    script.push_back(actPush(kernel_.frame("browser.exe!Worker")));
    for (int i = 0; i < file_ops; ++i) {
        appendFileRead(script);
        script.push_back(actSleep(fromMs(rng_.uniform(0.2, 3.0))));
    }
    script.push_back(actPop());
    kernel_.spawnThread(std::move(script), start);
}

ThreadId
Machine::spawnInstance(std::string_view scenario,
                       std::string_view process_frame, Script body,
                       TimeNs start)
{
    Script script;
    script.push_back(actPush(kernel_.frame(process_frame)));
    script.push_back(actBeginInstance(kernel_.scenario(scenario)));
    for (Action &a : body)
        script.push_back(std::move(a));
    script.push_back(actEndInstance());
    script.push_back(actPop());
    return kernel_.spawnThread(std::move(script), start);
}

} // namespace tracelens
