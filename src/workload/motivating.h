/**
 * @file
 * Deterministic case-study builders.
 *
 * buildMotivatingExample() reconstructs the paper's Figure-1 incident
 * exactly: six threads, three drivers (fv.sys, fs.sys, se.sys), two
 * lock-contention regions (FileTable, MDU) connected by two
 * hierarchical dependencies, propagating a ~750 ms disk+decrypt delay
 * from a system worker all the way to the browser UI thread, making
 * the BrowserTabCreate instance take over 800 ms.
 *
 * buildGraphicsHardFaultCase() reconstructs the RQ3 case: a UI thread
 * blocked on the GPU lock held by a system thread running a
 * graphics.sys routine that takes a hard fault; the page read runs
 * se.sys on another worker and needs ~4.7 s, freezing the UI.
 */

#ifndef TRACELENS_WORKLOAD_MOTIVATING_H
#define TRACELENS_WORKLOAD_MOTIVATING_H

#include <cstdint>

#include "src/trace/stream.h"

namespace tracelens
{

/** Handles into the constructed case. */
struct CaseHandles
{
    std::uint32_t stream = 0;        //!< Stream index in the corpus.
    std::uint32_t instance = 0;      //!< Instance index in the corpus.
    ThreadId initiatingThread = 0;   //!< The perceiving UI thread.
};

/** Build the Figure-1 BrowserTabCreate incident into @p corpus. */
CaseHandles buildMotivatingExample(TraceCorpus &corpus);

/** Build the RQ3 graphics.sys hard-fault incident into @p corpus. */
CaseHandles buildGraphicsHardFaultCase(TraceCorpus &corpus);

} // namespace tracelens

#endif // TRACELENS_WORKLOAD_MOTIVATING_H
