/**
 * @file
 * The eight evaluation scenarios (paper Table 1) as script builders.
 *
 * Each scenario has developer-specified performance thresholds T_fast
 * and T_slow (the paper's example: BrowserTabCreate should complete in
 * 300 ms and not exceed 500 ms) and a builder that compiles the
 * initiating thread's behaviour from the machine's driver ops. The
 * @p severity argument in [0, 1] scales the per-instance workload
 * (number of file/net/GPU operations), standing in for the real-world
 * input variation that spreads instances across the fast/slow classes.
 */

#ifndef TRACELENS_WORKLOAD_SCENARIOS_H
#define TRACELENS_WORKLOAD_SCENARIOS_H

#include <functional>
#include <string>
#include <vector>

#include "src/workload/machine.h"

namespace tracelens
{

/** Catalog entry for one scenario. */
struct ScenarioSpec
{
    std::string name;
    std::string processFrame; //!< Initiating thread's bottom frame.
    DurationNs tFast = 0;     //!< Upper bound of normal performance.
    DurationNs tSlow = 0;     //!< Lower bound of degraded performance.
    double weight = 1.0;      //!< Relative frequency in the corpus.
    /**
     * True for the eight scenarios the paper's evaluation selects;
     * false for background scenarios that only populate the corpus
     * (the paper's corpus spans 1,364 scenarios, of which 8 are
     * analyzed).
     */
    bool selected = true;
    std::function<Script(Machine &, double severity)> build;
};

/** The full catalog: the eight selected scenarios (paper Table-1
 * order) followed by unselected background scenarios. */
const std::vector<ScenarioSpec> &scenarioCatalog();

/** Only the eight selected evaluation scenarios. */
std::vector<const ScenarioSpec *> selectedScenarios();

/** Lookup by name; fatal when unknown. */
const ScenarioSpec &scenarioByName(std::string_view name);

/** Number of operations scaled by severity: lo + severity*(hi-lo). */
int scaledOps(Rng &rng, double severity, int lo, int hi);

} // namespace tracelens

#endif // TRACELENS_WORKLOAD_SCENARIOS_H
