/**
 * @file
 * The eight Table-1 scenario script builders and their thresholds.
 */

#include "src/workload/scenarios.h"

#include <cmath>

#include "src/util/logging.h"

namespace tracelens
{

int
scaledOps(Rng &rng, double severity, int lo, int hi)
{
    TL_ASSERT(lo >= 0 && hi >= lo, "bad op range");
    const double mid = lo + severity * (hi - lo);
    const double jittered = mid + rng.uniform(-0.5, 0.5);
    return std::max(lo, static_cast<int>(std::lround(jittered)));
}

namespace
{

// Most scenarios delegate their I/O to the machine's shared app
// worker pool (appendDelegated): the initiating thread's wait is then
// app-level, and the pool workers' driver waits — shared with every
// other instance blocked on the pool — carry the driver impact, the
// way real UI frameworks push I/O onto worker threads. Top-level
// appCompute chunks model parsing/layout/rendering and dilute driver
// time to realistic shares.

Script
buildAppAccessControl(Machine &m, double severity)
{
    Script s;
    m.appendAppCompute(s, 8.8, 26.1);
    const int checks = scaledOps(m.rng(), severity, 1, 4);
    for (int i = 0; i < checks; ++i) {
        m.appendAccessCheck(s);
        m.appendAppCompute(s, 6.5, 21.8);
    }
    return s;
}

Script
buildAppNonResponsive(Machine &m, double severity)
{
    Script s;
    m.appendAppCompute(s, 43.5, 152.2);
    m.appendAcpiQuery(s);
    Script job;
    const int files = scaledOps(m.rng(), severity, 1, 3);
    for (int i = 0; i < files; ++i) {
        m.appendFileRead(job);
        m.appendAppCompute(job, 2.0, 7.0);
    }
    m.appendDelegated(s, std::move(job));
    // The GPU path may take a hard fault — the RQ3 graphics case.
    m.appendGpuRender(s, /*may_hard_fault=*/true);
    m.appendAppCompute(s, 21.8, 65.2);
    return s;
}

Script
buildBrowserFrameCreate(Machine &m, double severity)
{
    Script s;
    m.appendAppCompute(s, 21.8, 65.2);
    Script job;
    const int files = scaledOps(m.rng(), severity, 2, 6);
    for (int i = 0; i < files; ++i) {
        m.appendFileRead(job);
        m.appendAppCompute(job, 2.0, 6.0);
    }
    m.appendNetRequest(job);
    m.appendDelegated(s, std::move(job));
    m.appendGpuRender(s, /*may_hard_fault=*/false);
    m.appendAppCompute(s, 32.8, 87.0);
    return s;
}

Script
buildBrowserTabClose(Machine &m, double severity)
{
    Script s;
    m.appendAppCompute(s, 10.8, 32.8);
    Script job;
    const int writes = scaledOps(m.rng(), severity, 1, 4);
    for (int i = 0; i < writes; ++i) {
        m.appendFileWrite(job);
        m.appendAppCompute(job, 2.0, 6.0);
    }
    m.appendDelegated(s, std::move(job));
    m.appendAppCompute(s, 4.4, 13.0);
    return s;
}

Script
buildBrowserTabCreate(Machine &m, double severity)
{
    Script s;
    m.appendMouseQuery(s);
    m.appendAppCompute(s, 17.4, 43.5);
    // A fraction of the file work runs on the UI thread itself (the
    // Figure-1 shape); the rest is delegated to the shared pool.
    if (m.rng().chance(0.35))
        m.appendFileRead(s);
    Script job;
    const int files = scaledOps(m.rng(), severity, 2, 6);
    for (int i = 0; i < files; ++i) {
        m.appendFileRead(job);
        m.appendAppCompute(job, 2.0, 7.0);
    }
    const int nets = scaledOps(m.rng(), severity, 0, 2);
    for (int i = 0; i < nets; ++i)
        m.appendNetRequest(job);
    m.appendDelegated(s, std::move(job));
    if (m.rng().chance(0.4))
        m.appendGpuRender(s, /*may_hard_fault=*/false);
    m.appendAppCompute(s, 43.5, 130.5);
    return s;
}

Script
buildBrowserTabSwitch(Machine &m, double severity)
{
    Script s;
    // Mostly direct rendering and cached reads: a large share of its
    // driver time is direct hardware service (the paper reports 66.6 %
    // non-optimizable here).
    m.appendAppCompute(s, 13.0, 39.1);
    m.appendGpuRender(s, /*may_hard_fault=*/false);
    const int files = scaledOps(m.rng(), severity, 0, 2);
    for (int i = 0; i < files; ++i)
        m.appendFileRead(s);
    m.appendAppCompute(s, 17.4, 54.2);
    return s;
}

Script
buildMenuDisplay(Machine &m, double severity)
{
    Script s;
    m.appendMouseQuery(s);
    m.appendAppCompute(s, 6.5, 17.4);
    // Menu items fetched from remote servers: network-bound, partly on
    // the UI thread (the anti-pattern the paper calls out) and partly
    // delegated.
    // Menus fetch their items synchronously on the UI thread — the
    // anti-pattern the paper's analysts call out; slow menus are
    // network-stall-bound.
    const int nets = scaledOps(m.rng(), severity, 2, 6);
    for (int i = 0; i < nets; ++i) {
        m.appendNetRequest(s);
        m.appendAppCompute(s, 0.5, 2.0);
    }
    if (m.rng().chance(0.15))
        m.appendFileRead(s);
    m.appendAppCompute(s, 10.8, 32.8);
    return s;
}

Script
buildWebPageNavigation(Machine &m, double severity)
{
    Script s;
    m.appendAppCompute(s, 54.2, 152.2);
    Script job;
    const int nets = scaledOps(m.rng(), severity, 2, 5);
    for (int i = 0; i < nets; ++i) {
        m.appendNetRequest(job);
        m.appendAppCompute(job, 3.0, 9.0);
    }
    const int files = scaledOps(m.rng(), severity, 1, 3);
    for (int i = 0; i < files; ++i)
        m.appendFileRead(job);
    m.appendDelegated(s, std::move(job));
    m.appendGpuRender(s, /*may_hard_fault=*/true);
    // Parse/layout/script execution dominates healthy navigations.
    m.appendAppCompute(s, 130.5, 391.5);
    return s;
}

// --- unselected background scenarios (corpus filler; the paper's
// corpus holds 1,364 scenarios of which eight are analyzed) ---

Script
buildFileOpen(Machine &m, double severity)
{
    Script s;
    m.appendAppCompute(s, 2.0, 8.0);
    Script job;
    const int files = scaledOps(m.rng(), severity, 1, 3);
    for (int i = 0; i < files; ++i)
        m.appendFileRead(job);
    m.appendDelegated(s, std::move(job));
    m.appendAppCompute(s, 3.0, 10.0);
    return s;
}

Script
buildAppLaunch(Machine &m, double severity)
{
    Script s;
    m.appendAppCompute(s, 10.0, 30.0);
    m.appendAccessCheck(s);
    Script job;
    const int files = scaledOps(m.rng(), severity, 3, 8);
    for (int i = 0; i < files; ++i) {
        m.appendFileRead(job);
        m.appendAppCompute(job, 1.0, 4.0);
    }
    m.appendDelegated(s, std::move(job));
    m.appendGpuRender(s, /*may_hard_fault=*/true);
    m.appendAppCompute(s, 20.0, 60.0);
    return s;
}

Script
buildSearchIndexQuery(Machine &m, double severity)
{
    Script s;
    m.appendAppCompute(s, 3.0, 9.0);
    Script job;
    const int files = scaledOps(m.rng(), severity, 2, 6);
    for (int i = 0; i < files; ++i)
        m.appendFileRead(job);
    m.appendDelegated(s, std::move(job));
    m.appendAppCompute(s, 5.0, 15.0);
    return s;
}

Script
buildWindowResize(Machine &m, double severity)
{
    Script s;
    m.appendMouseQuery(s);
    m.appendAppCompute(s, 2.0, 6.0);
    const int renders = scaledOps(m.rng(), severity, 1, 3);
    for (int i = 0; i < renders; ++i)
        m.appendGpuRender(s, /*may_hard_fault=*/false);
    m.appendAppCompute(s, 3.0, 10.0);
    return s;
}

Script
buildPrintSpool(Machine &m, double severity)
{
    Script s;
    m.appendAppCompute(s, 5.0, 20.0);
    Script job;
    const int writes = scaledOps(m.rng(), severity, 1, 4);
    for (int i = 0; i < writes; ++i)
        m.appendFileWrite(job);
    m.appendNetRequest(job); // network printer
    m.appendDelegated(s, std::move(job));
    m.appendAppCompute(s, 3.0, 8.0);
    return s;
}

Script
buildPowerStateQuery(Machine &m, double severity)
{
    Script s;
    m.appendAppCompute(s, 1.0, 3.0);
    const int queries = scaledOps(m.rng(), severity, 1, 3);
    for (int i = 0; i < queries; ++i)
        m.appendAcpiQuery(s);
    m.appendAppCompute(s, 1.0, 4.0);
    return s;
}

} // namespace

const std::vector<ScenarioSpec> &
scenarioCatalog()
{
    static const std::vector<ScenarioSpec> catalog = {
        {"AppAccessControl", "app.exe!Main", fromMs(150), fromMs(300),
         1.5, true, buildAppAccessControl},
        {"AppNonResponsive", "app.exe!UI", fromMs(350), fromMs(700),
         0.6, true, buildAppNonResponsive},
        {"BrowserFrameCreate", "browser.exe!FrameCreate", fromMs(250),
         fromMs(500), 1.3, true, buildBrowserFrameCreate},
        {"BrowserTabClose", "browser.exe!TabClose", fromMs(120),
         fromMs(250), 1.0, true, buildBrowserTabClose},
        {"BrowserTabCreate", "browser.exe!TabCreate", fromMs(300),
         fromMs(500), 2.4, true, buildBrowserTabCreate},
        {"BrowserTabSwitch", "browser.exe!TabSwitch", fromMs(130),
         fromMs(300), 2.1, true, buildBrowserTabSwitch},
        {"MenuDisplay", "app.exe!MenuDisplay", fromMs(180), fromMs(400),
         0.7, true, buildMenuDisplay},
        {"WebPageNavigation", "browser.exe!Navigate", fromMs(500),
         fromMs(1000), 7.5, true, buildWebPageNavigation},
        // Unselected background scenarios.
        {"FileOpen", "app.exe!FileOpen", fromMs(150), fromMs(300), 1.2,
         false, buildFileOpen},
        {"AppLaunch", "app.exe!Launch", fromMs(600), fromMs(1200), 0.8,
         false, buildAppLaunch},
        {"SearchIndexQuery", "search.exe!Query", fromMs(200),
         fromMs(400), 0.7, false, buildSearchIndexQuery},
        {"WindowResize", "app.exe!Resize", fromMs(80), fromMs(200),
         1.0, false, buildWindowResize},
        {"PrintSpool", "app.exe!Print", fromMs(300), fromMs(600), 0.4,
         false, buildPrintSpool},
        {"PowerStateQuery", "app.exe!PowerQuery", fromMs(50),
         fromMs(120), 0.5, false, buildPowerStateQuery},
    };
    return catalog;
}

std::vector<const ScenarioSpec *>
selectedScenarios()
{
    std::vector<const ScenarioSpec *> selected;
    for (const ScenarioSpec &spec : scenarioCatalog()) {
        if (spec.selected)
            selected.push_back(&spec);
    }
    return selected;
}

const ScenarioSpec &
scenarioByName(std::string_view name)
{
    for (const ScenarioSpec &spec : scenarioCatalog()) {
        if (spec.name == name)
            return spec;
    }
    TL_FATAL("unknown scenario '", std::string(name), "'");
}

} // namespace tracelens
