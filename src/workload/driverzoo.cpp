/**
 * @file
 * Driver-zoo tables: module names, resources, and service-time
 * distributions per driver category.
 */

#include "src/workload/driverzoo.h"

#include <array>

#include "src/util/logging.h"

namespace tracelens
{

namespace
{

struct ModuleEntry
{
    std::string_view module;
    DriverType type;
};

constexpr std::array<ModuleEntry, 13> kModules = {{
    {"fs.sys", DriverType::FileSystem},
    {"stor.sys", DriverType::FileSystem},
    {"fv.sys", DriverType::FileSystemFilter},
    {"av_flt.sys", DriverType::FileSystemFilter},
    {"net.sys", DriverType::Network},
    {"ndis.sys", DriverType::Network},
    {"tcpip.sys", DriverType::Network},
    {"se.sys", DriverType::StorageEncryption},
    {"dp.sys", DriverType::DiskProtection},
    {"graphics.sys", DriverType::Graphics},
    {"bk.sys", DriverType::StorageBackup},
    {"iocache.sys", DriverType::IoCache},
    {"mou.sys", DriverType::Mouse},
}};

// acpi.sys intentionally separate: keeps the array size honest above.
constexpr ModuleEntry kAcpi = {"acpi.sys", DriverType::Acpi};

} // namespace

std::string_view
driverTypeName(DriverType type)
{
    switch (type) {
      case DriverType::FileSystem:
        return "FileSystem/GeneralStorage";
      case DriverType::FileSystemFilter:
        return "FileSystemFilter";
      case DriverType::Network:
        return "Network";
      case DriverType::StorageEncryption:
        return "StorageEncryption";
      case DriverType::DiskProtection:
        return "DiskProtection";
      case DriverType::Graphics:
        return "Graphics";
      case DriverType::StorageBackup:
        return "StorageBackup";
      case DriverType::IoCache:
        return "IOCache";
      case DriverType::Mouse:
        return "Mouse";
      case DriverType::Acpi:
        return "ACPI";
    }
    TL_PANIC("bad driver type");
}

const std::vector<DriverType> &
allDriverTypes()
{
    static const std::vector<DriverType> types = {
        DriverType::FileSystem,    DriverType::FileSystemFilter,
        DriverType::Network,       DriverType::StorageEncryption,
        DriverType::DiskProtection, DriverType::Graphics,
        DriverType::StorageBackup, DriverType::IoCache,
        DriverType::Mouse,         DriverType::Acpi,
    };
    return types;
}

std::optional<DriverType>
classifyModule(std::string_view module)
{
    for (const auto &entry : kModules) {
        if (entry.module == module)
            return entry.type;
    }
    if (module == kAcpi.module)
        return kAcpi.type;
    return std::nullopt;
}

std::optional<DriverType>
classifySignature(std::string_view signature)
{
    const auto bang = signature.find('!');
    if (bang == std::string_view::npos)
        return std::nullopt;
    return classifyModule(signature.substr(0, bang));
}

} // namespace tracelens
