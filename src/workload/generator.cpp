/**
 * @file
 * Fleet synthesis: seeds per-machine RNGs, schedules scenario
 * instances and background interference, runs SimKernel per machine.
 */

#include "src/workload/generator.h"

#include <algorithm>

#include "src/trace/merge.h"
#include "src/util/logging.h"

namespace tracelens
{

namespace
{

/** Sample one machine's environment. */
MachineConfig
sampleMachineConfig(const CorpusSpec &spec, Rng &rng, bool stressed)
{
    MachineConfig config;
    config.cores = rng.chance(0.5) ? 4 : (rng.chance(0.5) ? 2 : 8);
    config.storageEncryption = rng.chance(spec.encryptedFraction);
    config.ioCache = rng.chance(0.85);
    config.diskProtection = rng.chance(spec.diskProtectionFraction);

    if (rng.chance(spec.hddFraction)) {
        config.diskMedianMs = rng.uniform(2.0, 6.0);
        config.diskSigma = rng.uniform(1.0, 1.3); // heavy seek tails
    } else {
        config.diskMedianMs = rng.uniform(0.15, 0.6);
        config.diskSigma = rng.uniform(0.7, 1.0);
    }
    config.netMedianMs = rng.uniform(3.0, 15.0);
    config.netSigma = rng.uniform(0.9, 1.4);
    config.gpuMedianMs = rng.uniform(1.5, 5.0);
    config.gpuSigma = rng.uniform(1.0, 1.4);

    config.cacheHitRate = rng.uniform(0.6, 0.9);
    config.hardFaultRate = stressed ? rng.uniform(0.03, 0.10)
                                    : rng.uniform(0.004, 0.02);
    config.dbHoldMs = rng.uniform(0.8, 4.0);
    config.systemWorkers = stressed ? 1 : 2;
    config.serviceWorkers = 1;
    return config;
}

/** Pick a scenario index per catalog weights and spec restriction. */
const ScenarioSpec &
pickScenario(const CorpusSpec &spec, Rng &rng)
{
    const auto &catalog = scenarioCatalog();
    std::vector<double> weights;
    weights.reserve(catalog.size());
    for (const ScenarioSpec &s : catalog) {
        const bool allowed =
            spec.onlyScenarios.empty() ||
            std::find(spec.onlyScenarios.begin(),
                      spec.onlyScenarios.end(),
                      s.name) != spec.onlyScenarios.end();
        weights.push_back(allowed ? s.weight : 0.0);
    }
    return catalog[rng.pickWeighted(weights)];
}

} // namespace

void
generateMachine(TraceCorpus &corpus, const CorpusSpec &spec,
                std::uint32_t machine_index, Rng &rng)
{
    const bool stressed = rng.chance(spec.stressedFraction);
    const MachineConfig config = sampleMachineConfig(spec, rng, stressed);
    const std::uint32_t stream_index = corpus.streamCount();
    Machine machine(corpus,
                    "machine-" + std::to_string(machine_index), config,
                    rng());

    // Tag the stream with the machine environment for cohort analysis.
    {
        TraceStream &stream = corpus.stream(stream_index);
        stream.tags["encrypted"] = config.storageEncryption ? "1" : "0";
        stream.tags["disk"] = config.diskMedianMs > 1.0 ? "hdd" : "ssd";
        stream.tags["stressed"] = stressed ? "1" : "0";
        stream.tags["cores"] = std::to_string(config.cores);
        stream.tags["diskProtection"] =
            config.diskProtection ? "1" : "0";
    }

    Rng &mrng = machine.rng();

    // Background interference: heavier on stressed machines.
    if (mrng.chance(stressed ? 0.9 : 0.5)) {
        machine.spawnAntivirusWorker(fromMs(mrng.uniform(0.0, 20.0)),
                                     stressed ? 10 : 4);
    }
    if (mrng.chance(stressed ? 0.5 : 0.2)) {
        machine.spawnBackupWorker(fromMs(mrng.uniform(0.0, 40.0)),
                                  stressed ? 8 : 3);
    }
    if (mrng.chance(0.6)) {
        machine.spawnConfigManagerWorker(
            fromMs(mrng.uniform(0.0, 30.0)), stressed ? 6 : 3);
    }
    const int browser_workers =
        static_cast<int>(mrng.uniformInt(0, stressed ? 3 : 1));
    for (int i = 0; i < browser_workers; ++i) {
        machine.spawnBrowserWorker(fromMs(mrng.uniform(0.0, 15.0)),
                                   stressed ? 6 : 3);
    }
    if (config.diskProtection && mrng.chance(0.35)) {
        machine.spawnDiskProtectionBurst(
            fromMs(mrng.uniform(5.0, 50.0)),
            fromMs(mrng.uniform(80.0, 400.0)));
    }

    // Concurrent scenario instances with staggered starts.
    const auto instances = static_cast<std::uint32_t>(mrng.uniformInt(
        spec.minInstancesPerMachine, spec.maxInstancesPerMachine));
    for (std::uint32_t i = 0; i < instances; ++i) {
        const ScenarioSpec &scenario = pickScenario(spec, mrng);
        const double severity =
            stressed ? mrng.uniform(0.35, 1.0) : mrng.uniform(0.0, 0.8);
        Script body = scenario.build(machine, severity);
        machine.spawnInstance(scenario.name, scenario.processFrame,
                              std::move(body),
                              fromMs(mrng.uniform(0.0, 12.0)));
    }

    machine.run();
}

TraceCorpus
generateCorpus(const CorpusSpec &spec)
{
    TL_ASSERT(spec.minInstancesPerMachine >= 1 &&
                  spec.maxInstancesPerMachine >=
                      spec.minInstancesPerMachine,
              "bad instance range");
    TraceCorpus corpus;
    Rng rng(spec.seed);
    for (std::uint32_t m = 0; m < spec.machines; ++m)
        generateMachine(corpus, spec, m, rng);
    return corpus;
}

std::vector<TraceCorpus>
generateShardedCorpus(const CorpusSpec &spec, std::size_t shards)
{
    // Generate the fleet once, then slice it into contiguous machine
    // blocks, so the sharded fleet is the exact same workload as the
    // monolithic one — only the storage layout differs. Each shard
    // gets its own self-contained (re-interned) symbol table, like
    // per-site trace collections in the field.
    return splitCorpus(generateCorpus(spec), shards);
}

} // namespace tracelens
