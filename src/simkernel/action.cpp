/**
 * @file
 * Thread-script action constructors and debug formatting.
 */

#include "src/simkernel/action.h"

namespace tracelens
{

Action
actPush(FrameId frame)
{
    Action a;
    a.kind = Action::Kind::PushFrame;
    a.frame = frame;
    return a;
}

Action
actPop()
{
    Action a;
    a.kind = Action::Kind::PopFrame;
    return a;
}

Action
actCompute(DurationNs duration)
{
    Action a;
    a.kind = Action::Kind::Compute;
    a.duration = duration;
    return a;
}

Action
actAcquire(LockId lock)
{
    Action a;
    a.kind = Action::Kind::Acquire;
    a.index = lock;
    return a;
}

Action
actRelease(LockId lock)
{
    Action a;
    a.kind = Action::Kind::Release;
    a.index = lock;
    return a;
}

Action
actHardware(DeviceId device, DurationNs duration)
{
    Action a;
    a.kind = Action::Kind::Hardware;
    a.index = device;
    a.duration = duration;
    return a;
}

Action
actSubmitJob(ChannelId channel, std::shared_ptr<const Script> job,
             bool wait)
{
    Action a;
    a.kind = Action::Kind::SubmitJob;
    a.index = channel;
    a.job = std::move(job);
    a.wait = wait;
    return a;
}

Action
actReceiveJob(ChannelId channel)
{
    Action a;
    a.kind = Action::Kind::ReceiveJob;
    a.index = channel;
    return a;
}

Action
actSleep(DurationNs duration)
{
    Action a;
    a.kind = Action::Kind::Sleep;
    a.duration = duration;
    return a;
}

Action
actJump(std::uint32_t target)
{
    Action a;
    a.kind = Action::Kind::Jump;
    a.index = target;
    return a;
}

Action
actBeginInstance(std::uint32_t scenario)
{
    Action a;
    a.kind = Action::Kind::BeginInstance;
    a.index = scenario;
    return a;
}

Action
actEndInstance()
{
    Action a;
    a.kind = Action::Kind::EndInstance;
    return a;
}

} // namespace tracelens
