/**
 * @file
 * The thread-script action model of the kernel simulator.
 *
 * Workload generators compile each simulated thread's behaviour into a
 * flat list of actions; all randomness (service times, fault decisions)
 * is resolved at build time, so the simulator itself is deterministic.
 *
 * The action set models exactly the mechanisms the paper identifies as
 * sources of cost propagation:
 *
 *  - PushFrame/PopFrame: callstack maintenance (driver call hierarchy —
 *    a driver invoking a lower driver pushes its frames around the
 *    inner actions, the analogue of IoCallDriver);
 *  - Compute: CPU consumption (sampled into Running events);
 *  - Acquire/Release: kernel lock contention (Wait/Unwait events);
 *  - Hardware: synchronous hardware service (Wait + HardwareService);
 *  - SubmitJob/ReceiveJob: system-service calls handed to worker/service
 *    threads over job channels (the cross-thread dependencies through
 *    which hard faults and service requests propagate);
 *  - Sleep: silent idling used to stagger background activity;
 *  - Jump: loop for long-lived service threads;
 *  - BeginInstance/EndInstance: scenario-instance markers.
 */

#ifndef TRACELENS_SIMKERNEL_ACTION_H
#define TRACELENS_SIMKERNEL_ACTION_H

#include <cstdint>
#include <memory>
#include <vector>

#include "src/util/types.h"

namespace tracelens
{

/** Identifier types for simulator resources. */
using LockId = std::uint32_t;
using DeviceId = std::uint32_t;
using ChannelId = std::uint32_t;

/** One step of a thread script. */
struct Action
{
    enum class Kind : std::uint8_t
    {
        PushFrame,     //!< Push @c frame onto the callstack.
        PopFrame,      //!< Pop the top frame.
        Compute,       //!< Consume @c duration of CPU on a core.
        Acquire,       //!< Acquire lock @c index (may block).
        Release,       //!< Release lock @c index.
        Hardware,      //!< Block on device @c index for @c duration.
        SubmitJob,     //!< Submit @c job to channel @c index.
        ReceiveJob,    //!< (Service threads) take a job from @c index.
        Sleep,         //!< Idle for @c duration without a Wait event.
        Jump,          //!< Set the program counter to @c index.
        BeginInstance, //!< Open a scenario instance (@c index = id).
        EndInstance,   //!< Close the innermost scenario instance.
    };

    Kind kind = Kind::Sleep;
    FrameId frame = kNoFrame;  //!< PushFrame.
    DurationNs duration = 0;   //!< Compute / Hardware / Sleep.
    std::uint32_t index = 0;   //!< Lock / device / channel / jump target
                               //!< / scenario id.
    /** SubmitJob: the action list the service thread executes. */
    std::shared_ptr<const std::vector<Action>> job;
    /** SubmitJob: true = synchronous (block until completion). */
    bool wait = false;
};

/** A full thread script. */
using Script = std::vector<Action>;

/** @name Action constructors
 * Small helpers keeping workload code readable.
 * @{
 */
Action actPush(FrameId frame);
Action actPop();
Action actCompute(DurationNs duration);
Action actAcquire(LockId lock);
Action actRelease(LockId lock);
Action actHardware(DeviceId device, DurationNs duration);
Action actSubmitJob(ChannelId channel, std::shared_ptr<const Script> job,
                    bool wait);
Action actReceiveJob(ChannelId channel);
Action actSleep(DurationNs duration);
Action actJump(std::uint32_t target);
Action actBeginInstance(std::uint32_t scenario);
Action actEndInstance();
/** @} */

} // namespace tracelens

#endif // TRACELENS_SIMKERNEL_ACTION_H
