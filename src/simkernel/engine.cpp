/**
 * @file
 * Discrete-event loop: (time, sequence)-ordered heap dispatch.
 */

#include "src/simkernel/engine.h"

#include "src/util/logging.h"

namespace tracelens
{

void
SimEngine::scheduleAt(TimeNs when, Callback fn)
{
    TL_ASSERT(when >= now_, "cannot schedule into the past (", when,
              " < ", now_, ")");
    queue_.push({when, nextSeq_++, std::move(fn)});
}

void
SimEngine::scheduleAfter(DurationNs delay, Callback fn)
{
    TL_ASSERT(delay >= 0, "negative delay");
    scheduleAt(now_ + delay, std::move(fn));
}

std::size_t
SimEngine::run(TimeNs horizon)
{
    std::size_t dispatched = 0;
    while (!queue_.empty()) {
        if (queue_.top().when > horizon)
            break;
        // Move the callback out before popping; the callback may
        // schedule further events.
        Scheduled next = queue_.top();
        queue_.pop();
        now_ = next.when;
        next.fn();
        ++dispatched;
    }
    return dispatched;
}

} // namespace tracelens
