/**
 * @file
 * Discrete-event simulation engine.
 *
 * A minimal deterministic event loop: callbacks are scheduled at
 * absolute virtual times and dispatched in (time, insertion-sequence)
 * order, so equal-time events run in the order they were scheduled and
 * repeated runs are bit-identical.
 */

#ifndef TRACELENS_SIMKERNEL_ENGINE_H
#define TRACELENS_SIMKERNEL_ENGINE_H

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

#include "src/util/types.h"

namespace tracelens
{

/** Deterministic discrete-event loop over virtual nanoseconds. */
class SimEngine
{
  public:
    using Callback = std::function<void()>;

    /** Current virtual time. */
    TimeNs now() const { return now_; }

    /** Schedule @p fn at absolute time @p when (>= now). */
    void scheduleAt(TimeNs when, Callback fn);

    /** Schedule @p fn @p delay nanoseconds from now. */
    void scheduleAfter(DurationNs delay, Callback fn);

    /**
     * Dispatch events until the queue drains or virtual time would
     * exceed @p horizon. Returns the number of events dispatched.
     */
    std::size_t run(TimeNs horizon = std::numeric_limits<TimeNs>::max());

    /** Events still pending. */
    std::size_t pending() const { return queue_.size(); }

  private:
    struct Scheduled
    {
        TimeNs when;
        std::uint64_t seq;
        Callback fn;
    };

    struct Later
    {
        bool
        operator()(const Scheduled &a, const Scheduled &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    TimeNs now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::priority_queue<Scheduled, std::vector<Scheduled>, Later> queue_;
};

} // namespace tracelens

#endif // TRACELENS_SIMKERNEL_ENGINE_H
