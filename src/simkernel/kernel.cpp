/**
 * @file
 * SimKernel implementation: thread scheduling over simulated cores,
 * lock/device/channel blocking, and ETW-like event emission.
 */

#include "src/simkernel/kernel.h"

#include <algorithm>

#include "src/util/logging.h"

namespace tracelens
{

namespace
{

/** Device pseudo-thread ids live far above real thread ids. */
constexpr ThreadId kPseudoTidBase = 1'000'000;

} // namespace

SimKernel::SimKernel(TraceCorpus &corpus, std::string stream_name,
                     SimConfig config)
    : corpus_(corpus), builder_(corpus, std::move(stream_name)),
      config_(config), freeCores_(config.cores),
      nextPseudoTid_(kPseudoTidBase)
{
    TL_ASSERT(config_.cores > 0, "need at least one core");
    TL_ASSERT(config_.samplingPeriod > 0, "bad sampling period");
}

FrameId
SimKernel::frame(std::string_view signature)
{
    return corpus_.symbols().internFrame(signature);
}

std::uint32_t
SimKernel::scenario(std::string_view name)
{
    return corpus_.internScenario(name);
}

LockId
SimKernel::createLock()
{
    TL_ASSERT(!ran_, "cannot create resources after run()");
    locks_.emplace_back();
    return static_cast<LockId>(locks_.size() - 1);
}

DeviceId
SimKernel::createDevice(std::string_view service_signature,
                        std::string_view dpc_signature)
{
    TL_ASSERT(!ran_, "cannot create resources after run()");
    Device device;
    const FrameId f = frame(service_signature);
    device.stack = corpus_.symbols().internStack(
        std::vector<FrameId>{f});
    if (dpc_signature.empty()) {
        device.dpcStack = device.stack;
    } else {
        const FrameId dpc = frame(dpc_signature);
        device.dpcStack = corpus_.symbols().internStack(
            std::vector<FrameId>{dpc});
    }
    device.pseudoTid = nextPseudoTid_++;
    devices_.push_back(std::move(device));
    return static_cast<DeviceId>(devices_.size() - 1);
}

ChannelId
SimKernel::createChannel()
{
    TL_ASSERT(!ran_, "cannot create resources after run()");
    channels_.emplace_back();
    return static_cast<ChannelId>(channels_.size() - 1);
}

ThreadId
SimKernel::spawnThread(Script script, TimeNs start)
{
    TL_ASSERT(!ran_, "cannot spawn threads after run()");
    TL_ASSERT(start >= 0, "negative start time");
    Thread t;
    t.script = std::move(script);
    threads_.push_back(std::move(t));
    startTimes_.push_back(start);
    return static_cast<ThreadId>(threads_.size() - 1);
}

SimKernel::Thread &
SimKernel::thread(ThreadId tid)
{
    TL_ASSERT(tid < threads_.size(), "bad thread id ", tid);
    return threads_[tid];
}

CallstackId
SimKernel::currentStack(Thread &t)
{
    if (t.stackDirty) {
        t.cachedStack = corpus_.symbols().internStack(t.stack);
        t.stackDirty = false;
    }
    return t.cachedStack;
}

const Action *
SimKernel::currentAction(Thread &t)
{
    while (!t.jobStack.empty()) {
        JobRun &job = t.jobStack.back();
        if (job.pc < job.actions->size())
            return &(*job.actions)[job.pc];
        // The finished job is completed by the caller (completeJob needs
        // the thread id); signal via nullptr sentinel handled in step().
        return nullptr;
    }
    if (t.pc < t.script.size())
        return &t.script[t.pc];
    return nullptr;
}

void
SimKernel::advance(Thread &t)
{
    if (!t.jobStack.empty())
        ++t.jobStack.back().pc;
    else
        ++t.pc;
}

void
SimKernel::resume(ThreadId tid)
{
    engine_.scheduleAt(engine_.now(), [this, tid] { step(tid); });
}

void
SimKernel::resumePastCurrent(ThreadId tid)
{
    engine_.scheduleAt(engine_.now(), [this, tid] {
        advance(thread(tid));
        step(tid);
    });
}

void
SimKernel::completeJob(ThreadId tid)
{
    Thread &t = thread(tid);
    TL_ASSERT(!t.jobStack.empty(), "no job to complete");
    const JobRun job = t.jobStack.back();

    // Signal the requester from the service context *before* unwinding
    // the job's frames, so the unwait carries the service signature.
    if (job.requesterWaits && job.requester != kNoThread) {
        builder_.unwait(tid, engine_.now(), job.requester,
                        currentStack(t));
        resumePastCurrent(job.requester);
    }

    TL_ASSERT(t.stack.size() >= job.stackDepth,
              "job popped more frames than it pushed");
    if (t.stack.size() != job.stackDepth) {
        t.stack.resize(job.stackDepth);
        t.stackDirty = true;
    }
    t.jobStack.pop_back();
}

void
SimKernel::startJob(Thread &t, Job job)
{
    JobRun run;
    run.actions = std::move(job.actions);
    run.pc = 0;
    run.stackDepth = t.stack.size();
    run.requester = job.requester;
    run.requesterWaits = job.requesterWaits;
    t.jobStack.push_back(std::move(run));
}

void
SimKernel::emitRunningSamples(ThreadId tid, Thread &t, TimeNs start,
                              DurationNs duration)
{
    const DurationNs period = config_.samplingPeriod;
    const DurationNs total = t.cpuAcc + duration;
    const std::int64_t samples = total / period;
    const CallstackId stack = currentStack(t);
    TimeNs sample_end = start + (period - t.cpuAcc);
    for (std::int64_t i = 0; i < samples; ++i) {
        builder_.running(tid, std::max(start, sample_end - period),
                         period, stack);
        sample_end += period;
    }
    t.cpuAcc = total % period;
}

void
SimKernel::startCompute(ThreadId tid, const Action &action)
{
    if (freeCores_ == 0) {
        readyQueue_.push_back(tid);
        return;
    }
    --freeCores_;
    Thread &t = thread(tid);
    emitRunningSamples(tid, t, engine_.now(), action.duration);
    engine_.scheduleAfter(action.duration, [this, tid] {
        ++freeCores_;
        if (!readyQueue_.empty()) {
            const ThreadId next = readyQueue_.front();
            readyQueue_.pop_front();
            const Action *pending = currentAction(thread(next));
            TL_ASSERT(pending &&
                          pending->kind == Action::Kind::Compute,
                      "ready thread is not computing");
            startCompute(next, *pending);
        }
        advance(thread(tid));
        step(tid);
    });
}

void
SimKernel::startDeviceService(DeviceId device_id)
{
    Device &device = devices_[device_id];
    if (device.busy || device.queue.empty())
        return;
    device.busy = true;
    const auto [requester, duration] = device.queue.front();
    device.queue.pop_front();
    const TimeNs service_start = engine_.now();
    engine_.scheduleAfter(duration, [this, device_id, requester,
                                     duration, service_start] {
        Device &dev = devices_[device_id];
        builder_.hardware(dev.pseudoTid, service_start, duration,
                          dev.stack);
        builder_.unwait(dev.pseudoTid, engine_.now(), requester,
                        dev.dpcStack);
        resumePastCurrent(requester);
        dev.busy = false;
        startDeviceService(device_id);
    });
}

void
SimKernel::step(ThreadId tid)
{
    Thread &t = thread(tid);
    if (t.done)
        return;

    while (true) {
        // Finished jobs unwind before the next action is considered.
        while (!t.jobStack.empty() &&
               t.jobStack.back().pc >= t.jobStack.back().actions->size())
            completeJob(tid);

        const Action *action = currentAction(t);
        if (!action) {
            TL_ASSERT(t.instanceStack.empty(),
                      "thread finished with an open scenario instance");
            t.done = true;
            ++completedThreads_;
            return;
        }

        switch (action->kind) {
          case Action::Kind::PushFrame:
            t.stack.push_back(action->frame);
            t.stackDirty = true;
            advance(t);
            break;

          case Action::Kind::PopFrame:
            TL_ASSERT(!t.stack.empty(), "PopFrame on empty stack");
            t.stack.pop_back();
            t.stackDirty = true;
            advance(t);
            break;

          case Action::Kind::Compute:
            startCompute(tid, *action);
            return;

          case Action::Kind::Acquire: {
            TL_ASSERT(action->index < locks_.size(), "bad lock id");
            Lock &lock = locks_[action->index];
            if (lock.owner == kNoThread) {
                lock.owner = tid;
                advance(t);
                break;
            }
            TL_ASSERT(lock.owner != tid, "recursive lock acquire");
            builder_.wait(tid, engine_.now(), currentStack(t));
            lock.waiters.push_back(tid);
            return;
          }

          case Action::Kind::Release: {
            TL_ASSERT(action->index < locks_.size(), "bad lock id");
            Lock &lock = locks_[action->index];
            TL_ASSERT(lock.owner == tid,
                      "release by non-owner thread ", tid);
            if (lock.waiters.empty()) {
                lock.owner = kNoThread;
            } else {
                const ThreadId next = lock.waiters.front();
                lock.waiters.pop_front();
                lock.owner = next;
                builder_.unwait(tid, engine_.now(), next,
                                currentStack(t));
                resumePastCurrent(next);
            }
            advance(t);
            break;
          }

          case Action::Kind::Hardware: {
            TL_ASSERT(action->index < devices_.size(), "bad device id");
            builder_.wait(tid, engine_.now(), currentStack(t));
            devices_[action->index].queue.emplace_back(
                tid, action->duration);
            startDeviceService(action->index);
            return;
          }

          case Action::Kind::SubmitJob: {
            TL_ASSERT(action->index < channels_.size(),
                      "bad channel id");
            TL_ASSERT(action->job, "SubmitJob without a job script");
            Channel &channel = channels_[action->index];
            Job job{action->job, tid, action->wait};
            if (!channel.blockedServers.empty()) {
                const ThreadId server = channel.blockedServers.front();
                channel.blockedServers.pop_front();
                builder_.unwait(tid, engine_.now(), server,
                                currentStack(t));
                Thread &st = thread(server);
                advance(st); // past its blocked ReceiveJob
                startJob(st, std::move(job));
                resume(server);
            } else {
                channel.jobs.push_back(std::move(job));
            }
            if (action->wait) {
                builder_.wait(tid, engine_.now(), currentStack(t));
                return; // resumed by completeJob
            }
            advance(t);
            break;
          }

          case Action::Kind::ReceiveJob: {
            TL_ASSERT(action->index < channels_.size(),
                      "bad channel id");
            Channel &channel = channels_[action->index];
            if (!channel.jobs.empty()) {
                Job job = std::move(channel.jobs.front());
                channel.jobs.pop_front();
                advance(t);
                startJob(t, std::move(job));
                break;
            }
            builder_.wait(tid, engine_.now(), currentStack(t));
            channel.blockedServers.push_back(tid);
            return;
          }

          case Action::Kind::Sleep:
            engine_.scheduleAfter(action->duration, [this, tid] {
                advance(thread(tid));
                step(tid);
            });
            return;

          case Action::Kind::Jump:
            if (!t.jobStack.empty()) {
                TL_ASSERT(action->index <
                              t.jobStack.back().actions->size(),
                          "jump out of job range");
                t.jobStack.back().pc = action->index;
            } else {
                TL_ASSERT(action->index <= t.script.size(),
                          "jump out of range");
                t.pc = action->index;
            }
            break;

          case Action::Kind::BeginInstance:
            t.instanceStack.emplace_back(action->index, engine_.now());
            advance(t);
            break;

          case Action::Kind::EndInstance: {
            TL_ASSERT(!t.instanceStack.empty(),
                      "EndInstance without BeginInstance");
            const auto [scenario_id, t0] = t.instanceStack.back();
            t.instanceStack.pop_back();
            builder_.instance(corpus_.scenarioName(scenario_id), tid,
                              t0, engine_.now());
            advance(t);
            break;
          }
        }
    }
}

std::uint32_t
SimKernel::run()
{
    TL_ASSERT(!ran_, "run() called twice");
    ran_ = true;

    for (ThreadId tid = 0; tid < threads_.size(); ++tid) {
        engine_.scheduleAt(startTimes_[tid],
                           [this, tid] { step(tid); });
    }

    engine_.run(config_.horizon);
    if (engine_.pending() > 0) {
        warn("simulation hit the horizon with ", engine_.pending(),
             " pending events");
    }

    return builder_.finish();
}

} // namespace tracelens
