/**
 * @file
 * The kernel simulator: threads, cores, locks, devices, job channels,
 * and the ETW-like tracer.
 *
 * SimKernel interprets thread scripts (see action.h) over a
 * discrete-event engine and records the resulting behaviour as a trace
 * stream in a TraceCorpus, using exactly the paper's event schema:
 *
 *  - Compute actions occupy one of a fixed number of cores and are
 *    sampled into Running events every samplingPeriod of consumed CPU
 *    (1 ms by default, like ETW's profiler);
 *  - blocking on a held lock / a device / an empty job channel / a
 *    synchronous job emits a Wait event with the thread's callstack;
 *  - granting a lock, completing a job, or finishing a device request
 *    emits an Unwait event from the signalling context;
 *  - device service intervals are recorded as HardwareService events on
 *    the device's pseudo-thread with the device's dummy signature.
 *
 * Everything is deterministic: FIFO lock and channel queues, FIFO
 * single-server devices, and a (time, sequence)-ordered event loop.
 */

#ifndef TRACELENS_SIMKERNEL_KERNEL_H
#define TRACELENS_SIMKERNEL_KERNEL_H

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "src/simkernel/action.h"
#include "src/simkernel/engine.h"
#include "src/trace/builder.h"
#include "src/trace/stream.h"

namespace tracelens
{

/** Simulator configuration. */
struct SimConfig
{
    /** Number of CPU cores available to Compute actions. */
    std::uint32_t cores = 4;
    /** CPU consumed per Running sample (ETW uses 1 ms). */
    DurationNs samplingPeriod = kMillisecond;
    /** Hard stop for the virtual clock. */
    TimeNs horizon = 120 * kSecond;
};

/**
 * One simulated machine/tracing session. Each SimKernel owns one new
 * stream in the corpus; run() interprets all spawned threads to
 * completion (or the horizon) and finalizes the stream.
 */
class SimKernel
{
  public:
    SimKernel(TraceCorpus &corpus, std::string stream_name,
              SimConfig config = {});

    /** Intern a function signature ("fs.sys!AcquireMDU"). */
    FrameId frame(std::string_view signature);

    /** Intern a scenario name, returning the id BeginInstance takes. */
    std::uint32_t scenario(std::string_view name);

    /** Create a FIFO mutex. */
    LockId createLock();

    /**
     * Create a single-server FIFO device whose service intervals are
     * recorded under @p service_signature (e.g. "DiskService").
     *
     * @param dpc_signature When non-empty, completion unwaits are
     *        emitted from this frame (a completion-DPC context, like
     *        NDIS receive indications) instead of the dummy service
     *        stack; the hardware-service event keeps the dummy stack.
     */
    DeviceId createDevice(std::string_view service_signature,
                          std::string_view dpc_signature = {});

    /** Create a job channel. */
    ChannelId createChannel();

    /**
     * Register a thread executing @p script, beginning at @p start.
     * All threads must be spawned before run().
     */
    ThreadId spawnThread(Script script, TimeNs start = 0);

    /**
     * Interpret all threads to completion (or until the horizon) and
     * finalize the stream. Must be called exactly once. Returns the
     * stream index in the corpus.
     */
    std::uint32_t run();

    /** Virtual time (valid during and after run()). */
    TimeNs now() const { return engine_.now(); }

    /** Threads that finished their scripts during run(). */
    std::size_t completedThreads() const { return completedThreads_; }

  private:
    /** One running job on a service thread. */
    struct JobRun
    {
        std::shared_ptr<const Script> actions;
        std::size_t pc = 0;
        std::size_t stackDepth = 0;   //!< Callstack depth at job entry.
        ThreadId requester = kNoThread;
        bool requesterWaits = false;
    };

    struct Thread
    {
        Script script;
        std::size_t pc = 0;
        std::vector<FrameId> stack;
        std::vector<JobRun> jobStack;
        DurationNs cpuAcc = 0;  //!< CPU since the last Running sample.
        CallstackId cachedStack = kNoCallstack;
        bool stackDirty = true;
        bool done = false;
        std::vector<std::pair<std::uint32_t, TimeNs>> instanceStack;
    };

    struct Lock
    {
        ThreadId owner = kNoThread;
        std::deque<ThreadId> waiters;
    };

    struct Device
    {
        CallstackId stack = kNoCallstack;
        CallstackId dpcStack = kNoCallstack; //!< Unwait context.
        ThreadId pseudoTid = kNoThread;
        bool busy = false;
        std::deque<std::pair<ThreadId, DurationNs>> queue;
    };

    struct Job
    {
        std::shared_ptr<const Script> actions;
        ThreadId requester = kNoThread;
        bool requesterWaits = false;
    };

    struct Channel
    {
        std::deque<Job> jobs;
        std::deque<ThreadId> blockedServers;
    };

    /** Interpret @p tid until it blocks, finishes, or yields a core. */
    void step(ThreadId tid);

    /** Schedule step(tid) at the current time. */
    void resume(ThreadId tid);

    /** Advance-then-step, used when a blocking action completes. */
    void resumePastCurrent(ThreadId tid);

    /** Current action of a thread (job-aware), or nullptr when done. */
    const Action *currentAction(Thread &thread);

    /** Advance the program counter at the active level. */
    void advance(Thread &thread);

    /** Finish the topmost job: unwait the requester, restore stack. */
    void completeJob(ThreadId tid);

    /** Begin executing a job on a (now unblocked) service thread. */
    void startJob(Thread &thread, Job job);

    /** Try to start the Compute action of @p tid; queues when no core. */
    void startCompute(ThreadId tid, const Action &action);

    /** Emit Running samples for @p duration of CPU starting at @p start. */
    void emitRunningSamples(ThreadId tid, Thread &thread, TimeNs start,
                            DurationNs duration);

    /** Pump the device's FIFO queue. */
    void startDeviceService(DeviceId device);

    /** Interned callstack of a thread (cached). */
    CallstackId currentStack(Thread &thread);

    Thread &thread(ThreadId tid);

    TraceCorpus &corpus_;
    StreamBuilder builder_;
    SimConfig config_;
    SimEngine engine_;

    std::vector<Thread> threads_;
    std::vector<TimeNs> startTimes_;
    std::vector<Lock> locks_;
    std::vector<Device> devices_;
    std::vector<Channel> channels_;

    std::uint32_t freeCores_;
    std::deque<ThreadId> readyQueue_; //!< Threads awaiting a core.
    ThreadId nextPseudoTid_;          //!< Device pseudo-thread ids.
    bool ran_ = false;
    std::size_t completedThreads_ = 0;
};

} // namespace tracelens

#endif // TRACELENS_SIMKERNEL_KERNEL_H
