/**
 * @file
 * Wait Graphs (paper Definition 1, Section 3.1).
 *
 * A Wait Graph models one scenario instance. Nodes are tracing events;
 * a directed edge e_i -> e_j exists when e_i is a wait event and e_j was
 * triggered by another thread during e_i's wait interval — specifically
 * by the thread that eventually unwaited e_i (the "readying" thread),
 * following the StackMine construction the paper builds on.
 *
 * Construction:
 *  1. pair each wait event with its corresponding unwait event (FIFO per
 *     waiting thread, scanning the stream in time order),
 *  2. restore each wait's duration from the paired unwait's timestamp,
 *  3. roots are the initiating thread's events starting inside
 *     [t0, t1); each wait node's children are the readying thread's
 *     events whose intervals *overlap* the wait interval, expanded
 *     recursively. Overlap (not containment) matters: in a lock queue
 *     the readying thread's own wait began before the parent's wait
 *     did, yet its full duration is what propagated.
 *
 * Definition 1 makes V a *set* of events, so each event materializes
 * at most once per graph: the first wait window (in expansion order)
 * that reaches an event owns it, and later windows skip it. This keeps
 * a graph's total cost commensurate with the instance's duration even
 * when many windows overlap.
 *
 * Cost attribution is window-clipped: a node's cost is the portion of
 * its interval that overlaps the (transitively intersected) ancestor
 * wait windows — only that portion propagated to the instance. Root
 * nodes carry their full durations. Without clipping, a lock-queue
 * tail (a short parent wait whose readying thread had been waiting for
 * seconds) would attribute seconds of unrelated history to a
 * milliseconds-long wait and aggregate costs would exceed instance
 * durations.
 *
 * Storage: edges live in one per-graph arena (compressed sparse rows —
 * each node records an offset + count into a shared child-id array)
 * instead of a std::vector per node. Building a graph then performs no
 * per-node edge allocation, nodes shrink to a flat POD record, and a
 * child walk is a contiguous span read. Access children through
 * WaitGraph::children(); see docs/PERFORMANCE.md for the layout
 * rationale and measurements.
 */

#ifndef TRACELENS_WAITGRAPH_WAITGRAPH_H
#define TRACELENS_WAITGRAPH_WAITGRAPH_H

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/trace/stream.h"

namespace tracelens
{

/** Sentinel node/event index. */
inline constexpr std::uint32_t kInvalidIndex = UINT32_MAX;

/**
 * One scenario instance's wait graph. A forest: roots are the initiating
 * thread's top-level events; only wait nodes have children.
 */
class WaitGraph
{
  public:
    /** A node wrapping one tracing event. */
    struct Node
    {
        /**
         * The source event. For wait nodes, cost holds the *restored*
         * duration (unwait timestamp minus wait timestamp).
         */
        Event event;
        /** Corpus-wide identity of the source event. */
        EventRef ref;
        /**
         * Child segment in the graph's edge arena (only wait nodes
         * have children) — read it via WaitGraph::children().
         */
        std::uint32_t childBegin = 0;
        std::uint32_t childCount = 0;
        /**
         * For a paired wait node: the callstack of the unwait event
         * that ended the wait (the signalling context). kNoCallstack
         * for unpaired waits and all non-wait nodes. The unwait event
         * itself is folded into the wait node rather than duplicated
         * as a child (Definition 1's node set is a *set* of events;
         * unwaits carry no cost of their own).
         */
        CallstackId unwaitStack = kNoCallstack;
        /** Depth of recursion truncation: true if children were cut. */
        bool truncated = false;

        /** True when the wait was ended by a recorded unwait. */
        bool paired() const { return unwaitStack != kNoCallstack; }
    };

    const std::vector<Node> &nodes() const { return nodes_; }
    const std::vector<std::uint32_t> &roots() const { return roots_; }
    const Node &node(std::uint32_t index) const;
    const ScenarioInstance &instance() const { return instance_; }

    /** Children of node @p index, as node ids in the edge arena. */
    std::span<const std::uint32_t>
    children(std::uint32_t index) const
    {
        return children(node(index));
    }

    /** Children of @p n (must belong to this graph). */
    std::span<const std::uint32_t>
    children(const Node &n) const
    {
        return std::span<const std::uint32_t>(child_arena_)
            .subspan(n.childBegin, n.childCount);
    }

    /** Sum of root-event costs: the instance's top-level time period. */
    DurationNs topLevelDuration() const;

    bool empty() const { return nodes_.empty(); }
    std::size_t size() const { return nodes_.size(); }

    /**
     * Render the forest as an indented text tree: event type, thread,
     * cost, and the topmost component signature (or topmost frame when
     * no component matches).
     */
    std::string renderText(const SymbolTable &symbols,
                           const NameFilter &components,
                           std::size_t max_nodes = 200) const;

  private:
    friend class WaitGraphBuilder;
    /** Binary artifact-cache codec (src/core/artifacts.cpp). */
    friend struct WaitGraphCodec;

    std::vector<Node> nodes_;
    /** Edge arena: every node's children, as CSR segments. */
    std::vector<std::uint32_t> child_arena_;
    std::vector<std::uint32_t> roots_;
    ScenarioInstance instance_;
};

/** Construction limits and semantics knobs. */
struct WaitGraphOptions
{
    /** Maximum wait-nesting depth expanded. */
    std::uint32_t maxDepth = 64;
    /** Maximum nodes per graph. */
    std::uint32_t maxNodes = 1u << 20;
    /**
     * When true, only events *starting* inside a wait window become
     * children (the literal reading of Definition 1). Default false:
     * events whose intervals overlap the window are included, which is
     * what keeps lock-queue chains connected (DESIGN.md decision 2).
     * Exposed for the ablation bench.
     */
    bool containmentOnly = false;
    /**
     * When true (default), node costs are clipped to the intersected
     * ancestor windows (DESIGN.md decision 3). When false, nodes carry
     * their full restored durations — the ablation shows aggregate
     * costs then exceed instance durations by orders of magnitude.
     */
    bool clipToWindows = true;
};

/**
 * Builds Wait Graphs for scenario instances of a corpus. Per-stream
 * indices (wait/unwait pairing, per-thread event lists) are computed
 * lazily and cached, so building graphs for many instances of the same
 * stream is cheap.
 *
 * The per-stream index is itself columnar: wait pairing and effective
 * ends come from the pairWaitsFifo/computeEffectiveEnds sweeps, and the
 * per-thread event lists are one CSR over the tid column (with the
 * thread events' timestamps, effective ends, and running end maxima
 * gathered into index-aligned arrays) rather than a hash map of
 * per-thread vectors. Window scans during expansion binary-search and
 * sweep those contiguous arrays directly.
 */
class WaitGraphBuilder
{
  public:
    explicit WaitGraphBuilder(const TraceCorpus &corpus,
                              WaitGraphOptions options = {});

    /** Build the wait graph of one scenario instance. */
    WaitGraph build(const ScenarioInstance &instance) const;

    /** Build graphs for every instance of the corpus, in order. */
    std::vector<WaitGraph> buildAll() const;

    /**
     * buildAll() across @p threads worker threads. Per-stream indices
     * are warmed serially first, then instances are partitioned; the
     * result is identical (and bit-deterministic) regardless of thread
     * count. Falls back to the serial path for threads <= 1.
     */
    std::vector<WaitGraph> buildAllParallel(unsigned threads) const;

    /**
     * Build graphs for the contiguous instance range
     * [@p first, @p first + @p count), in instance order, across
     * @p threads workers (serial for threads <= 1). The unit of work
     * of the incremental pipeline: one shard's instances form one such
     * range, and the result is bit-identical to the corresponding
     * slice of buildAllParallel().
     */
    std::vector<WaitGraph> buildRangeParallel(std::uint32_t first,
                                              std::uint32_t count,
                                              unsigned threads) const;

  private:
    struct StreamIndex
    {
        /** For each event: paired unwait event index, or kInvalidIndex. */
        std::vector<std::uint32_t> pairedUnwait;
        /**
         * For each event: its effective end time — restored from the
         * paired unwait for waits (stream end when unpaired), and
         * timestamp + cost otherwise.
         */
        std::vector<TimeNs> effectiveEnd;

        /**
         * @name Per-thread CSR
         * Event indices grouped by thread, each group in time order;
         * thread @c s owns threadEvents[threadOffset[s] ..
         * threadOffset[s+1]). The timestamps, effective ends, and
         * prefix end-maxima of those events are gathered into arrays
         * aligned with threadEvents so the expansion's window scans
         * never chase an indirection. Thread slots come from the
         * ThreadSlotMap (one O(1) probe per by-value lookup), and
         * slotOfEvent caches each event's own slot so the expansion
         * resolves a readying thread without any lookup at all.
         */
        ///@{
        ThreadSlotMap threadSlots;
        std::vector<std::uint32_t> slotOfEvent;
        std::vector<std::uint32_t> threadOffset;
        std::vector<std::uint32_t> threadEvents;
        std::vector<TimeNs> threadEventTs;
        std::vector<TimeNs> threadEventEnd;
        /** Running max of threadEventEnd within each thread's group. */
        std::vector<TimeNs> prefixMaxEnd;
        ///@}

        /** Slot of @p tid, or kInvalidIndex. */
        std::uint32_t slotOf(ThreadId tid) const
        {
            return threadSlots.slotOf(tid);
        }
    };

    /**
     * Per-build scratch, reused across builds on the same worker
     * thread: the visited set is epoch-stamped (one fill amortized
     * over ~4 billion builds instead of one allocation per build), and
     * the DFS candidate/child stacks grow and shrink by mark/restore
     * during recursive expansion so collecting a wait's children never
     * allocates in steady state.
     */
    struct BuildScratch
    {
        std::vector<std::uint32_t> visitedStamp;
        std::uint32_t epoch = 0;
        /** Candidate child events of the waits on the DFS path. */
        std::vector<std::uint32_t> candidates;
        /** Expanded child node ids awaiting arena commit. */
        std::vector<std::uint32_t> childIds;
        /**
         * Size of the largest node list / edge arena built so far on
         * this thread — used to pre-reserve the next graph's storage
         * (nodes are trivially copyable, but skipping the doubling
         * growth chain still saves a full copy of every graph).
         * Capacity only; results are unaffected.
         */
        std::size_t nodeHint = 0;
        std::size_t arenaHint = 0;

        /** Start a build over a stream of @p events events. */
        void beginBuild(std::size_t events);
        bool visited(std::uint32_t i) const
        {
            return visitedStamp[i] == epoch;
        }
        void mark(std::uint32_t i) { visitedStamp[i] = epoch; }
    };

    /**
     * This worker thread's scratch. Safe because one thread never
     * interleaves two builds and the scratch escapes no deeper than
     * the expand() recursion.
     */
    static BuildScratch &threadScratch();

    const StreamIndex &streamIndex(std::uint32_t stream) const;

    /**
     * Append the node for event @p index (recursively expanding waits)
     * and return its node id, or kInvalidIndex if limits were hit.
     *
     * @param win_lo,win_hi The ancestor wait window this event is
     *        attributed through (the full time axis for roots); the
     *        node's cost and its own child window are clipped to it.
     */
    std::uint32_t expand(WaitGraph &graph, const StreamIndex &sindex,
                         std::uint32_t stream_id,
                         const EventColumns &columns,
                         std::uint32_t index, std::uint32_t depth,
                         TimeNs win_lo, TimeNs win_hi,
                         BuildScratch &scratch) const;

    const TraceCorpus &corpus_;
    WaitGraphOptions options_;
    mutable std::unordered_map<std::uint32_t, StreamIndex> cache_;
};

} // namespace tracelens

#endif // TRACELENS_WAITGRAPH_WAITGRAPH_H
