/**
 * @file
 * Wait-graph construction (paper Algorithm: wait/unwait chaining with
 * window clipping) and the corpus-parallel buildAllParallel variant
 * that shards instances across the work-stealing pool.
 *
 * The hot path is allocation-free in steady state: the per-stream
 * index is a set of flat arrays built by the columnar sweeps in
 * src/trace/columns.h, each graph's edges land in one CSR arena, and
 * the DFS bookkeeping (visited stamps, candidate and child stacks)
 * lives in thread_local scratch that survives across builds.
 */

#include "src/waitgraph/waitgraph.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "src/trace/columns.h"
#include "src/util/logging.h"
#include "src/util/parallel.h"
#include "src/util/telemetry.h"

namespace tracelens
{

const WaitGraph::Node &
WaitGraph::node(std::uint32_t index) const
{
    TL_ASSERT(index < nodes_.size(), "bad node index ", index);
    return nodes_[index];
}

DurationNs
WaitGraph::topLevelDuration() const
{
    DurationNs total = 0;
    for (std::uint32_t root : roots_)
        total += nodes_[root].event.cost;
    return total;
}

std::string
WaitGraph::renderText(const SymbolTable &symbols,
                      const NameFilter &components,
                      std::size_t max_nodes) const
{
    std::ostringstream oss;
    std::size_t emitted = 0;

    struct Frame
    {
        std::uint32_t node;
        std::size_t depth;
    };
    std::vector<Frame> stack;
    for (auto it = roots_.rbegin(); it != roots_.rend(); ++it)
        stack.push_back({*it, 0});

    while (!stack.empty()) {
        const auto [id, depth] = stack.back();
        stack.pop_back();
        if (emitted++ >= max_nodes) {
            oss << "...\n";
            break;
        }
        const Node &n = nodes_[id];
        oss << std::string(depth * 2, ' ')
            << eventTypeName(n.event.type) << " tid=" << n.event.tid
            << " cost=" << toMs(n.event.cost) << "ms";
        if (n.event.stack != kNoCallstack) {
            const FrameId sig =
                symbols.topMatchingFrame(n.event.stack, components);
            const auto frames = symbols.stackFrames(n.event.stack);
            if (sig != kNoFrame)
                oss << " sig=" << symbols.frameName(sig);
            else if (!frames.empty())
                oss << " top=" << symbols.frameName(frames.back());
        }
        if (n.truncated)
            oss << " [truncated]";
        oss << "\n";
        const auto kids = children(n);
        for (auto it = kids.rbegin(); it != kids.rend(); ++it)
            stack.push_back({*it, depth + 1});
    }
    return oss.str();
}

WaitGraphBuilder::WaitGraphBuilder(const TraceCorpus &corpus,
                                   WaitGraphOptions options)
    : corpus_(corpus), options_(options)
{
}

void
WaitGraphBuilder::BuildScratch::beginBuild(std::size_t events)
{
    if (visitedStamp.size() < events)
        visitedStamp.resize(events, 0);
    if (++epoch == 0) {
        // Stamp wrap-around (once per ~4G builds): refill and restart.
        std::fill(visitedStamp.begin(), visitedStamp.end(), 0);
        epoch = 1;
    }
}

const WaitGraphBuilder::StreamIndex &
WaitGraphBuilder::streamIndex(std::uint32_t stream_id) const
{
    auto it = cache_.find(stream_id);
    if (it != cache_.end())
        return it->second;

    const EventColumns &columns = corpus_.stream(stream_id).columns();
    const std::size_t n = columns.size();
    StreamIndex sindex;

    // Dense thread slots first (one O(n) hash pass over the tid
    // column), then steps 1+2 of the construction as columnar sweeps:
    // FIFO pairing, then wait-duration restoration into effective end
    // times.
    const auto timestamps = columns.timestamps();
    sindex.threadSlots.build(columns.tids(), sindex.slotOfEvent);
    pairWaitsFifo(columns, sindex.threadSlots, sindex.slotOfEvent,
                  sindex.pairedUnwait);
    computeEffectiveEnds(columns, sindex.pairedUnwait,
                         corpus_.stream(stream_id).endTime(),
                         sindex.effectiveEnd);

    // Per-thread CSR: counting sort of event indices over the slot
    // column (stable, so each thread's group stays in time order).
    const std::size_t slots = sindex.threadSlots.slots();
    sindex.threadOffset.assign(slots + 1, 0);
    for (std::size_t i = 0; i < n; ++i)
        ++sindex.threadOffset[sindex.slotOfEvent[i] + 1];
    for (std::size_t s = 0; s < slots; ++s)
        sindex.threadOffset[s + 1] += sindex.threadOffset[s];

    sindex.threadEvents.resize(n);
    {
        std::vector<std::uint32_t> cursor(sindex.threadOffset.begin(),
                                          sindex.threadOffset.end() - 1);
        for (std::size_t i = 0; i < n; ++i) {
            sindex.threadEvents[cursor[sindex.slotOfEvent[i]]++] =
                static_cast<std::uint32_t>(i);
        }
    }

    // Gather the window-scan columns into CSR-aligned arrays, and the
    // per-group running end maxima that bound the backward scans.
    sindex.threadEventTs.resize(n);
    sindex.threadEventEnd.resize(n);
    sindex.prefixMaxEnd.resize(n);
    for (std::size_t s = 0; s < slots; ++s) {
        TimeNs running = std::numeric_limits<TimeNs>::min();
        for (std::uint32_t k = sindex.threadOffset[s];
             k < sindex.threadOffset[s + 1]; ++k) {
            const std::uint32_t ei = sindex.threadEvents[k];
            sindex.threadEventTs[k] = timestamps[ei];
            sindex.threadEventEnd[k] = sindex.effectiveEnd[ei];
            running = std::max(running, sindex.threadEventEnd[k]);
            sindex.prefixMaxEnd[k] = running;
        }
    }

    return cache_.emplace(stream_id, std::move(sindex)).first->second;
}

std::uint32_t
WaitGraphBuilder::expand(WaitGraph &graph, const StreamIndex &sindex,
                         std::uint32_t stream_id,
                         const EventColumns &columns,
                         std::uint32_t index, std::uint32_t depth,
                         TimeNs win_lo, TimeNs win_hi,
                         BuildScratch &scratch) const
{
    if (graph.nodes_.size() >= options_.maxNodes)
        return kInvalidIndex;
    if (scratch.visited(index))
        return kInvalidIndex; // first-reaching window owns the event
    scratch.mark(index);

    const Event source = columns[index];
    const auto node_id = static_cast<std::uint32_t>(graph.nodes_.size());
    graph.nodes_.emplace_back();
    {
        WaitGraph::Node &node = graph.nodes_.back();
        node.event = source;
        node.ref = {stream_id, index};
    }

    // The portion of this event attributed through the ancestor
    // window (the whole event when clipping is ablated away).
    const TimeNs eff_end = sindex.effectiveEnd[index];
    const TimeNs clip_lo = options_.clipToWindows
                               ? std::max(source.timestamp, win_lo)
                               : source.timestamp;
    const TimeNs clip_hi =
        options_.clipToWindows ? std::min(eff_end, win_hi) : eff_end;
    const DurationNs clipped =
        std::max<DurationNs>(0, clip_hi - clip_lo);

    graph.nodes_[node_id].event.cost = clipped;

    if (source.type != EventType::Wait)
        return node_id;

    const std::uint32_t unwait_index = sindex.pairedUnwait[index];
    if (unwait_index == kInvalidIndex) {
        // Truncated trace: the wait was restored to the stream's end
        // (already folded into effectiveEnd); leave it childless.
        graph.nodes_[node_id].truncated = true;
        return node_id;
    }

    graph.nodes_[node_id].unwaitStack = columns.stacks()[unwait_index];

    if (depth >= options_.maxDepth) {
        graph.nodes_[node_id].truncated = true;
        return node_id;
    }

    // Children: the readying thread's events whose intervals overlap
    // the *clipped* wait window [clip_lo, clip_hi] — including waits
    // that began earlier but resolved inside it (lock-queue chains).
    // Unwait events carry no cost and are folded into their wait node,
    // so they are not materialized as children.
    if (clip_hi <= clip_lo)
        return node_id;
    const std::uint32_t slot = sindex.slotOfEvent[unwait_index];
    const std::uint32_t t_begin = sindex.threadOffset[slot];
    const std::uint32_t t_end = sindex.threadOffset[slot + 1];

    const auto ts_begin = sindex.threadEventTs.begin() + t_begin;
    const auto ts_end = sindex.threadEventTs.begin() + t_end;
    const auto lb = static_cast<std::uint32_t>(
        std::lower_bound(ts_begin, ts_end, clip_lo) -
        sindex.threadEventTs.begin());

    // Candidate child events, collected into the DFS scratch stack
    // (mark/restore keeps this allocation-free across the recursion).
    // The segment must be re-indexed through the vector on every use:
    // recursive expansion below pushes and pops its own segments and
    // may reallocate the storage.
    const std::size_t cand_mark = scratch.candidates.size();

    // Backward: events starting before the window whose effective end
    // reaches into it. The prefix maximum bounds the scan. Skipped
    // entirely under containment-only semantics (ablation).
    if (!options_.containmentOnly) {
        for (std::uint32_t k = lb; k-- > t_begin;) {
            if (sindex.prefixMaxEnd[k] < clip_lo)
                break;
            if (sindex.threadEventEnd[k] > clip_lo)
                scratch.candidates.push_back(sindex.threadEvents[k]);
        }
        std::reverse(scratch.candidates.begin() + cand_mark,
                     scratch.candidates.end());
    }

    // Forward: events starting inside the window.
    for (std::uint32_t k = lb; k < t_end; ++k) {
        if (sindex.threadEventTs[k] > clip_hi)
            break;
        scratch.candidates.push_back(sindex.threadEvents[k]);
    }

    const std::size_t cand_end = scratch.candidates.size();
    const std::size_t child_mark = scratch.childIds.size();
    const auto types = columns.types();
    for (std::size_t c = cand_mark; c < cand_end; ++c) {
        const std::uint32_t child_index = scratch.candidates[c];
        if (types[child_index] == EventType::Unwait)
            continue;
        if (scratch.visited(child_index))
            continue;
        const std::uint32_t child_id =
            expand(graph, sindex, stream_id, columns, child_index,
                   depth + 1, clip_lo, clip_hi, scratch);
        if (child_id == kInvalidIndex) {
            graph.nodes_[node_id].truncated = true;
            continue;
        }
        scratch.childIds.push_back(child_id);
    }

    // Commit this node's finished child segment to the edge arena and
    // release the scratch segments.
    const std::size_t child_count = scratch.childIds.size() - child_mark;
    graph.nodes_[node_id].childBegin =
        static_cast<std::uint32_t>(graph.child_arena_.size());
    graph.nodes_[node_id].childCount =
        static_cast<std::uint32_t>(child_count);
    graph.child_arena_.insert(graph.child_arena_.end(),
                              scratch.childIds.begin() + child_mark,
                              scratch.childIds.end());
    scratch.childIds.resize(child_mark);
    scratch.candidates.resize(cand_mark);

    return node_id;
}

WaitGraphBuilder::BuildScratch &
WaitGraphBuilder::threadScratch()
{
    thread_local BuildScratch scratch;
    return scratch;
}

WaitGraph
WaitGraphBuilder::build(const ScenarioInstance &instance) const
{
    const StreamIndex &sindex = streamIndex(instance.stream);
    const EventColumns &columns =
        corpus_.stream(instance.stream).columns();

    WaitGraph graph;
    graph.instance_ = instance;

    const std::uint32_t slot = sindex.slotOf(instance.tid);
    if (slot == kInvalidIndex)
        return graph; // initiating thread recorded no events

    BuildScratch &scratch = threadScratch();
    scratch.beginBuild(columns.size());
    graph.nodes_.reserve(scratch.nodeHint);
    graph.child_arena_.reserve(scratch.arenaHint);

    const std::uint32_t t_begin = sindex.threadOffset[slot];
    const std::uint32_t t_end = sindex.threadOffset[slot + 1];
    const auto ts_begin = sindex.threadEventTs.begin() + t_begin;
    const auto ts_end = sindex.threadEventTs.begin() + t_end;
    const auto lb = static_cast<std::uint32_t>(
        std::lower_bound(ts_begin, ts_end, instance.t0) -
        sindex.threadEventTs.begin());

    const auto types = columns.types();
    for (std::uint32_t k = lb; k < t_end; ++k) {
        if (sindex.threadEventTs[k] >= instance.t1)
            break;
        const std::uint32_t ei = sindex.threadEvents[k];
        if (types[ei] == EventType::Unwait)
            continue; // signals carry no cost of their own
        if (scratch.visited(ei))
            continue;
        const std::uint32_t root = expand(
            graph, sindex, instance.stream, columns, ei, 0,
            std::numeric_limits<TimeNs>::min(),
            std::numeric_limits<TimeNs>::max(), scratch);
        if (root != kInvalidIndex)
            graph.roots_.push_back(root);
    }
    scratch.nodeHint = std::max(scratch.nodeHint, graph.nodes_.size());
    scratch.arenaHint =
        std::max(scratch.arenaHint, graph.child_arena_.size());
    return graph;
}

std::vector<WaitGraph>
WaitGraphBuilder::buildAll() const
{
    std::vector<WaitGraph> graphs;
    graphs.reserve(corpus_.instances().size());
    for (const ScenarioInstance &instance : corpus_.instances())
        graphs.push_back(build(instance));
    return graphs;
}

std::vector<WaitGraph>
WaitGraphBuilder::buildAllParallel(unsigned threads) const
{
    return buildRangeParallel(
        0, static_cast<std::uint32_t>(corpus_.instances().size()),
        threads);
}

std::vector<WaitGraph>
WaitGraphBuilder::buildRangeParallel(std::uint32_t first,
                                     std::uint32_t count,
                                     unsigned threads) const
{
    const auto &instances = corpus_.instances();
    TL_ASSERT(first + count <= instances.size(),
              "instance range out of bounds");

    Span span("waitgraph.build-range", "analysis");
    if (span.active()) {
        span.arg("first", static_cast<std::uint64_t>(first));
        span.arg("count", static_cast<std::uint64_t>(count));
    }

    if (threads <= 1 || count < 2) {
        std::vector<WaitGraph> graphs;
        graphs.reserve(count);
        for (std::uint32_t i = first; i < first + count; ++i)
            graphs.push_back(build(instances[i]));
        return graphs;
    }

    // Warm the per-stream indices serially: the cache is not safe for
    // concurrent insertion, but concurrent reads of a complete cache
    // are.
    for (std::uint32_t i = first; i < first + count; ++i)
        streamIndex(instances[i].stream);

    std::vector<WaitGraph> graphs(count);
    tracelens::parallelFor(threads, 0, count, [&](std::size_t i) {
        graphs[i] = build(instances[first + i]);
    });
    return graphs;
}

} // namespace tracelens
