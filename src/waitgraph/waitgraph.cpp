/**
 * @file
 * Wait-graph construction (paper Algorithm: wait/unwait chaining with
 * window clipping) and the corpus-parallel buildAllParallel variant
 * that shards instances across the work-stealing pool.
 */

#include "src/waitgraph/waitgraph.h"

#include <algorithm>
#include <sstream>
#include <deque>

#include "src/util/logging.h"
#include "src/util/parallel.h"
#include "src/util/telemetry.h"

namespace tracelens
{

const WaitGraph::Node &
WaitGraph::node(std::uint32_t index) const
{
    TL_ASSERT(index < nodes_.size(), "bad node index ", index);
    return nodes_[index];
}

DurationNs
WaitGraph::topLevelDuration() const
{
    DurationNs total = 0;
    for (std::uint32_t root : roots_)
        total += nodes_[root].event.cost;
    return total;
}

std::string
WaitGraph::renderText(const SymbolTable &symbols,
                      const NameFilter &components,
                      std::size_t max_nodes) const
{
    std::ostringstream oss;
    std::size_t emitted = 0;

    struct Frame
    {
        std::uint32_t node;
        std::size_t depth;
    };
    std::vector<Frame> stack;
    for (auto it = roots_.rbegin(); it != roots_.rend(); ++it)
        stack.push_back({*it, 0});

    while (!stack.empty()) {
        const auto [id, depth] = stack.back();
        stack.pop_back();
        if (emitted++ >= max_nodes) {
            oss << "...\n";
            break;
        }
        const Node &n = nodes_[id];
        oss << std::string(depth * 2, ' ')
            << eventTypeName(n.event.type) << " tid=" << n.event.tid
            << " cost=" << toMs(n.event.cost) << "ms";
        if (n.event.stack != kNoCallstack) {
            const FrameId sig =
                symbols.topMatchingFrame(n.event.stack, components);
            const auto frames = symbols.stackFrames(n.event.stack);
            if (sig != kNoFrame)
                oss << " sig=" << symbols.frameName(sig);
            else if (!frames.empty())
                oss << " top=" << symbols.frameName(frames.back());
        }
        if (n.truncated)
            oss << " [truncated]";
        oss << "\n";
        for (auto it = n.children.rbegin(); it != n.children.rend();
             ++it)
            stack.push_back({*it, depth + 1});
    }
    return oss.str();
}

WaitGraphBuilder::WaitGraphBuilder(const TraceCorpus &corpus,
                                   WaitGraphOptions options)
    : corpus_(corpus), options_(options)
{
}

const WaitGraphBuilder::StreamIndex &
WaitGraphBuilder::streamIndex(std::uint32_t stream_id) const
{
    auto it = cache_.find(stream_id);
    if (it != cache_.end())
        return it->second;

    const TraceStream &stream = corpus_.stream(stream_id);
    StreamIndex sindex;
    sindex.pairedUnwait.assign(stream.size(), kInvalidIndex);
    sindex.effectiveEnd.assign(stream.size(), 0);

    // FIFO pairing: the oldest outstanding wait of a thread is ended by
    // the next unwait targeting that thread.
    std::unordered_map<ThreadId, std::deque<std::uint32_t>> outstanding;
    const auto &events = stream.events();
    for (std::uint32_t i = 0; i < events.size(); ++i) {
        const Event &e = events[i];
        if (e.type == EventType::Wait) {
            outstanding[e.tid].push_back(i);
        } else if (e.type == EventType::Unwait && e.wtid != e.tid) {
            auto oit = outstanding.find(e.wtid);
            if (oit != outstanding.end() && !oit->second.empty()) {
                sindex.pairedUnwait[oit->second.front()] = i;
                oit->second.pop_front();
            }
        }
    }

    // Effective end times (waits restored from their pairing) and the
    // per-thread indices with prefix maxima for overlap scans.
    for (std::uint32_t i = 0; i < events.size(); ++i) {
        const Event &e = events[i];
        if (e.type == EventType::Wait) {
            const std::uint32_t u = sindex.pairedUnwait[i];
            sindex.effectiveEnd[i] =
                u == kInvalidIndex ? stream.endTime()
                                   : stream.event(u).timestamp;
        } else {
            sindex.effectiveEnd[i] = e.end();
        }
        ThreadIndex &tindex = sindex.threads[e.tid];
        const TimeNs prev_max = tindex.prefixMaxEnd.empty()
                                    ? std::numeric_limits<TimeNs>::min()
                                    : tindex.prefixMaxEnd.back();
        tindex.events.push_back(i);
        tindex.prefixMaxEnd.push_back(
            std::max(prev_max, sindex.effectiveEnd[i]));
    }

    return cache_.emplace(stream_id, std::move(sindex)).first->second;
}

std::uint32_t
WaitGraphBuilder::expand(WaitGraph &graph, const StreamIndex &sindex,
                         std::uint32_t stream_id,
                         const TraceStream &stream, std::uint32_t index,
                         std::uint32_t depth, TimeNs win_lo,
                         TimeNs win_hi,
                         std::vector<char> &visited) const
{
    if (graph.nodes_.size() >= options_.maxNodes)
        return kInvalidIndex;
    if (visited[index])
        return kInvalidIndex; // first-reaching window owns the event
    visited[index] = 1;

    const Event &source = stream.event(index);
    const auto node_id = static_cast<std::uint32_t>(graph.nodes_.size());
    graph.nodes_.emplace_back();
    {
        WaitGraph::Node &node = graph.nodes_.back();
        node.event = source;
        node.ref = {stream_id, index};
    }

    // The portion of this event attributed through the ancestor
    // window (the whole event when clipping is ablated away).
    const TimeNs eff_end = sindex.effectiveEnd[index];
    const TimeNs clip_lo = options_.clipToWindows
                               ? std::max(source.timestamp, win_lo)
                               : source.timestamp;
    const TimeNs clip_hi =
        options_.clipToWindows ? std::min(eff_end, win_hi) : eff_end;
    const DurationNs clipped =
        std::max<DurationNs>(0, clip_hi - clip_lo);

    if (source.type != EventType::Wait) {
        graph.nodes_[node_id].event.cost = clipped;
        return node_id;
    }

    graph.nodes_[node_id].event.cost = clipped;

    const std::uint32_t unwait_index = sindex.pairedUnwait[index];
    if (unwait_index == kInvalidIndex) {
        // Truncated trace: the wait was restored to the stream's end
        // (already folded into effectiveEnd); leave it childless.
        graph.nodes_[node_id].truncated = true;
        return node_id;
    }

    const Event &unwait = stream.event(unwait_index);
    graph.nodes_[node_id].unwaitStack = unwait.stack;

    if (depth >= options_.maxDepth) {
        graph.nodes_[node_id].truncated = true;
        return node_id;
    }

    // Children: the readying thread's events whose intervals overlap
    // the *clipped* wait window [clip_lo, clip_hi] — including waits
    // that began earlier but resolved inside it (lock-queue chains).
    // Unwait events carry no cost and are folded into their wait node,
    // so they are not materialized as children.
    if (clip_hi <= clip_lo)
        return node_id;
    auto te = sindex.threads.find(unwait.tid);
    TL_ASSERT(te != sindex.threads.end(),
              "readying thread has no events");
    const ThreadIndex &tindex = te->second;
    const auto &thread_events = tindex.events;

    const auto begin = std::lower_bound(
        thread_events.begin(), thread_events.end(), clip_lo,
        [&](std::uint32_t ei, TimeNs t) {
            return stream.event(ei).timestamp < t;
        });
    const auto lb = static_cast<std::size_t>(
        begin - thread_events.begin());

    // Backward: events starting before the window whose effective end
    // reaches into it. The prefix maximum bounds the scan. Skipped
    // entirely under containment-only semantics (ablation).
    std::vector<std::uint32_t> child_events;
    if (!options_.containmentOnly) {
        for (std::size_t i = lb; i-- > 0;) {
            if (tindex.prefixMaxEnd[i] < clip_lo)
                break;
            if (sindex.effectiveEnd[thread_events[i]] > clip_lo)
                child_events.push_back(thread_events[i]);
        }
        std::reverse(child_events.begin(), child_events.end());
    }

    // Forward: events starting inside the window.
    for (std::size_t i = lb; i < thread_events.size(); ++i) {
        if (stream.event(thread_events[i]).timestamp > clip_hi)
            break;
        child_events.push_back(thread_events[i]);
    }

    for (std::uint32_t child_index : child_events) {
        if (stream.event(child_index).type == EventType::Unwait)
            continue;
        if (visited[child_index])
            continue;
        const std::uint32_t child_id =
            expand(graph, sindex, stream_id, stream, child_index,
                   depth + 1, clip_lo, clip_hi, visited);
        if (child_id == kInvalidIndex) {
            graph.nodes_[node_id].truncated = true;
            continue;
        }
        graph.nodes_[node_id].children.push_back(child_id);
    }

    return node_id;
}

WaitGraph
WaitGraphBuilder::build(const ScenarioInstance &instance) const
{
    const StreamIndex &sindex = streamIndex(instance.stream);
    const TraceStream &stream = corpus_.stream(instance.stream);

    WaitGraph graph;
    graph.instance_ = instance;

    auto te = sindex.threads.find(instance.tid);
    if (te == sindex.threads.end())
        return graph; // initiating thread recorded no events

    std::vector<char> visited(stream.size(), 0);
    const auto &thread_events = te->second.events;
    const auto begin = std::lower_bound(
        thread_events.begin(), thread_events.end(), instance.t0,
        [&](std::uint32_t ei, TimeNs t) {
            return stream.event(ei).timestamp < t;
        });
    for (auto it = begin; it != thread_events.end(); ++it) {
        if (stream.event(*it).timestamp >= instance.t1)
            break;
        if (stream.event(*it).type == EventType::Unwait)
            continue; // signals carry no cost of their own
        if (visited[*it])
            continue;
        const std::uint32_t root = expand(
            graph, sindex, instance.stream, stream, *it, 0,
            std::numeric_limits<TimeNs>::min(),
            std::numeric_limits<TimeNs>::max(), visited);
        if (root != kInvalidIndex)
            graph.roots_.push_back(root);
    }
    return graph;
}

std::vector<WaitGraph>
WaitGraphBuilder::buildAll() const
{
    std::vector<WaitGraph> graphs;
    graphs.reserve(corpus_.instances().size());
    for (const ScenarioInstance &instance : corpus_.instances())
        graphs.push_back(build(instance));
    return graphs;
}

std::vector<WaitGraph>
WaitGraphBuilder::buildAllParallel(unsigned threads) const
{
    return buildRangeParallel(
        0, static_cast<std::uint32_t>(corpus_.instances().size()),
        threads);
}

std::vector<WaitGraph>
WaitGraphBuilder::buildRangeParallel(std::uint32_t first,
                                     std::uint32_t count,
                                     unsigned threads) const
{
    const auto &instances = corpus_.instances();
    TL_ASSERT(first + count <= instances.size(),
              "instance range out of bounds");

    Span span("waitgraph.build-range", "analysis");
    if (span.active()) {
        span.arg("first", static_cast<std::uint64_t>(first));
        span.arg("count", static_cast<std::uint64_t>(count));
    }

    if (threads <= 1 || count < 2) {
        std::vector<WaitGraph> graphs;
        graphs.reserve(count);
        for (std::uint32_t i = first; i < first + count; ++i)
            graphs.push_back(build(instances[i]));
        return graphs;
    }

    // Warm the per-stream indices serially: the cache is not safe for
    // concurrent insertion, but concurrent reads of a complete cache
    // are.
    for (std::uint32_t i = first; i < first + count; ++i)
        streamIndex(instances[i].stream);

    std::vector<WaitGraph> graphs(count);
    tracelens::parallelFor(threads, 0, count, [&](std::size_t i) {
        graphs[i] = build(instances[first + i]);
    });
    return graphs;
}

} // namespace tracelens
