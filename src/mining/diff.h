/**
 * @file
 * Mining-result diffing: compare the contrast patterns of two
 * analyses of the *same scenario* — e.g. two software builds, two
 * fleets, or two time windows — to find behaviour that appeared,
 * disappeared, or changed cost. This turns the paper's one-shot
 * analysis into the regression-tracking workflow performance teams
 * actually run release over release.
 *
 * Patterns are matched by their Signature Set Tuple (the tuple is the
 * generalized identity of a behaviour; Section 4.1). Because the two
 * analyses may come from different corpora with different interned
 * frame ids, tuples are compared by *signature names*, not ids.
 */

#ifndef TRACELENS_MINING_DIFF_H
#define TRACELENS_MINING_DIFF_H

#include <string>
#include <vector>

#include "src/mining/miner.h"
#include "src/trace/symbols.h"

namespace tracelens
{

/** A pattern present in both results, with its cost movement. */
struct ChangedPattern
{
    ContrastPattern before;
    ContrastPattern after;

    /** after.impact() / before.impact(); >1 means it got slower. */
    double impactRatio() const;
};

/** Outcome of diffing two mining results. */
struct MiningDiff
{
    /** Patterns only in the "after" result (new behaviour). */
    std::vector<ContrastPattern> appeared;
    /** Patterns only in the "before" result (fixed / gone). */
    std::vector<ContrastPattern> disappeared;
    /**
     * Patterns in both whose average impact moved by more than the
     * configured ratio, sorted by |log ratio| descending.
     */
    std::vector<ChangedPattern> changed;
    /** Patterns in both with no significant movement. */
    std::size_t stable = 0;

    std::string render(const SymbolTable &after_symbols,
                       std::size_t top_n = 5) const;
};

/**
 * Diff two mining results.
 *
 * @param before,before_symbols The baseline analysis and its symbols.
 * @param after,after_symbols The new analysis and its symbols.
 * @param change_ratio Impact movements beyond x(ratio) or /(ratio)
 *        count as changed (default 1.5x).
 */
MiningDiff diffMiningResults(const MiningResult &before,
                             const SymbolTable &before_symbols,
                             const MiningResult &after,
                             const SymbolTable &after_symbols,
                             double change_ratio = 1.5);

} // namespace tracelens

#endif // TRACELENS_MINING_DIFF_H
