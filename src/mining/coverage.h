/**
 * @file
 * Execution-time coverage metrics for mined patterns (paper Section 5.2).
 *
 * RQ1 coverages:
 *  - ITC (impactful-time coverage): sum of P.C for high-impact patterns
 *    (those with at least one execution above T_slow) over the total
 *    component time in the slow class.
 *  - TTC (total-time coverage): sum of P.C for all patterns over the
 *    same denominator.
 *
 * RQ2 ranking coverage: cumulative P.C share of the top n% of patterns
 * under the impact ranking, over the total P.C of all patterns.
 */

#ifndef TRACELENS_MINING_COVERAGE_H
#define TRACELENS_MINING_COVERAGE_H

#include <string>

#include "src/mining/miner.h"

namespace tracelens
{

/** RQ1 coverage figures for one scenario. */
struct CoverageResult
{
    DurationNs componentCost = 0;  //!< Denominator: slow-class driver time.
    DurationNs impactfulCost = 0;  //!< Sum of P.C of high-impact patterns.
    DurationNs totalCost = 0;      //!< Sum of P.C of all patterns.
    std::size_t patternCount = 0;
    std::size_t highImpactCount = 0;

    double itc() const;
    double ttc() const;
    std::string render() const;
};

/**
 * Compute ITC/TTC.
 *
 * @param result Mined patterns of one scenario.
 * @param component_cost Total component (driver) time of the slow class,
 *        typically D_wait + D_run from the impact analysis.
 * @param t_slow High-impact threshold.
 */
CoverageResult computeCoverage(const MiningResult &result,
                               DurationNs component_cost,
                               DurationNs t_slow);

/**
 * RQ2: execution-time coverage of the top @p fraction of patterns by
 * rank, over the total pattern time. @p fraction in [0, 1]; the top
 * pattern count is rounded up so a non-empty result always inspects at
 * least one pattern.
 */
double topPatternCoverage(const MiningResult &result, double fraction);

} // namespace tracelens

#endif // TRACELENS_MINING_COVERAGE_H
