/**
 * @file
 * Cross-scenario pattern index (paper Section 2.3, second analyst
 * benefit).
 *
 * A discovered pattern "as a generalized representation is a clue for
 * similar cases. The analyst may prioritize the search of the three
 * driver signatures in other cases to facilitate future analysis."
 * The PatternIndex supports exactly that workflow: register the mined
 * patterns of many scenario analyses, then query by function signature
 * or by component to find every scenario in which related behaviour
 * was mined, ranked by impact.
 */

#ifndef TRACELENS_MINING_PATTERNINDEX_H
#define TRACELENS_MINING_PATTERNINDEX_H

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/mining/miner.h"
#include "src/trace/symbols.h"

namespace tracelens
{

/** One hit of an index query. */
struct PatternHit
{
    std::string scenario;     //!< Scenario the pattern was mined in.
    std::size_t rank = 0;     //!< Rank within that scenario (0-based).
    ContrastPattern pattern;  //!< The pattern itself.
};

/** Index over the patterns of many scenario analyses. */
class PatternIndex
{
  public:
    explicit PatternIndex(const SymbolTable &symbols);

    /** Register all patterns of one scenario's mining result. */
    void add(std::string_view scenario, const MiningResult &result);

    /**
     * All patterns containing the signature @p frame (in any of the
     * three sets), sorted by impact descending.
     */
    std::vector<PatternHit> bySignature(FrameId frame) const;

    /** Lookup by signature name; empty when the frame is unknown. */
    std::vector<PatternHit>
    bySignatureName(std::string_view signature) const;

    /**
     * All patterns containing any signature of the given component
     * (glob), sorted by impact descending.
     */
    std::vector<PatternHit>
    byComponent(std::string_view component_glob) const;

    std::size_t patternCount() const { return patterns_.size(); }
    std::size_t scenarioCount() const { return scenarios_.size(); }

  private:
    struct Stored
    {
        std::uint32_t scenario; //!< Index into scenarios_.
        std::size_t rank;
        ContrastPattern pattern;
    };

    std::vector<PatternHit> gather(
        const std::vector<std::uint32_t> &ids) const;

    const SymbolTable &symbols_;
    std::vector<std::string> scenarios_;
    std::vector<Stored> patterns_;
    std::unordered_map<FrameId, std::vector<std::uint32_t>> byFrame_;
};

} // namespace tracelens

#endif // TRACELENS_MINING_PATTERNINDEX_H
