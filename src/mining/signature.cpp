/**
 * @file
 * Signature Set Tuple construction from AWG path segments, plus
 * tuple subsumption/equality used by mining and the index.
 */

#include "src/mining/signature.h"

#include <algorithm>
#include <sstream>

namespace tracelens
{

namespace
{

void
sortUnique(std::vector<FrameId> &v)
{
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
}

bool
isSubset(const std::vector<FrameId> &sub, const std::vector<FrameId> &sup)
{
    // Both sorted & unique.
    return std::includes(sup.begin(), sup.end(), sub.begin(), sub.end());
}

void
renderSet(std::ostringstream &oss, const SymbolTable &symbols,
          const std::vector<FrameId> &set)
{
    oss << "{";
    for (std::size_t i = 0; i < set.size(); ++i) {
        if (i)
            oss << ", ";
        oss << (set[i] == kNoFrame ? "<other>"
                                   : symbols.frameName(set[i]));
    }
    oss << "}";
}

} // namespace

void
SignatureSetTuple::normalize()
{
    sortUnique(waits);
    sortUnique(unwaits);
    sortUnique(runnings);
}

bool
SignatureSetTuple::contains(const SignatureSetTuple &other) const
{
    return isSubset(other.waits, waits) &&
           isSubset(other.unwaits, unwaits) &&
           isSubset(other.runnings, runnings);
}

std::size_t
SignatureSetTuple::totalSignatures() const
{
    return waits.size() + unwaits.size() + runnings.size();
}

bool
SignatureSetTuple::empty() const
{
    return waits.empty() && unwaits.empty() && runnings.empty();
}

std::string
SignatureSetTuple::render(const SymbolTable &symbols) const
{
    std::ostringstream oss;
    oss << "wait signatures    : ";
    renderSet(oss, symbols, waits);
    oss << "\nunwait signatures  : ";
    renderSet(oss, symbols, unwaits);
    oss << "\nrunning signatures : ";
    renderSet(oss, symbols, runnings);
    oss << "\n";
    return oss.str();
}

std::string
SignatureSetTuple::renderCompact(const SymbolTable &symbols) const
{
    std::ostringstream oss;
    oss << "W";
    renderSet(oss, symbols, waits);
    oss << " U";
    renderSet(oss, symbols, unwaits);
    oss << " R";
    renderSet(oss, symbols, runnings);
    return oss.str();
}

std::size_t
SignatureSetTupleHash::operator()(const SignatureSetTuple &tuple) const
{
    std::size_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](const std::vector<FrameId> &v, std::size_t salt) {
        h ^= salt;
        h *= 0x100000001b3ULL;
        for (FrameId f : v) {
            h ^= f;
            h *= 0x100000001b3ULL;
        }
    };
    mix(tuple.waits, 0x57);
    mix(tuple.unwaits, 0x55);
    mix(tuple.runnings, 0x52);
    return h;
}

} // namespace tracelens
