/**
 * @file
 * ITC / PTC / component coverage computation over mined patterns and
 * the slow-class wait graphs.
 */

#include "src/mining/coverage.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/util/logging.h"
#include "src/util/table.h"

namespace tracelens
{

double
CoverageResult::itc() const
{
    return componentCost == 0
               ? 0.0
               : static_cast<double>(impactfulCost) /
                     static_cast<double>(componentCost);
}

double
CoverageResult::ttc() const
{
    return componentCost == 0
               ? 0.0
               : static_cast<double>(totalCost) /
                     static_cast<double>(componentCost);
}

std::string
CoverageResult::render() const
{
    std::ostringstream oss;
    oss << "patterns=" << patternCount
        << " highImpact=" << highImpactCount
        << " ITC=" << TextTable::pct(itc())
        << " TTC=" << TextTable::pct(ttc());
    return oss.str();
}

CoverageResult
computeCoverage(const MiningResult &result, DurationNs component_cost,
                DurationNs t_slow)
{
    CoverageResult coverage;
    coverage.componentCost = component_cost;
    coverage.patternCount = result.patterns.size();
    for (const ContrastPattern &p : result.patterns) {
        coverage.totalCost += p.cost;
        if (p.highImpact(t_slow)) {
            coverage.impactfulCost += p.cost;
            ++coverage.highImpactCount;
        }
    }
    return coverage;
}

double
topPatternCoverage(const MiningResult &result, double fraction)
{
    TL_ASSERT(fraction >= 0.0 && fraction <= 1.0,
              "fraction out of range");
    if (result.patterns.empty())
        return 0.0;
    const DurationNs total = result.totalPatternCost();
    if (total == 0)
        return 0.0;

    const auto top = static_cast<std::size_t>(
        std::ceil(fraction * static_cast<double>(result.patterns.size())));
    DurationNs covered = 0;
    for (std::size_t i = 0; i < std::min(top, result.patterns.size());
         ++i) {
        covered += result.patterns[i].cost;
    }
    return static_cast<double>(covered) / static_cast<double>(total);
}

} // namespace tracelens
