/**
 * @file
 * Contrast-pattern mining: sharded meta-pattern enumeration, contrast
 * discovery, and per-root-subtree full-path extraction with a strict
 * total ranking order.
 */

#include "src/mining/miner.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "src/core/partial.h"
#include "src/util/logging.h"
#include "src/util/parallel.h"
#include "src/util/telemetry.h"

namespace tracelens
{

double
ContrastPattern::impact() const
{
    return count == 0 ? 0.0
                      : static_cast<double>(cost) /
                            static_cast<double>(count);
}

std::string
MiningStats::render() const
{
    std::ostringstream oss;
    oss << "metas(fast)=" << fastMetaPatterns
        << " metas(slow)=" << slowMetaPatterns
        << " contrasts(slow-only)=" << slowOnlyContrasts
        << " contrasts(ratio)=" << ratioContrasts
        << " fullPaths=" << fullPaths
        << " selectedPaths=" << selectedPaths;
    return oss.str();
}

DurationNs
MiningResult::totalPatternCost() const
{
    DurationNs total = 0;
    for (const auto &p : patterns)
        total += p.cost;
    return total;
}

DurationNs
MiningResult::impactfulPatternCost(DurationNs t_slow) const
{
    DurationNs total = 0;
    for (const auto &p : patterns) {
        if (p.highImpact(t_slow))
            total += p.cost;
    }
    return total;
}

namespace
{

/** Project a chain of AWG nodes to its Signature Set Tuple. */
SignatureSetTuple
tupleOfChain(const AggregatedWaitGraph &awg,
             const std::vector<std::uint32_t> &chain)
{
    SignatureSetTuple tuple;
    for (std::uint32_t id : chain) {
        const auto &node = awg.node(id);
        switch (node.key.status) {
          case AwgStatus::Waiting:
            tuple.waits.push_back(node.key.primary);
            tuple.unwaits.push_back(node.key.secondary);
            break;
          case AwgStatus::Running:
          case AwgStatus::Hardware:
            // Hardware dummies join the running set (Section 4.1).
            tuple.runnings.push_back(node.key.primary);
            break;
        }
    }
    tuple.normalize();
    return tuple;
}

using MetaMap = std::unordered_map<SignatureSetTuple, MetaPatternStats,
                                   SignatureSetTupleHash>;
using ContrastSet =
    std::unordered_set<SignatureSetTuple, SignatureSetTupleHash>;

/** Depth-first enumeration of segments starting at one node. */
void
enumerateFrom(const AggregatedWaitGraph &awg, std::uint32_t node_id,
              std::uint32_t max_length,
              std::vector<std::uint32_t> &chain, MetaMap &metas)
{
    chain.push_back(node_id);
    const auto &end = awg.node(node_id);
    MetaPatternStats &stats = metas[tupleOfChain(awg, chain)];
    stats.cost += end.cost;
    stats.count += end.count;

    if (chain.size() < max_length) {
        for (std::uint32_t child : end.children)
            enumerateFrom(awg, child, max_length, chain, metas);
    }
    chain.pop_back();
}

/** Deterministic ordering for ranked output. */
bool
rankBefore(const ContrastPattern &a, const ContrastPattern &b)
{
    if (a.impact() != b.impact())
        return a.impact() > b.impact();
    if (a.cost != b.cost)
        return a.cost > b.cost;
    if (a.count != b.count)
        return a.count > b.count;
    if (a.tuple.waits != b.tuple.waits)
        return a.tuple.waits < b.tuple.waits;
    if (a.tuple.unwaits != b.tuple.unwaits)
        return a.tuple.unwaits < b.tuple.unwaits;
    return a.tuple.runnings < b.tuple.runnings;
}

} // namespace

ContrastMiner::ContrastMiner(const TraceCorpus &corpus,
                             MiningOptions options)
    : corpus_(corpus), options_(options)
{
    TL_ASSERT(options_.maxSegmentLength >= 1, "k must be at least 1");
    if (options_.tFast <= 0 || options_.tSlow <= options_.tFast) {
        TL_FATAL("mining thresholds must satisfy 0 < T_fast < T_slow "
                 "(got ", options_.tFast, ", ", options_.tSlow, ")");
    }
}

MetaMap
ContrastMiner::enumerateMetaPatterns(const AggregatedWaitGraph &awg,
                                     unsigned threads) const
{
    const std::size_t node_count = awg.nodes().size();
    const unsigned workers = resolveThreads(threads);

    Span span("mining.enumerate-metas", "analysis");
    if (span.active())
        span.arg("nodes", static_cast<std::uint64_t>(node_count));

    if (workers <= 1 || node_count < 2) {
        MetaMap metas;
        std::vector<std::uint32_t> chain;
        chain.reserve(options_.maxSegmentLength);
        // Segments may start at any node, not only at roots.
        for (std::uint32_t id = 0; id < node_count; ++id)
            enumerateFrom(awg, id, options_.maxSegmentLength, chain,
                          metas);
        return metas;
    }

    // Shard the segment-start nodes; per-shard tallies merge through
    // PartialMeta (integer summation — associative and commutative),
    // so the merged map's contents match the serial enumeration
    // exactly.
    const unsigned shard_count = std::min<unsigned>(
        workers * 4, static_cast<unsigned>(node_count));
    const std::vector<PartialMeta> shards = parallelMap<PartialMeta>(
        threads, shard_count, [&](std::size_t shard) {
            const std::size_t begin = node_count * shard / shard_count;
            const std::size_t end =
                node_count * (shard + 1) / shard_count;
            PartialMeta metas;
            std::vector<std::uint32_t> chain;
            chain.reserve(options_.maxSegmentLength);
            for (std::size_t id = begin; id < end; ++id) {
                enumerateFrom(awg, static_cast<std::uint32_t>(id),
                              options_.maxSegmentLength, chain,
                              metas.metas);
            }
            return metas;
        });

    PartialMeta merged;
    for (const PartialMeta &shard : shards)
        merged.merge(shard);
    return std::move(merged.metas);
}

MiningResult
ContrastMiner::mine(const AggregatedWaitGraph &fast,
                    const AggregatedWaitGraph &slow,
                    unsigned threads) const
{
    Span span("mining.mine", "analysis");
    if (span.active()) {
        span.arg("fast_nodes",
                 static_cast<std::uint64_t>(fast.nodes().size()));
        span.arg("slow_nodes",
                 static_cast<std::uint64_t>(slow.nodes().size()));
    }

    MiningResult result;

    // Step 1: meta-pattern enumeration per class.
    const MetaMap fast_metas = enumerateMetaPatterns(fast, threads);
    const MetaMap slow_metas = enumerateMetaPatterns(slow, threads);
    result.stats.fastMetaPatterns = fast_metas.size();
    result.stats.slowMetaPatterns = slow_metas.size();

    // Step 2: contrast meta-patterns.
    ContrastSet contrasts;
    const double threshold_ratio =
        static_cast<double>(options_.tSlow) /
        static_cast<double>(options_.tFast);
    for (const auto &[tuple, slow_stats] : slow_metas) {
        auto it = fast_metas.find(tuple);
        if (it == fast_metas.end()) {
            contrasts.insert(tuple);
            ++result.stats.slowOnlyContrasts;
            continue;
        }
        const MetaPatternStats &fast_stats = it->second;
        if (slow_stats.count == 0)
            continue;
        const double slow_avg = static_cast<double>(slow_stats.cost) /
                                static_cast<double>(slow_stats.count);
        if (fast_stats.cost <= 0 || fast_stats.count == 0) {
            // Zero-cost in the fast class: any slow cost is a contrast.
            if (slow_avg > 0) {
                contrasts.insert(tuple);
                ++result.stats.ratioContrasts;
            }
            continue;
        }
        const double fast_avg = static_cast<double>(fast_stats.cost) /
                                static_cast<double>(fast_stats.count);
        if (slow_avg / fast_avg > threshold_ratio) {
            contrasts.insert(tuple);
            ++result.stats.ratioContrasts;
        }
    }

    // Step 3: full-path contrast patterns over the slow AWG, sharded
    // per root subtree. Each shard mines its subtree independently;
    // shard tallies merge through PartialPatterns (summation + max)
    // and the ranking below imposes a strict total order, so the
    // output is thread-count independent.
    auto pathSelected = [&](const std::vector<std::uint32_t> &path) {
        if (!options_.useMetaPatternGate)
            return true;
        // The path contains a contrast meta-pattern iff one of its own
        // length-<=k sub-segments projects onto one (sub-segment tuples
        // are exactly how meta-patterns arise in step 1).
        std::vector<std::uint32_t> segment;
        for (std::size_t start = 0; start < path.size(); ++start) {
            segment.clear();
            const std::size_t limit =
                std::min<std::size_t>(path.size(),
                                      start + options_.maxSegmentLength);
            for (std::size_t i = start; i < limit; ++i) {
                segment.push_back(path[i]);
                if (contrasts.count(tupleOfChain(slow, segment)))
                    return true;
            }
        }
        return false;
    };

    auto mineRoot = [&](std::uint32_t root) {
        PartialPatterns mined;
        std::vector<std::uint32_t> chain;
        auto walk = [&](auto &&self, std::uint32_t node_id) -> void {
            chain.push_back(node_id);
            const auto &node = slow.node(node_id);
            if (node.children.empty()) {
                ++mined.fullPaths;
                if (pathSelected(chain)) {
                    ++mined.selectedPaths;
                    SignatureSetTuple tuple = tupleOfChain(slow, chain);
                    ContrastPattern &pattern = mined.patterns[tuple];
                    if (pattern.count == 0)
                        pattern.tuple = std::move(tuple);
                    pattern.cost += node.cost;
                    pattern.count += node.count;
                    pattern.maxExec =
                        std::max(pattern.maxExec, node.maxCost);
                }
            } else {
                for (std::uint32_t child : node.children)
                    self(self, child);
            }
            chain.pop_back();
        };
        walk(walk, root);
        return mined;
    };

    const auto &slow_roots = slow.roots();
    std::vector<PartialPatterns> mined_roots;
    if (resolveThreads(threads) <= 1 || slow_roots.size() < 2) {
        mined_roots.reserve(slow_roots.size());
        for (std::uint32_t root : slow_roots)
            mined_roots.push_back(mineRoot(root));
    } else {
        mined_roots = parallelMap<PartialPatterns>(
            threads, slow_roots.size(),
            [&](std::size_t i) { return mineRoot(slow_roots[i]); });
    }

    PartialPatterns merged;
    for (const PartialPatterns &mined : mined_roots)
        merged.merge(mined);
    result.stats.fullPaths =
        static_cast<std::size_t>(merged.fullPaths);
    result.stats.selectedPaths =
        static_cast<std::size_t>(merged.selectedPaths);

    result.patterns.reserve(merged.patterns.size());
    for (auto &[tuple, pattern] : merged.patterns)
        result.patterns.push_back(std::move(pattern));
    std::sort(result.patterns.begin(), result.patterns.end(),
              rankBefore);
    return result;
}

} // namespace tracelens
