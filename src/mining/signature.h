/**
 * @file
 * Signature Set Tuples (paper Definitions 4-5).
 *
 * A Signature Set Tuple generalizes the cost-propagation interactions of
 * a path segment into three signature sets:
 *
 *  - wait signatures: functions whose invocation suspended a thread,
 *  - unwait signatures: functions that signalled suspended threads,
 *  - running signatures: functions observed computing, plus the dummy
 *    signatures of hardware services.
 *
 * Sets (rather than sequences) absorb ordering variation: two contention
 * interleavings that differ only in which thread won a lock first map to
 * the same pattern.
 */

#ifndef TRACELENS_MINING_SIGNATURE_H
#define TRACELENS_MINING_SIGNATURE_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/trace/symbols.h"
#include "src/util/types.h"

namespace tracelens
{

/** The three signature sets of a pattern (each sorted and unique). */
struct SignatureSetTuple
{
    std::vector<FrameId> waits;
    std::vector<FrameId> unwaits;
    std::vector<FrameId> runnings;

    /** Sort each set and remove duplicates (canonical form). */
    void normalize();

    /** True iff every set of @p other is a subset of this tuple's. */
    bool contains(const SignatureSetTuple &other) const;

    /** Total number of signatures across the three sets. */
    std::size_t totalSignatures() const;

    bool empty() const;

    /** Multi-line rendering like the paper's pattern listings. */
    std::string render(const SymbolTable &symbols) const;

    /** Compact one-line rendering. */
    std::string renderCompact(const SymbolTable &symbols) const;

    friend bool operator==(const SignatureSetTuple &,
                           const SignatureSetTuple &) = default;
};

/** Hash functor over the canonical (normalized) form. */
struct SignatureSetTupleHash
{
    std::size_t operator()(const SignatureSetTuple &tuple) const;
};

} // namespace tracelens

#endif // TRACELENS_MINING_SIGNATURE_H
