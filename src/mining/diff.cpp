/**
 * @file
 * Pattern-set diffing between two analyses of the same scenario:
 * match by tuple, classify appeared/disappeared/shifted.
 */

#include "src/mining/diff.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "src/util/logging.h"

namespace tracelens
{

double
ChangedPattern::impactRatio() const
{
    const double b = before.impact();
    const double a = after.impact();
    if (b <= 0.0)
        return a > 0.0 ? std::numeric_limits<double>::infinity() : 1.0;
    return a / b;
}

namespace
{

/** Name-based canonical key of a tuple (portable across corpora). */
std::string
tupleKey(const SignatureSetTuple &tuple, const SymbolTable &symbols)
{
    auto render = [&](const std::vector<FrameId> &set, char tag,
                      std::string &out) {
        // Sets are sorted by id; re-sort by *name* for portability.
        std::vector<std::string_view> names;
        names.reserve(set.size());
        for (FrameId f : set) {
            names.push_back(f == kNoFrame
                                ? std::string_view("<other>")
                                : std::string_view(
                                      symbols.frameName(f)));
        }
        std::sort(names.begin(), names.end());
        out += tag;
        for (const auto &name : names) {
            out += name;
            out += '\x1f';
        }
        out += '\x1e';
    };
    std::string key;
    render(tuple.waits, 'W', key);
    render(tuple.unwaits, 'U', key);
    render(tuple.runnings, 'R', key);
    return key;
}

} // namespace

MiningDiff
diffMiningResults(const MiningResult &before,
                  const SymbolTable &before_symbols,
                  const MiningResult &after,
                  const SymbolTable &after_symbols, double change_ratio)
{
    TL_ASSERT(change_ratio > 1.0, "change ratio must exceed 1");

    std::map<std::string, const ContrastPattern *> before_index;
    for (const ContrastPattern &p : before.patterns)
        before_index.emplace(tupleKey(p.tuple, before_symbols), &p);

    MiningDiff diff;
    std::map<std::string, const ContrastPattern *> matched;
    for (const ContrastPattern &p : after.patterns) {
        const std::string key = tupleKey(p.tuple, after_symbols);
        auto it = before_index.find(key);
        if (it == before_index.end()) {
            diff.appeared.push_back(p);
            continue;
        }
        matched.emplace(key, it->second);
        const ContrastPattern &prev = *it->second;
        const double ratio =
            prev.impact() > 0.0 ? p.impact() / prev.impact() : 1.0;
        if (ratio > change_ratio || ratio < 1.0 / change_ratio)
            diff.changed.push_back({prev, p});
        else
            ++diff.stable;
    }

    for (const ContrastPattern &p : before.patterns) {
        if (!matched.count(tupleKey(p.tuple, before_symbols)))
            diff.disappeared.push_back(p);
    }

    std::sort(diff.changed.begin(), diff.changed.end(),
              [](const ChangedPattern &a, const ChangedPattern &b) {
                  return std::abs(std::log(a.impactRatio())) >
                         std::abs(std::log(b.impactRatio()));
              });
    return diff;
}

std::string
MiningDiff::render(const SymbolTable &after_symbols,
                   std::size_t top_n) const
{
    std::ostringstream oss;
    oss << "appeared=" << appeared.size()
        << " disappeared=" << disappeared.size()
        << " changed=" << changed.size() << " stable=" << stable
        << "\n";
    const std::size_t n = std::min(top_n, appeared.size());
    for (std::size_t i = 0; i < n; ++i) {
        oss << "new #" << i + 1 << " (impact "
            << toMs(static_cast<DurationNs>(appeared[i].impact()))
            << "ms):\n"
            << appeared[i].tuple.render(after_symbols);
    }
    const std::size_t m = std::min(top_n, changed.size());
    for (std::size_t i = 0; i < m; ++i) {
        oss << "changed x" << changed[i].impactRatio() << ":\n"
            << changed[i].after.tuple.render(after_symbols);
    }
    return oss.str();
}

} // namespace tracelens
