/**
 * @file
 * By-design knowledge base: wildcard rules over pattern signatures,
 * applied as a post-mining filter.
 */

#include "src/mining/knowledge.h"

namespace tracelens
{

void
KnowledgeBase::addRule(std::string component_pattern, std::string reason)
{
    rules_.push_back({std::move(component_pattern), std::move(reason)});
}

namespace
{

bool
anyFrameMatches(const std::vector<FrameId> &frames,
                const SymbolTable &symbols, const std::string &pattern)
{
    for (FrameId f : frames) {
        if (f == kNoFrame)
            continue;
        if (wildcardMatch(pattern, symbols.componentName(f)))
            return true;
    }
    return false;
}

} // namespace

bool
KnowledgeBase::matches(const SignatureSetTuple &tuple,
                       const SymbolTable &symbols) const
{
    return !matchReason(tuple, symbols).empty();
}

std::string
KnowledgeBase::matchReason(const SignatureSetTuple &tuple,
                           const SymbolTable &symbols) const
{
    for (const KnowledgeRule &rule : rules_) {
        if (anyFrameMatches(tuple.waits, symbols,
                            rule.componentPattern) ||
            anyFrameMatches(tuple.unwaits, symbols,
                            rule.componentPattern) ||
            anyFrameMatches(tuple.runnings, symbols,
                            rule.componentPattern)) {
            return rule.reason;
        }
    }
    return {};
}

FilteredMiningResult
KnowledgeBase::apply(const MiningResult &result,
                     const SymbolTable &symbols) const
{
    FilteredMiningResult filtered;
    for (const ContrastPattern &pattern : result.patterns) {
        const std::string reason = matchReason(pattern.tuple, symbols);
        if (reason.empty())
            filtered.kept.push_back(pattern);
        else
            filtered.suppressed.push_back({pattern, reason});
    }
    return filtered;
}

KnowledgeBase
KnowledgeBase::defaults()
{
    KnowledgeBase kb;
    kb.addRule("dp.sys",
               "disk-protection driver halts I/O by design while the "
               "machine is in motion");
    return kb;
}

} // namespace tracelens
