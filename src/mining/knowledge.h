/**
 * @file
 * By-design-behaviour knowledge filter (paper Section 5.2.5).
 *
 * Some drivers block on purpose: the paper's example is a disk-
 * protection driver that halts all disk I/O while the machine is in
 * motion. Patterns involving such drivers are real behaviour but not
 * actionable performance problems — false positives of the causality
 * analysis. The paper concludes that "we need to incorporate such
 * knowledge to filter out some known and exceptional cases"; this
 * module is that mechanism.
 *
 * A KnowledgeBase holds rules mapping component-name globs to reasons.
 * apply() partitions a mining result into kept and suppressed
 * patterns; a pattern is suppressed when any of its signatures belongs
 * to a rule's component.
 */

#ifndef TRACELENS_MINING_KNOWLEDGE_H
#define TRACELENS_MINING_KNOWLEDGE_H

#include <string>
#include <vector>

#include "src/mining/miner.h"
#include "src/trace/symbols.h"
#include "src/util/wildcard.h"

namespace tracelens
{

/** One by-design rule. */
struct KnowledgeRule
{
    std::string componentPattern; //!< Glob over component names.
    std::string reason;           //!< Why the behaviour is expected.
};

/** A suppressed pattern with the rule that matched it. */
struct SuppressedPattern
{
    ContrastPattern pattern;
    std::string reason;
};

/** Result of filtering a mining result. */
struct FilteredMiningResult
{
    /** Patterns that remain actionable, ranking preserved. */
    std::vector<ContrastPattern> kept;
    std::vector<SuppressedPattern> suppressed;
};

/** Rule set for by-design driver behaviours. */
class KnowledgeBase
{
  public:
    KnowledgeBase() = default;

    /** Add a rule. */
    void addRule(std::string component_pattern, std::string reason);

    /** True when any signature of @p tuple matches any rule. */
    bool matches(const SignatureSetTuple &tuple,
                 const SymbolTable &symbols) const;

    /** Reason of the first matching rule ("" when none match). */
    std::string matchReason(const SignatureSetTuple &tuple,
                            const SymbolTable &symbols) const;

    /** Partition @p result into kept and suppressed patterns. */
    FilteredMiningResult apply(const MiningResult &result,
                               const SymbolTable &symbols) const;

    std::size_t ruleCount() const { return rules_.size(); }

    /**
     * The default rule set shipped with TraceLens: the paper's disk-
     * protection example (dp.sys halts I/O by design).
     */
    static KnowledgeBase defaults();

  private:
    std::vector<KnowledgeRule> rules_;
};

} // namespace tracelens

#endif // TRACELENS_MINING_KNOWLEDGE_H
