/**
 * @file
 * Contrast pattern mining (paper Section 4.2.3).
 *
 * Given the Aggregated Wait Graphs of a fast and a slow instance class,
 * the miner works in three steps:
 *
 *  1. Meta-pattern enumeration: all downward path segments of length
 *     1..k in each AWG are projected to Signature Set Tuples; segments
 *     sharing a tuple aggregate their P.C (end-node cost) and P.N
 *     (end-node occurrence count).
 *  2. Meta-pattern contrast discovery, by two criteria:
 *      (a) a meta-pattern appears only in the slow class;
 *      (b) a meta-pattern is common to both classes but its average
 *          cost ratio exceeds the threshold ratio:
 *          (Ps.C / Ps.N) / (Pf.C / Pf.N) > T_slow / T_fast.
 *  3. Contrast-pattern discovery: each full root-to-leaf path of the
 *     slow AWG whose tuple contains a contrast meta-pattern is selected
 *     (checked via the path's own <=k sub-segments, which is how the
 *     containment can arise from step 1); identical path patterns merge
 *     their P.C / P.N, and results are ranked by impact P.C / P.N.
 */

#ifndef TRACELENS_MINING_MINER_H
#define TRACELENS_MINING_MINER_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/awg/awg.h"
#include "src/mining/signature.h"

namespace tracelens
{

/** Mining parameters. */
struct MiningOptions
{
    /** Maximum path-segment length k (the paper's evaluation uses 5). */
    std::uint32_t maxSegmentLength = 5;
    /** Fast-class threshold T_fast. */
    DurationNs tFast = fromMs(300.0);
    /** Slow-class threshold T_slow. */
    DurationNs tSlow = fromMs(500.0);
    /**
     * When false, skip meta-pattern gating and emit every full slow-
     * class path as a pattern (the ablation of the meta-pattern step).
     */
    bool useMetaPatternGate = true;
};

/** One discovered contrast pattern (a merged set of full slow paths). */
struct ContrastPattern
{
    SignatureSetTuple tuple;
    DurationNs cost = 0;     //!< P.C — aggregated execution cost.
    std::uint64_t count = 0; //!< P.N — occurrence counter.
    DurationNs maxExec = 0;  //!< Largest single execution observed.

    /** Ranking key: average execution cost P.C / P.N. */
    double impact() const;

    /**
     * The automated high-impact rule of RQ1: at least one execution
     * exceeded T_slow.
     */
    bool highImpact(DurationNs t_slow) const { return maxExec > t_slow; }
};

/** Aggregated (C, N) of one meta-pattern in one class. */
struct MetaPatternStats
{
    DurationNs cost = 0;
    std::uint64_t count = 0;
};

/** Observability counters of one mine() run. */
struct MiningStats
{
    std::size_t fastMetaPatterns = 0;
    std::size_t slowMetaPatterns = 0;
    std::size_t slowOnlyContrasts = 0;
    std::size_t ratioContrasts = 0;
    std::size_t fullPaths = 0;
    std::size_t selectedPaths = 0;

    std::string render() const;
};

/** The ranked output of causality analysis. */
struct MiningResult
{
    /** Contrast patterns, highest impact first. */
    std::vector<ContrastPattern> patterns;
    MiningStats stats;

    /** Sum of P.C over all patterns. */
    DurationNs totalPatternCost() const;
    /** Sum of P.C over patterns whose maxExec exceeds @p t_slow. */
    DurationNs impactfulPatternCost(DurationNs t_slow) const;
};

/**
 * Mines contrast patterns between a fast-class and a slow-class AWG.
 */
class ContrastMiner
{
  public:
    ContrastMiner(const TraceCorpus &corpus, MiningOptions options = {});

    /**
     * Run the three mining steps.
     *
     * @param threads Worker count (0 = all hardware threads, 1 =
     *        serial). Meta-pattern enumeration and the full-path walk
     *        are sharded over AWG node/root partitions; per-shard maps
     *        merge by integer summation (associative and commutative)
     *        and the final ranking uses a strict total order, so the
     *        ranked result is bit-identical for every thread count.
     */
    MiningResult mine(const AggregatedWaitGraph &fast,
                      const AggregatedWaitGraph &slow,
                      unsigned threads = 1) const;

    /**
     * Step 1 alone: enumerate and aggregate the meta-patterns of one
     * AWG (exposed for tests and the ablation bench). Sharded over
     * segment-start nodes when @p threads allows.
     */
    std::unordered_map<SignatureSetTuple, MetaPatternStats,
                       SignatureSetTupleHash>
    enumerateMetaPatterns(const AggregatedWaitGraph &awg,
                          unsigned threads = 1) const;

    const MiningOptions &options() const { return options_; }

  private:
    const TraceCorpus &corpus_;
    MiningOptions options_;
};

} // namespace tracelens

#endif // TRACELENS_MINING_MINER_H
