/**
 * @file
 * Cross-scenario pattern index: normalizes mined tuples and tracks
 * which scenarios each generalized pattern recurs in.
 */

#include "src/mining/patternindex.h"

#include <algorithm>
#include <unordered_set>

#include "src/util/wildcard.h"

namespace tracelens
{

PatternIndex::PatternIndex(const SymbolTable &symbols)
    : symbols_(symbols)
{
}

void
PatternIndex::add(std::string_view scenario, const MiningResult &result)
{
    const auto scenario_id =
        static_cast<std::uint32_t>(scenarios_.size());
    scenarios_.emplace_back(scenario);

    for (std::size_t rank = 0; rank < result.patterns.size(); ++rank) {
        const auto id = static_cast<std::uint32_t>(patterns_.size());
        patterns_.push_back({scenario_id, rank, result.patterns[rank]});

        std::unordered_set<FrameId> frames;
        const SignatureSetTuple &tuple = result.patterns[rank].tuple;
        for (const auto *set : {&tuple.waits, &tuple.unwaits,
                                &tuple.runnings}) {
            for (FrameId f : *set) {
                if (f != kNoFrame)
                    frames.insert(f);
            }
        }
        for (FrameId f : frames)
            byFrame_[f].push_back(id);
    }
}

std::vector<PatternHit>
PatternIndex::gather(const std::vector<std::uint32_t> &ids) const
{
    std::vector<PatternHit> hits;
    hits.reserve(ids.size());
    for (std::uint32_t id : ids) {
        const Stored &stored = patterns_[id];
        hits.push_back({scenarios_[stored.scenario], stored.rank,
                        stored.pattern});
    }
    std::sort(hits.begin(), hits.end(),
              [](const PatternHit &a, const PatternHit &b) {
                  if (a.pattern.impact() != b.pattern.impact())
                      return a.pattern.impact() > b.pattern.impact();
                  if (a.scenario != b.scenario)
                      return a.scenario < b.scenario;
                  return a.rank < b.rank;
              });
    return hits;
}

std::vector<PatternHit>
PatternIndex::bySignature(FrameId frame) const
{
    auto it = byFrame_.find(frame);
    if (it == byFrame_.end())
        return {};
    return gather(it->second);
}

std::vector<PatternHit>
PatternIndex::bySignatureName(std::string_view signature) const
{
    // The symbol table has no reverse name lookup beyond interning; a
    // linear scan over indexed frames keeps the index read-only.
    for (const auto &[frame, ids] : byFrame_) {
        if (symbols_.frameName(frame) == signature)
            return gather(ids);
    }
    return {};
}

std::vector<PatternHit>
PatternIndex::byComponent(std::string_view component_glob) const
{
    std::vector<std::uint32_t> ids;
    std::unordered_set<std::uint32_t> seen;
    const std::string glob(component_glob);
    for (const auto &[frame, frame_ids] : byFrame_) {
        if (!wildcardMatch(glob, symbols_.componentName(frame)))
            continue;
        for (std::uint32_t id : frame_ids) {
            if (seen.insert(id).second)
                ids.push_back(id);
        }
    }
    return gather(ids);
}

} // namespace tracelens
