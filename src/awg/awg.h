/**
 * @file
 * Aggregated Wait Graphs (paper Definitions 2-3 and Algorithm 1).
 *
 * An AWG abstracts and aggregates the runtime behaviour of a *set* of
 * Wait Graphs belonging to one class of scenario instances. It is a
 * forest whose inner nodes are *waiting* nodes (merged wait/unwait event
 * pairs) and whose leaves are *running* or *hardware-service* nodes.
 * Each node carries a signature, an aggregated duration v.C, and an
 * occurrence counter v.N.
 *
 * The *signature* of an event is the topmost frame of its callstack that
 * belongs to one of the chosen components ({C}); events whose stacks
 * contain no component frame get the reserved signature kNoFrame,
 * rendered as "<other>". Hardware-service nodes carry their dummy
 * signature (the top stack frame, e.g. "DiskService").
 *
 * Aggregation follows Algorithm 1:
 *   1. eliminate component-irrelevant nodes, promoting children (the
 *     paper applies this at the roots; we apply the same rule
 *     recursively so inner kernel-only hops collapse as well, keeping
 *     patterns focused on component behaviour),
 *   2. merge paired wait/unwait nodes into waiting nodes,
 *   3. merge the processed trees into the AWG trie by common signature
 *     prefix,
 *   4. reduce non-optimizable portions: prune root waiting nodes whose
 *     sole child is a single hardware-service leaf (hardware time that
 *     did not propagate anywhere is not actionable). The pruned cost is
 *     retained in statistics so reports can quote the non-optimizable
 *     share.
 */

#ifndef TRACELENS_AWG_AWG_H
#define TRACELENS_AWG_AWG_H

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/trace/stream.h"
#include "src/util/wildcard.h"
#include "src/waitgraph/waitgraph.h"

namespace tracelens
{

class PartialAwg; // src/core/partial.h

/** Node status in an Aggregated Wait Graph (Definition 2). */
enum class AwgStatus : std::uint8_t
{
    Waiting = 0,
    Running = 1,
    Hardware = 2,
};

/** Human-readable status name. */
std::string_view awgStatusName(AwgStatus status);

/**
 * Aggregation key of an AWG node: its status plus its signature(s).
 * Waiting nodes carry the (wait, unwait) signature pair; running and
 * hardware nodes use only @c primary.
 */
struct AwgKey
{
    AwgStatus status = AwgStatus::Running;
    FrameId primary = kNoFrame;   //!< v.w / v.r / v.h
    FrameId secondary = kNoFrame; //!< v.u (waiting nodes only)

    friend bool
    operator==(const AwgKey &a, const AwgKey &b)
    {
        return a.status == b.status && a.primary == b.primary &&
               a.secondary == b.secondary;
    }
};

/** Hash functor for AwgKey. */
struct AwgKeyHash
{
    std::size_t
    operator()(const AwgKey &k) const
    {
        std::size_t h = static_cast<std::size_t>(k.status);
        h = h * 0x9e3779b97f4a7c15ULL + k.primary;
        h = h * 0x9e3779b97f4a7c15ULL + k.secondary;
        return h;
    }
};

/**
 * An Aggregated Wait Graph: trie-shaped forest of aggregated nodes.
 */
class AggregatedWaitGraph
{
  public:
    /** One aggregated node (Definition 3). */
    struct Node
    {
        AwgKey key;
        DurationNs cost = 0;      //!< v.C: summed duration.
        std::uint64_t count = 0;  //!< v.N: number of merged source nodes.
        DurationNs maxCost = 0;   //!< Largest single source duration.
        std::vector<std::uint32_t> children;
    };

    const std::vector<Node> &nodes() const { return nodes_; }
    const std::vector<std::uint32_t> &roots() const { return roots_; }
    const Node &node(std::uint32_t index) const;
    bool empty() const { return roots_.empty(); }

    /** Cost removed by the non-optimizable reduction (step 4). */
    DurationNs reducedCost() const { return reducedCost_; }
    /** Nodes removed by the reduction. */
    std::uint64_t reducedNodes() const { return reducedNodes_; }
    /** Total cost of all root nodes after reduction. */
    DurationNs totalRootCost() const;
    /** Number of wait graphs aggregated. */
    std::size_t sourceGraphs() const { return sourceGraphs_; }

    /** Render the forest as an indented text tree (for Figure 2). */
    std::string renderText(const SymbolTable &symbols,
                           std::size_t max_nodes = 200) const;

    /** Render the forest in Graphviz DOT syntax. */
    std::string renderDot(const SymbolTable &symbols,
                          std::size_t max_nodes = 500) const;

  private:
    friend class AwgBuilder;
    /** Binary artifact-cache codec (src/core/artifacts.cpp). */
    friend struct AwgCodec;
    /** The trie-under-construction accumulator (src/core/partial.h). */
    friend class PartialAwg;

    std::vector<Node> nodes_;
    std::vector<std::uint32_t> roots_;
    DurationNs reducedCost_ = 0;
    std::uint64_t reducedNodes_ = 0;
    std::size_t sourceGraphs_ = 0;
};

/** Options controlling AWG construction. */
struct AwgOptions
{
    /**
     * When true (default), the component-irrelevant elimination of
     * Algorithm 1 is applied recursively to inner nodes, not only to
     * roots. The ablation bench flips this off.
     */
    bool eliminateInnerIrrelevant = true;

    /** When false, skip the non-optimizable reduction (ablation). */
    bool reduceNonOptimizable = true;
};

/**
 * Builds Aggregated Wait Graphs from sets of Wait Graphs (Algorithm 1).
 */
class AwgBuilder
{
  public:
    AwgBuilder(const TraceCorpus &corpus, NameFilter components,
               AwgOptions options = {});

    /**
     * Aggregate @p graphs into one AWG.
     *
     * @param threads Worker count for the per-graph processing phase
     *        (0 = all hardware threads, 1 = serial). Steps 1-2 of
     *        Algorithm 1 run per graph and are sharded over instance
     *        partitions; the trie merge (step 3) is associative but
     *        order-sensitive in node layout, so it folds the processed
     *        forests serially in graph order through a PartialAwg
     *        accumulator (src/core/partial.h). The result is
     *        bit-identical to the serial path for every thread count.
     */
    AggregatedWaitGraph aggregate(std::span<const WaitGraph> graphs,
                                  unsigned threads = 1) const;

    /**
     * aggregate() without the finalize: the still-mergeable,
     * unreduced trie. Shard fragments produced this way merge (in
     * shard order) into exactly the trie aggregate() would build over
     * the concatenated graphs; the non-optimizable reduction is then
     * applied once by PartialAwg::finalize().
     */
    PartialAwg aggregatePartial(std::span<const WaitGraph> graphs,
                                unsigned threads = 1) const;

    const NameFilter &components() const { return components_; }

  private:
    /** Intermediate per-graph node after merge + signature mapping. */
    struct ProcNode
    {
        AwgKey key;
        DurationNs cost = 0;
        std::vector<ProcNode> children;
    };

    /**
     * Steps 1-2 of Algorithm 1 for one graph: eliminate irrelevant
     * nodes (roots always; inner nodes when configured) and merge
     * wait/unwait pairs. Thread-safe once the component filter is
     * primed (done in the constructor).
     */
    std::vector<ProcNode> processGraph(const WaitGraph &graph) const;

    /** Signature of a callstack: topmost component frame or kNoFrame. */
    FrameId signatureOf(CallstackId stack) const;

    /** Dummy signature of a hardware event: its topmost frame. */
    FrameId hardwareSignatureOf(CallstackId stack) const;

    /**
     * Convert one wait-graph subtree into processed form (steps 1-2 of
     * Algorithm 1). Appends resulting nodes (zero, one, or many after
     * irrelevant-node promotion) to @p out.
     */
    void process(const WaitGraph &graph, std::uint32_t node_index,
                 std::vector<ProcNode> &out) const;

    /** Merge a processed tree into @p partial under @p parent
     *  (step 3's trie merge, one source node at a time). */
    static void mergeProc(PartialAwg &partial, std::uint32_t parent,
                          const ProcNode &node);

    const TraceCorpus &corpus_;
    NameFilter components_;
    AwgOptions options_;
};

} // namespace tracelens

#endif // TRACELENS_AWG_AWG_H
