/**
 * @file
 * AWG construction: Algorithm 1's processing, trie merge, and
 * non-optimizable reduction, with instance-sharded parallel processing.
 */

#include "src/awg/awg.h"

#include <algorithm>
#include <sstream>

#include "src/core/partial.h"
#include "src/util/logging.h"
#include "src/util/parallel.h"
#include "src/util/telemetry.h"

namespace tracelens
{

std::string_view
awgStatusName(AwgStatus status)
{
    switch (status) {
      case AwgStatus::Waiting:
        return "waiting";
      case AwgStatus::Running:
        return "running";
      case AwgStatus::Hardware:
        return "hardware";
    }
    TL_PANIC("bad AWG status ", static_cast<int>(status));
}

const AggregatedWaitGraph::Node &
AggregatedWaitGraph::node(std::uint32_t index) const
{
    TL_ASSERT(index < nodes_.size(), "bad AWG node ", index);
    return nodes_[index];
}

DurationNs
AggregatedWaitGraph::totalRootCost() const
{
    DurationNs total = 0;
    for (std::uint32_t root : roots_)
        total += nodes_[root].cost;
    return total;
}

namespace
{

std::string
frameLabel(const SymbolTable &symbols, FrameId frame)
{
    return frame == kNoFrame ? "<other>" : symbols.frameName(frame);
}

std::string
nodeLabel(const SymbolTable &symbols,
          const AggregatedWaitGraph::Node &node)
{
    std::ostringstream oss;
    switch (node.key.status) {
      case AwgStatus::Waiting:
        oss << frameLabel(symbols, node.key.primary) << " -> "
            << frameLabel(symbols, node.key.secondary);
        break;
      case AwgStatus::Running:
      case AwgStatus::Hardware:
        oss << frameLabel(symbols, node.key.primary);
        break;
    }
    oss << " [" << awgStatusName(node.key.status)
        << " C=" << toMs(node.cost) << "ms N=" << node.count << "]";
    return oss.str();
}

} // namespace

std::string
AggregatedWaitGraph::renderText(const SymbolTable &symbols,
                                std::size_t max_nodes) const
{
    std::ostringstream oss;
    std::size_t emitted = 0;

    // Children sorted by aggregated cost, heaviest first.
    auto sortedByCost = [&](std::vector<std::uint32_t> ids) {
        std::sort(ids.begin(), ids.end(),
                  [&](std::uint32_t a, std::uint32_t b) {
                      return nodes_[a].cost > nodes_[b].cost;
                  });
        return ids;
    };

    struct Frame
    {
        std::uint32_t node;
        std::size_t depth;
    };
    std::vector<Frame> stack;
    for (std::uint32_t root : sortedByCost(roots_))
        stack.push_back({root, 0});
    std::reverse(stack.begin(), stack.end());

    while (!stack.empty()) {
        const auto [id, depth] = stack.back();
        stack.pop_back();
        if (emitted++ >= max_nodes) {
            oss << "...\n";
            break;
        }
        const Node &n = nodes_[id];
        oss << std::string(depth * 2, ' ') << nodeLabel(symbols, n)
            << "\n";
        auto kids = sortedByCost(n.children);
        std::reverse(kids.begin(), kids.end());
        for (std::uint32_t child : kids)
            stack.push_back({child, depth + 1});
    }
    return oss.str();
}

std::string
AggregatedWaitGraph::renderDot(const SymbolTable &symbols,
                               std::size_t max_nodes) const
{
    std::ostringstream oss;
    oss << "digraph awg {\n  rankdir=TB;\n  node [shape=box];\n";
    std::size_t emitted = 0;
    std::vector<std::uint32_t> stack(roots_.rbegin(), roots_.rend());
    std::vector<char> visited(nodes_.size(), 0);
    while (!stack.empty() && emitted < max_nodes) {
        const std::uint32_t id = stack.back();
        stack.pop_back();
        if (visited[id])
            continue;
        visited[id] = 1;
        ++emitted;
        oss << "  n" << id << " [label=\"" << nodeLabel(symbols,
                                                        nodes_[id])
            << "\"];\n";
        for (std::uint32_t child : nodes_[id].children) {
            oss << "  n" << id << " -> n" << child << ";\n";
            stack.push_back(child);
        }
    }
    oss << "}\n";
    return oss.str();
}

AwgBuilder::AwgBuilder(const TraceCorpus &corpus, NameFilter components,
                       AwgOptions options)
    : corpus_(corpus), components_(std::move(components)),
      options_(options)
{
    corpus_.symbols().primeFilter(components_);
}

FrameId
AwgBuilder::signatureOf(CallstackId stack) const
{
    if (stack == kNoCallstack)
        return kNoFrame;
    return corpus_.symbols().topMatchingFrame(stack, components_);
}

FrameId
AwgBuilder::hardwareSignatureOf(CallstackId stack) const
{
    if (stack == kNoCallstack)
        return kNoFrame;
    const auto frames = corpus_.symbols().stackFrames(stack);
    return frames.empty() ? kNoFrame : frames.back();
}

void
AwgBuilder::process(const WaitGraph &graph, std::uint32_t node_index,
                    std::vector<ProcNode> &out) const
{
    const WaitGraph::Node &source = graph.node(node_index);
    const Event &e = source.event;

    switch (e.type) {
      case EventType::Wait: {
        const FrameId wsig = signatureOf(e.stack);
        const FrameId usig = signatureOf(source.unwaitStack);

        const bool relevant = wsig != kNoFrame || usig != kNoFrame;
        if (!relevant && options_.eliminateInnerIrrelevant) {
            // Promote children in place of the irrelevant wait.
            for (std::uint32_t child : graph.children(source))
                process(graph, child, out);
            return;
        }

        ProcNode node;
        node.key = {AwgStatus::Waiting, wsig, usig};
        node.cost = e.cost;
        for (std::uint32_t child : graph.children(source))
            process(graph, child, node.children);
        out.push_back(std::move(node));
        return;
      }
      case EventType::Running: {
        const FrameId sig = signatureOf(e.stack);
        if (sig == kNoFrame && options_.eliminateInnerIrrelevant)
            return;
        out.push_back({{AwgStatus::Running, sig, kNoFrame}, e.cost, {}});
        return;
      }
      case EventType::HardwareService: {
        const FrameId sig = hardwareSignatureOf(e.stack);
        if (sig == kNoFrame)
            return;
        out.push_back({{AwgStatus::Hardware, sig, kNoFrame}, e.cost, {}});
        return;
      }
      case EventType::Unwait:
        // Paired unwaits were merged into their wait node; stray unwait
        // children are instantaneous and carry no cost — dropped.
        return;
    }
    TL_PANIC("bad event type in wait graph");
}

void
AwgBuilder::mergeProc(PartialAwg &partial, std::uint32_t parent,
                      const ProcNode &node)
{
    const std::uint32_t id = partial.absorb(parent, node.key, node.cost);
    for (const ProcNode &child : node.children)
        mergeProc(partial, id, child);
}

std::vector<AwgBuilder::ProcNode>
AwgBuilder::processGraph(const WaitGraph &graph) const
{
    // Steps 1-2: eliminate irrelevant nodes (always at the roots,
    // recursively when configured) and merge wait/unwait pairs.
    std::vector<ProcNode> processed;
    for (std::uint32_t root : graph.roots())
        process(graph, root, processed);

    if (!options_.eliminateInnerIrrelevant) {
        // Root-level elimination is unconditional in Algorithm 1:
        // repeat promoting children until all roots are relevant.
        std::vector<ProcNode> relevant_roots;
        std::vector<ProcNode> queue = std::move(processed);
        while (!queue.empty()) {
            std::vector<ProcNode> next;
            for (ProcNode &n : queue) {
                const bool irrelevant = n.key.primary == kNoFrame &&
                                        n.key.secondary == kNoFrame;
                if (!irrelevant) {
                    relevant_roots.push_back(std::move(n));
                } else {
                    for (ProcNode &c : n.children)
                        next.push_back(std::move(c));
                }
            }
            queue = std::move(next);
        }
        processed = std::move(relevant_roots);
    }
    return processed;
}

PartialAwg
AwgBuilder::aggregatePartial(std::span<const WaitGraph> graphs,
                             unsigned threads) const
{
    Span span("awg.aggregate", "analysis");
    if (span.active())
        span.arg("graphs", static_cast<std::uint64_t>(graphs.size()));

    PartialAwg partial;
    partial.addSourceGraphs(graphs.size());

    if (resolveThreads(threads) <= 1 || graphs.size() < 2) {
        for (const WaitGraph &graph : graphs) {
            // Step 3: merge into the trie by common signature prefix.
            for (const ProcNode &root : processGraph(graph))
                mergeProc(partial, kInvalidIndex, root);
        }
    } else {
        // Shard the per-graph processing (the expensive phase: it
        // walks every wait-graph node and resolves signatures), then
        // fold the forests into the trie serially in graph order —
        // node creation order, child order, and therefore the whole
        // AWG are bit-identical to the serial path.
        const std::vector<std::vector<ProcNode>> processed =
            parallelMap<std::vector<ProcNode>>(
                threads, graphs.size(),
                [&](std::size_t i) { return processGraph(graphs[i]); });
        for (const std::vector<ProcNode> &forest : processed) {
            for (const ProcNode &root : forest)
                mergeProc(partial, kInvalidIndex, root);
        }
    }
    return partial;
}

AggregatedWaitGraph
AwgBuilder::aggregate(std::span<const WaitGraph> graphs,
                      unsigned threads) const
{
    // Step 4 (the non-optimizable reduction) happens in finalize().
    return aggregatePartial(graphs, threads)
        .finalize(options_.reduceNonOptimizable);
}

} // namespace tracelens
