/**
 * @file
 * Impact analysis (paper Section 3).
 *
 * Given scenario-instance Wait Graphs and a component filter (e.g.
 * "*.sys" for all device drivers), the impact analysis measures:
 *
 *  - D_scn: aggregated execution time of all instances (sum of the
 *    time periods of top-level events, instance by instance),
 *  - D_wait: aggregated duration of *top-level* wait events of the
 *    chosen components (BFS that does not descend into counted waits,
 *    so child events already covered by a parent are not re-counted),
 *  - D_run: aggregated duration of running events whose callstacks
 *    contain the chosen components,
 *  - D_waitdist: D_wait with duplicate wait events (same stream event
 *    appearing in multiple instances' graphs) counted once,
 *
 * and derives the output metrics:
 *
 *  - IA_run  = D_run / D_scn,
 *  - IA_wait = D_wait / D_scn,
 *  - IA_opt  = (D_wait - D_waitdist) / D_scn — the share of waiting
 *    introduced by cost propagation, an upper bound on the optimization
 *    potential.
 */

#ifndef TRACELENS_IMPACT_IMPACT_H
#define TRACELENS_IMPACT_IMPACT_H

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/trace/stream.h"
#include "src/util/wildcard.h"
#include "src/waitgraph/waitgraph.h"

namespace tracelens
{

class PartialImpact; // src/core/partial.h

/** Aggregated impact metrics for one set of instances. */
struct ImpactResult
{
    DurationNs dScn = 0;      //!< Total instance duration.
    DurationNs dWait = 0;     //!< Total component wait duration.
    DurationNs dRun = 0;      //!< Total component running duration.
    DurationNs dWaitDist = 0; //!< Distinct-wait duration.
    std::size_t instances = 0;

    /** IA_run = D_run / D_scn. */
    double iaRun() const;
    /** IA_wait = D_wait / D_scn. */
    double iaWait() const;
    /** IA_opt = (D_wait - D_waitdist) / D_scn. */
    double iaOpt() const;
    /** D_wait / D_waitdist: average instances one wait propagates to. */
    double waitAmplification() const;

    /** One-line summary for reports. */
    std::string render() const;
};

/**
 * Measures component performance impact over Wait Graphs.
 *
 * The distinct-wait set is tracked per analyze() call, so a single call
 * over many instances yields the corpus-level D_waitdist.
 */
class ImpactAnalysis
{
  public:
    /**
     * @param corpus Corpus the graphs were built from.
     * @param components Component name filter (e.g. {"*.sys"}).
     */
    ImpactAnalysis(const TraceCorpus &corpus, NameFilter components);

    /**
     * Aggregate impact over the given instance graphs.
     *
     * @param threads Worker count for the per-graph scan (0 = all
     *        hardware threads, 1 = serial). The D_waitdist dedup is
     *        order-sensitive (the same wait event can carry different
     *        window-clipped costs in different graphs), so the scan is
     *        parallelized per graph and the dedup fold runs serially
     *        in graph order — the result is bit-identical to the
     *        serial path for every thread count.
     */
    ImpactResult analyze(std::span<const WaitGraph> graphs,
                         unsigned threads = 1) const;

    /**
     * Aggregate impact separately per scenario id. Note D_waitdist is
     * de-duplicated within each scenario's own instance set. Same
     * determinism contract as analyze().
     */
    std::unordered_map<std::uint32_t, ImpactResult>
    analyzePerScenario(std::span<const WaitGraph> graphs,
                       unsigned threads = 1) const;

    /**
     * analyze() without the finalize: the mergeable accumulator,
     * for callers that combine several instance subsets (the
     * coordinator's cross-shard gather). analyze() is exactly
     * analyzePartial().finalize().
     */
    PartialImpact analyzePartial(std::span<const WaitGraph> graphs,
                                 unsigned threads = 1) const;

    /**
     * analyzePerScenario() as accumulators, one per scenario id in
     * ascending id order (deterministic for encoding).
     */
    std::vector<std::pair<std::uint32_t, PartialImpact>>
    analyzePerScenarioPartial(std::span<const WaitGraph> graphs,
                              unsigned threads = 1) const;

    const NameFilter &components() const { return components_; }

  private:
    /**
     * The order-insensitive part of one graph's contribution: sums
     * that merge commutatively, plus the matched top-level waits in
     * BFS order whose dedup must be replayed serially.
     */
    struct GraphContribution
    {
        DurationNs dScn = 0;
        DurationNs dRun = 0;
        /** Matched top-level waits (ref, clipped cost), in BFS order. */
        std::vector<std::pair<EventRef, DurationNs>> waitHits;
    };

    /** Scan one graph (thread-safe: touches only primed caches). */
    GraphContribution collect(const WaitGraph &graph) const;

    const TraceCorpus &corpus_;
    NameFilter components_;
};

} // namespace tracelens

#endif // TRACELENS_IMPACT_IMPACT_H
