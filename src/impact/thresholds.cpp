/**
 * @file
 * Duration-distribution scan (knee/percentile heuristics) that
 * proposes T_fast / T_slow per scenario.
 */

#include "src/impact/thresholds.h"

#include <sstream>

#include "src/util/logging.h"
#include "src/util/stats.h"

namespace tracelens
{

std::string
ThresholdSuggestion::render() const
{
    std::ostringstream oss;
    oss << "instances=" << instances << " p25=" << toMs(p25)
        << "ms p50=" << toMs(p50) << "ms p90=" << toMs(p90)
        << "ms p99=" << toMs(p99) << "ms -> T_fast=" << toMs(tFast)
        << "ms T_slow=" << toMs(tSlow) << "ms";
    return oss.str();
}

ThresholdSuggestion
suggestThresholds(const TraceCorpus &corpus, std::uint32_t scenario)
{
    // Branch-light gather over the two instance columns: the scenario
    // filter touches 4 bytes per instance and only matching rows pull
    // a duration.
    SampleSet durations;
    const auto scenarios = corpus.instanceScenarios();
    const auto inst_durations = corpus.instanceDurations();
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        if (scenarios[i] == scenario)
            durations.add(static_cast<double>(inst_durations[i]));
    }

    ThresholdSuggestion suggestion;
    suggestion.instances = durations.count();
    if (suggestion.instances == 0)
        return suggestion;

    auto quantile = [&](double q) {
        return static_cast<DurationNs>(durations.quantile(q));
    };
    suggestion.p25 = quantile(0.25);
    suggestion.p50 = quantile(0.50);
    suggestion.p90 = quantile(0.90);
    suggestion.p99 = quantile(0.99);

    suggestion.tFast = suggestion.p50;
    suggestion.tSlow = std::max(suggestion.p90, 2 * suggestion.tFast);
    if (suggestion.tFast <= 0) {
        // Degenerate distribution (zero-duration instances).
        suggestion.tFast = 1;
        suggestion.tSlow = 2;
    }
    return suggestion;
}

ThresholdSuggestion
suggestThresholds(const TraceCorpus &corpus,
                  std::string_view scenario_name)
{
    const std::uint32_t id = corpus.findScenario(scenario_name);
    if (id == UINT32_MAX)
        TL_FATAL("scenario '", std::string(scenario_name),
                 "' not in corpus");
    return suggestThresholds(corpus, id);
}

} // namespace tracelens
