/**
 * @file
 * Impact-metric splits keyed by a stream tag: groups streams by tag
 * value and runs the corpus-wide accumulation per cohort.
 */

#include "src/impact/cohorts.h"

#include <algorithm>
#include <map>

namespace tracelens
{

std::vector<CohortImpact>
impactByCohort(const TraceCorpus &corpus,
               std::span<const WaitGraph> graphs,
               const NameFilter &components, const std::string &tag_key)
{
    // Partition graph indices by tag value (ordered for determinism).
    std::map<std::string, std::vector<const WaitGraph *>> partitions;
    for (const WaitGraph &graph : graphs) {
        const TraceStream &stream =
            corpus.stream(graph.instance().stream);
        partitions[stream.tag(tag_key)].push_back(&graph);
    }

    ImpactAnalysis analysis(corpus, components);
    std::vector<CohortImpact> cohorts;
    cohorts.reserve(partitions.size());
    for (const auto &[value, members] : partitions) {
        // Copy the member graphs into a contiguous span for analyze().
        std::vector<WaitGraph> subset;
        subset.reserve(members.size());
        double duration_sum = 0.0;
        for (const WaitGraph *graph : members) {
            subset.push_back(*graph);
            duration_sum += toMs(graph->instance().duration());
        }
        CohortImpact cohort;
        cohort.value = value;
        cohort.impact = analysis.analyze(subset);
        cohort.meanDurationMs =
            members.empty()
                ? 0.0
                : duration_sum / static_cast<double>(members.size());
        cohorts.push_back(std::move(cohort));
    }
    return cohorts;
}

} // namespace tracelens
