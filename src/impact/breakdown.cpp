/**
 * @file
 * Per-component and per-signature splits of the Section-3 impact
 * metrics over cached wait graphs.
 */

#include "src/impact/breakdown.h"

#include <algorithm>
#include <deque>
#include <sstream>
#include <unordered_map>

#include "src/util/table.h"

namespace tracelens
{

namespace
{

/** Accumulate per-component wait/run over one graph's top levels. */
void
accumulateComponents(
    const TraceCorpus &corpus, const WaitGraph &graph,
    const NameFilter &components,
    std::unordered_map<std::uint32_t, ComponentImpact> &by_component)
{
    const SymbolTable &sym = corpus.symbols();

    // Top-level component waits: BFS stopping at matching waits.
    std::deque<std::uint32_t> queue(graph.roots().begin(),
                                    graph.roots().end());
    while (!queue.empty()) {
        const WaitGraph::Node &node = graph.node(queue.front());
        queue.pop_front();
        const Event &e = node.event;
        if (e.type == EventType::Wait && e.stack != kNoCallstack) {
            const FrameId sig = sym.topMatchingFrame(e.stack,
                                                     components);
            if (sig != kNoFrame) {
                ComponentImpact &entry =
                    by_component[sym.componentId(sig)];
                if (entry.component.empty())
                    entry.component = sym.componentName(sig);
                entry.wait += e.cost;
                ++entry.waitEvents;
                continue;
            }
        }
        for (std::uint32_t child : graph.children(node))
            queue.push_back(child);
    }

    // Running attribution across the whole graph.
    for (const WaitGraph::Node &node : graph.nodes()) {
        const Event &e = node.event;
        if (e.type != EventType::Running || e.stack == kNoCallstack)
            continue;
        const FrameId sig = sym.topMatchingFrame(e.stack, components);
        if (sig == kNoFrame)
            continue;
        ComponentImpact &entry = by_component[sym.componentId(sig)];
        if (entry.component.empty())
            entry.component = sym.componentName(sig);
        entry.run += e.cost;
    }
}

std::vector<ComponentImpact>
sortedComponents(
    std::unordered_map<std::uint32_t, ComponentImpact> by_component)
{
    std::vector<ComponentImpact> result;
    result.reserve(by_component.size());
    for (auto &[id, entry] : by_component)
        result.push_back(std::move(entry));
    std::sort(result.begin(), result.end(),
              [](const ComponentImpact &a, const ComponentImpact &b) {
                  if (a.total() != b.total())
                      return a.total() > b.total();
                  return a.component < b.component;
              });
    return result;
}

} // namespace

std::vector<ComponentImpact>
impactByComponent(const TraceCorpus &corpus,
                  std::span<const WaitGraph> graphs,
                  const NameFilter &components)
{
    corpus.symbols().primeFilter(components);
    std::unordered_map<std::uint32_t, ComponentImpact> by_component;
    for (const WaitGraph &graph : graphs)
        accumulateComponents(corpus, graph, components, by_component);
    return sortedComponents(std::move(by_component));
}

std::string
InstanceBreakdown::render() const
{
    std::ostringstream oss;
    oss << "total " << toMs(total) << "ms = running "
        << toMs(running) << "ms + component-wait "
        << toMs(componentWait) << "ms + other-wait "
        << toMs(otherWait) << "ms + hardware " << toMs(hardware)
        << "ms + unattributed " << toMs(unattributed) << "ms\n";
    for (const ComponentImpact &c : byComponent) {
        oss << "  " << c.component << ": wait " << toMs(c.wait)
            << "ms (" << c.waitEvents << " waits), run "
            << toMs(c.run) << "ms\n";
    }
    return oss.str();
}

InstanceBreakdown
explainInstance(const TraceCorpus &corpus, const WaitGraph &graph,
                const NameFilter &components)
{
    corpus.symbols().primeFilter(components);
    const SymbolTable &sym = corpus.symbols();

    InstanceBreakdown breakdown;
    breakdown.total = graph.instance().duration();

    std::unordered_map<std::uint32_t, ComponentImpact> by_component;
    accumulateComponents(corpus, graph, components, by_component);
    breakdown.byComponent = sortedComponents(std::move(by_component));
    for (const ComponentImpact &c : breakdown.byComponent)
        breakdown.componentWait += c.wait;

    // Top-level (root) accounting for the remaining categories. A
    // non-matching root wait's time is split: the parts covered by
    // nested component waits were already counted above; the remainder
    // is "other wait".
    DurationNs nested_component_under_other = 0;
    for (std::uint32_t root : graph.roots()) {
        const WaitGraph::Node &node = graph.node(root);
        const Event &e = node.event;
        switch (e.type) {
          case EventType::Running:
            breakdown.running += e.cost;
            break;
          case EventType::HardwareService:
            breakdown.hardware += e.cost;
            break;
          case EventType::Wait: {
            const FrameId sig =
                e.stack == kNoCallstack
                    ? kNoFrame
                    : sym.topMatchingFrame(e.stack, components);
            if (sig == kNoFrame) {
                breakdown.otherWait += e.cost;
                // Subtract the nested component waits counted within.
                const auto kids = graph.children(node);
                std::deque<std::uint32_t> queue(kids.begin(),
                                                kids.end());
                while (!queue.empty()) {
                    const auto &child = graph.node(queue.front());
                    queue.pop_front();
                    const Event &ce = child.event;
                    if (ce.type == EventType::Wait &&
                        ce.stack != kNoCallstack &&
                        sym.topMatchingFrame(ce.stack, components) !=
                            kNoFrame) {
                        nested_component_under_other += ce.cost;
                        continue;
                    }
                    for (std::uint32_t grand : graph.children(child))
                        queue.push_back(grand);
                }
            }
            break;
          }
          case EventType::Unwait:
            break;
        }
    }
    breakdown.otherWait = std::max<DurationNs>(
        0, breakdown.otherWait - nested_component_under_other);

    const DurationNs accounted =
        breakdown.running + breakdown.componentWait +
        breakdown.otherWait + breakdown.hardware;
    breakdown.unattributed =
        std::max<DurationNs>(0, breakdown.total - accounted);
    return breakdown;
}

} // namespace tracelens
