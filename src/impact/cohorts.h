/**
 * @file
 * Cohort analysis: split the impact metrics by a stream tag.
 *
 * Streams carry environment metadata (storage encryption, disk class,
 * load). Splitting IA_wait / IA_opt by cohort quantifies environmental
 * observations the paper makes qualitatively — e.g. "if the system
 * also enables storage encryption, the situation could become worse"
 * (Section 5.2.4) — directly from the same trace corpus.
 */

#ifndef TRACELENS_IMPACT_COHORTS_H
#define TRACELENS_IMPACT_COHORTS_H

#include <span>
#include <string>
#include <vector>

#include "src/impact/impact.h"

namespace tracelens
{

/** Impact metrics of the instances whose streams share a tag value. */
struct CohortImpact
{
    std::string value;       //!< The tag value ("1", "hdd", ...).
    ImpactResult impact;     //!< Metrics over that cohort's instances.
    double meanDurationMs = 0.0; //!< Mean instance duration.
};

/**
 * Group the graphs by their stream's value for @p tag_key and compute
 * impact per group (D_waitdist de-duplicated within each cohort).
 * Sorted by cohort value for deterministic output. Streams without the
 * tag fall into the "unknown" cohort.
 */
std::vector<CohortImpact>
impactByCohort(const TraceCorpus &corpus,
               std::span<const WaitGraph> graphs,
               const NameFilter &components, const std::string &tag_key);

} // namespace tracelens

#endif // TRACELENS_IMPACT_COHORTS_H
