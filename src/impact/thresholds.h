/**
 * @file
 * Threshold suggestion.
 *
 * The causality analysis takes developer-specified performance
 * thresholds T_fast and T_slow per scenario (the paper: "developers
 * need to explicitly specify the two thresholds ... as a part of
 * performance specification"). When a specification does not exist
 * yet, this helper proposes thresholds from the observed duration
 * distribution: T_fast at the median (instances faster than typical
 * are "expected"), T_slow at the 90th percentile (the degraded tail),
 * widened to keep the paper's T_slow - T_fast >> 0 requirement.
 */

#ifndef TRACELENS_IMPACT_THRESHOLDS_H
#define TRACELENS_IMPACT_THRESHOLDS_H

#include <string>

#include "src/trace/stream.h"

namespace tracelens
{

/** Duration statistics and proposed thresholds for one scenario. */
struct ThresholdSuggestion
{
    std::size_t instances = 0;
    DurationNs p25 = 0;
    DurationNs p50 = 0;
    DurationNs p90 = 0;
    DurationNs p99 = 0;
    DurationNs tFast = 0;
    DurationNs tSlow = 0;

    /** True when there were enough instances to suggest anything. */
    bool usable() const { return instances >= 10; }

    std::string render() const;
};

/**
 * Suggest thresholds for @p scenario (interned id) from the corpus'
 * instance durations. The suggestion guarantees tSlow >= 2 * tFast
 * (widening the slow bound when the distribution is tight), so the
 * contrast classes cannot blur into each other.
 */
ThresholdSuggestion suggestThresholds(const TraceCorpus &corpus,
                                      std::uint32_t scenario);

/** Convenience overload by scenario name; fatal when unknown. */
ThresholdSuggestion suggestThresholds(const TraceCorpus &corpus,
                                      std::string_view scenario_name);

} // namespace tracelens

#endif // TRACELENS_IMPACT_THRESHOLDS_H
