/**
 * @file
 * Impact-metric accumulation over Wait Graphs: per-graph scans
 * (parallelizable) feeding an order-preserving distinct-wait fold.
 */

#include "src/impact/impact.h"

#include <algorithm>
#include <deque>
#include <sstream>

#include "src/core/partial.h"
#include "src/util/logging.h"
#include "src/util/parallel.h"
#include "src/util/table.h"
#include "src/util/telemetry.h"

namespace tracelens
{

namespace
{

double
ratio(DurationNs num, DurationNs den)
{
    return den == 0 ? 0.0
                    : static_cast<double>(num) / static_cast<double>(den);
}

} // namespace

double
ImpactResult::iaRun() const
{
    return ratio(dRun, dScn);
}

double
ImpactResult::iaWait() const
{
    return ratio(dWait, dScn);
}

double
ImpactResult::iaOpt() const
{
    return ratio(dWait - dWaitDist, dScn);
}

double
ImpactResult::waitAmplification() const
{
    return dWaitDist == 0 ? 0.0 : ratio(dWait, dWaitDist);
}

std::string
ImpactResult::render() const
{
    std::ostringstream oss;
    oss << "instances=" << instances
        << " IA_run=" << TextTable::pct(iaRun())
        << " IA_wait=" << TextTable::pct(iaWait())
        << " IA_opt=" << TextTable::pct(iaOpt())
        << " Dwait/Dwaitdist=" << TextTable::num(waitAmplification(), 2);
    return oss.str();
}

ImpactAnalysis::ImpactAnalysis(const TraceCorpus &corpus,
                               NameFilter components)
    : corpus_(corpus), components_(std::move(components))
{
    corpus_.symbols().primeFilter(components_);
}

ImpactAnalysis::GraphContribution
ImpactAnalysis::collect(const WaitGraph &graph) const
{
    const SymbolTable &sym = corpus_.symbols();
    GraphContribution contribution;
    contribution.dScn = graph.topLevelDuration();

    // Top-level component waits: breadth-first search that stops at the
    // first matching wait on each path (children constitute time already
    // counted by their parent). Recorded in BFS order so the caller's
    // serial dedup fold reproduces the original accumulation exactly.
    std::deque<std::uint32_t> queue(graph.roots().begin(),
                                    graph.roots().end());
    while (!queue.empty()) {
        const WaitGraph::Node &node = graph.node(queue.front());
        queue.pop_front();
        const Event &e = node.event;
        if (e.type == EventType::Wait && e.stack != kNoCallstack &&
            sym.stackTouches(e.stack, components_)) {
            contribution.waitHits.emplace_back(node.ref, e.cost);
            continue; // do not descend into already-counted time
        }
        for (std::uint32_t child : graph.children(node))
            queue.push_back(child);
    }

    // Component running time: every running sample in the graph whose
    // callstack contains a chosen component, each distinct event counted
    // once per instance.
    std::unordered_set<EventRef, EventRefHash> seen_running;
    for (const WaitGraph::Node &node : graph.nodes()) {
        const Event &e = node.event;
        if (e.type != EventType::Running || e.stack == kNoCallstack)
            continue;
        if (!sym.stackTouches(e.stack, components_))
            continue;
        if (seen_running.insert(node.ref).second)
            contribution.dRun += e.cost;
    }
    return contribution;
}

PartialImpact
ImpactAnalysis::analyzePartial(std::span<const WaitGraph> graphs,
                               unsigned threads) const
{
    Span span("impact.analyze", "analysis");
    if (span.active())
        span.arg("graphs", static_cast<std::uint64_t>(graphs.size()));

    PartialImpact partial;
    if (resolveThreads(threads) <= 1 || graphs.size() < 2) {
        for (const WaitGraph &graph : graphs) {
            const GraphContribution c = collect(graph);
            partial.absorbInstance(c.dScn, c.dRun, c.waitHits);
        }
        return partial;
    }

    // Parallel per-graph scans, serial in-order dedup fold: the
    // accumulator sees the same (ref, cost) sequence as the serial
    // path, so the result is bit-identical.
    const std::vector<GraphContribution> contributions =
        parallelMap<GraphContribution>(
            threads, graphs.size(),
            [&](std::size_t i) { return collect(graphs[i]); });
    for (const GraphContribution &c : contributions)
        partial.absorbInstance(c.dScn, c.dRun, c.waitHits);
    return partial;
}

ImpactResult
ImpactAnalysis::analyze(std::span<const WaitGraph> graphs,
                        unsigned threads) const
{
    return analyzePartial(graphs, threads).finalize();
}

std::vector<std::pair<std::uint32_t, PartialImpact>>
ImpactAnalysis::analyzePerScenarioPartial(
    std::span<const WaitGraph> graphs, unsigned threads) const
{
    std::unordered_map<std::uint32_t, PartialImpact> partials;
    if (resolveThreads(threads) <= 1 || graphs.size() < 2) {
        for (const WaitGraph &graph : graphs) {
            const GraphContribution c = collect(graph);
            partials[graph.instance().scenario].absorbInstance(
                c.dScn, c.dRun, c.waitHits);
        }
    } else {
        const std::vector<GraphContribution> contributions =
            parallelMap<GraphContribution>(
                threads, graphs.size(),
                [&](std::size_t i) { return collect(graphs[i]); });
        for (std::size_t i = 0; i < graphs.size(); ++i) {
            const GraphContribution &c = contributions[i];
            partials[graphs[i].instance().scenario].absorbInstance(
                c.dScn, c.dRun, c.waitHits);
        }
    }

    std::vector<std::pair<std::uint32_t, PartialImpact>> ordered;
    ordered.reserve(partials.size());
    for (auto &[scenario, partial] : partials)
        ordered.emplace_back(scenario, std::move(partial));
    std::sort(ordered.begin(), ordered.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    return ordered;
}

std::unordered_map<std::uint32_t, ImpactResult>
ImpactAnalysis::analyzePerScenario(std::span<const WaitGraph> graphs,
                                   unsigned threads) const
{
    std::unordered_map<std::uint32_t, ImpactResult> results;
    for (const auto &[scenario, partial] :
         analyzePerScenarioPartial(graphs, threads))
        results.emplace(scenario, partial.finalize());
    return results;
}

} // namespace tracelens
