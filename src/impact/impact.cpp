/**
 * @file
 * Impact-metric accumulation over Wait Graphs: per-graph scans
 * (parallelizable) feeding an order-preserving distinct-wait fold.
 */

#include "src/impact/impact.h"

#include <deque>
#include <sstream>

#include "src/util/logging.h"
#include "src/util/parallel.h"
#include "src/util/table.h"
#include "src/util/telemetry.h"

namespace tracelens
{

namespace
{

double
ratio(DurationNs num, DurationNs den)
{
    return den == 0 ? 0.0
                    : static_cast<double>(num) / static_cast<double>(den);
}

} // namespace

double
ImpactResult::iaRun() const
{
    return ratio(dRun, dScn);
}

double
ImpactResult::iaWait() const
{
    return ratio(dWait, dScn);
}

double
ImpactResult::iaOpt() const
{
    return ratio(dWait - dWaitDist, dScn);
}

double
ImpactResult::waitAmplification() const
{
    return dWaitDist == 0 ? 0.0 : ratio(dWait, dWaitDist);
}

std::string
ImpactResult::render() const
{
    std::ostringstream oss;
    oss << "instances=" << instances
        << " IA_run=" << TextTable::pct(iaRun())
        << " IA_wait=" << TextTable::pct(iaWait())
        << " IA_opt=" << TextTable::pct(iaOpt())
        << " Dwait/Dwaitdist=" << TextTable::num(waitAmplification(), 2);
    return oss.str();
}

ImpactAnalysis::ImpactAnalysis(const TraceCorpus &corpus,
                               NameFilter components)
    : corpus_(corpus), components_(std::move(components))
{
    corpus_.symbols().primeFilter(components_);
}

ImpactAnalysis::GraphContribution
ImpactAnalysis::collect(const WaitGraph &graph) const
{
    const SymbolTable &sym = corpus_.symbols();
    GraphContribution contribution;
    contribution.dScn = graph.topLevelDuration();

    // Top-level component waits: breadth-first search that stops at the
    // first matching wait on each path (children constitute time already
    // counted by their parent). Recorded in BFS order so the caller's
    // serial dedup fold reproduces the original accumulation exactly.
    std::deque<std::uint32_t> queue(graph.roots().begin(),
                                    graph.roots().end());
    while (!queue.empty()) {
        const WaitGraph::Node &node = graph.node(queue.front());
        queue.pop_front();
        const Event &e = node.event;
        if (e.type == EventType::Wait && e.stack != kNoCallstack &&
            sym.stackTouches(e.stack, components_)) {
            contribution.waitHits.emplace_back(node.ref, e.cost);
            continue; // do not descend into already-counted time
        }
        for (std::uint32_t child : graph.children(node))
            queue.push_back(child);
    }

    // Component running time: every running sample in the graph whose
    // callstack contains a chosen component, each distinct event counted
    // once per instance.
    std::unordered_set<EventRef, EventRefHash> seen_running;
    for (const WaitGraph::Node &node : graph.nodes()) {
        const Event &e = node.event;
        if (e.type != EventType::Running || e.stack == kNoCallstack)
            continue;
        if (!sym.stackTouches(e.stack, components_))
            continue;
        if (seen_running.insert(node.ref).second)
            contribution.dRun += e.cost;
    }
    return contribution;
}

void
ImpactAnalysis::mergeInto(const GraphContribution &contribution,
                          ImpactResult &result,
                          std::unordered_set<EventRef, EventRefHash> &seen)
{
    ++result.instances;
    result.dScn += contribution.dScn;
    result.dRun += contribution.dRun;
    for (const auto &[ref, cost] : contribution.waitHits) {
        result.dWait += cost;
        if (seen.insert(ref).second)
            result.dWaitDist += cost;
    }
}

ImpactResult
ImpactAnalysis::analyze(std::span<const WaitGraph> graphs,
                        unsigned threads) const
{
    Span span("impact.analyze", "analysis");
    if (span.active())
        span.arg("graphs", static_cast<std::uint64_t>(graphs.size()));

    ImpactResult result;
    std::unordered_set<EventRef, EventRefHash> seen;
    if (resolveThreads(threads) <= 1 || graphs.size() < 2) {
        for (const WaitGraph &graph : graphs)
            mergeInto(collect(graph), result, seen);
        return result;
    }

    // Parallel per-graph scans, serial in-order dedup fold: the fold
    // sees the same (ref, cost) sequence as the serial path, so the
    // result is bit-identical.
    const std::vector<GraphContribution> contributions =
        parallelMap<GraphContribution>(
            threads, graphs.size(),
            [&](std::size_t i) { return collect(graphs[i]); });
    for (const GraphContribution &contribution : contributions)
        mergeInto(contribution, result, seen);
    return result;
}

std::unordered_map<std::uint32_t, ImpactResult>
ImpactAnalysis::analyzePerScenario(std::span<const WaitGraph> graphs,
                                   unsigned threads) const
{
    std::unordered_map<std::uint32_t, ImpactResult> results;
    std::unordered_map<std::uint32_t,
                       std::unordered_set<EventRef, EventRefHash>>
        seen;
    if (resolveThreads(threads) <= 1 || graphs.size() < 2) {
        for (const WaitGraph &graph : graphs) {
            const std::uint32_t scenario = graph.instance().scenario;
            mergeInto(collect(graph), results[scenario], seen[scenario]);
        }
        return results;
    }

    const std::vector<GraphContribution> contributions =
        parallelMap<GraphContribution>(
            threads, graphs.size(),
            [&](std::size_t i) { return collect(graphs[i]); });
    for (std::size_t i = 0; i < graphs.size(); ++i) {
        const std::uint32_t scenario = graphs[i].instance().scenario;
        mergeInto(contributions[i], results[scenario], seen[scenario]);
    }
    return results;
}

} // namespace tracelens
