#include "src/impact/impact.h"

#include <deque>
#include <sstream>

#include "src/util/logging.h"
#include "src/util/table.h"

namespace tracelens
{

namespace
{

double
ratio(DurationNs num, DurationNs den)
{
    return den == 0 ? 0.0
                    : static_cast<double>(num) / static_cast<double>(den);
}

} // namespace

double
ImpactResult::iaRun() const
{
    return ratio(dRun, dScn);
}

double
ImpactResult::iaWait() const
{
    return ratio(dWait, dScn);
}

double
ImpactResult::iaOpt() const
{
    return ratio(dWait - dWaitDist, dScn);
}

double
ImpactResult::waitAmplification() const
{
    return dWaitDist == 0 ? 0.0 : ratio(dWait, dWaitDist);
}

std::string
ImpactResult::render() const
{
    std::ostringstream oss;
    oss << "instances=" << instances
        << " IA_run=" << TextTable::pct(iaRun())
        << " IA_wait=" << TextTable::pct(iaWait())
        << " IA_opt=" << TextTable::pct(iaOpt())
        << " Dwait/Dwaitdist=" << TextTable::num(waitAmplification(), 2);
    return oss.str();
}

ImpactAnalysis::ImpactAnalysis(const TraceCorpus &corpus,
                               NameFilter components)
    : corpus_(corpus), components_(std::move(components))
{
    corpus_.symbols().primeFilter(components_);
}

void
ImpactAnalysis::accumulate(
    const WaitGraph &graph, ImpactResult &result,
    std::unordered_set<EventRef, EventRefHash> &seen) const
{
    const SymbolTable &sym = corpus_.symbols();
    ++result.instances;
    result.dScn += graph.topLevelDuration();

    // Top-level component waits: breadth-first search that stops at the
    // first matching wait on each path (children constitute time already
    // counted by their parent).
    std::deque<std::uint32_t> queue(graph.roots().begin(),
                                    graph.roots().end());
    while (!queue.empty()) {
        const WaitGraph::Node &node = graph.node(queue.front());
        queue.pop_front();
        const Event &e = node.event;
        if (e.type == EventType::Wait && e.stack != kNoCallstack &&
            sym.stackTouches(e.stack, components_)) {
            result.dWait += e.cost;
            if (seen.insert(node.ref).second)
                result.dWaitDist += e.cost;
            continue; // do not descend into already-counted time
        }
        for (std::uint32_t child : node.children)
            queue.push_back(child);
    }

    // Component running time: every running sample in the graph whose
    // callstack contains a chosen component, each distinct event counted
    // once per instance.
    std::unordered_set<EventRef, EventRefHash> seen_running;
    for (const WaitGraph::Node &node : graph.nodes()) {
        const Event &e = node.event;
        if (e.type != EventType::Running || e.stack == kNoCallstack)
            continue;
        if (!sym.stackTouches(e.stack, components_))
            continue;
        if (seen_running.insert(node.ref).second)
            result.dRun += e.cost;
    }
}

ImpactResult
ImpactAnalysis::analyze(std::span<const WaitGraph> graphs) const
{
    ImpactResult result;
    std::unordered_set<EventRef, EventRefHash> seen;
    for (const WaitGraph &graph : graphs)
        accumulate(graph, result, seen);
    return result;
}

std::unordered_map<std::uint32_t, ImpactResult>
ImpactAnalysis::analyzePerScenario(std::span<const WaitGraph> graphs) const
{
    std::unordered_map<std::uint32_t, ImpactResult> results;
    std::unordered_map<std::uint32_t,
                       std::unordered_set<EventRef, EventRefHash>>
        seen;
    for (const WaitGraph &graph : graphs) {
        const std::uint32_t scenario = graph.instance().scenario;
        accumulate(graph, results[scenario], seen[scenario]);
    }
    return results;
}

} // namespace tracelens
