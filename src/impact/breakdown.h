/**
 * @file
 * Finer-grained impact attribution on top of the Section-3 metrics:
 *
 *  - per-component impact: D_wait / D_run split by the component
 *    (module) owning the wait/running signature, answering "which
 *    driver hurts the most?";
 *  - per-instance breakdown: one scenario instance's duration split
 *    into running time, component wait (by component), other waiting,
 *    and unattributed time — the view an analyst starts from when
 *    drilling into a single slow instance.
 */

#ifndef TRACELENS_IMPACT_BREAKDOWN_H
#define TRACELENS_IMPACT_BREAKDOWN_H

#include <span>
#include <string>
#include <vector>

#include "src/trace/stream.h"
#include "src/util/wildcard.h"
#include "src/waitgraph/waitgraph.h"

namespace tracelens
{

/** Aggregated impact of one component (module). */
struct ComponentImpact
{
    std::string component;
    DurationNs wait = 0;      //!< Top-level wait time attributed here.
    DurationNs run = 0;       //!< Running time attributed here.
    std::uint64_t waitEvents = 0;

    DurationNs total() const { return wait + run; }
};

/**
 * Split component impact by module over a set of wait graphs. The
 * attribution rules mirror ImpactAnalysis: a top-level matching wait's
 * time goes to the component of its topmost matching frame; running
 * samples go to the component of their topmost matching frame.
 * Sorted by total time descending.
 */
std::vector<ComponentImpact>
impactByComponent(const TraceCorpus &corpus,
                  std::span<const WaitGraph> graphs,
                  const NameFilter &components);

/** One instance's duration, attributed. */
struct InstanceBreakdown
{
    DurationNs total = 0;         //!< t1 - t0.
    DurationNs running = 0;       //!< Top-level running time.
    DurationNs componentWait = 0; //!< Top-level component waits.
    DurationNs otherWait = 0;     //!< Top-level non-component waits.
    DurationNs hardware = 0;      //!< Top-level hardware service.
    DurationNs unattributed = 0;  //!< Ready time, idling, gaps.
    /** componentWait split by component, heaviest first. */
    std::vector<ComponentImpact> byComponent;

    /** Multi-line rendering. */
    std::string render() const;
};

/**
 * Explain one instance. Waits count as component waits when their
 * callstack (or any descendant top-level matching wait's) touches the
 * filter; descendant component waits inside non-matching waits are
 * attributed to componentWait as in the impact analysis.
 */
InstanceBreakdown explainInstance(const TraceCorpus &corpus,
                                  const WaitGraph &graph,
                                  const NameFilter &components);

} // namespace tracelens

#endif // TRACELENS_IMPACT_BREAKDOWN_H
