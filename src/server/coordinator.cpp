/**
 * @file
 * Coordinator scatter/gather (src/server/coordinator.h): hash-ring
 * placement, pipelined per-shard partial requests over client
 * sessions, replica retry, and shard-order merging.
 */

#include "src/server/coordinator.h"

#include <algorithm>
#include <filesystem>
#include <map>

#include "src/server/client.h"
#include "src/trace/source.h"
#include "src/util/logging.h"
#include "src/util/telemetry.h"

namespace tracelens
{
namespace server
{

namespace
{

using Clock = std::chrono::steady_clock;

/** FNV-1a 64 with a splitmix64 finalizer: cheap, deterministic, and
 *  well-mixed enough for ring positions. */
std::uint64_t
hashKey(std::string_view text)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (const char c : text) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 1099511628211ULL;
    }
    h += 0x9e3779b97f4a7c15ULL;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    return h ^ (h >> 31);
}

/** Milliseconds until @p deadline; max() when none, 0 when elapsed. */
std::uint64_t
remainingMs(const std::optional<Clock::time_point> &deadline)
{
    if (!deadline)
        return UINT64_MAX;
    const auto now = Clock::now();
    if (now >= *deadline)
        return 0;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            *deadline - now)
            .count());
}

} // namespace

// ----------------------------------------------------------- HashRing

HashRing::HashRing(std::vector<std::string> workers,
                   unsigned virtualNodes)
    : workers_(std::move(workers))
{
    TL_ASSERT(!workers_.empty(), "hash ring needs at least one worker");
    const unsigned replicas = std::max(1u, virtualNodes);
    ring_.reserve(workers_.size() * replicas);
    for (std::uint32_t w = 0; w < workers_.size(); ++w) {
        for (unsigned v = 0; v < replicas; ++v) {
            ring_.emplace_back(
                hashKey(workers_[w] + "#" + std::to_string(v)), w);
        }
    }
    std::sort(ring_.begin(), ring_.end());
}

std::uint32_t
HashRing::primary(std::string_view key) const
{
    const std::uint64_t h = hashKey(key);
    auto it = std::upper_bound(
        ring_.begin(), ring_.end(), h,
        [](std::uint64_t value, const auto &entry) {
            return value < entry.first;
        });
    if (it == ring_.end())
        it = ring_.begin();
    return it->second;
}

std::optional<std::uint32_t>
HashRing::replica(std::string_view key) const
{
    const std::uint32_t owner = primary(key);
    const std::uint64_t h = hashKey(key);
    auto it = std::upper_bound(
        ring_.begin(), ring_.end(), h,
        [](std::uint64_t value, const auto &entry) {
            return value < entry.first;
        });
    if (it == ring_.end())
        it = ring_.begin();
    // Walk clockwise to the first position of a different worker.
    for (std::size_t step = 0; step < ring_.size(); ++step) {
        ++it;
        if (it == ring_.end())
            it = ring_.begin();
        if (it->second != owner)
            return it->second;
    }
    return std::nullopt;
}

// -------------------------------------------------------- Coordinator

Coordinator::Coordinator(CoordinatorConfig config)
    : config_(std::move(config)),
      ring_(config_.workers, config_.virtualNodes)
{
}

Expected<std::vector<std::string>>
Coordinator::enumerateShards(const std::string &corpusPath)
{
    // Mirrors openSource() (src/trace/source.cpp): shard order IS
    // merge order, so any divergence here breaks byte-identity with
    // single-node analysis.
    std::error_code ec;
    const auto status = std::filesystem::status(corpusPath, ec);
    if (ec || status.type() == std::filesystem::file_type::not_found)
        return SourceError{corpusPath, 0, "no such file or directory"};

    std::vector<std::string> shards;
    if (std::filesystem::is_directory(status)) {
        for (const auto &entry :
             std::filesystem::directory_iterator(corpusPath, ec)) {
            if (entry.is_regular_file() &&
                isShardFilename(entry.path().filename().string()))
                shards.push_back(entry.path().string());
        }
        if (ec) {
            return SourceError{corpusPath, 0,
                               "cannot list directory: " + ec.message()};
        }
        std::sort(shards.begin(), shards.end());
        if (shards.empty()) {
            return SourceError{
                corpusPath, 0,
                "directory contains no *.tlc shard files"};
        }
    } else {
        shards.push_back(corpusPath);
    }
    return shards;
}

// -------------------------------------------------- Scatter (private)

/**
 * One gather's connection and pipelining state. Each involved worker
 * gets one Session (a Session is single-threaded and handler threads
 * run concurrently): checked out of the coordinator's pool when a
 * previous gather left a handshaken one behind, freshly dialled
 * otherwise. Each worker's shard requests pipeline on its session,
 * and responses are collected in global shard order so the caller can
 * fold as they resolve. Sessions that drain cleanly go back to the
 * pool on destruction; a pooled socket that proves stale (worker
 * restarted, idle close) is retried once on a fresh dial before the
 * shard falls back to its replica, so pooling can never turn a live
 * worker into a degraded response.
 */
class Coordinator::Scatter
{
  public:
    Scatter(Coordinator &owner,
            const std::optional<Clock::time_point> &deadline)
        : owner_(owner), ring_(owner.ring()),
          shardDeadlineMs_(owner.config().shardDeadlineMs),
          deadline_(deadline)
    {
    }

    ~Scatter()
    {
        checkinAll(conns_);
        checkinAll(fresh_);
    }

    /**
     * Scatter @p params[i] (method @p method) for shard i to its
     * owner, retry failures once on the replica, and leave each
     * obtained result object in @p results[i] (nullopt = missing,
     * recorded in @p report). Returns a query-level error for
     * revision mismatches and elapsed deadlines only.
     */
    std::optional<GatherError>
    run(Method method, const std::vector<std::string> &shards,
        const std::vector<JsonValue> &params,
        std::vector<std::optional<JsonValue>> &results,
        GatherReport &report)
    {
        report.shards = shards.size();
        results.assign(shards.size(), std::nullopt);

        struct Pending
        {
            std::uint32_t worker = 0;
            std::uint64_t handle = 0;
            bool sent = false;
            std::string reason;
        };
        std::vector<Pending> pending(shards.size());

        // Scatter phase: pipeline each shard's request on its
        // owner's session, in shard order per worker.
        for (std::size_t i = 0; i < shards.size(); ++i) {
            pending[i].worker = ring_.primary(shards[i]);
            if (auto error = checkDeadline())
                return error;
            Conn &conn = connect(pending[i].worker);
            if (conn.revisionMismatch)
                return GatherError{ErrorCode::BadRequest,
                                   conn.reason};
            if (!conn.alive) {
                pending[i].reason = conn.reason;
                continue;
            }
            Expected<std::uint64_t> handle =
                conn.session.send(method, params[i], callOptions());
            if (!handle) {
                conn.alive = false;
                conn.reason = handle.error().reason;
                pending[i].reason = conn.reason;
                continue;
            }
            ++conn.inflight;
            pending[i].sent = true;
            pending[i].handle = handle.value();
        }

        // Gather phase, strictly in shard order (merge order).
        for (std::size_t i = 0; i < shards.size(); ++i) {
            if (auto error = checkDeadline())
                return error;
            Pending &p = pending[i];
            std::string worker = ring_.workers()[p.worker];
            bool have = false;
            if (p.sent) {
                Conn &conn = conns_.at(p.worker);
                if (conn.alive) {
                    Expected<Response> response =
                        conn.session.wait(p.handle);
                    if (!response) {
                        conn.alive = false;
                        conn.reason = response.error().reason;
                        p.reason = conn.reason;
                    } else if (!response.value().ok) {
                        --conn.inflight;
                        p.reason =
                            response.value().error.message.empty()
                                ? std::string(errorCodeName(
                                      response.value().error.code))
                                : response.value().error.message;
                    } else {
                        --conn.inflight;
                        results[i] =
                            std::move(response.value().result);
                        have = true;
                    }
                } else {
                    p.reason = conn.reason;
                }
            }

            if (!have) {
                // A pooled socket can go stale between gathers (the
                // worker restarted, or closed the idle connection):
                // that transport failure need not mean the worker is
                // down, so retry once on a fresh dial of the primary
                // before burning the replica.
                auto primary = conns_.find(p.worker);
                if (primary != conns_.end() &&
                    primary->second.pooled &&
                    !primary->second.alive) {
                    if (auto error = checkDeadline())
                        return error;
                    Conn &conn = freshConnect(p.worker);
                    if (conn.revisionMismatch)
                        return GatherError{ErrorCode::BadRequest,
                                           conn.reason};
                    have = callOn(conn, method, params[i],
                                  results[i], p.reason);
                }
            }

            if (!have) {
                // Retry once on the replica (next distinct worker).
                const std::optional<std::uint32_t> rep =
                    ring_.replica(shards[i]);
                if (rep) {
                    if (auto error = checkDeadline())
                        return error;
                    worker = ring_.workers()[*rep];
                    Conn &conn = connect(*rep);
                    if (conn.revisionMismatch)
                        return GatherError{ErrorCode::BadRequest,
                                           conn.reason};
                    const bool wasPooledAlive =
                        conn.pooled && conn.alive;
                    have = callOn(conn, method, params[i],
                                  results[i], p.reason);
                    if (!have && wasPooledAlive && !conn.alive) {
                        // Same stale-socket rule for the replica.
                        Conn &fresh = freshConnect(*rep);
                        if (fresh.revisionMismatch)
                            return GatherError{ErrorCode::BadRequest,
                                               fresh.reason};
                        have = callOn(fresh, method, params[i],
                                      results[i], p.reason);
                    }
                    if (have)
                        ++report.retried;
                }
            }

            if (!have) {
                TL_LOG(Warn, "coordinator: shard ", shards[i],
                       " missing (", p.reason, ")");
                report.missing.push_back(
                    {shards[i], worker,
                     p.reason.empty() ? "worker unavailable"
                                      : p.reason});
            }
        }
        return std::nullopt;
    }

  private:
    struct Conn
    {
        Session session;
        bool alive = false;
        bool pooled = false; //!< Checked out of the coordinator pool.
        bool revisionMismatch = false;
        int inflight = 0; //!< Pipelined requests not yet drained.
        std::string reason;
    };

    /** Synchronous call on @p conn, filling @p result on success.
     *  A transport failure marks the conn dead; any failure leaves
     *  its description in @p reason. */
    bool
    callOn(Conn &conn, Method method, const JsonValue &params,
           std::optional<JsonValue> &result, std::string &reason)
    {
        if (!conn.alive) {
            if (reason.empty())
                reason = conn.reason;
            return false;
        }
        Expected<Response> response =
            conn.session.call(method, params, callOptions());
        if (!response) {
            conn.alive = false;
            conn.reason = response.error().reason;
            reason = conn.reason;
            return false;
        }
        if (!response.value().ok) {
            reason = response.value().error.message.empty()
                         ? std::string(errorCodeName(
                               response.value().error.code))
                         : response.value().error.message;
            return false;
        }
        result = std::move(response.value().result);
        return true;
    }

    std::optional<GatherError>
    checkDeadline() const
    {
        if (remainingMs(deadline_) == 0)
            return GatherError{
                ErrorCode::DeadlineExceeded,
                "deadline elapsed during coordinator scatter/gather"};
        return std::nullopt;
    }

    CallOptions
    callOptions() const
    {
        CallOptions options;
        options.deadlineMs =
            std::min<std::uint64_t>(shardDeadlineMs_,
                                    remainingMs(deadline_));
        // Hand the incoming request's span context (installed by
        // Server::process) down to the workers, so one query's spans
        // stitch into a single cross-node trace.
        options.traceContext = Telemetry::currentContext();
        return options;
    }

    /**
     * Lazily connect to worker @p index: reuse a pooled session from
     * an earlier gather when one exists (already handshaken — skips
     * the dial and the health round trip), fresh-dial otherwise.
     */
    Conn &
    connect(std::uint32_t index)
    {
        auto it = conns_.find(index);
        if (it != conns_.end())
            return it->second;
        Conn &conn = conns_[index];
        if (std::optional<Session> pooled =
                owner_.checkoutSession(index)) {
            conn.session = std::move(*pooled);
            conn.alive = true;
            conn.pooled = true;
            return conn;
        }
        dial(conn, index);
        return conn;
    }

    /** The fresh-dial retry conn for worker @p index (at most one per
     *  gather): used when a pooled socket proves stale. */
    Conn &
    freshConnect(std::uint32_t index)
    {
        auto it = fresh_.find(index);
        if (it != fresh_.end())
            return it->second;
        Conn &conn = fresh_[index];
        dial(conn, index);
        return conn;
    }

    /** Dial worker @p index and handshake its health: reachability
     *  and the partial-encoding revision. */
    void
    dial(Conn &conn, std::uint32_t index)
    {
        const std::string &address = ring_.workers()[index];
        const auto colon = address.rfind(':');
        const std::string host = address.substr(0, colon);
        const std::uint16_t port = static_cast<std::uint16_t>(
            std::stoul(address.substr(colon + 1)));

        SessionOptions options;
        options.ioTimeout =
            std::chrono::milliseconds(shardDeadlineMs_ + 2000);
        Expected<Session> session =
            Session::connect(host, port, options);
        if (!session) {
            conn.reason = "worker " + address +
                          " unreachable: " + session.error().reason;
            return;
        }
        conn.session = std::move(session.value());

        Expected<Response> health = conn.session.health();
        if (!health || !health.value().ok) {
            conn.reason = "worker " + address + " health probe failed";
            return;
        }
        const JsonValue *revision =
            health.value().result.find("partial_encoding");
        const std::uint32_t theirs =
            revision != nullptr && revision->isNumber()
                ? static_cast<std::uint32_t>(revision->asNumber())
                : 0;
        if (theirs != partialEncodingRevision()) {
            conn.revisionMismatch = true;
            conn.reason =
                "partial encoding revision mismatch: worker " +
                address + " speaks revision " +
                std::to_string(theirs) +
                ", coordinator speaks revision " +
                std::to_string(partialEncodingRevision()) +
                " — upgrade the cluster to one build";
            return;
        }
        conn.alive = true;
    }

    /** Return every healthy, fully drained session to the pool. */
    void
    checkinAll(std::map<std::uint32_t, Conn> &conns)
    {
        for (auto &[index, conn] : conns) {
            if (conn.alive && !conn.revisionMismatch &&
                conn.inflight == 0 && conn.session.connected())
                owner_.checkinSession(index,
                                      std::move(conn.session));
        }
        conns.clear();
    }

    Coordinator &owner_;
    const HashRing &ring_;
    std::uint64_t shardDeadlineMs_;
    const std::optional<Clock::time_point> &deadline_;
    /** Per-worker pipelining conns (pooled or fresh). */
    std::map<std::uint32_t, Conn> conns_;
    /** Per-worker stale-pool retry conns, always freshly dialled. */
    std::map<std::uint32_t, Conn> fresh_;
};

std::optional<Session>
Coordinator::checkoutSession(std::uint32_t worker)
{
    std::lock_guard<std::mutex> lock(poolMutex_);
    auto it = pool_.find(worker);
    if (it == pool_.end() || it->second.empty())
        return std::nullopt;
    Session session = std::move(it->second.back());
    it->second.pop_back();
    return session;
}

void
Coordinator::checkinSession(std::uint32_t worker, Session session)
{
    std::lock_guard<std::mutex> lock(poolMutex_);
    std::vector<Session> &idle = pool_[worker];
    // A bounded pool: beyond the cap the session just destructs,
    // closing its socket.
    if (idle.size() < kMaxPooledSessionsPerWorker)
        idle.push_back(std::move(session));
}

// ------------------------------------------------------------ gathers

namespace
{

/** Pull the base64 TLP1 payload out of one worker result. */
std::optional<GatherError>
extractPartialBytes(const JsonValue &result, const std::string &shard,
                    std::string &bytes)
{
    const JsonValue *b64 = result.find("partial");
    if (b64 == nullptr || !b64->isString()) {
        return GatherError{ErrorCode::Internal,
                           "worker returned no partial payload for " +
                               shard};
    }
    std::optional<std::string> raw = base64Decode(b64->asString());
    if (!raw) {
        return GatherError{ErrorCode::Internal,
                           "worker returned non-base64 partial for " +
                               shard};
    }
    bytes = std::move(*raw);
    return std::nullopt;
}

/** Decode failures keep their structured revision-mismatch message. */
GatherError
decodeError(const SourceError &error)
{
    const bool mismatch =
        error.reason.find("revision mismatch") != std::string::npos;
    return GatherError{mismatch ? ErrorCode::BadRequest
                                : ErrorCode::Internal,
                       error.reason};
}

} // namespace

std::optional<GatherError>
Coordinator::gatherScenario(
    Method method, const std::string &corpusPath,
    const std::string &scenario, double tfastMs, double tslowMs,
    const std::vector<std::string> &components,
    const std::optional<Clock::time_point> &deadline,
    ScenarioGather &out)
{
    Span span("coordinator.gather-scenario", "server");
    Expected<std::vector<std::string>> shards =
        enumerateShards(corpusPath);
    if (!shards)
        return GatherError{ErrorCode::NotFound,
                           shards.error().render()};
    if (span.active())
        span.arg("shards",
                 static_cast<std::uint64_t>(shards.value().size()));

    std::vector<JsonValue> params;
    params.reserve(shards.value().size());
    for (const std::string &shard : shards.value()) {
        AnalyzePartialRequest request;
        request.corpus = shard;
        request.scenario = scenario;
        request.tfastMs = tfastMs;
        request.tslowMs = tslowMs;
        request.components = components;
        params.push_back(request.toParams());
    }

    std::vector<std::optional<JsonValue>> results;
    Scatter scatter(*this, deadline);
    if (auto error = scatter.run(method, shards.value(), params,
                                 results, out.report))
        return error;

    // Fold in global shard order — the byte-identity contract.
    std::uint32_t streams = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (!results[i])
            continue;
        std::string bytes;
        if (auto error = extractPartialBytes(
                *results[i], shards.value()[i], bytes))
            return error;
        Expected<ScenarioPartial> decoded =
            decodeScenarioPartial(bytes);
        if (!decoded)
            return decodeError(decoded.error());
        ScenarioPartial partial = std::move(decoded.value());
        if (const JsonValue *found =
                results[i]->find("scenario_found");
            found != nullptr && found->isBool() && found->asBool())
            out.scenarioFound = true;

        partial.remapFrames(out.symbols);
        out.classes.merge(partial.classes);
        partial.slowImpact.rebaseStreams(streams);
        out.slowImpact.merge(partial.slowImpact);
        out.awgFast.merge(partial.awgFast);
        out.awgSlow.merge(partial.awgSlow);
        streams += partial.streamCount;
    }

    if (!out.scenarioFound && !out.report.degraded()) {
        return GatherError{ErrorCode::NotFound,
                           "scenario \"" + scenario +
                               "\" not present in corpus"};
    }
    return std::nullopt;
}

std::optional<GatherError>
Coordinator::gatherImpact(
    const std::string &corpusPath,
    const std::vector<std::string> &components,
    const std::optional<Clock::time_point> &deadline,
    ImpactGather &out)
{
    Span span("coordinator.gather-impact", "server");
    Expected<std::vector<std::string>> shards =
        enumerateShards(corpusPath);
    if (!shards)
        return GatherError{ErrorCode::NotFound,
                           shards.error().render()};
    if (span.active())
        span.arg("shards",
                 static_cast<std::uint64_t>(shards.value().size()));

    std::vector<JsonValue> params;
    params.reserve(shards.value().size());
    for (const std::string &shard : shards.value()) {
        ImpactPartialRequest request;
        request.corpus = shard;
        request.components = components;
        params.push_back(request.toParams());
    }

    std::vector<std::optional<JsonValue>> results;
    Scatter scatter(*this, deadline);
    if (auto error = scatter.run(Method::ImpactPartial,
                                 shards.value(), params, results,
                                 out.report))
        return error;

    std::uint32_t streams = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (!results[i])
            continue;
        std::string bytes;
        if (auto error = extractPartialBytes(
                *results[i], shards.value()[i], bytes))
            return error;
        Expected<ImpactPartial> decoded = decodeImpactPartial(bytes);
        if (!decoded)
            return decodeError(decoded.error());
        ImpactPartial partial = std::move(decoded.value());

        partial.rebaseStreams(streams);
        streams += partial.streamCount;
        out.all.merge(partial.all);
        for (auto &[name, acc] : partial.perScenario) {
            auto it = std::find_if(
                out.perScenario.begin(), out.perScenario.end(),
                [&, &scenarioName = name](const auto &entry) {
                    return entry.first == scenarioName;
                });
            if (it == out.perScenario.end())
                out.perScenario.emplace_back(name, std::move(acc));
            else
                it->second.merge(acc);
        }
    }
    return std::nullopt;
}

namespace
{

/** Dial one worker with a short probe timeout (status/metrics/trace
 *  pulls — not the scatter path, which pools sessions). */
Expected<Session>
dialWorker(const std::string &address, std::uint64_t timeoutMs)
{
    const auto colon = address.rfind(':');
    const std::string host = address.substr(0, colon);
    const std::uint16_t port = static_cast<std::uint16_t>(
        std::stoul(address.substr(colon + 1)));
    SessionOptions options;
    options.ioTimeout = std::chrono::milliseconds(timeoutMs);
    return Session::connect(host, port, options);
}

/** Copy a numeric member of @p from into @p to when present. */
void
copyNumber(const JsonValue &from, JsonValue &to, std::string_view key)
{
    if (const JsonValue *value = from.find(key);
        value != nullptr && value->isNumber())
        to.set(key, JsonValue(value->asNumber()));
}

} // namespace

JsonValue
Coordinator::clusterStatus() const
{
    JsonValue workers = JsonValue::makeArray();
    for (const std::string &address : ring_.workers()) {
        JsonValue entry = JsonValue::makeObject();
        entry.set("address", JsonValue(address));

        Expected<Session> session = dialWorker(address, 2000);
        if (!session) {
            entry.set("status", JsonValue("unreachable"));
            entry.set("error", JsonValue(session.error().reason));
            workers.push(std::move(entry));
            continue;
        }
        CallOptions probe;
        probe.deadlineMs = 2000;
        Expected<Response> health = session.value().call(
            Method::Health, JsonValue::makeObject(), probe);
        if (!health || !health.value().ok) {
            entry.set("status", JsonValue("unreachable"));
            workers.push(std::move(entry));
            continue;
        }
        const JsonValue &result = health.value().result;
        if (const JsonValue *status = result.find("status");
            status != nullptr && status->isString())
            entry.set("status", JsonValue(status->asString()));
        else
            entry.set("status", JsonValue("ok"));
        copyNumber(result, entry, "protocol");
        // Liveness extras for the status table (absent from old
        // workers' health results — the table renders "-" then).
        copyNumber(result, entry, "uptime_s");
        copyNumber(result, entry, "inflight");
        copyNumber(result, entry, "sessions");
        const JsonValue *revision = result.find("partial_encoding");
        const std::uint32_t theirs =
            revision != nullptr && revision->isNumber()
                ? static_cast<std::uint32_t>(revision->asNumber())
                : 0;
        entry.set("partial_encoding", JsonValue(theirs));
        entry.set("compatible",
                  JsonValue(theirs == partialEncodingRevision()));
        workers.push(std::move(entry));
    }

    JsonValue result = JsonValue::makeObject();
    result.set("role", JsonValue("coordinator"));
    result.set("partial_encoding",
               JsonValue(partialEncodingRevision()));
    result.set("virtual_nodes", JsonValue(config_.virtualNodes));
    result.set("shard_deadline_ms",
               JsonValue(config_.shardDeadlineMs));
    result.set("workers", std::move(workers));
    return result;
}

JsonValue
Coordinator::clusterMetrics(MetricsRegistry &aggregate) const
{
    Span span("coordinator.cluster-metrics", "server");
    JsonValue pulls = JsonValue::makeArray();
    for (const std::string &address : ring_.workers()) {
        JsonValue entry = JsonValue::makeObject();
        entry.set("node", JsonValue(address));
        Expected<Session> session = dialWorker(address, 2000);
        if (!session) {
            entry.set("ok", JsonValue(false));
            entry.set("error", JsonValue(session.error().reason));
            pulls.push(std::move(entry));
            continue;
        }
        CallOptions probe;
        probe.deadlineMs = 2000;
        Expected<Response> response = session.value().call(
            Method::Metrics, JsonValue::makeObject(), probe);
        if (!response || !response.value().ok) {
            entry.set("ok", JsonValue(false));
            entry.set("error",
                      JsonValue(response
                                    ? response.value().error.message
                                    : response.error().reason));
            pulls.push(std::move(entry));
            continue;
        }
        aggregate.merge(
            parseMetricsSnapshot(response.value().result));
        entry.set("ok", JsonValue(true));
        pulls.push(std::move(entry));
    }
    return pulls;
}

std::vector<NodeSpans>
Coordinator::pullWorkerSpans() const
{
    Span span("coordinator.pull-spans", "server");
    std::vector<NodeSpans> nodes;
    for (const std::string &address : ring_.workers()) {
        Expected<Session> session = dialWorker(address, 2000);
        if (!session) {
            TL_LOG(Warn, "coordinator: telemetry pull: worker ",
                   address, " unreachable (", session.error().reason,
                   ")");
            continue;
        }
        CallOptions probe;
        probe.deadlineMs = 2000;
        Expected<Response> response = session.value().call(
            Method::TelemetryPull, JsonValue::makeObject(), probe);
        if (!response || !response.value().ok) {
            TL_LOG(Warn, "coordinator: telemetry pull failed on ",
                   address);
            continue;
        }
        NodeSpans node = parseNodeSpans(response.value().result);
        if (node.node.empty())
            node.node = "worker @ " + address;
        nodes.push_back(std::move(node));
    }
    return nodes;
}

} // namespace server
} // namespace tracelens
