/**
 * @file
 * Blocking protocol client (src/server/client.h).
 */

#include "src/server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace tracelens
{
namespace server
{

Expected<Client>
Client::connect(const std::string &host, std::uint16_t port,
                std::chrono::milliseconds timeout)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        return SourceError{host, 0,
                           std::string("socket: ") +
                               std::strerror(errno)};
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        return SourceError{host, 0,
                           "invalid host '" + host +
                               "' (IPv4 dotted quad expected)"};
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const int err = errno;
        ::close(fd);
        return SourceError{host + ":" + std::to_string(port), 0,
                           std::string("connect: ") +
                               std::strerror(err)};
    }
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
    tv.tv_usec =
        static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

    Client client;
    client.fd_ = fd;
    client.peer_ = host + ":" + std::to_string(port);
    return client;
}

bool
Client::sendRaw(std::string_view bytes)
{
    if (fd_ < 0)
        return false;
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t n = ::send(fd_, bytes.data() + sent,
                                 bytes.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

Expected<std::string>
Client::readLine()
{
    if (fd_ < 0)
        return SourceError{peer_, 0, "not connected"};
    while (true) {
        const std::size_t nl = pending_.find('\n');
        if (nl != std::string::npos) {
            std::string line = pending_.substr(0, nl);
            pending_.erase(0, nl + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            return line;
        }
        char buffer[4096];
        const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return SourceError{peer_, 0, "read timeout"};
            return SourceError{peer_, 0,
                               std::string("recv: ") +
                                   std::strerror(errno)};
        }
        if (n == 0) {
            return SourceError{peer_, pending_.size(),
                               "connection closed by server"};
        }
        pending_.append(buffer, static_cast<std::size_t>(n));
    }
}

Expected<CallResult>
Client::call(const std::string &method, const JsonValue &params,
             std::uint64_t deadlineMs)
{
    JsonValue request = JsonValue::makeObject();
    const double id = nextId_++;
    request.set("id", JsonValue(id));
    request.set("method", JsonValue(method));
    request.set("params", params);
    if (deadlineMs != 0)
        request.set("deadline_ms", JsonValue(deadlineMs));
    if (!sendRaw(request.render() + "\n")) {
        return SourceError{peer_, 0,
                           "send failed (connection lost?)"};
    }
    Expected<std::string> line = readLine();
    if (!line)
        return line.error();
    Expected<JsonValue> parsed = JsonValue::parse(line.value());
    if (!parsed) {
        return SourceError{peer_, parsed.error().offset,
                           "unparseable response: " +
                               parsed.error().reason};
    }
    const JsonValue &response = parsed.value();
    CallResult result;
    if (const JsonValue *rid = response.find("id");
        rid != nullptr && rid->isNumber())
        result.id = rid->asNumber();
    const JsonValue *okField = response.find("ok");
    result.ok = okField != nullptr && okField->isBool() &&
                okField->asBool();
    if (result.ok) {
        if (const JsonValue *payload = response.find("result"))
            result.result = *payload;
    } else {
        if (const JsonValue *error = response.find("error")) {
            if (const JsonValue *code = error->find("code");
                code != nullptr && code->isString())
                result.errorCode = code->asString();
            if (const JsonValue *message = error->find("message");
                message != nullptr && message->isString())
                result.errorMessage = message->asString();
        }
    }
    return result;
}

void
Client::shutdownWrite()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_WR);
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    pending_.clear();
}

} // namespace server
} // namespace tracelens
