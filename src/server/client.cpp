/**
 * @file
 * Typed, version-transparent protocol client (src/server/client.h):
 * RawConn socket plumbing, v2 negotiation with v1 fallback, the
 * stream/dictionary state machine, and the pipelined send/wait core
 * every blocking call is built on.
 */

#include "src/server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace tracelens
{
namespace server
{

// ------------------------------------------------------------ RawConn

Expected<RawConn>
RawConn::connect(const std::string &host, std::uint16_t port,
                 std::chrono::milliseconds timeout)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        return SourceError{host, 0,
                           std::string("socket: ") +
                               std::strerror(errno)};
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        return SourceError{host, 0,
                           "invalid host '" + host +
                               "' (IPv4 dotted quad expected)"};
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const int err = errno;
        ::close(fd);
        return SourceError{host + ":" + std::to_string(port), 0,
                           std::string("connect: ") +
                               std::strerror(err)};
    }
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
    tv.tv_usec =
        static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    // Pipelined small frames must not coalesce behind Nagle: a
    // request written shortly after another would otherwise wait
    // ~40ms for the server's delayed ACK.
    const int nodelay = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay,
                 sizeof(nodelay));

    RawConn conn;
    conn.fd_ = fd;
    conn.peer_ = host + ":" + std::to_string(port);
    return conn;
}

bool
RawConn::sendRaw(std::string_view bytes)
{
    if (fd_ < 0)
        return false;
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t n = ::send(fd_, bytes.data() + sent,
                                 bytes.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    bytesSent_ += bytes.size();
    return true;
}

Expected<bool>
RawConn::fill()
{
    char buffer[8192];
    while (true) {
        const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return SourceError{peer_, 0, "read timeout"};
            return SourceError{peer_, 0,
                               std::string("recv: ") +
                                   std::strerror(errno)};
        }
        if (n == 0)
            return false; // orderly EOF
        pending_.append(buffer, static_cast<std::size_t>(n));
        bytesReceived_ += static_cast<std::uint64_t>(n);
        return true;
    }
}

Expected<std::string>
RawConn::readLine()
{
    if (fd_ < 0)
        return SourceError{peer_, 0, "not connected"};
    while (true) {
        const std::size_t nl = pending_.find('\n');
        if (nl != std::string::npos) {
            std::string line = pending_.substr(0, nl);
            pending_.erase(0, nl + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            return line;
        }
        Expected<bool> more = fill();
        if (!more)
            return more.error();
        if (!more.value()) {
            return SourceError{peer_, pending_.size(),
                               "connection closed by server"};
        }
    }
}

Expected<std::string>
RawConn::readExact(std::size_t n)
{
    if (fd_ < 0)
        return SourceError{peer_, 0, "not connected"};
    while (pending_.size() < n) {
        Expected<bool> more = fill();
        if (!more)
            return more.error();
        if (!more.value()) {
            return SourceError{peer_, pending_.size(),
                               "connection closed by server"};
        }
    }
    std::string out = pending_.substr(0, n);
    pending_.erase(0, n);
    return out;
}

void
RawConn::shutdownWrite()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_WR);
}

void
RawConn::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    pending_.clear();
}

// ------------------------------------------------------------ Session

Expected<Session>
Session::connect(const std::string &host, std::uint16_t port,
                 SessionOptions options)
{
    Expected<RawConn> conn =
        RawConn::connect(host, port, options.ioTimeout);
    if (!conn)
        return conn.error();

    Session session;
    session.conn_ = std::move(conn.value());
    session.options_ = options;

    if (options.prefer == ProtocolPreference::V1) {
        session.version_ = kProtocolVersionV1;
        return session;
    }

    // Offer the upgrade: a v2 server answers a binary SETTINGS frame,
    // a v1 server answers a JSON bad_request line (first byte '{').
    std::string preface(wire::kPreface);
    preface += "\n";
    if (!session.conn_.sendRaw(preface)) {
        return SourceError{session.conn_.peer(), 0,
                           "send failed during negotiation"};
    }
    Expected<std::string> first = session.conn_.readExact(1);
    if (!first)
        return first.error();
    if (first.value()[0] == '{') {
        Expected<std::string> line = session.conn_.readLine();
        if (!line)
            return line.error();
        if (options.prefer == ProtocolPreference::V2) {
            return SourceError{session.conn_.peer(), 0,
                               "server does not speak protocol v2"};
        }
        session.version_ = kProtocolVersionV1;
        return session;
    }

    Expected<std::string> rest =
        session.conn_.readExact(wire::kFrameHeaderBytes - 1);
    if (!rest)
        return rest.error();
    const std::string headerBytes = first.value() + rest.value();
    wire::FrameHeader header;
    wire::decodeFrameHeader(headerBytes, header);
    if (header.type !=
            static_cast<std::uint8_t>(wire::FrameType::Settings) ||
        header.stream != 0 ||
        header.length > wire::kMaxSaneFramePayload) {
        return SourceError{session.conn_.peer(), 0,
                           "malformed negotiation response"};
    }
    Expected<std::string> payload =
        session.conn_.readExact(header.length);
    if (!payload)
        return payload.error();
    Expected<wire::Settings> settings =
        wire::decodeSettings(payload.value());
    if (!settings)
        return settings.error();
    if (settings.value().protocolVersion != kProtocolVersionV2) {
        return SourceError{session.conn_.peer(), 0,
                           "server negotiated unknown protocol"};
    }
    session.serverSettings_ = settings.value();
    ++session.framesReceived_;

    wire::Settings mine;
    mine.protocolVersion = kProtocolVersionV2;
    mine.maxFramePayload = options.maxFramePayload;
    mine.initialWindow = options.initialWindow;
    mine.tracing = options.tracing;
    session.tracingNegotiated_ =
        options.tracing && session.serverSettings_.tracing;
    std::string out;
    wire::appendFrame(out, wire::FrameType::Settings, 0, 0,
                      wire::encodeSettings(mine));
    if (!session.conn_.sendRaw(out)) {
        return SourceError{session.conn_.peer(), 0,
                           "send failed during negotiation"};
    }
    ++session.framesSent_;
    session.version_ = kProtocolVersionV2;
    return session;
}

WireStats
Session::wireStats() const
{
    WireStats stats;
    stats.bytesSent = conn_.bytesSent();
    stats.bytesReceived = conn_.bytesReceived();
    stats.framesSent = framesSent_;
    stats.framesReceived = framesReceived_;
    return stats;
}

void
Session::close()
{
    conn_.close();
    openStreams_.clear();
    idToStream_.clear();
    readyV1_.clear();
    readyV2_.clear();
}

// ------------------------------------------------------- typed calls

Expected<Response>
Session::analyze(const AnalyzeRequest &request, CallOptions options)
{
    return call(AnalyzeRequest::kMethod, request.toParams(), options);
}

Expected<Response>
Session::impact(const ImpactRequest &request, CallOptions options)
{
    return call(ImpactRequest::kMethod, request.toParams(), options);
}

Expected<Response>
Session::mine(const MineRequest &request, CallOptions options)
{
    return call(MineRequest::kMethod, request.toParams(), options);
}

Expected<Response>
Session::ingest(const IngestRequest &request, CallOptions options)
{
    return call(IngestRequest::kMethod, request.toParams(), options);
}

Expected<Response>
Session::sleep(const SleepRequest &request, CallOptions options)
{
    return call(SleepRequest::kMethod, request.toParams(), options);
}

Expected<Response>
Session::health()
{
    return call(Method::Health, JsonValue::makeObject());
}

Expected<Response>
Session::stats()
{
    return call(Method::Stats, JsonValue::makeObject());
}

Expected<Response>
Session::shutdown()
{
    return call(Method::Shutdown, JsonValue::makeObject());
}

Expected<Response>
Session::call(Method method, const JsonValue &params,
              CallOptions options)
{
    Expected<std::uint64_t> handle = send(method, params, options);
    if (!handle)
        return handle.error();
    return wait(handle.value());
}

// -------------------------------------------------------- send / wait

Expected<std::uint64_t>
Session::send(Method method, const JsonValue &params,
              CallOptions options)
{
    if (!conn_.connected())
        return SourceError{conn_.peer(), 0, "not connected"};
    if (version_ == kProtocolVersionV2)
        return sendV2(method, params, options);
    return sendV1(method, params, options);
}

Expected<Response>
Session::wait(std::uint64_t handle)
{
    if (version_ == kProtocolVersionV2)
        return waitV2(handle);
    return waitV1(handle);
}

Expected<std::uint64_t>
Session::sendV1(Method method, const JsonValue &params,
                const CallOptions &options)
{
    const std::uint64_t id = nextId_++;
    JsonValue request = JsonValue::makeObject();
    request.set("id", JsonValue(static_cast<double>(id)));
    request.set("method", JsonValue(methodName(method)));
    request.set("params", params);
    if (options.deadlineMs != 0)
        request.set("deadline_ms", JsonValue(options.deadlineMs));
    if (!conn_.sendRaw(request.render() + "\n")) {
        return SourceError{conn_.peer(), 0,
                           "send failed (connection lost?)"};
    }
    return id;
}

Expected<Response>
Session::waitV1(std::uint64_t handle)
{
    if (const auto ready = readyV1_.find(handle);
        ready != readyV1_.end()) {
        Response response = std::move(ready->second);
        readyV1_.erase(ready);
        return response;
    }
    while (true) {
        Expected<std::string> line = conn_.readLine();
        if (!line)
            return line.error();
        Expected<Response> parsed = parseResponseLine(line.value());
        if (!parsed) {
            return SourceError{conn_.peer(), parsed.error().offset,
                               "unparseable response: " +
                                   parsed.error().reason};
        }
        Response response = std::move(parsed.value());
        // An id-less response cannot be correlated (the server could
        // not parse the request that provoked it) — surface it to the
        // active waiter rather than dropping it.
        if (!response.id ||
            static_cast<std::uint64_t>(*response.id) == handle)
            return response;
        readyV1_[static_cast<std::uint64_t>(*response.id)] =
            std::move(response);
    }
}

Expected<std::uint64_t>
Session::sendV2(Method method, const JsonValue &params,
                const CallOptions &options)
{
    const std::string paramsJson = params.render();
    // Bound-check before encoding: a failed send must not advance the
    // shared dictionary, or every later request would desync.
    if (paramsJson.size() + 64 > serverSettings_.maxFramePayload) {
        return SourceError{conn_.peer(), 0,
                           "request params exceed the server's frame "
                           "limit"};
    }
    const std::uint32_t stream = nextStream_;
    nextStream_ += 2;
    const std::uint64_t id = nextId_++;
    // Propagate the caller's explicit context, else whatever span the
    // calling thread is inside (empty when telemetry is off). The
    // field is only encoded when both ends advertised tracing.
    SpanContext context = options.traceContext;
    if (!context.valid())
        context = Telemetry::currentContext();
    const std::string payload = wire::encodeRequestPayload(
        method, options.priority, options.deadlineMs, paramsJson,
        sendDict_, context.valid() ? &context : nullptr,
        tracingNegotiated_);
    std::string out;
    wire::appendFrame(out, wire::FrameType::Request,
                      wire::kFlagEndStream, stream, payload);
    if (!conn_.sendRaw(out)) {
        return SourceError{conn_.peer(), 0,
                           "send failed (connection lost?)"};
    }
    ++framesSent_;
    StreamRx rx;
    rx.id = id;
    openStreams_.emplace(stream, std::move(rx));
    idToStream_.emplace(id, stream);
    return id;
}

Expected<Response>
Session::waitV2(std::uint64_t handle)
{
    while (true) {
        if (const auto ready = readyV2_.find(handle);
            ready != readyV2_.end()) {
            Response response = std::move(ready->second);
            readyV2_.erase(ready);
            return response;
        }
        Expected<bool> pumped = pumpFrameV2();
        if (!pumped)
            return pumped.error();
    }
}

Expected<bool>
Session::pumpFrameV2()
{
    Expected<std::string> headerBytes =
        conn_.readExact(wire::kFrameHeaderBytes);
    if (!headerBytes)
        return headerBytes.error();
    wire::FrameHeader header;
    wire::decodeFrameHeader(headerBytes.value(), header);
    if (header.length > wire::kMaxSaneFramePayload) {
        return SourceError{conn_.peer(), 0,
                           "insane frame length from server (stream "
                           "desync?)"};
    }
    Expected<std::string> payload = conn_.readExact(header.length);
    if (!payload)
        return payload.error();
    ++framesReceived_;

    switch (static_cast<wire::FrameType>(header.type)) {
    case wire::FrameType::Response: {
        const auto it = openStreams_.find(header.stream);
        if (it == openStreams_.end()) {
            return SourceError{conn_.peer(), 0,
                               "response on unknown stream " +
                                   std::to_string(header.stream)};
        }
        it->second.payload += payload.value();
        ++it->second.frames;
        if ((header.flags & wire::kFlagEndStream) == 0) {
            // Chunked response: return the consumed credit so the
            // server can keep sending.
            std::string update;
            wire::appendFrame(
                update, wire::FrameType::WindowUpdate, 0,
                header.stream,
                wire::encodeWindowUpdate(payload.value().size()));
            if (conn_.sendRaw(update))
                ++framesSent_;
            return true;
        }
        Expected<std::string> json =
            recvDict_.decode(it->second.payload);
        if (!json) {
            return SourceError{conn_.peer(), json.error().offset,
                               "dictionary desync: " +
                                   json.error().reason};
        }
        Expected<JsonValue> doc = JsonValue::parse(json.value());
        if (!doc) {
            return SourceError{conn_.peer(), doc.error().offset,
                               "unparseable response payload: " +
                                   doc.error().reason};
        }
        Response response;
        response.id = static_cast<double>(it->second.id);
        if ((header.flags & wire::kFlagError) != 0) {
            response.ok = false;
            response.error = parseErrorObject(doc.value());
        } else {
            response.ok = true;
            response.result = std::move(doc.value());
        }
        readyV2_[it->second.id] = std::move(response);
        idToStream_.erase(it->second.id);
        openStreams_.erase(it);
        return true;
    }
    case wire::FrameType::Settings: {
        Expected<wire::Settings> settings =
            wire::decodeSettings(payload.value());
        if (settings)
            serverSettings_ = settings.value();
        return true;
    }
    case wire::FrameType::Ping: {
        if ((header.flags & wire::kFlagAck) == 0) {
            std::string pong;
            wire::appendFrame(pong, wire::FrameType::Ping,
                              wire::kFlagAck, 0, payload.value());
            if (conn_.sendRaw(pong))
                ++framesSent_;
        }
        return true;
    }
    case wire::FrameType::Goaway: {
        Expected<wire::GoawayInfo> info =
            wire::decodeGoaway(payload.value());
        const std::string detail =
            info ? info.value().message : "unreadable goaway";
        const std::uint64_t offset = info ? info.value().offset : 0;
        return SourceError{conn_.peer(), offset,
                           "server sent GOAWAY: " + detail};
    }
    case wire::FrameType::Request:
    case wire::FrameType::WindowUpdate:
    default:
        // Servers never send Request; WindowUpdate is meaningless for
        // the client (requests are not flow-controlled). Ignore, like
        // unknown frame types (forward compatibility).
        return true;
    }
}

} // namespace server
} // namespace tracelens
