/**
 * @file
 * Session registry of the analysis service: the layer that keeps
 * corpora *warm* between requests.
 *
 * A session owns exactly the state PRs 2–4 built for one corpus: the
 * TraceSource (mmap or eager), the Analyzer with its artifact store,
 * and a response cache keyed by content digests. The registry maps a
 * (corpus path, component filter) pair to an open session with
 *
 *  - once-semantics on open: concurrent first requests for one corpus
 *    share a single ingestion instead of racing N of them;
 *  - ref-counting: a SessionHandle pins the session for the duration
 *    of one request, so eviction can never pull an Analyzer out from
 *    under a running analysis;
 *  - idle eviction: sessions with no active handle and no use for
 *    idleTimeout are dropped (the shared_ptr keeps late handles
 *    safe), and maxSessions bounds the resident set LRU-style.
 *
 * Thread-safety: acquire()/evictIdle()/stats() may be called from any
 * thread. A *session's* Analyzer is safe for concurrent analyze calls
 * (the artifact store serializes builds per key); the TraceSource is
 * only touched during the single-threaded open.
 */

#ifndef TRACELENS_SERVER_REGISTRY_H
#define TRACELENS_SERVER_REGISTRY_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/analyzer.h"
#include "src/trace/source.h"
#include "src/util/hash.h"

namespace tracelens
{
namespace server
{

/** Registry configuration (a slice of ServerConfig). */
struct RegistryConfig
{
    /** Ingestion options for every session (mmap, cache budget). */
    SourceOptions source;
    /** Shared on-disk artifact cache; empty = memory-only. */
    std::string artifactCacheDir;
    /**
     * Worker threads of each session's Analyzer. Requests already run
     * concurrently on the server pool, so the default avoids
     * oversubscribing cores with nested parallelism.
     */
    unsigned analysisThreads = 1;
    /** Resident-session bound; oldest inactive session evicts first. */
    std::size_t maxSessions = 8;
    /** Idle sessions older than this are evicted by evictIdle(). */
    std::chrono::seconds idleTimeout{300};
};

/** Per-scenario tallies precomputed at session open (the `ingest`
 *  method answers from this, never re-touching the TraceSource). */
struct ScenarioTally
{
    std::string name;
    std::size_t instances = 0;
    double meanMs = 0.0;
};

/** Immutable ingest summary captured when the session opened. */
struct SessionIngestInfo
{
    std::string describe;
    std::size_t shards = 0;
    std::size_t loadedShards = 0;
    std::size_t skippedShards = 0;
    std::uint64_t ingestBytes = 0;
    std::uint64_t events = 0;
    std::size_t instances = 0;
    std::vector<ScenarioTally> scenarios;
};

/** One warm corpus: source + analyzer + response cache. */
class CorpusSession
{
  public:
    const std::string &path() const { return path_; }
    Analyzer &analyzer() const { return *analyzer_; }
    const SessionIngestInfo &ingestInfo() const { return ingest_; }

    /** Digest of the ingested corpus content (artifact-chain tip). */
    const Digest &corpusDigest() const { return corpusDigest_; }

    /**
     * Response cache: rendered response lines keyed by a digest of
     * (method, params, corpus digest). An unchanged corpus answers a
     * repeated query without re-entering the pipeline at all.
     */
    std::shared_ptr<const std::string>
    cachedResponse(const Digest &key) const;
    void cacheResponse(const Digest &key,
                       std::shared_ptr<const std::string> line);

    /**
     * Absorb a pushed shard into the warm Analyzer and refresh the
     * response-cache digest so stale cached renders stop matching
     * (continuous mode's `ingest_push`). Takes the exclusive side of
     * analysisLock() for the brief append.
     */
    void absorbShard(const TraceCorpus &corpus);

    /**
     * Shared lock a request handler holds while it reads the warm
     * Analyzer and corpusDigest(); absorbShard() excludes them while
     * it mutates the corpus. Plain analyze traffic only ever shares.
     */
    std::shared_lock<std::shared_mutex> analysisLock() const
    {
        return std::shared_lock<std::shared_mutex>(analysisMutex_);
    }

  private:
    friend class SessionRegistry;

    std::string path_;
    std::unique_ptr<TraceSource> source_;
    std::unique_ptr<Analyzer> analyzer_;
    SessionIngestInfo ingest_;
    Digest corpusDigest_;

    /** Readers = analysis handlers; writer = absorbShard(). */
    mutable std::shared_mutex analysisMutex_;

    mutable std::mutex responseMutex_;
    std::unordered_map<Digest, std::shared_ptr<const std::string>,
                       DigestHash>
        responses_;
};

/** Registry counters (the `stats` method reports these). */
struct RegistryStats
{
    std::size_t openSessions = 0;   //!< Sessions currently resident.
    std::size_t activeHandles = 0;  //!< Outstanding request pins.
    std::uint64_t opened = 0;       //!< Sessions ever opened.
    std::uint64_t reused = 0;       //!< acquire() hits on a warm session.
    std::uint64_t evicted = 0;      //!< Idle / LRU evictions.
    std::uint64_t openFailures = 0; //!< Opens that failed.
};

class SessionRegistry
{
  private:
    struct Entry; // one registry slot (see registry.cpp)

  public:
    explicit SessionRegistry(RegistryConfig config = {});

    SessionRegistry(const SessionRegistry &) = delete;
    SessionRegistry &operator=(const SessionRegistry &) = delete;

    /**
     * RAII pin on a session: keeps it resident (and its analyzer
     * usable) until destruction, and stamps last-use on release.
     */
    class Handle
    {
      public:
        Handle() = default;
        ~Handle() { release(); }
        Handle(Handle &&other) noexcept { swap(other); }
        Handle &
        operator=(Handle &&other) noexcept
        {
            release();
            swap(other);
            return *this;
        }
        Handle(const Handle &) = delete;
        Handle &operator=(const Handle &) = delete;

        explicit operator bool() const { return session_ != nullptr; }
        CorpusSession *operator->() const { return session_.get(); }
        CorpusSession &operator*() const { return *session_; }

      private:
        friend class SessionRegistry;
        Handle(std::shared_ptr<Entry> entry,
               std::shared_ptr<CorpusSession> session,
               SessionRegistry *registry);
        void release();
        void
        swap(Handle &other) noexcept
        {
            std::swap(entry_, other.entry_);
            std::swap(session_, other.session_);
            std::swap(registry_, other.registry_);
        }

        std::shared_ptr<Entry> entry_;
        std::shared_ptr<CorpusSession> session_;
        SessionRegistry *registry_ = nullptr;
    };

    /**
     * Open (or reuse) the session for @p path with the session-level
     * @p components filter (empty = analyzer default). Expensive on a
     * cold corpus — call from a worker thread, never the accept loop.
     */
    Expected<Handle> acquire(const std::string &path,
                             const std::vector<std::string> &components =
                                 {});

    /** Evict inactive sessions idle beyond the timeout; returns the
     *  number evicted. Cheap — callable from a housekeeping tick. */
    std::size_t evictIdle();

    /** Drop every inactive session regardless of age (tests, drain). */
    std::size_t evictAll();

    RegistryStats stats() const;

    const RegistryConfig &config() const { return config_; }

  private:
    /** Evict oldest inactive sessions until <= maxSessions remain. */
    void enforceCapacityLocked();

    RegistryConfig config_;

    mutable std::mutex mutex_;
    std::unordered_map<std::string, std::shared_ptr<Entry>> sessions_;

    std::atomic<std::uint64_t> opened_{0};
    std::atomic<std::uint64_t> reused_{0};
    std::atomic<std::uint64_t> evicted_{0};
    std::atomic<std::uint64_t> openFailures_{0};
    std::atomic<std::size_t> activeHandles_{0};
};

} // namespace server
} // namespace tracelens

#endif // TRACELENS_SERVER_REGISTRY_H
