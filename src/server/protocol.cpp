/**
 * @file
 * Method/error vocabulary, typed request params, and the v1 line
 * codec of the analysis-service protocol (src/server/protocol.h).
 */

#include "src/server/protocol.h"

#include <cmath>

namespace tracelens
{
namespace server
{

const std::vector<std::uint32_t> &
supportedProtocolVersions()
{
    static const std::vector<std::uint32_t> versions = {
        kProtocolVersionV1, kProtocolVersionV2};
    return versions;
}

// ------------------------------------------------------------ methods

std::string_view
methodName(Method method)
{
    switch (method) {
    case Method::Health:
        return "health";
    case Method::Stats:
        return "stats";
    case Method::Shutdown:
        return "shutdown";
    case Method::Analyze:
        return "analyze";
    case Method::Impact:
        return "impact";
    case Method::Mine:
        return "mine";
    case Method::Ingest:
        return "ingest";
    case Method::Sleep:
        return "sleep";
    case Method::AnalyzePartial:
        return "analyze_partial";
    case Method::ImpactPartial:
        return "impact_partial";
    case Method::MinePartial:
        return "mine_partial";
    case Method::ClusterStatus:
        return "cluster_status";
    case Method::TelemetryPull:
        return "telemetry_pull";
    case Method::Metrics:
        return "metrics";
    case Method::FlightRecorder:
        return "flight_recorder";
    case Method::ClusterTrace:
        return "cluster_trace";
    case Method::IngestPush:
        return "ingest_push";
    case Method::WindowSummary:
        return "window_summary";
    case Method::Alerts:
        return "alerts";
    }
    return "health";
}

std::optional<Method>
parseMethod(std::string_view name)
{
    static constexpr Method kAll[] = {
        Method::Health,        Method::Stats,
        Method::Shutdown,      Method::Analyze,
        Method::Impact,        Method::Mine,
        Method::Ingest,        Method::Sleep,
        Method::AnalyzePartial, Method::ImpactPartial,
        Method::MinePartial,   Method::ClusterStatus,
        Method::TelemetryPull, Method::Metrics,
        Method::FlightRecorder, Method::ClusterTrace,
        Method::IngestPush,    Method::WindowSummary,
        Method::Alerts};
    for (const Method method : kAll) {
        if (methodName(method) == name)
            return method;
    }
    return std::nullopt;
}

std::uint8_t
methodWireByte(Method method)
{
    return static_cast<std::uint8_t>(method);
}

std::optional<Method>
methodFromWireByte(std::uint8_t byte)
{
    if (byte > methodWireByte(Method::Alerts))
        return std::nullopt;
    return static_cast<Method>(byte);
}

bool
isControlMethod(Method method)
{
    // The observability probes are control-plane on purpose: a
    // saturated worker queue is exactly when you pull metrics and the
    // flight recorder. cluster_trace is NOT control — it fans out
    // over TCP to every worker and must not block a reader thread.
    return method == Method::Health || method == Method::Stats ||
           method == Method::Shutdown ||
           method == Method::TelemetryPull ||
           method == Method::Metrics ||
           method == Method::FlightRecorder;
}

// -------------------------------------------------------- error codes

std::string_view
errorCodeName(ErrorCode code)
{
    switch (code) {
    case ErrorCode::BadRequest:
        return "bad_request";
    case ErrorCode::Overloaded:
        return "overloaded";
    case ErrorCode::DeadlineExceeded:
        return "deadline_exceeded";
    case ErrorCode::NotFound:
        return "not_found";
    case ErrorCode::ShuttingDown:
        return "shutting_down";
    case ErrorCode::ProtocolError:
        return "protocol_error";
    case ErrorCode::Internal:
        return "internal";
    }
    return "internal";
}

std::optional<ErrorCode>
parseErrorCode(std::string_view name)
{
    static constexpr ErrorCode kAll[] = {
        ErrorCode::BadRequest,    ErrorCode::Overloaded,
        ErrorCode::DeadlineExceeded, ErrorCode::NotFound,
        ErrorCode::ShuttingDown,  ErrorCode::ProtocolError,
        ErrorCode::Internal};
    for (const ErrorCode code : kAll) {
        if (errorCodeName(code) == name)
            return code;
    }
    return std::nullopt;
}

// ------------------------------------------------- typed request params

JsonValue
AnalyzeRequest::toParams() const
{
    JsonValue params = JsonValue::makeObject();
    params.set("corpus", JsonValue(corpus));
    params.set("scenario", JsonValue(scenario));
    if (tfastMs)
        params.set("tfast_ms", JsonValue(*tfastMs));
    if (tslowMs)
        params.set("tslow_ms", JsonValue(*tslowMs));
    if (top)
        params.set("top", JsonValue(*top));
    if (knowledgeFilter)
        params.set("knowledge_filter", JsonValue(*knowledgeFilter));
    if (!components.empty()) {
        JsonValue list = JsonValue::makeArray();
        for (const std::string &glob : components)
            list.push(JsonValue(glob));
        params.set("components", std::move(list));
    }
    return params;
}

JsonValue
ImpactRequest::toParams() const
{
    JsonValue params = JsonValue::makeObject();
    params.set("corpus", JsonValue(corpus));
    if (!components.empty()) {
        JsonValue list = JsonValue::makeArray();
        for (const std::string &glob : components)
            list.push(JsonValue(glob));
        params.set("components", std::move(list));
    }
    return params;
}

JsonValue
MineRequest::toParams() const
{
    JsonValue params = JsonValue::makeObject();
    params.set("corpus", JsonValue(corpus));
    params.set("scenario", JsonValue(scenario));
    if (tfastMs)
        params.set("tfast_ms", JsonValue(*tfastMs));
    if (tslowMs)
        params.set("tslow_ms", JsonValue(*tslowMs));
    if (maxPatterns)
        params.set("max_patterns", JsonValue(*maxPatterns));
    return params;
}

JsonValue
IngestRequest::toParams() const
{
    JsonValue params = JsonValue::makeObject();
    params.set("corpus", JsonValue(corpus));
    return params;
}

JsonValue
SleepRequest::toParams() const
{
    JsonValue params = JsonValue::makeObject();
    params.set("ms", JsonValue(ms));
    return params;
}

JsonValue
AnalyzePartialRequest::toParams() const
{
    JsonValue params = JsonValue::makeObject();
    params.set("corpus", JsonValue(corpus));
    params.set("scenario", JsonValue(scenario));
    params.set("tfast_ms", JsonValue(tfastMs));
    params.set("tslow_ms", JsonValue(tslowMs));
    if (!components.empty()) {
        JsonValue list = JsonValue::makeArray();
        for (const std::string &glob : components)
            list.push(JsonValue(glob));
        params.set("components", std::move(list));
    }
    return params;
}

JsonValue
ImpactPartialRequest::toParams() const
{
    JsonValue params = JsonValue::makeObject();
    params.set("corpus", JsonValue(corpus));
    if (!components.empty()) {
        JsonValue list = JsonValue::makeArray();
        for (const std::string &glob : components)
            list.push(JsonValue(glob));
        params.set("components", std::move(list));
    }
    return params;
}

JsonValue
MinePartialRequest::toParams() const
{
    JsonValue params = JsonValue::makeObject();
    params.set("corpus", JsonValue(corpus));
    params.set("scenario", JsonValue(scenario));
    params.set("tfast_ms", JsonValue(tfastMs));
    params.set("tslow_ms", JsonValue(tslowMs));
    return params;
}

JsonValue
ClusterStatusRequest::toParams() const
{
    JsonValue params = JsonValue::makeObject();
    if (metrics)
        params.set("metrics", JsonValue(true));
    return params;
}

JsonValue
TelemetryPullRequest::toParams() const
{
    return JsonValue::makeObject();
}

JsonValue
MetricsRequest::toParams() const
{
    return JsonValue::makeObject();
}

JsonValue
FlightRecorderRequest::toParams() const
{
    return JsonValue::makeObject();
}

JsonValue
ClusterTraceRequest::toParams() const
{
    return JsonValue::makeObject();
}

JsonValue
IngestPushRequest::toParams() const
{
    JsonValue params = JsonValue::makeObject();
    params.set("name", JsonValue(name));
    params.set("payload", JsonValue(payloadBase64));
    params.set("fleet_revision", JsonValue(fleetRevision));
    if (timestampMs)
        params.set("timestamp_ms", JsonValue(*timestampMs));
    return params;
}

JsonValue
WindowSummaryRequest::toParams() const
{
    JsonValue params = JsonValue::makeObject();
    params.set("scenario", JsonValue(scenario));
    if (tfastMs)
        params.set("tfast_ms", JsonValue(*tfastMs));
    if (tslowMs)
        params.set("tslow_ms", JsonValue(*tslowMs));
    if (!windows.empty())
        params.set("windows", JsonValue(windows));
    if (trailing)
        params.set("trailing", JsonValue(*trailing));
    if (top)
        params.set("top", JsonValue(*top));
    if (knowledgeFilter)
        params.set("knowledge_filter", JsonValue(*knowledgeFilter));
    return params;
}

JsonValue
AlertsRequest::toParams() const
{
    JsonValue params = JsonValue::makeObject();
    if (afterSeq != 0)
        params.set("after_seq", JsonValue(afterSeq));
    if (waitMs)
        params.set("wait_ms", JsonValue(*waitMs));
    return params;
}

// ------------------------------------------------------ v1 line codec

Expected<Request>
parseRequest(std::string_view line)
{
    Expected<JsonValue> doc = JsonValue::parse(line);
    if (!doc)
        return doc.error();
    const JsonValue &root = doc.value();
    if (!root.isObject())
        return SourceError{"<request>", 0,
                           "request must be a JSON object"};

    Request request;
    if (const JsonValue *id = root.find("id")) {
        if (!id->isNumber())
            return SourceError{"<request>", 0,
                               "\"id\" must be a number"};
        request.id = id->asNumber();
    }
    const JsonValue *method = root.find("method");
    if (method == nullptr || !method->isString() ||
        method->asString().empty()) {
        return SourceError{"<request>", 0,
                           "missing or invalid \"method\""};
    }
    request.method = method->asString();

    if (const JsonValue *params = root.find("params")) {
        if (!params->isObject())
            return SourceError{"<request>", 0,
                               "\"params\" must be an object"};
        request.params = *params;
    }
    if (const JsonValue *deadline = root.find("deadline_ms")) {
        if (!deadline->isNumber() || deadline->asNumber() < 0 ||
            !std::isfinite(deadline->asNumber())) {
            return SourceError{
                "<request>", 0,
                "\"deadline_ms\" must be a non-negative number"};
        }
        request.deadlineMs =
            static_cast<std::uint64_t>(deadline->asNumber());
    }
    return request;
}

std::string
renderResult(const std::optional<double> &id, const JsonValue &result)
{
    JsonValue response = JsonValue::makeObject();
    if (id)
        response.set("id", JsonValue(*id));
    response.set("ok", JsonValue(true));
    response.set("result", result);
    return response.render() + "\n";
}

std::string
renderError(const std::optional<double> &id, ErrorCode code,
            std::string_view message, std::uint64_t offset)
{
    JsonValue error = JsonValue::makeObject();
    error.set("code", JsonValue(errorCodeName(code)));
    error.set("message", JsonValue(message));
    if (offset != 0)
        error.set("offset", JsonValue(offset));
    JsonValue response = JsonValue::makeObject();
    if (id)
        response.set("id", JsonValue(*id));
    response.set("ok", JsonValue(false));
    response.set("error", std::move(error));
    return response.render() + "\n";
}

Expected<Response>
parseResponseLine(std::string_view line)
{
    Expected<JsonValue> doc = JsonValue::parse(line);
    if (!doc)
        return doc.error();
    const JsonValue &root = doc.value();
    if (!root.isObject())
        return SourceError{"<response>", 0,
                           "response must be a JSON object"};
    Response response;
    if (const JsonValue *id = root.find("id");
        id != nullptr && id->isNumber())
        response.id = id->asNumber();
    const JsonValue *ok = root.find("ok");
    response.ok = ok != nullptr && ok->isBool() && ok->asBool();
    if (response.ok) {
        if (const JsonValue *result = root.find("result"))
            response.result = *result;
    } else if (const JsonValue *error = root.find("error")) {
        response.error = parseErrorObject(*error);
    }
    return response;
}

// ----------------------------------------- shared payload (v2 bodies)

std::string
renderErrorObject(const ErrorInfo &error)
{
    JsonValue object = JsonValue::makeObject();
    object.set("code", JsonValue(errorCodeName(error.code)));
    object.set("message", JsonValue(error.message));
    if (error.offset != 0)
        object.set("offset", JsonValue(error.offset));
    return object.render();
}

// ------------------------------------ observability payload codecs

JsonValue
metricsSnapshotJson(const MetricsSnapshot &snapshot)
{
    JsonValue counters = JsonValue::makeObject();
    for (const auto &[name, value] : snapshot.counters)
        counters.set(name, JsonValue(value));
    JsonValue gauges = JsonValue::makeObject();
    for (const auto &[name, value] : snapshot.gauges)
        gauges.set(name, JsonValue(value));
    JsonValue histograms = JsonValue::makeObject();
    for (const auto &[name, state] : snapshot.histograms) {
        JsonValue entry = JsonValue::makeObject();
        entry.set("count", JsonValue(state.count));
        entry.set("sum", JsonValue(state.sum));
        entry.set("max", JsonValue(state.max));
        JsonValue buckets = JsonValue::makeArray();
        for (const auto &[index, occupancy] : state.buckets) {
            JsonValue pair = JsonValue::makeArray();
            pair.push(JsonValue(index));
            pair.push(JsonValue(occupancy));
            buckets.push(std::move(pair));
        }
        entry.set("buckets", std::move(buckets));
        histograms.set(name, std::move(entry));
    }
    JsonValue json = JsonValue::makeObject();
    json.set("counters", std::move(counters));
    json.set("gauges", std::move(gauges));
    json.set("histograms", std::move(histograms));
    return json;
}

namespace
{

std::uint64_t
u64Member(const JsonValue &object, std::string_view key)
{
    const JsonValue *value = object.find(key);
    if (value == nullptr || !value->isNumber() ||
        value->asNumber() < 0)
        return 0;
    return static_cast<std::uint64_t>(value->asNumber());
}

} // namespace

MetricsSnapshot
parseMetricsSnapshot(const JsonValue &json)
{
    MetricsSnapshot snapshot;
    if (const JsonValue *counters = json.find("counters");
        counters != nullptr && counters->isObject()) {
        for (const auto &[name, value] : counters->asObject()) {
            if (value.isNumber() && value.asNumber() >= 0)
                snapshot.counters.emplace_back(
                    name,
                    static_cast<std::uint64_t>(value.asNumber()));
        }
    }
    if (const JsonValue *gauges = json.find("gauges");
        gauges != nullptr && gauges->isObject()) {
        for (const auto &[name, value] : gauges->asObject()) {
            if (value.isNumber())
                snapshot.gauges.emplace_back(name, value.asNumber());
        }
    }
    if (const JsonValue *histograms = json.find("histograms");
        histograms != nullptr && histograms->isObject()) {
        for (const auto &[name, entry] : histograms->asObject()) {
            if (!entry.isObject())
                continue;
            Histogram::State state;
            state.count = u64Member(entry, "count");
            state.sum = u64Member(entry, "sum");
            state.max = u64Member(entry, "max");
            if (const JsonValue *buckets = entry.find("buckets");
                buckets != nullptr && buckets->isArray()) {
                for (const JsonValue &pair : buckets->asArray()) {
                    if (!pair.isArray() ||
                        pair.asArray().size() != 2 ||
                        !pair.asArray()[0].isNumber() ||
                        !pair.asArray()[1].isNumber())
                        continue;
                    state.buckets.emplace_back(
                        static_cast<std::uint32_t>(
                            pair.asArray()[0].asNumber()),
                        static_cast<std::uint64_t>(
                            pair.asArray()[1].asNumber()));
                }
            }
            snapshot.histograms.emplace_back(name, std::move(state));
        }
    }
    return snapshot;
}

JsonValue
nodeSpansJson(const NodeSpans &node)
{
    JsonValue spans = JsonValue::makeArray();
    for (const SpanSnapshot &span : node.spans) {
        JsonValue entry = JsonValue::makeObject();
        entry.set("name", JsonValue(span.name));
        entry.set("category", JsonValue(span.category));
        entry.set("tid", JsonValue(span.tid));
        entry.set("depth", JsonValue(span.depth));
        entry.set("start_us", JsonValue(span.startUs));
        entry.set("dur_us", JsonValue(span.durUs));
        entry.set("cpu_ns", JsonValue(span.cpuNs));
        if (span.traceId != 0) {
            entry.set("trace_id", JsonValue(hexId(span.traceId)));
            entry.set("span_id", JsonValue(hexId(span.spanId)));
            entry.set("parent_span_id",
                      JsonValue(hexId(span.parentSpanId)));
        }
        if (!span.args.empty()) {
            JsonValue args = JsonValue::makeObject();
            for (const auto &[key, value] : span.args)
                args.set(key, JsonValue(value));
            entry.set("args", std::move(args));
        }
        spans.push(std::move(entry));
    }
    JsonValue json = JsonValue::makeObject();
    json.set("node", JsonValue(node.node));
    json.set("epoch_unix_us", JsonValue(node.epochUnixUs));
    json.set("spans", std::move(spans));
    return json;
}

NodeSpans
parseNodeSpans(const JsonValue &json)
{
    NodeSpans node;
    if (const JsonValue *name = json.find("node");
        name != nullptr && name->isString())
        node.node = name->asString();
    node.epochUnixUs = u64Member(json, "epoch_unix_us");
    const JsonValue *spans = json.find("spans");
    if (spans == nullptr || !spans->isArray())
        return node;
    for (const JsonValue &entry : spans->asArray()) {
        if (!entry.isObject())
            continue;
        const JsonValue *name = entry.find("name");
        if (name == nullptr || !name->isString())
            continue;
        SpanSnapshot span;
        span.name = name->asString();
        if (const JsonValue *category = entry.find("category");
            category != nullptr && category->isString())
            span.category = category->asString();
        span.tid = static_cast<std::uint32_t>(u64Member(entry, "tid"));
        span.depth =
            static_cast<std::uint32_t>(u64Member(entry, "depth"));
        span.startUs = u64Member(entry, "start_us");
        span.durUs = u64Member(entry, "dur_us");
        span.cpuNs = u64Member(entry, "cpu_ns");
        if (const JsonValue *id = entry.find("trace_id");
            id != nullptr && id->isString())
            span.traceId = parseHexId(id->asString());
        if (const JsonValue *id = entry.find("span_id");
            id != nullptr && id->isString())
            span.spanId = parseHexId(id->asString());
        if (const JsonValue *id = entry.find("parent_span_id");
            id != nullptr && id->isString())
            span.parentSpanId = parseHexId(id->asString());
        if (const JsonValue *args = entry.find("args");
            args != nullptr && args->isObject()) {
            for (const auto &[key, value] : args->asObject()) {
                if (value.isString())
                    span.args.emplace_back(key, value.asString());
            }
        }
        node.spans.push_back(std::move(span));
    }
    return node;
}

ErrorInfo
parseErrorObject(const JsonValue &error)
{
    ErrorInfo info;
    if (const JsonValue *code = error.find("code");
        code != nullptr && code->isString()) {
        if (const auto parsed = parseErrorCode(code->asString()))
            info.code = *parsed;
    }
    if (const JsonValue *message = error.find("message");
        message != nullptr && message->isString())
        info.message = message->asString();
    if (const JsonValue *offset = error.find("offset");
        offset != nullptr && offset->isNumber())
        info.offset = static_cast<std::uint64_t>(offset->asNumber());
    return info;
}

} // namespace server
} // namespace tracelens
