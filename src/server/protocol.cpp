/**
 * @file
 * Method/error vocabulary, typed request params, and the v1 line
 * codec of the analysis-service protocol (src/server/protocol.h).
 */

#include "src/server/protocol.h"

#include <cmath>

namespace tracelens
{
namespace server
{

const std::vector<std::uint32_t> &
supportedProtocolVersions()
{
    static const std::vector<std::uint32_t> versions = {
        kProtocolVersionV1, kProtocolVersionV2};
    return versions;
}

// ------------------------------------------------------------ methods

std::string_view
methodName(Method method)
{
    switch (method) {
    case Method::Health:
        return "health";
    case Method::Stats:
        return "stats";
    case Method::Shutdown:
        return "shutdown";
    case Method::Analyze:
        return "analyze";
    case Method::Impact:
        return "impact";
    case Method::Mine:
        return "mine";
    case Method::Ingest:
        return "ingest";
    case Method::Sleep:
        return "sleep";
    case Method::AnalyzePartial:
        return "analyze_partial";
    case Method::ImpactPartial:
        return "impact_partial";
    case Method::MinePartial:
        return "mine_partial";
    case Method::ClusterStatus:
        return "cluster_status";
    }
    return "health";
}

std::optional<Method>
parseMethod(std::string_view name)
{
    static constexpr Method kAll[] = {
        Method::Health,        Method::Stats,
        Method::Shutdown,      Method::Analyze,
        Method::Impact,        Method::Mine,
        Method::Ingest,        Method::Sleep,
        Method::AnalyzePartial, Method::ImpactPartial,
        Method::MinePartial,   Method::ClusterStatus};
    for (const Method method : kAll) {
        if (methodName(method) == name)
            return method;
    }
    return std::nullopt;
}

std::uint8_t
methodWireByte(Method method)
{
    return static_cast<std::uint8_t>(method);
}

std::optional<Method>
methodFromWireByte(std::uint8_t byte)
{
    if (byte > methodWireByte(Method::ClusterStatus))
        return std::nullopt;
    return static_cast<Method>(byte);
}

bool
isControlMethod(Method method)
{
    return method == Method::Health || method == Method::Stats ||
           method == Method::Shutdown;
}

// -------------------------------------------------------- error codes

std::string_view
errorCodeName(ErrorCode code)
{
    switch (code) {
    case ErrorCode::BadRequest:
        return "bad_request";
    case ErrorCode::Overloaded:
        return "overloaded";
    case ErrorCode::DeadlineExceeded:
        return "deadline_exceeded";
    case ErrorCode::NotFound:
        return "not_found";
    case ErrorCode::ShuttingDown:
        return "shutting_down";
    case ErrorCode::ProtocolError:
        return "protocol_error";
    case ErrorCode::Internal:
        return "internal";
    }
    return "internal";
}

std::optional<ErrorCode>
parseErrorCode(std::string_view name)
{
    static constexpr ErrorCode kAll[] = {
        ErrorCode::BadRequest,    ErrorCode::Overloaded,
        ErrorCode::DeadlineExceeded, ErrorCode::NotFound,
        ErrorCode::ShuttingDown,  ErrorCode::ProtocolError,
        ErrorCode::Internal};
    for (const ErrorCode code : kAll) {
        if (errorCodeName(code) == name)
            return code;
    }
    return std::nullopt;
}

// ------------------------------------------------- typed request params

JsonValue
AnalyzeRequest::toParams() const
{
    JsonValue params = JsonValue::makeObject();
    params.set("corpus", JsonValue(corpus));
    params.set("scenario", JsonValue(scenario));
    if (tfastMs)
        params.set("tfast_ms", JsonValue(*tfastMs));
    if (tslowMs)
        params.set("tslow_ms", JsonValue(*tslowMs));
    if (top)
        params.set("top", JsonValue(*top));
    if (knowledgeFilter)
        params.set("knowledge_filter", JsonValue(*knowledgeFilter));
    if (!components.empty()) {
        JsonValue list = JsonValue::makeArray();
        for (const std::string &glob : components)
            list.push(JsonValue(glob));
        params.set("components", std::move(list));
    }
    return params;
}

JsonValue
ImpactRequest::toParams() const
{
    JsonValue params = JsonValue::makeObject();
    params.set("corpus", JsonValue(corpus));
    if (!components.empty()) {
        JsonValue list = JsonValue::makeArray();
        for (const std::string &glob : components)
            list.push(JsonValue(glob));
        params.set("components", std::move(list));
    }
    return params;
}

JsonValue
MineRequest::toParams() const
{
    JsonValue params = JsonValue::makeObject();
    params.set("corpus", JsonValue(corpus));
    params.set("scenario", JsonValue(scenario));
    if (tfastMs)
        params.set("tfast_ms", JsonValue(*tfastMs));
    if (tslowMs)
        params.set("tslow_ms", JsonValue(*tslowMs));
    if (maxPatterns)
        params.set("max_patterns", JsonValue(*maxPatterns));
    return params;
}

JsonValue
IngestRequest::toParams() const
{
    JsonValue params = JsonValue::makeObject();
    params.set("corpus", JsonValue(corpus));
    return params;
}

JsonValue
SleepRequest::toParams() const
{
    JsonValue params = JsonValue::makeObject();
    params.set("ms", JsonValue(ms));
    return params;
}

JsonValue
AnalyzePartialRequest::toParams() const
{
    JsonValue params = JsonValue::makeObject();
    params.set("corpus", JsonValue(corpus));
    params.set("scenario", JsonValue(scenario));
    params.set("tfast_ms", JsonValue(tfastMs));
    params.set("tslow_ms", JsonValue(tslowMs));
    if (!components.empty()) {
        JsonValue list = JsonValue::makeArray();
        for (const std::string &glob : components)
            list.push(JsonValue(glob));
        params.set("components", std::move(list));
    }
    return params;
}

JsonValue
ImpactPartialRequest::toParams() const
{
    JsonValue params = JsonValue::makeObject();
    params.set("corpus", JsonValue(corpus));
    if (!components.empty()) {
        JsonValue list = JsonValue::makeArray();
        for (const std::string &glob : components)
            list.push(JsonValue(glob));
        params.set("components", std::move(list));
    }
    return params;
}

JsonValue
MinePartialRequest::toParams() const
{
    JsonValue params = JsonValue::makeObject();
    params.set("corpus", JsonValue(corpus));
    params.set("scenario", JsonValue(scenario));
    params.set("tfast_ms", JsonValue(tfastMs));
    params.set("tslow_ms", JsonValue(tslowMs));
    return params;
}

JsonValue
ClusterStatusRequest::toParams() const
{
    return JsonValue::makeObject();
}

// ------------------------------------------------------ v1 line codec

Expected<Request>
parseRequest(std::string_view line)
{
    Expected<JsonValue> doc = JsonValue::parse(line);
    if (!doc)
        return doc.error();
    const JsonValue &root = doc.value();
    if (!root.isObject())
        return SourceError{"<request>", 0,
                           "request must be a JSON object"};

    Request request;
    if (const JsonValue *id = root.find("id")) {
        if (!id->isNumber())
            return SourceError{"<request>", 0,
                               "\"id\" must be a number"};
        request.id = id->asNumber();
    }
    const JsonValue *method = root.find("method");
    if (method == nullptr || !method->isString() ||
        method->asString().empty()) {
        return SourceError{"<request>", 0,
                           "missing or invalid \"method\""};
    }
    request.method = method->asString();

    if (const JsonValue *params = root.find("params")) {
        if (!params->isObject())
            return SourceError{"<request>", 0,
                               "\"params\" must be an object"};
        request.params = *params;
    }
    if (const JsonValue *deadline = root.find("deadline_ms")) {
        if (!deadline->isNumber() || deadline->asNumber() < 0 ||
            !std::isfinite(deadline->asNumber())) {
            return SourceError{
                "<request>", 0,
                "\"deadline_ms\" must be a non-negative number"};
        }
        request.deadlineMs =
            static_cast<std::uint64_t>(deadline->asNumber());
    }
    return request;
}

std::string
renderResult(const std::optional<double> &id, const JsonValue &result)
{
    JsonValue response = JsonValue::makeObject();
    if (id)
        response.set("id", JsonValue(*id));
    response.set("ok", JsonValue(true));
    response.set("result", result);
    return response.render() + "\n";
}

std::string
renderError(const std::optional<double> &id, ErrorCode code,
            std::string_view message, std::uint64_t offset)
{
    JsonValue error = JsonValue::makeObject();
    error.set("code", JsonValue(errorCodeName(code)));
    error.set("message", JsonValue(message));
    if (offset != 0)
        error.set("offset", JsonValue(offset));
    JsonValue response = JsonValue::makeObject();
    if (id)
        response.set("id", JsonValue(*id));
    response.set("ok", JsonValue(false));
    response.set("error", std::move(error));
    return response.render() + "\n";
}

Expected<Response>
parseResponseLine(std::string_view line)
{
    Expected<JsonValue> doc = JsonValue::parse(line);
    if (!doc)
        return doc.error();
    const JsonValue &root = doc.value();
    if (!root.isObject())
        return SourceError{"<response>", 0,
                           "response must be a JSON object"};
    Response response;
    if (const JsonValue *id = root.find("id");
        id != nullptr && id->isNumber())
        response.id = id->asNumber();
    const JsonValue *ok = root.find("ok");
    response.ok = ok != nullptr && ok->isBool() && ok->asBool();
    if (response.ok) {
        if (const JsonValue *result = root.find("result"))
            response.result = *result;
    } else if (const JsonValue *error = root.find("error")) {
        response.error = parseErrorObject(*error);
    }
    return response;
}

// ----------------------------------------- shared payload (v2 bodies)

std::string
renderErrorObject(const ErrorInfo &error)
{
    JsonValue object = JsonValue::makeObject();
    object.set("code", JsonValue(errorCodeName(error.code)));
    object.set("message", JsonValue(error.message));
    if (error.offset != 0)
        object.set("offset", JsonValue(error.offset));
    return object.render();
}

ErrorInfo
parseErrorObject(const JsonValue &error)
{
    ErrorInfo info;
    if (const JsonValue *code = error.find("code");
        code != nullptr && code->isString()) {
        if (const auto parsed = parseErrorCode(code->asString()))
            info.code = *parsed;
    }
    if (const JsonValue *message = error.find("message");
        message != nullptr && message->isString())
        info.message = message->asString();
    if (const JsonValue *offset = error.find("offset");
        offset != nullptr && offset->isNumber())
        info.offset = static_cast<std::uint64_t>(offset->asNumber());
    return info;
}

} // namespace server
} // namespace tracelens
