/**
 * @file
 * Request parsing and response serialization for the analysis-service
 * protocol (src/server/protocol.h).
 */

#include "src/server/protocol.h"

#include <cmath>

namespace tracelens
{
namespace server
{

std::string_view
errorCodeName(ErrorCode code)
{
    switch (code) {
    case ErrorCode::BadRequest:
        return "bad_request";
    case ErrorCode::Overloaded:
        return "overloaded";
    case ErrorCode::DeadlineExceeded:
        return "deadline_exceeded";
    case ErrorCode::NotFound:
        return "not_found";
    case ErrorCode::ShuttingDown:
        return "shutting_down";
    case ErrorCode::Internal:
        return "internal";
    }
    return "internal";
}

Expected<Request>
parseRequest(std::string_view line)
{
    Expected<JsonValue> doc = JsonValue::parse(line);
    if (!doc)
        return doc.error();
    const JsonValue &root = doc.value();
    if (!root.isObject())
        return SourceError{"<request>", 0,
                           "request must be a JSON object"};

    Request request;
    if (const JsonValue *id = root.find("id")) {
        if (!id->isNumber())
            return SourceError{"<request>", 0,
                               "\"id\" must be a number"};
        request.id = id->asNumber();
    }
    const JsonValue *method = root.find("method");
    if (method == nullptr || !method->isString() ||
        method->asString().empty()) {
        return SourceError{"<request>", 0,
                           "missing or invalid \"method\""};
    }
    request.method = method->asString();

    if (const JsonValue *params = root.find("params")) {
        if (!params->isObject())
            return SourceError{"<request>", 0,
                               "\"params\" must be an object"};
        request.params = *params;
    }
    if (const JsonValue *deadline = root.find("deadline_ms")) {
        if (!deadline->isNumber() || deadline->asNumber() < 0 ||
            !std::isfinite(deadline->asNumber())) {
            return SourceError{
                "<request>", 0,
                "\"deadline_ms\" must be a non-negative number"};
        }
        request.deadlineMs =
            static_cast<std::uint64_t>(deadline->asNumber());
    }
    return request;
}

std::string
renderResult(const std::optional<double> &id, const JsonValue &result)
{
    JsonValue response = JsonValue::makeObject();
    if (id)
        response.set("id", JsonValue(*id));
    response.set("ok", JsonValue(true));
    response.set("result", result);
    return response.render() + "\n";
}

std::string
renderError(const std::optional<double> &id, ErrorCode code,
            std::string_view message)
{
    JsonValue error = JsonValue::makeObject();
    error.set("code", JsonValue(errorCodeName(code)));
    error.set("message", JsonValue(message));
    JsonValue response = JsonValue::makeObject();
    if (id)
        response.set("id", JsonValue(*id));
    response.set("ok", JsonValue(false));
    response.set("error", std::move(error));
    return response.render() + "\n";
}

} // namespace server
} // namespace tracelens
