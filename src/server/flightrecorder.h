/**
 * @file
 * Per-request flight recorder: a bounded ring of the most recently
 * completed requests, kept always-on so "what just happened?" has an
 * answer without re-running anything — the black-box counterpart to
 * the aggregate metrics registry. The server records one entry as
 * each request finishes (either transport); the `flight_recorder`
 * control method dumps the ring, and requests slower than
 * `--slow-request-ms` are additionally logged at warn level.
 *
 * The ring is deliberately tiny (a few hundred fixed-size-ish
 * records) and takes one uncontended mutex per completed request —
 * negligible next to the request itself, so it stays inside the
 * telemetry layer's <3% overhead contract (BENCH_obs.json).
 */

#ifndef TRACELENS_SERVER_FLIGHTRECORDER_H
#define TRACELENS_SERVER_FLIGHTRECORDER_H

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace tracelens
{
namespace server
{

/** One completed request, as the flight recorder remembers it. */
struct FlightRecord
{
    std::string method;
    /** Corpus path the request touched ("" for control methods). */
    std::string session;
    /** Wall-clock completion time (unix microseconds). */
    std::uint64_t completedUnixUs = 0;
    /** Queue wait (arrival -> a worker picked it up). */
    std::uint64_t queueWaitUs = 0;
    /** Total latency (arrival -> response rendered). */
    std::uint64_t totalUs = 0;
    /** Deadline slack at completion, ms; negative = missed. Only
     *  meaningful when hasDeadline. */
    std::int64_t deadlineSlackMs = 0;
    bool hasDeadline = false;
    /** "ok" or the error code name ("deadline_exceeded", ...). */
    std::string outcome = "ok";
    /** Rendered response body bytes (pre-framing). */
    std::uint64_t responseBytes = 0;
    /** Worker sub-requests a coordinator gather fanned out to. */
    std::uint64_t fanout = 0;
    /** Distributed trace id (0 = request carried no context). */
    std::uint64_t traceId = 0;
    std::uint32_t protocol = 1; //!< Transport revision (1 or 2).
    std::uint8_t priority = 1;
};

/** Bounded ring of FlightRecords; all operations thread-safe. */
class FlightRecorder
{
  public:
    explicit FlightRecorder(std::size_t capacity = 256)
        : capacity_(capacity == 0 ? 1 : capacity)
    {
    }

    void
    record(FlightRecord record)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (ring_.size() < capacity_) {
            ring_.push_back(std::move(record));
        } else {
            ring_[next_] = std::move(record);
        }
        next_ = (next_ + 1) % capacity_;
        ++total_;
    }

    /** The retained records, oldest first. */
    std::vector<FlightRecord>
    snapshot() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::vector<FlightRecord> out;
        out.reserve(ring_.size());
        if (ring_.size() < capacity_) {
            out = ring_;
        } else {
            out.insert(out.end(), ring_.begin() + next_, ring_.end());
            out.insert(out.end(), ring_.begin(), ring_.begin() + next_);
        }
        return out;
    }

    /** Requests recorded over the recorder's lifetime (not capped). */
    std::uint64_t
    total() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return total_;
    }

    std::size_t
    capacity() const
    {
        return capacity_;
    }

  private:
    mutable std::mutex mutex_;
    std::vector<FlightRecord> ring_;
    std::size_t capacity_;
    std::size_t next_ = 0;
    std::uint64_t total_ = 0;
};

} // namespace server
} // namespace tracelens

#endif // TRACELENS_SERVER_FLIGHTRECORDER_H
