/**
 * @file
 * The analysis-service daemon (src/server/server.h): POSIX TCP
 * plumbing, the bounded request queue, worker dispatch on the
 * work-stealing pool, cooperative deadlines, and the method handlers
 * that answer from the session registry's warm state.
 */

#include "src/server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstring>
#include <shared_mutex>
#include <utility>
#include <vector>

#include <filesystem>
#include <fstream>

#include "src/core/partial.h"
#include "src/core/resultjson.h"
#include "src/fleet/fleet.h"
#include "src/mining/coverage.h"
#include "src/mining/knowledge.h"
#include "src/mining/miner.h"
#include "src/server/coordinator.h"
#include "src/trace/selftrace.h"
#include "src/trace/serialize.h"
#include "src/trace/source.h"
#include "src/util/logging.h"
#include "src/util/telemetry.h"
#include "src/workload/scenarios.h"

namespace tracelens
{
namespace server
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Handler failure routed into one error response. */
struct HandlerError
{
    ErrorCode code;
    std::string message;
};

[[noreturn]] void
failRequest(ErrorCode code, std::string message)
{
    throw HandlerError{code, std::move(message)};
}

std::uint64_t
usSince(Clock::time_point start)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            Clock::now() - start)
            .count());
}

// ------------------------------------------------- param extraction

const JsonValue &
requireParam(const JsonValue &params, std::string_view key)
{
    const JsonValue *value = params.find(key);
    if (value == nullptr)
        failRequest(ErrorCode::BadRequest,
                    "missing required param \"" + std::string(key) +
                        "\"");
    return *value;
}

std::string
stringParam(const JsonValue &params, std::string_view key)
{
    const JsonValue &value = requireParam(params, key);
    if (!value.isString() || value.asString().empty())
        failRequest(ErrorCode::BadRequest,
                    "param \"" + std::string(key) +
                        "\" must be a non-empty string");
    return value.asString();
}

double
numberParamOr(const JsonValue &params, std::string_view key,
              double fallback)
{
    const JsonValue *value = params.find(key);
    if (value == nullptr)
        return fallback;
    if (!value->isNumber() || !std::isfinite(value->asNumber()))
        failRequest(ErrorCode::BadRequest,
                    "param \"" + std::string(key) +
                        "\" must be a finite number");
    return value->asNumber();
}

bool
boolParamOr(const JsonValue &params, std::string_view key,
            bool fallback)
{
    const JsonValue *value = params.find(key);
    if (value == nullptr)
        return fallback;
    if (!value->isBool())
        failRequest(ErrorCode::BadRequest,
                    "param \"" + std::string(key) +
                        "\" must be a boolean");
    return value->asBool();
}

std::vector<std::string>
stringListParam(const JsonValue &params, std::string_view key)
{
    std::vector<std::string> out;
    const JsonValue *value = params.find(key);
    if (value == nullptr)
        return out;
    if (!value->isArray())
        failRequest(ErrorCode::BadRequest,
                    "param \"" + std::string(key) +
                        "\" must be an array of strings");
    for (const JsonValue &item : value->asArray()) {
        if (!item.isString())
            failRequest(ErrorCode::BadRequest,
                        "param \"" + std::string(key) +
                            "\" must be an array of strings");
        out.push_back(item.asString());
    }
    return out;
}

/** Scenario thresholds: catalog defaults, params override. */
void
resolveThresholds(const JsonValue &params, const std::string &scenario,
                  DurationNs &tFast, DurationNs &tSlow)
{
    tFast = 0;
    tSlow = 0;
    for (const ScenarioSpec &spec : scenarioCatalog()) {
        if (spec.name == scenario) {
            tFast = spec.tFast;
            tSlow = spec.tSlow;
        }
    }
    const double fastMs =
        numberParamOr(params, "tfast_ms", toMs(tFast));
    const double slowMs =
        numberParamOr(params, "tslow_ms", toMs(tSlow));
    tFast = fromMs(fastMs);
    tSlow = fromMs(slowMs);
    if (tFast <= 0 || tSlow <= tFast) {
        failRequest(ErrorCode::BadRequest,
                    "need tfast_ms < tslow_ms (required for scenarios "
                    "outside the catalog)");
    }
}

/** Assemble an ok-response line around an already-rendered result. */
std::string
assembleOk(const std::optional<double> &id,
           const std::string &resultJson)
{
    std::string line = "{";
    if (id) {
        line += "\"id\":";
        line += JsonValue(*id).render();
        line += ",";
    }
    line += "\"ok\":true,\"result\":";
    line += resultJson;
    line += "}\n";
    return line;
}

} // namespace

// ------------------------------------------------------- Connection

bool
Server::Connection::sendLine(const std::string &line)
{
    std::lock_guard<std::mutex> lock(writeMutex);
    return sendAllLocked(line);
}

bool
Server::Connection::sendAllLocked(std::string_view bytes)
{
    if (!open.load(std::memory_order_acquire))
        return false;
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t n =
            ::send(fd, bytes.data() + sent, bytes.size() - sent,
                   MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            open.store(false, std::memory_order_release);
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

void
Server::Connection::shutdownBoth()
{
    open.store(false, std::memory_order_release);
    ::shutdown(fd, SHUT_RDWR);
}

// ----------------------------------------------------------- Server

Server::Server(ServerConfig config)
    : config_(std::move(config)), registry_(config_.registry),
      flightRecorder_(config_.flightRecorderCapacity)
{
}

Server::~Server()
{
    if (started_.load(std::memory_order_acquire) && !stopped()) {
        requestStop();
        wait();
    }
    if (wakeRead_ >= 0)
        ::close(wakeRead_);
    if (wakeWrite_ >= 0)
        ::close(wakeWrite_);
}

Expected<std::uint16_t>
Server::start()
{
    if (started_.exchange(true))
        return SourceError{"<server>", 0, "server already started"};

    if (config_.coordinator) {
        if (config_.workerAddrs.empty()) {
            return SourceError{
                "<server>", 0,
                "coordinator mode needs at least one worker "
                "(--cluster-workers host:port,...)"};
        }
        for (const std::string &address : config_.workerAddrs) {
            if (!parseHostPort(address)) {
                return SourceError{"<server>", 0,
                                   "invalid worker address '" +
                                       address +
                                       "' (expected host:port)"};
            }
        }
        CoordinatorConfig coordConfig;
        coordConfig.workers = config_.workerAddrs;
        coordConfig.shardDeadlineMs = config_.shardDeadlineMs;
        coordinator_ = std::make_unique<Coordinator>(coordConfig);
    }

    if (!config_.fleetWatchDir.empty()) {
        FleetConfig fleetConfig;
        fleetConfig.dir = config_.fleetWatchDir;
        fleetConfig.windowMs = config_.fleetWindowMs;
        fleetConfig.maxWindows = config_.fleetMaxWindows;
        fleetConfig.pollMs = config_.fleetPollMs;
        fleetConfig.alertsPath = config_.fleetAlertsPath;
        fleetConfig.analyzer.artifactCacheDir =
            config_.registry.artifactCacheDir;
        fleetConfig.sentinel.baselineWindows =
            config_.fleetBaselineWindows;
        for (const ScenarioSpec &spec : scenarioCatalog()) {
            if (!config_.fleetScenarios.empty() &&
                std::find(config_.fleetScenarios.begin(),
                          config_.fleetScenarios.end(),
                          spec.name) == config_.fleetScenarios.end())
                continue;
            fleetConfig.sentinel.scenarios.push_back(
                {spec.name, spec.tFast, spec.tSlow});
        }
        fleet_ = std::make_unique<FleetService>(fleetConfig);
        fleet_->start();
    }

    workerCount_ = resolveThreads(config_.workers);

    MetricsRegistry &metrics = MetricsRegistry::global();
    requestsCounter_ = &metrics.counter("server.requests");
    rejectedCounter_ = &metrics.counter("server.rejected");
    errorsCounter_ = &metrics.counter("server.errors");
    queueDepthHist_ = &metrics.histogram("server.queue_depth");
    latencyHist_ = &metrics.histogram("server.latency_us");
    queueWaitHist_ = &metrics.histogram("server.queue_wait_us");
    inflightGauge_ = &metrics.gauge("server.inflight");

    int pipeFds[2];
    if (::pipe(pipeFds) != 0) {
        return SourceError{"<server>", 0,
                           std::string("pipe: ") +
                               std::strerror(errno)};
    }
    wakeRead_ = pipeFds[0];
    wakeWrite_ = pipeFds[1];

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        return SourceError{"<server>", 0,
                           std::string("socket: ") +
                               std::strerror(errno)};
    }
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) !=
        1) {
        ::close(listenFd_);
        listenFd_ = -1;
        return SourceError{"<server>", 0,
                           "invalid listen host '" + config_.host +
                               "' (IPv4 dotted quad expected)"};
    }
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        const int err = errno;
        ::close(listenFd_);
        listenFd_ = -1;
        return SourceError{"<server>", 0,
                           "bind " + config_.host + ":" +
                               std::to_string(config_.port) + ": " +
                               std::strerror(err)};
    }
    if (::listen(listenFd_, 128) != 0) {
        const int err = errno;
        ::close(listenFd_);
        listenFd_ = -1;
        return SourceError{"<server>", 0,
                           std::string("listen: ") +
                               std::strerror(err)};
    }
    sockaddr_in bound{};
    socklen_t boundLen = sizeof(bound);
    ::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&bound),
                  &boundLen);
    port_ = ntohs(bound.sin_port);

    startTime_ = Clock::now();
    // Self-tracing needs spans recorded regardless of --trace-out.
    if (!config_.selfTraceCorpusDir.empty())
        Telemetry::setEnabled(true);

    if (!config_.metricsListen.empty()) {
        Expected<std::pair<std::string, std::uint16_t>> endpoint =
            parseHostPort(config_.metricsListen);
        if (!endpoint) {
            ::close(listenFd_);
            listenFd_ = -1;
            return SourceError{"<server>", 0,
                               "--metrics-listen: " +
                                   endpoint.error().reason};
        }
        metricsFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (metricsFd_ < 0) {
            ::close(listenFd_);
            listenFd_ = -1;
            return SourceError{"<server>", 0,
                               std::string("metrics socket: ") +
                                   std::strerror(errno)};
        }
        ::setsockopt(metricsFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in maddr{};
        maddr.sin_family = AF_INET;
        maddr.sin_port = htons(endpoint.value().second);
        if (::inet_pton(AF_INET, endpoint.value().first.c_str(),
                        &maddr.sin_addr) != 1 ||
            ::bind(metricsFd_, reinterpret_cast<sockaddr *>(&maddr),
                   sizeof(maddr)) != 0 ||
            ::listen(metricsFd_, 16) != 0) {
            const int err = errno;
            ::close(metricsFd_);
            metricsFd_ = -1;
            ::close(listenFd_);
            listenFd_ = -1;
            return SourceError{"<server>", 0,
                               "metrics listen " +
                                   config_.metricsListen + ": " +
                                   std::strerror(err)};
        }
        sockaddr_in mbound{};
        socklen_t mboundLen = sizeof(mbound);
        ::getsockname(metricsFd_,
                      reinterpret_cast<sockaddr *>(&mbound),
                      &mboundLen);
        metricsPort_ = ntohs(mbound.sin_port);
        metricsThread_ = std::thread([this] { metricsLoop(); });
        TL_LOG(Info, "serve: metrics exposition on ",
               endpoint.value().first, ":", metricsPort_);
    }

    pool_ = std::make_unique<ThreadPool>(workerCount_);
    poolDriver_ = std::thread([this] {
        // Every pool worker claims exactly one index and parks in the
        // drain loop, so the request queue is serviced by the
        // work-stealing pool itself.
        pool_->parallelFor(0, workerCount_,
                           [this](std::size_t) { workerLoop(); });
    });
    acceptThread_ = std::thread([this] { acceptLoop(); });

    TL_LOG(Info, "serve: listening on ", config_.host, ":", port_,
           " (", workerCount_, " workers, max-inflight ",
           config_.maxInflight, ")");
    return port_;
}

void
Server::requestStop()
{
    // Only async-signal-safe calls here: SIGTERM handlers call this.
    if (wakeWrite_ >= 0) {
        const char byte = 's';
        [[maybe_unused]] const ssize_t n =
            ::write(wakeWrite_, &byte, 1);
    }
}

void
Server::wait()
{
    if (acceptThread_.joinable())
        acceptThread_.join();
    std::unique_lock<std::mutex> lock(stoppedMutex_);
    stoppedCv_.wait(lock, [this] {
        return stopped_.load(std::memory_order_acquire);
    });
}

ServerStats
Server::stats() const
{
    ServerStats stats;
    stats.accepted = accepted_.load(std::memory_order_relaxed);
    stats.requests = requests_.load(std::memory_order_relaxed);
    stats.ok = ok_.load(std::memory_order_relaxed);
    stats.errors = errors_.load(std::memory_order_relaxed);
    stats.rejected = rejected_.load(std::memory_order_relaxed);
    stats.dropped = dropped_.load(std::memory_order_relaxed);
    stats.connections = connections_.load(std::memory_order_relaxed);
    stats.v2Connections = v2Conns_.load(std::memory_order_relaxed);
    stats.protocolErrors =
        protocolErrors_.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(
            const_cast<std::mutex &>(queueMutex_));
        stats.inflight = inflight_;
    }
    return stats;
}

// ------------------------------------------------------ accept path

void
Server::acceptLoop()
{
    while (true) {
        pollfd fds[2];
        fds[0].fd = listenFd_;
        fds[0].events = POLLIN;
        fds[1].fd = wakeRead_;
        fds[1].events = POLLIN;
        const int ready = ::poll(fds, 2, 1000);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            TL_LOG(Error, "serve: poll failed: ",
                   std::strerror(errno));
            break;
        }
        if (ready == 0) {
            // Housekeeping tick: reap finished readers, evict idle
            // sessions.
            reapReaders(false);
            registry_.evictIdle();
            continue;
        }
        if (fds[1].revents != 0)
            break; // stop requested
        if ((fds[0].revents & POLLIN) == 0)
            continue;

        sockaddr_in peer{};
        socklen_t peerLen = sizeof(peer);
        const int fd = ::accept(
            listenFd_, reinterpret_cast<sockaddr *>(&peer), &peerLen);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            TL_LOG(Error, "serve: accept failed: ",
                   std::strerror(errno));
            break;
        }
        // Interactive protocol, small frames: without TCP_NODELAY a
        // response written shortly after another stalls ~40ms behind
        // Nagle waiting for the peer's delayed ACK.
        const int nodelay = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay,
                     sizeof(nodelay));
        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        char host[INET_ADDRSTRLEN] = "?";
        ::inet_ntop(AF_INET, &peer.sin_addr, host, sizeof(host));
        conn->peer = std::string(host) + ":" +
                     std::to_string(ntohs(peer.sin_port));
        accepted_.fetch_add(1, std::memory_order_relaxed);
        connections_.fetch_add(1, std::memory_order_relaxed);
        TL_LOG(Debug, "serve: accepted ", conn->peer);

        auto slot = std::make_unique<ReaderSlot>();
        ReaderSlot *raw = slot.get();
        slot->conn = conn;
        {
            std::lock_guard<std::mutex> lock(readersMutex_);
            readers_.push_back(std::move(slot));
        }
        raw->thread = std::thread([this, conn, raw] {
            readerLoop(conn);
            raw->done.store(true, std::memory_order_release);
        });
    }
    drain();
}

void
Server::reapReaders(bool all)
{
    std::list<std::unique_ptr<ReaderSlot>> finished;
    {
        std::lock_guard<std::mutex> lock(readersMutex_);
        for (auto it = readers_.begin(); it != readers_.end();) {
            if (all || (*it)->done.load(std::memory_order_acquire)) {
                finished.push_back(std::move(*it));
                it = readers_.erase(it);
            } else {
                ++it;
            }
        }
    }
    for (const auto &slot : finished) {
        if (slot->thread.joinable())
            slot->thread.join();
    }
}

void
Server::readerLoop(std::shared_ptr<Connection> conn)
{
    const bool readError = readV1Lines(conn);
    // EOF only means the client closed its *write* side; a half-closed
    // peer can still receive responses for requests already in flight,
    // so `open` stays set unless the socket actually failed.
    if (readError)
        conn->open.store(false, std::memory_order_release);
    connections_.fetch_sub(1, std::memory_order_relaxed);
    TL_LOG(Debug, "serve: closed ", conn->peer);
}

bool
Server::readV1Lines(const std::shared_ptr<Connection> &conn)
{
    std::string pending;
    char buffer[4096];
    bool firstLine = true;
    bool discarding = false;
    while (true) {
        const ssize_t n = ::recv(conn->fd, buffer, sizeof(buffer), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return true;
        }
        if (n == 0)
            return false; // client closed (or half-closed) write side
        conn->bytesIn += static_cast<std::uint64_t>(n);
        pending.append(buffer, static_cast<std::size_t>(n));

        if (discarding) {
            // Skipping the tail of an oversized line; resume at the
            // newline that terminates it.
            const std::size_t nl = pending.find('\n');
            if (nl == std::string::npos) {
                pending.clear();
                continue;
            }
            pending.erase(0, nl + 1);
            discarding = false;
        }

        std::size_t start = 0;
        while (true) {
            const std::size_t nl = pending.find('\n', start);
            if (nl == std::string::npos)
                break;
            std::string_view line(pending.data() + start, nl - start);
            if (!line.empty() && line.back() == '\r')
                line.remove_suffix(1);
            if (firstLine && config_.enableProtocolV2 &&
                line == wire::kPreface) {
                // Protocol upgrade: everything past the preface line
                // is already frame bytes.
                return readV2Frames(conn, pending.substr(nl + 1));
            }
            firstLine = false;
            if (!line.empty())
                handleLine(conn, line);
            start = nl + 1;
        }
        pending.erase(0, start);

        if (pending.size() > config_.maxLineBytes) {
            // A framing violation, not a slow consumer — but a
            // recoverable one: report where it started, discard
            // through the terminating newline, keep the connection.
            protocolErrors_.fetch_add(1, std::memory_order_relaxed);
            errors_.fetch_add(1, std::memory_order_relaxed);
            errorsCounter_->add(1);
            const std::uint64_t offset =
                conn->bytesIn - pending.size();
            conn->sendLine(renderError(
                std::nullopt, ErrorCode::ProtocolError,
                "request line exceeds " +
                    std::to_string(config_.maxLineBytes) +
                    " bytes; line discarded",
                offset));
            pending.clear();
            discarding = true;
        }
    }
}

// --------------------------------------------------- protocol v2 path

bool
Server::readV2Frames(const std::shared_ptr<Connection> &conn,
                     std::string pending)
{
    v2Conns_.fetch_add(1, std::memory_order_relaxed);
    conn->wire = std::make_unique<Connection::WireState>();
    {
        std::lock_guard<std::mutex> lock(conn->writeMutex);
        wire::Settings mine;
        mine.protocolVersion = kProtocolVersionV2;
        mine.maxFramePayload = static_cast<std::uint32_t>(
            std::min<std::size_t>(config_.maxLineBytes,
                                  wire::kMaxSaneFramePayload));
        // Advertise the span-context request field; it appears on
        // the wire only if the client advertises it back.
        mine.tracing = true;
        std::string frame;
        wire::appendFrame(frame, wire::FrameType::Settings, 0, 0,
                          wire::encodeSettings(mine));
        if (!conn->sendAllLocked(frame))
            return false;
    }
    TL_LOG(Debug, "serve: ", conn->peer, " upgraded to protocol v2");

    char buffer[4096];
    while (true) {
        // Consume every complete frame buffered so far.
        while (pending.size() >= wire::kFrameHeaderBytes) {
            wire::FrameHeader header;
            wire::decodeFrameHeader(pending, header);
            const std::uint64_t frameStart =
                conn->bytesIn - pending.size();
            if (header.length > wire::kMaxSaneFramePayload) {
                // Not a skippable frame: a length like this means the
                // byte stream itself is desynchronized.
                protocolErrors_.fetch_add(1,
                                          std::memory_order_relaxed);
                sendGoaway(conn, frameStart,
                           "frame length " +
                               std::to_string(header.length) +
                               " exceeds the sane limit");
                return false;
            }
            const std::size_t total =
                wire::kFrameHeaderBytes + header.length;
            if (pending.size() < total)
                break;
            const std::string_view payload(
                pending.data() + wire::kFrameHeaderBytes,
                header.length);
            if (!handleFrame(conn, header, payload, frameStart))
                return false;
            pending.erase(0, total);
        }
        const ssize_t n = ::recv(conn->fd, buffer, sizeof(buffer), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return true;
        }
        if (n == 0) {
            if (!pending.empty()) {
                protocolErrors_.fetch_add(1,
                                          std::memory_order_relaxed);
                sendGoaway(conn, conn->bytesIn - pending.size(),
                           "connection closed mid-frame (" +
                               std::to_string(pending.size()) +
                               " trailing bytes)");
            }
            return false;
        }
        conn->bytesIn += static_cast<std::uint64_t>(n);
        pending.append(buffer, static_cast<std::size_t>(n));
    }
}

void
Server::sendGoaway(const std::shared_ptr<Connection> &conn,
                   std::uint64_t offset, const std::string &message)
{
    TL_LOG(Debug, "serve: goaway to ", conn->peer, " @ byte ", offset,
           ": ", message);
    {
        std::lock_guard<std::mutex> lock(conn->writeMutex);
        std::string frame;
        wire::appendFrame(frame, wire::FrameType::Goaway, 0, 0,
                          wire::encodeGoaway(offset, message));
        conn->sendAllLocked(frame);
    }
    conn->shutdownBoth();
}

bool
Server::handleFrame(const std::shared_ptr<Connection> &conn,
                    const wire::FrameHeader &header,
                    std::string_view payload, std::uint64_t frameStart)
{
    Connection::WireState &state = *conn->wire;
    switch (static_cast<wire::FrameType>(header.type)) {
    case wire::FrameType::Settings: {
        Expected<wire::Settings> settings =
            wire::decodeSettings(payload);
        if (!settings) {
            protocolErrors_.fetch_add(1, std::memory_order_relaxed);
            sendGoaway(conn, frameStart,
                       "malformed settings: " +
                           settings.error().reason);
            return false;
        }
        std::lock_guard<std::mutex> lock(conn->writeMutex);
        state.peer = settings.value();
        flushOutboundLocked(conn);
        return true;
    }
    case wire::FrameType::Request: {
        if ((header.stream & 1u) == 0 ||
            header.stream <= state.lastStream) {
            // Client streams are odd and strictly increasing; an id
            // violating that means we lost framing sync.
            protocolErrors_.fetch_add(1, std::memory_order_relaxed);
            sendGoaway(conn, frameStart,
                       "bogus request stream id " +
                           std::to_string(header.stream));
            return false;
        }
        state.lastStream = header.stream;
        if (header.length > config_.maxLineBytes) {
            // Oversized but framed sanely: skip just this request.
            protocolErrors_.fetch_add(1, std::memory_order_relaxed);
            errors_.fetch_add(1, std::memory_order_relaxed);
            errorsCounter_->add(1);
            respondError(conn, header.stream, std::nullopt,
                         ErrorCode::ProtocolError,
                         "request frame exceeds " +
                             std::to_string(config_.maxLineBytes) +
                             " bytes",
                         frameStart);
            return true;
        }
        // The field appears iff BOTH sides advertised tracing; the
        // server always does, so the peer's flag decides. state.peer
        // is written by this same reader thread at SETTINGS receipt.
        Expected<wire::RequestFrame> frame =
            wire::decodeRequestPayload(payload, state.recvDict,
                                       state.peer.tracing);
        if (!frame) {
            // A dictionary/encoding failure leaves the session's
            // tables out of lockstep — report it on the stream, then
            // tear the connection down.
            protocolErrors_.fetch_add(1, std::memory_order_relaxed);
            errors_.fetch_add(1, std::memory_order_relaxed);
            errorsCounter_->add(1);
            respondError(conn, header.stream, std::nullopt,
                         ErrorCode::ProtocolError,
                         frame.error().reason,
                         frameStart + wire::kFrameHeaderBytes +
                             frame.error().offset);
            sendGoaway(conn, frameStart,
                       "request payload undecodable: " +
                           frame.error().reason);
            return false;
        }
        if (frame.value().contextRejected) {
            // The span-context length escaped the payload — hostile
            // or corrupt, but recoverable: the field precedes the
            // dictionary-encoded params, so the symbol tables never
            // advanced and the connection stays usable.
            protocolErrors_.fetch_add(1, std::memory_order_relaxed);
            errors_.fetch_add(1, std::memory_order_relaxed);
            errorsCounter_->add(1);
            respondError(conn, header.stream, std::nullopt,
                         ErrorCode::ProtocolError,
                         "malformed span-context field; request "
                         "dropped",
                         frameStart);
            return true;
        }
        const std::optional<Method> method =
            methodFromWireByte(frame.value().methodByte);
        if (!method) {
            errors_.fetch_add(1, std::memory_order_relaxed);
            errorsCounter_->add(1);
            respondError(
                conn, header.stream, std::nullopt, ErrorCode::NotFound,
                "unknown method byte " +
                    std::to_string(frame.value().methodByte));
            return true;
        }
        Expected<JsonValue> params =
            JsonValue::parse(frame.value().paramsJson);
        if (!params || !params.value().isObject()) {
            errors_.fetch_add(1, std::memory_order_relaxed);
            errorsCounter_->add(1);
            respondError(conn, header.stream, std::nullopt,
                         ErrorCode::BadRequest,
                         "request params must decode to a JSON "
                         "object");
            return true;
        }
        Request request;
        request.method = std::string(methodName(*method));
        request.params = std::move(params.value());
        request.deadlineMs = frame.value().deadlineMs;
        request.priority = frame.value().priority;
        request.context = frame.value().context;
        routeRequest(conn, std::move(request), header.stream);
        return true;
    }
    case wire::FrameType::WindowUpdate: {
        Expected<std::uint64_t> credit =
            wire::decodeWindowUpdate(payload);
        if (!credit || header.stream == 0) {
            protocolErrors_.fetch_add(1, std::memory_order_relaxed);
            sendGoaway(conn, frameStart, "malformed window update");
            return false;
        }
        std::lock_guard<std::mutex> lock(conn->writeMutex);
        auto window = state.window.find(header.stream);
        if (window == state.window.end()) {
            window = state.window
                         .emplace(header.stream,
                                  static_cast<std::int64_t>(
                                      state.peer.initialWindow))
                         .first;
        }
        window->second +=
            static_cast<std::int64_t>(credit.value());
        flushOutboundLocked(conn);
        return true;
    }
    case wire::FrameType::Ping: {
        if ((header.flags & wire::kFlagAck) == 0) {
            std::lock_guard<std::mutex> lock(conn->writeMutex);
            std::string pong;
            wire::appendFrame(pong, wire::FrameType::Ping,
                              wire::kFlagAck, 0, payload);
            conn->sendAllLocked(pong);
        }
        return true;
    }
    case wire::FrameType::Goaway:
        TL_LOG(Debug, "serve: ", conn->peer, " sent goaway");
        return false;
    case wire::FrameType::Response:
    default:
        // Clients never send Response; unknown types are ignored for
        // forward compatibility.
        return true;
    }
}

// ----------------------------------------------------- request path

void
Server::handleLine(const std::shared_ptr<Connection> &conn,
                   std::string_view line)
{
    Expected<Request> parsed = parseRequest(line);
    if (!parsed) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        errorsCounter_->add(1);
        conn->sendLine(renderError(std::nullopt,
                                   ErrorCode::BadRequest,
                                   parsed.error().reason));
        return;
    }
    routeRequest(conn, std::move(parsed.value()), 0);
}

void
Server::routeRequest(const std::shared_ptr<Connection> &conn,
                     Request request, std::uint32_t stream)
{
    requests_.fetch_add(1, std::memory_order_relaxed);
    requestsCounter_->add(1);

    // Control-plane methods answer inline on the reader thread: they
    // must stay responsive even when the queue is saturated.
    if (request.method == "health") {
        JsonValue result = JsonValue::makeObject();
        result.set("status",
                   JsonValue(draining_.load(std::memory_order_acquire)
                                 ? "draining"
                                 : "ok"));
        result.set("protocol", JsonValue(kProtocolVersion));
        JsonValue protocols = JsonValue::makeArray();
        for (const std::uint32_t version :
             supportedProtocolVersions())
            protocols.push(JsonValue(version));
        result.set("protocols", std::move(protocols));
        // Partial-result wire revision: the coordinator's
        // mixed-version handshake reads this (docs/SERVER.md).
        result.set("partial_encoding",
                   JsonValue(partialEncodingRevision()));
        result.set("role", JsonValue(config_.coordinator
                                         ? "coordinator"
                                         : "worker"));
        // Fleet/watch contract revision: ingest_push rejects
        // mismatched pushers; clients can pre-check here
        // (docs/FLEET.md).
        result.set("fleet_revision", JsonValue(fleetRevision()));
        result.set("fleet_watch", JsonValue(fleet_ != nullptr));
        // Cheap liveness extras the coordinator's cluster-status
        // table reads per worker (one probe, one row).
        result.set("uptime_s",
                   JsonValue(static_cast<double>(
                                 std::chrono::duration_cast<
                                     std::chrono::seconds>(
                                     Clock::now() - startTime_)
                                     .count())));
        result.set("inflight", JsonValue(stats().inflight));
        result.set("sessions",
                   JsonValue(registry_.stats().openSessions));
        ok_.fetch_add(1, std::memory_order_relaxed);
        respondOk(conn, stream, request.id, result.render());
        return;
    }
    if (request.method == "telemetry_pull") {
        ok_.fetch_add(1, std::memory_order_relaxed);
        respondOk(conn, stream, request.id,
                  telemetryPullResult().render());
        return;
    }
    if (request.method == "metrics") {
        ok_.fetch_add(1, std::memory_order_relaxed);
        respondOk(conn, stream, request.id,
                  metricsResult().render());
        return;
    }
    if (request.method == "flight_recorder") {
        ok_.fetch_add(1, std::memory_order_relaxed);
        respondOk(conn, stream, request.id,
                  flightRecorderResult().render());
        return;
    }
    if (request.method == "stats") {
        ok_.fetch_add(1, std::memory_order_relaxed);
        respondOk(conn, stream, request.id, statsResult().render());
        return;
    }
    if (request.method == "shutdown") {
        JsonValue result = JsonValue::makeObject();
        result.set("stopping", JsonValue(true));
        ok_.fetch_add(1, std::memory_order_relaxed);
        respondOk(conn, stream, request.id, result.render());
        TL_LOG(Info, "serve: shutdown requested by ", conn->peer);
        requestStop();
        return;
    }

    const bool known =
        request.method == "analyze" || request.method == "impact" ||
        request.method == "mine" || request.method == "ingest" ||
        request.method == "analyze_partial" ||
        request.method == "impact_partial" ||
        request.method == "mine_partial" ||
        request.method == "cluster_status" ||
        request.method == "cluster_trace" ||
        request.method == "ingest_push" ||
        request.method == "window_summary" ||
        request.method == "alerts" ||
        (config_.enableTestMethods && request.method == "sleep");
    if (!known) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        errorsCounter_->add(1);
        respondError(conn, stream, request.id, ErrorCode::NotFound,
                     "unknown method \"" + request.method + "\"");
        return;
    }
    if (draining_.load(std::memory_order_acquire)) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        errorsCounter_->add(1);
        respondError(conn, stream, request.id,
                     ErrorCode::ShuttingDown, "server is draining");
        return;
    }

    QueuedRequest queued;
    queued.arrival = Clock::now();
    const std::uint64_t deadlineMs = request.deadlineMs != 0
                                         ? request.deadlineMs
                                         : config_.defaultDeadlineMs;
    if (deadlineMs != 0) {
        queued.deadline =
            queued.arrival + std::chrono::milliseconds(deadlineMs);
    }
    const std::uint8_t priority =
        request.priority < kPriorityLevels ? request.priority
                                           : kPriorityBulk;
    queued.request = std::move(request);
    queued.conn = conn;
    queued.stream = stream;

    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        if (inflight_ >= config_.maxInflight) {
            rejected_.fetch_add(1, std::memory_order_relaxed);
            rejectedCounter_->add(1);
            errors_.fetch_add(1, std::memory_order_relaxed);
            respondError(conn, stream, queued.request.id,
                         ErrorCode::Overloaded,
                         "request queue full (" +
                             std::to_string(config_.maxInflight) +
                             " inflight); retry later");
            return;
        }
        ++inflight_;
        queues_[priority].push_back(std::move(queued));
        queueDepthHist_->record(queuedTotal());
        inflightGauge_->set(static_cast<double>(inflight_));
    }
    queueCv_.notify_one();
}

std::size_t
Server::queuedTotal() const
{
    std::size_t total = 0;
    for (const auto &bucket : queues_)
        total += bucket.size();
    return total;
}

void
Server::workerLoop()
{
    while (true) {
        QueuedRequest request;
        {
            std::unique_lock<std::mutex> lock(queueMutex_);
            queueCv_.wait(lock, [this] {
                return queuedTotal() != 0 || stopWorkers_;
            });
            if (queuedTotal() == 0 && stopWorkers_)
                return;
            // Lowest priority index first: interactive requests
            // overtake queued bulk work.
            for (auto &bucket : queues_) {
                if (!bucket.empty()) {
                    request = std::move(bucket.front());
                    bucket.pop_front();
                    break;
                }
            }
        }
        try {
            process(std::move(request));
        } catch (const std::exception &e) {
            // process() answers handler errors itself; anything that
            // escapes is a server bug we log rather than propagate
            // into the pool (which would rethrow on the driver).
            TL_LOG(Error, "serve: unhandled handler exception: ",
                   e.what());
        }
        {
            std::lock_guard<std::mutex> lock(queueMutex_);
            --inflight_;
            inflightGauge_->set(static_cast<double>(inflight_));
        }
        drainCv_.notify_all();
    }
}

void
Server::process(QueuedRequest request)
{
    // Install the propagated context first so the request span (and
    // everything under it) records the caller's trace id, with the
    // caller's span as parent — the receiving half of cross-process
    // propagation.
    std::optional<TraceContextScope> contextScope;
    if (request.request.context.valid())
        contextScope.emplace(request.request.context);
    Span span("server.request", "server");
    if (span.active())
        span.arg("method", request.request.method);
    const std::uint64_t queueWaitUs = usSince(request.arrival);
    queueWaitHist_->record(queueWaitUs);

    std::string resultJson;
    std::optional<HandlerError> failure;
    const char *outcome = "ok";
    try {
        if (request.deadline && Clock::now() >= *request.deadline) {
            failRequest(ErrorCode::DeadlineExceeded,
                        "deadline elapsed while queued");
        }
        JsonValue result;
        const std::string &method = request.request.method;
        if (method == "analyze") {
            result = config_.coordinator ? handleCoordAnalyze(request)
                                         : handleAnalyze(request);
        } else if (method == "impact") {
            result = config_.coordinator ? handleCoordImpact(request)
                                         : handleImpact(request);
        } else if (method == "mine") {
            result = config_.coordinator ? handleCoordMine(request)
                                         : handleMine(request);
        } else if (method == "ingest") {
            if (config_.coordinator) {
                failRequest(ErrorCode::BadRequest,
                            "ingest is not available in coordinator "
                            "mode (ingest on the workers)");
            }
            result = handleIngest(request);
        } else if (method == "analyze_partial" ||
                   method == "mine_partial") {
            if (config_.coordinator) {
                failRequest(ErrorCode::BadRequest,
                            "partial methods are served by workers, "
                            "not the coordinator");
            }
            result = handleAnalyzePartial(request);
        } else if (method == "impact_partial") {
            if (config_.coordinator) {
                failRequest(ErrorCode::BadRequest,
                            "partial methods are served by workers, "
                            "not the coordinator");
            }
            result = handleImpactPartial(request);
        } else if (method == "cluster_status") {
            if (!config_.coordinator) {
                failRequest(ErrorCode::BadRequest,
                            "this daemon is not a coordinator "
                            "(start with --coordinator)");
            }
            result = handleClusterStatus(request);
        } else if (method == "cluster_trace") {
            if (!config_.coordinator) {
                failRequest(ErrorCode::BadRequest,
                            "this daemon is not a coordinator "
                            "(start with --coordinator)");
            }
            result = handleClusterTrace(request);
        } else if (method == "ingest_push") {
            result = handleIngestPush(request);
        } else if (method == "window_summary") {
            result = handleWindowSummary(request);
        } else if (method == "alerts") {
            result = handleAlerts(request);
        } else if (method == "sleep") {
            result = handleSleep(request);
        } else {
            failRequest(ErrorCode::Internal, "unroutable method");
        }
        resultJson = result.render();
        ok_.fetch_add(1, std::memory_order_relaxed);
    } catch (const HandlerError &e) {
        failure = e;
        outcome = errorCodeName(e.code).data();
        errors_.fetch_add(1, std::memory_order_relaxed);
        errorsCounter_->add(1);
    } catch (const std::exception &e) {
        failure = HandlerError{ErrorCode::Internal, e.what()};
        outcome = "internal";
        errors_.fetch_add(1, std::memory_order_relaxed);
        errorsCounter_->add(1);
    }

    const std::uint64_t totalUs = usSince(request.arrival);
    latencyHist_->record(totalUs);
    if (span.active())
        span.arg("outcome", std::string(outcome));

    FlightRecord record;
    record.method = request.request.method;
    if (const JsonValue *corpus =
            request.request.params.find("corpus");
        corpus != nullptr && corpus->isString())
        record.session = corpus->asString();
    record.completedUnixUs = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    record.queueWaitUs = queueWaitUs;
    record.totalUs = totalUs;
    if (request.deadline) {
        record.hasDeadline = true;
        record.deadlineSlackMs =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                *request.deadline - Clock::now())
                .count();
    }
    record.outcome = outcome;
    record.responseBytes =
        failure ? failure->message.size() : resultJson.size();
    if (config_.coordinator &&
        (record.method == "analyze" || record.method == "impact" ||
         record.method == "mine" || record.method == "cluster_trace"))
        record.fanout = config_.workerAddrs.size();
    record.traceId = request.request.context.traceId;
    record.protocol = request.stream == 0 ? 1 : 2;
    record.priority = request.request.priority;
    flightRecorder_.record(std::move(record));

    if (config_.slowRequestMs != 0 &&
        totalUs > config_.slowRequestMs * 1000) {
        TL_LOG(Warn, "serve: slow request: ", request.request.method,
               " took ", totalUs / 1000, " ms (queue wait ",
               queueWaitUs / 1000, " ms, outcome ", outcome,
               request.request.context.valid()
                   ? ", trace " + hexId(request.request.context.traceId)
                   : std::string(),
               ")");
    }

    if (failure) {
        respondError(request.conn, request.stream,
                     request.request.id, failure->code,
                     failure->message);
    } else {
        respondOk(request.conn, request.stream, request.request.id,
                  resultJson);
    }
}

// ------------------------------------------------- response emission

void
Server::respondOk(const std::shared_ptr<Connection> &conn,
                  std::uint32_t stream,
                  const std::optional<double> &id,
                  const std::string &resultJson)
{
    if (stream == 0) {
        if (!conn->sendLine(assembleOk(id, resultJson)))
            dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    sendResponseV2(conn, stream, false, resultJson);
}

void
Server::respondError(const std::shared_ptr<Connection> &conn,
                     std::uint32_t stream,
                     const std::optional<double> &id, ErrorCode code,
                     const std::string &message, std::uint64_t offset)
{
    if (stream == 0) {
        if (!conn->sendLine(renderError(id, code, message, offset)))
            dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    ErrorInfo info;
    info.code = code;
    info.message = message;
    info.offset = offset;
    sendResponseV2(conn, stream, true, renderErrorObject(info));
}

void
Server::sendResponseV2(const std::shared_ptr<Connection> &conn,
                       std::uint32_t stream, bool isError,
                       const std::string &payloadJson)
{
    std::lock_guard<std::mutex> lock(conn->writeMutex);
    if (!conn->open.load(std::memory_order_acquire) || !conn->wire) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    Connection::WireState &state = *conn->wire;
    Connection::WireState::Outbound out;
    out.stream = stream;
    out.finalFlags = wire::kFlagEndStream |
                     (isError ? wire::kFlagError : std::uint8_t{0});
    // Encoding happens here, under writeMutex, in queue order — so
    // dictionary insertions hit the wire in exactly the order the
    // client's mirror table will apply them.
    state.sendDict.encode(payloadJson, out.bytes);
    state.outbound.push_back(std::move(out));
    flushOutboundLocked(conn);
}

void
Server::flushOutboundLocked(const std::shared_ptr<Connection> &conn)
{
    Connection::WireState &state = *conn->wire;
    while (!state.outbound.empty()) {
        Connection::WireState::Outbound &head =
            state.outbound.front();
        if (head.bytes.empty()) {
            std::string frame;
            wire::appendFrame(frame, wire::FrameType::Response,
                              head.finalFlags, head.stream, {});
            if (!conn->sendAllLocked(frame)) {
                dropped_.fetch_add(state.outbound.size(),
                                   std::memory_order_relaxed);
                state.outbound.clear();
                return;
            }
            state.window.erase(head.stream);
            state.outbound.pop_front();
            continue;
        }
        auto window = state.window.find(head.stream);
        if (window == state.window.end()) {
            window = state.window
                         .emplace(head.stream,
                                  static_cast<std::int64_t>(
                                      state.peer.initialWindow))
                         .first;
        }
        while (head.sent < head.bytes.size()) {
            if (window->second <= 0)
                return; // parked until the client sends credit
            const std::size_t chunk = std::min<std::size_t>(
                {head.bytes.size() - head.sent,
                 static_cast<std::size_t>(state.peer.maxFramePayload),
                 static_cast<std::size_t>(window->second)});
            const bool last =
                head.sent + chunk == head.bytes.size();
            const std::uint8_t flags =
                last ? head.finalFlags
                     : static_cast<std::uint8_t>(head.finalFlags &
                                                 wire::kFlagError);
            std::string frame;
            wire::appendFrame(
                frame, wire::FrameType::Response, flags, head.stream,
                std::string_view(head.bytes).substr(head.sent, chunk));
            if (!conn->sendAllLocked(frame)) {
                dropped_.fetch_add(state.outbound.size(),
                                   std::memory_order_relaxed);
                state.outbound.clear();
                return;
            }
            head.sent += chunk;
            window->second -= static_cast<std::int64_t>(chunk);
        }
        state.window.erase(window);
        state.outbound.pop_front();
    }
}

// --------------------------------------------------------- handlers

namespace
{

void
checkDeadline(const std::optional<Clock::time_point> &deadline)
{
    if (deadline && Clock::now() >= *deadline)
        failRequest(ErrorCode::DeadlineExceeded,
                    "deadline elapsed during processing");
}

} // namespace

JsonValue
Server::handleAnalyze(const QueuedRequest &request)
{
    const JsonValue &params = request.request.params;
    const std::string corpusPath = stringParam(params, "corpus");
    const std::string scenario = stringParam(params, "scenario");
    DurationNs tFast = 0, tSlow = 0;
    resolveThresholds(params, scenario, tFast, tSlow);
    const double topRaw = numberParamOr(params, "top", 5.0);
    if (topRaw < 0 || topRaw > 10000)
        failRequest(ErrorCode::BadRequest,
                    "param \"top\" must be in [0, 10000]");
    const std::size_t top = static_cast<std::size_t>(topRaw);
    const bool applyFilter =
        boolParamOr(params, "knowledge_filter", true);
    const std::vector<std::string> components =
        stringListParam(params, "components");

    Expected<SessionRegistry::Handle> session =
        registry_.acquire(corpusPath, components);
    if (!session)
        failRequest(ErrorCode::NotFound, session.error().render());
    checkDeadline(request.deadline);

    // Shared-side analysis lock: excludes ingest_push's absorbShard
    // while this handler reads the warm analyzer and its digest.
    const std::shared_lock<std::shared_mutex> analysisLock =
        session.value()->analysisLock();

    Digest cacheKey;
    cacheKey.mix("analyze").mix(session.value()->corpusDigest());
    cacheKey.mix(scenario)
        .mix(static_cast<std::uint64_t>(tFast))
        .mix(static_cast<std::uint64_t>(tSlow))
        .mix(static_cast<std::uint64_t>(top))
        .mix(static_cast<std::uint64_t>(applyFilter));
    if (auto cached = session.value()->cachedResponse(cacheKey)) {
        TL_SPAN("server.response-cache-hit", "server");
        return std::move(
            JsonValue::parse(*cached).value()); // cached render
    }

    Analyzer &analyzer = session.value()->analyzer();
    const TraceCorpus &corpus = analyzer.corpus();
    if (corpus.findScenario(scenario) == UINT32_MAX)
        failRequest(ErrorCode::NotFound,
                    "scenario \"" + scenario +
                        "\" not present in corpus");
    const ScenarioAnalysis analysis =
        analyzer.analyzeScenario(scenario, tFast, tSlow);
    checkDeadline(request.deadline);

    std::vector<ContrastPattern> patterns = analysis.mining.patterns;
    std::size_t suppressed = 0;
    if (applyFilter) {
        const auto filtered = KnowledgeBase::defaults().apply(
            analysis.mining, corpus.symbols());
        suppressed = filtered.suppressed.size();
        patterns = filtered.kept;
    }

    JsonValue result = JsonValue::makeObject();
    result.set("scenario", JsonValue(scenario));
    result.set("tfast_ms", JsonValue(toMs(tFast)));
    result.set("tslow_ms", JsonValue(toMs(tSlow)));
    JsonValue classes = JsonValue::makeObject();
    classes.set("fast", JsonValue(analysis.classes.fast.size()));
    classes.set("middle", JsonValue(analysis.classes.middle.size()));
    classes.set("slow", JsonValue(analysis.classes.slow.size()));
    result.set("classes", std::move(classes));
    result.set("slow_impact", impactJson(analysis.slowImpact));
    result.set("driver_cost_share",
               JsonValue(analysis.driverCostShare()));
    result.set("coverage", JsonValue(analysis.coverage.render()));
    result.set("mining_stats",
               JsonValue(analysis.mining.stats.render()));
    result.set("suppressed", JsonValue(suppressed));
    JsonValue list = JsonValue::makeArray();
    for (std::size_t i = 0; i < std::min(top, patterns.size()); ++i) {
        list.push(patternJson(patterns[i], tSlow, corpus.symbols(),
                              i + 1));
    }
    result.set("patterns", std::move(list));

    session.value()->cacheResponse(
        cacheKey,
        std::make_shared<const std::string>(result.render()));
    return result;
}

JsonValue
Server::handleImpact(const QueuedRequest &request)
{
    const JsonValue &params = request.request.params;
    const std::string corpusPath = stringParam(params, "corpus");
    const std::vector<std::string> components =
        stringListParam(params, "components");

    Expected<SessionRegistry::Handle> session =
        registry_.acquire(corpusPath, components);
    if (!session)
        failRequest(ErrorCode::NotFound, session.error().render());
    checkDeadline(request.deadline);

    // Shared-side analysis lock: excludes ingest_push's absorbShard
    // while this handler reads the warm analyzer and its digest.
    const std::shared_lock<std::shared_mutex> analysisLock =
        session.value()->analysisLock();

    Digest cacheKey;
    cacheKey.mix("impact").mix(session.value()->corpusDigest());
    if (auto cached = session.value()->cachedResponse(cacheKey)) {
        TL_SPAN("server.response-cache-hit", "server");
        return std::move(JsonValue::parse(*cached).value());
    }

    Analyzer &analyzer = session.value()->analyzer();
    const TraceCorpus &corpus = analyzer.corpus();

    JsonValue result = JsonValue::makeObject();
    JsonValue componentsJson = JsonValue::makeArray();
    for (const std::string &glob :
         analyzer.components().patterns())
        componentsJson.push(JsonValue(glob));
    result.set("components", std::move(componentsJson));
    result.set("all", impactJson(analyzer.impactAll()));
    checkDeadline(request.deadline);
    JsonValue perScenario = JsonValue::makeObject();
    for (const auto &[scenarioId, impact] :
         analyzer.impactPerScenario()) {
        perScenario.set(corpus.scenarioName(scenarioId),
                        impactJson(impact));
    }
    result.set("per_scenario", std::move(perScenario));

    session.value()->cacheResponse(
        cacheKey,
        std::make_shared<const std::string>(result.render()));
    return result;
}

JsonValue
Server::handleMine(const QueuedRequest &request)
{
    const JsonValue &params = request.request.params;
    const std::string corpusPath = stringParam(params, "corpus");
    const std::string scenario = stringParam(params, "scenario");
    DurationNs tFast = 0, tSlow = 0;
    resolveThresholds(params, scenario, tFast, tSlow);
    const double maxRaw =
        numberParamOr(params, "max_patterns", 100.0);
    if (maxRaw < 1 || maxRaw > 10000)
        failRequest(ErrorCode::BadRequest,
                    "param \"max_patterns\" must be in [1, 10000]");
    const std::size_t maxPatterns =
        static_cast<std::size_t>(maxRaw);

    Expected<SessionRegistry::Handle> session =
        registry_.acquire(corpusPath);
    if (!session)
        failRequest(ErrorCode::NotFound, session.error().render());
    checkDeadline(request.deadline);

    // Shared-side analysis lock: excludes ingest_push's absorbShard
    // while this handler reads the warm analyzer and its digest.
    const std::shared_lock<std::shared_mutex> analysisLock =
        session.value()->analysisLock();

    Digest cacheKey;
    cacheKey.mix("mine").mix(session.value()->corpusDigest());
    cacheKey.mix(scenario)
        .mix(static_cast<std::uint64_t>(tFast))
        .mix(static_cast<std::uint64_t>(tSlow))
        .mix(static_cast<std::uint64_t>(maxPatterns));
    if (auto cached = session.value()->cachedResponse(cacheKey)) {
        TL_SPAN("server.response-cache-hit", "server");
        return std::move(JsonValue::parse(*cached).value());
    }

    Analyzer &analyzer = session.value()->analyzer();
    const TraceCorpus &corpus = analyzer.corpus();
    if (corpus.findScenario(scenario) == UINT32_MAX)
        failRequest(ErrorCode::NotFound,
                    "scenario \"" + scenario +
                        "\" not present in corpus");
    const ScenarioAnalysis analysis =
        analyzer.analyzeScenario(scenario, tFast, tSlow);
    checkDeadline(request.deadline);

    JsonValue result = JsonValue::makeObject();
    result.set("scenario", JsonValue(scenario));
    result.set("mining_stats",
               JsonValue(analysis.mining.stats.render()));
    result.set("coverage", JsonValue(analysis.coverage.render()));
    JsonValue list = JsonValue::makeArray();
    const auto &patterns = analysis.mining.patterns;
    for (std::size_t i = 0;
         i < std::min(maxPatterns, patterns.size()); ++i) {
        list.push(patternJson(patterns[i], tSlow, corpus.symbols(),
                              i + 1));
    }
    result.set("patterns", std::move(list));
    result.set("total_patterns", JsonValue(patterns.size()));

    session.value()->cacheResponse(
        cacheKey,
        std::make_shared<const std::string>(result.render()));
    return result;
}

JsonValue
Server::handleIngest(const QueuedRequest &request)
{
    const JsonValue &params = request.request.params;
    const std::string corpusPath = stringParam(params, "corpus");

    Expected<SessionRegistry::Handle> session =
        registry_.acquire(corpusPath);
    if (!session)
        failRequest(ErrorCode::NotFound, session.error().render());
    checkDeadline(request.deadline);

    const SessionIngestInfo &info = session.value()->ingestInfo();
    JsonValue result = JsonValue::makeObject();
    result.set("source", JsonValue(info.describe));
    result.set("shards", JsonValue(info.shards));
    result.set("loaded_shards", JsonValue(info.loadedShards));
    result.set("skipped_shards", JsonValue(info.skippedShards));
    result.set("ingest_bytes", JsonValue(info.ingestBytes));
    result.set("events", JsonValue(info.events));
    result.set("instances", JsonValue(info.instances));
    JsonValue scenarios = JsonValue::makeObject();
    for (const ScenarioTally &tally : info.scenarios) {
        JsonValue entry = JsonValue::makeObject();
        entry.set("instances", JsonValue(tally.instances));
        entry.set("mean_ms", JsonValue(tally.meanMs));
        scenarios.set(tally.name, std::move(entry));
    }
    result.set("scenarios", std::move(scenarios));
    return result;
}

JsonValue
Server::handleSleep(const QueuedRequest &request)
{
    // Test-only: occupy a worker for a bounded time, checking the
    // deadline cooperatively — the determinism hook for the
    // backpressure and deadline tests and the load bench.
    const double ms =
        numberParamOr(request.request.params, "ms", 10.0);
    if (ms < 0 || ms > 60000)
        failRequest(ErrorCode::BadRequest,
                    "param \"ms\" must be in [0, 60000]");
    const auto until =
        Clock::now() +
        std::chrono::microseconds(static_cast<std::int64_t>(ms * 1e3));
    while (Clock::now() < until) {
        checkDeadline(request.deadline);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    JsonValue result = JsonValue::makeObject();
    result.set("slept_ms", JsonValue(ms));
    return result;
}

// ------------------------------------ worker-side partial handlers

JsonValue
Server::handleAnalyzePartial(const QueuedRequest &request)
{
    const JsonValue &params = request.request.params;
    const std::string corpusPath = stringParam(params, "corpus");
    const std::string scenario = stringParam(params, "scenario");
    // Unlike `analyze`, the thresholds are mandatory: the coordinator
    // resolves catalog defaults once and ships explicit values so
    // every worker classifies identically.
    const double fastMs = numberParamOr(params, "tfast_ms", 0.0);
    const double slowMs = numberParamOr(params, "tslow_ms", 0.0);
    const DurationNs tFast = fromMs(fastMs);
    const DurationNs tSlow = fromMs(slowMs);
    if (tFast <= 0 || tSlow <= tFast) {
        failRequest(ErrorCode::BadRequest,
                    "need 0 < tfast_ms < tslow_ms (partial requests "
                    "carry explicit thresholds)");
    }
    const std::vector<std::string> components =
        stringListParam(params, "components");

    Expected<SessionRegistry::Handle> session =
        registry_.acquire(corpusPath, components);
    if (!session)
        failRequest(ErrorCode::NotFound, session.error().render());
    checkDeadline(request.deadline);

    // Shared-side analysis lock: excludes ingest_push's absorbShard
    // while this handler reads the warm analyzer and its digest.
    const std::shared_lock<std::shared_mutex> analysisLock =
        session.value()->analysisLock();

    Digest cacheKey;
    cacheKey.mix("analyze_partial")
        .mix(session.value()->corpusDigest())
        .mix(scenario)
        .mix(static_cast<std::uint64_t>(tFast))
        .mix(static_cast<std::uint64_t>(tSlow));
    if (auto cached = session.value()->cachedResponse(cacheKey)) {
        TL_SPAN("server.response-cache-hit", "server");
        return std::move(JsonValue::parse(*cached).value());
    }

    Analyzer &analyzer = session.value()->analyzer();
    const bool found =
        analyzer.corpus().findScenario(scenario) != UINT32_MAX;
    const ScenarioPartial partial =
        analyzer.scenarioPartial(scenario, tFast, tSlow);
    checkDeadline(request.deadline);

    JsonValue result = JsonValue::makeObject();
    result.set("encoding_revision",
               JsonValue(partialEncodingRevision()));
    result.set("scenario_found", JsonValue(found));
    result.set("partial",
               JsonValue(base64Encode(encodeScenarioPartial(partial))));

    session.value()->cacheResponse(
        cacheKey,
        std::make_shared<const std::string>(result.render()));
    return result;
}

JsonValue
Server::handleImpactPartial(const QueuedRequest &request)
{
    const JsonValue &params = request.request.params;
    const std::string corpusPath = stringParam(params, "corpus");
    const std::vector<std::string> components =
        stringListParam(params, "components");

    Expected<SessionRegistry::Handle> session =
        registry_.acquire(corpusPath, components);
    if (!session)
        failRequest(ErrorCode::NotFound, session.error().render());
    checkDeadline(request.deadline);

    // Shared-side analysis lock: excludes ingest_push's absorbShard
    // while this handler reads the warm analyzer and its digest.
    const std::shared_lock<std::shared_mutex> analysisLock =
        session.value()->analysisLock();

    Digest cacheKey;
    cacheKey.mix("impact_partial")
        .mix(session.value()->corpusDigest());
    if (auto cached = session.value()->cachedResponse(cacheKey)) {
        TL_SPAN("server.response-cache-hit", "server");
        return std::move(JsonValue::parse(*cached).value());
    }

    const ImpactPartial partial =
        session.value()->analyzer().impactPartial();
    checkDeadline(request.deadline);

    JsonValue result = JsonValue::makeObject();
    result.set("encoding_revision",
               JsonValue(partialEncodingRevision()));
    result.set("partial",
               JsonValue(base64Encode(encodeImpactPartial(partial))));

    session.value()->cacheResponse(
        cacheKey,
        std::make_shared<const std::string>(result.render()));
    return result;
}

// ------------------------------------------- coordinator handlers

namespace
{

/** Degradation markers — ABSENT on a full result, so a non-degraded
 *  coordinator response stays byte-identical to single-node. */
void
attachGatherReport(JsonValue &result, const GatherReport &report)
{
    if (!report.degraded())
        return;
    result.set("partial_results", JsonValue(true));
    JsonValue missing = JsonValue::makeArray();
    for (const ShardFailure &failure : report.missing) {
        JsonValue entry = JsonValue::makeObject();
        entry.set("shard", JsonValue(failure.shard));
        entry.set("worker", JsonValue(failure.worker));
        entry.set("reason", JsonValue(failure.reason));
        missing.push(std::move(entry));
    }
    result.set("missing_shards", std::move(missing));
}

} // namespace

JsonValue
Server::handleCoordAnalyze(const QueuedRequest &request)
{
    const JsonValue &params = request.request.params;
    const std::string corpusPath = stringParam(params, "corpus");
    const std::string scenario = stringParam(params, "scenario");
    DurationNs tFast = 0, tSlow = 0;
    resolveThresholds(params, scenario, tFast, tSlow);
    const double topRaw = numberParamOr(params, "top", 5.0);
    if (topRaw < 0 || topRaw > 10000)
        failRequest(ErrorCode::BadRequest,
                    "param \"top\" must be in [0, 10000]");
    const std::size_t top = static_cast<std::size_t>(topRaw);
    const bool applyFilter =
        boolParamOr(params, "knowledge_filter", true);
    const std::vector<std::string> components =
        stringListParam(params, "components");

    ScenarioGather gather;
    if (auto error = coordinator_->gatherScenario(
            Method::AnalyzePartial, corpusPath, scenario, toMs(tFast),
            toMs(tSlow), components, request.deadline, gather))
        failRequest(error->code, error->message);
    checkDeadline(request.deadline);

    const ImpactResult slowImpact = gather.slowImpact.finalize();
    const AggregatedWaitGraph awgFast =
        std::move(gather.awgFast).finalize(true);
    const AggregatedWaitGraph awgSlow =
        std::move(gather.awgSlow).finalize(true);
    checkDeadline(request.deadline);
    ScenarioSummary summary = summarizeScenario(
        scenario, tFast, tSlow, gather.classes, slowImpact, awgFast,
        awgSlow, gather.symbols, top, applyFilter);
    checkDeadline(request.deadline);

    JsonValue result = std::move(summary.json);
    attachGatherReport(result, gather.report);
    return result;
}

JsonValue
Server::handleCoordImpact(const QueuedRequest &request)
{
    const JsonValue &params = request.request.params;
    const std::string corpusPath = stringParam(params, "corpus");
    const std::vector<std::string> components =
        stringListParam(params, "components");

    ImpactGather gather;
    if (auto error = coordinator_->gatherImpact(
            corpusPath, components, request.deadline, gather))
        failRequest(error->code, error->message);
    checkDeadline(request.deadline);

    // The resolved component filter, exactly as a worker session
    // resolves it (SessionRegistry: empty = analyzer default).
    const std::vector<std::string> &resolved =
        components.empty() ? AnalyzerConfig{}.components : components;

    JsonValue result = JsonValue::makeObject();
    JsonValue componentsJson = JsonValue::makeArray();
    for (const std::string &glob : resolved)
        componentsJson.push(JsonValue(glob));
    result.set("components", std::move(componentsJson));
    result.set("all", impactJson(gather.all.finalize()));
    JsonValue perScenario = JsonValue::makeObject();
    for (const auto &[name, accumulator] : gather.perScenario)
        perScenario.set(name, impactJson(accumulator.finalize()));
    result.set("per_scenario", std::move(perScenario));
    attachGatherReport(result, gather.report);
    return result;
}

JsonValue
Server::handleCoordMine(const QueuedRequest &request)
{
    const JsonValue &params = request.request.params;
    const std::string corpusPath = stringParam(params, "corpus");
    const std::string scenario = stringParam(params, "scenario");
    DurationNs tFast = 0, tSlow = 0;
    resolveThresholds(params, scenario, tFast, tSlow);
    const double maxRaw =
        numberParamOr(params, "max_patterns", 100.0);
    if (maxRaw < 1 || maxRaw > 10000)
        failRequest(ErrorCode::BadRequest,
                    "param \"max_patterns\" must be in [1, 10000]");
    const std::size_t maxPatterns = static_cast<std::size_t>(maxRaw);

    ScenarioGather gather;
    if (auto error = coordinator_->gatherScenario(
            Method::MinePartial, corpusPath, scenario, toMs(tFast),
            toMs(tSlow), {}, request.deadline, gather))
        failRequest(error->code, error->message);
    checkDeadline(request.deadline);

    const AggregatedWaitGraph awgFast =
        std::move(gather.awgFast).finalize(true);
    const AggregatedWaitGraph awgSlow =
        std::move(gather.awgSlow).finalize(true);
    const MiningResult mining =
        mineGathered(awgFast, awgSlow, tFast, tSlow);
    checkDeadline(request.deadline);
    const CoverageResult coverage = computeCoverage(
        mining, awgSlow.reducedCost() + awgSlow.totalRootCost(),
        tSlow);

    JsonValue result = JsonValue::makeObject();
    result.set("scenario", JsonValue(scenario));
    result.set("mining_stats", JsonValue(mining.stats.render()));
    result.set("coverage", JsonValue(coverage.render()));
    JsonValue list = JsonValue::makeArray();
    const auto &patterns = mining.patterns;
    for (std::size_t i = 0;
         i < std::min(maxPatterns, patterns.size()); ++i) {
        list.push(patternJson(patterns[i], tSlow, gather.symbols,
                              i + 1));
    }
    result.set("patterns", std::move(list));
    result.set("total_patterns", JsonValue(patterns.size()));
    attachGatherReport(result, gather.report);
    return result;
}

JsonValue
Server::handleClusterStatus(const QueuedRequest &request)
{
    checkDeadline(request.deadline);
    JsonValue result = coordinator_->clusterStatus();
    if (boolParamOr(request.request.params, "metrics", false)) {
        // Aggregate the coordinator's own registry plus every
        // worker's, bucket-exact (Histogram::State merges).
        MetricsRegistry aggregate;
        aggregate.merge(MetricsRegistry::global().snapshot());
        JsonValue pulls = coordinator_->clusterMetrics(aggregate);
        checkDeadline(request.deadline);
        result.set("metrics",
                   metricsSnapshotJson(aggregate.snapshot()));
        result.set("metrics_pulls", std::move(pulls));
    }
    return result;
}

JsonValue
Server::handleClusterTrace(const QueuedRequest &request)
{
    checkDeadline(request.deadline);
    // The coordinator's own buffer renders as pid 1; workers get
    // pids 2+ in topology order. Distinct pids per node are what
    // keep two nodes' tid 0 from aliasing in the merged trace.
    std::vector<NodeSpans> nodes;
    NodeSpans own;
    own.node = nodeName();
    own.pid = 1;
    own.epochUnixUs = Telemetry::epochUnixUs();
    own.spans = Telemetry::snapshotSpans();
    nodes.push_back(std::move(own));
    for (NodeSpans &node : coordinator_->pullWorkerSpans()) {
        node.pid = static_cast<std::uint32_t>(nodes.size() + 1);
        nodes.push_back(std::move(node));
    }
    checkDeadline(request.deadline);

    std::size_t spanCount = 0;
    for (const NodeSpans &node : nodes)
        spanCount += node.spans.size();

    JsonValue result = JsonValue::makeObject();
    result.set("nodes", JsonValue(nodes.size()));
    result.set("spans", JsonValue(spanCount));
    result.set("trace",
               JsonValue(Telemetry::renderChromeTraceMerged(nodes)));
    return result;
}

// ------------------------------------------ continuous-mode methods

void
Server::requireFleet() const
{
    if (!fleet_)
        failRequest(ErrorCode::BadRequest,
                    "this daemon is not in continuous mode (start "
                    "with --watch DIR)");
}

JsonValue
Server::handleIngestPush(const QueuedRequest &request)
{
    requireFleet();
    checkDeadline(request.deadline);
    const JsonValue &params = request.request.params;

    const std::string name = stringParam(params, "name");
    if (!isShardFilename(name) ||
        name.find('/') != std::string::npos ||
        name.find('\\') != std::string::npos) {
        failRequest(ErrorCode::BadRequest,
                    "param \"name\" must be a plain *.tlc filename "
                    "(no directories, no dotfiles)");
    }

    // Refuse loudly on a revision mismatch rather than misrendering
    // alerts for a newer pusher — same handshake contract as the
    // cluster's partial_revision.
    const auto pushed = static_cast<std::uint32_t>(
        numberParamOr(params, "fleet_revision", 0));
    if (pushed != fleetRevision()) {
        failRequest(ErrorCode::BadRequest,
                    "fleet revision mismatch: pusher has " +
                        std::to_string(pushed) + ", daemon has " +
                        std::to_string(fleetRevision()) +
                        " (upgrade the older side)");
    }

    const std::string payload = stringParam(params, "payload");
    const std::optional<std::string> bytes = base64Decode(payload);
    if (!bytes)
        failRequest(ErrorCode::BadRequest,
                    "param \"payload\" is not valid base64");
    Expected<TraceCorpus> corpus = parseCorpus(
        std::as_bytes(std::span(bytes->data(), bytes->size())), name);
    if (!corpus)
        failRequest(ErrorCode::BadRequest,
                    "payload is not a corpus shard: " +
                        corpus.error().render());

    std::optional<std::uint64_t> timestampMs;
    if (const JsonValue *stamp = params.find("timestamp_ms");
        stamp != nullptr) {
        if (!stamp->isNumber() || stamp->asNumber() < 0)
            failRequest(ErrorCode::BadRequest,
                        "param \"timestamp_ms\" must be a "
                        "non-negative number");
        timestampMs =
            static_cast<std::uint64_t>(stamp->asNumber());
    }
    checkDeadline(request.deadline);

    // Warm the spool session *before* the shard lands: a session
    // opened now scans the spool without the new shard, so
    // addStreams() below is the only path that adds it — never a
    // directory rescan racing the rename. An acquire failure (e.g.
    // an empty spool on the very first push) just means there is no
    // warm session to extend yet.
    Expected<SessionRegistry::Handle> session =
        registry_.acquire(config_.fleetWatchDir);

    // Land the shard in the spool by the same rename-into-place
    // convention on-host writers use (docs/TRACE_FORMAT.md), so a
    // daemon restart replays it from disk.
    namespace fs = std::filesystem;
    const fs::path dir(config_.fleetWatchDir);
    std::error_code ec;
    fs::create_directories(dir, ec);
    const fs::path staged = dir / ("." + name + ".tmp");
    const fs::path finished = dir / name;
    {
        std::ofstream out(staged,
                          std::ios::binary | std::ios::trunc);
        out.write(bytes->data(),
                  static_cast<std::streamsize>(bytes->size()));
        out.flush();
        if (!out) {
            fs::remove(staged, ec);
            failRequest(ErrorCode::Internal,
                        "cannot stage shard in spool " +
                            dir.string());
        }
    }
    fs::rename(staged, finished, ec);
    if (ec) {
        fs::remove(staged, ec);
        failRequest(ErrorCode::Internal,
                    "cannot finish shard rename: " + ec.message());
    }

    // Extend the warm batch session in place. The corpus digest
    // changes, so cached responses self-invalidate.
    if (session)
        session.value()->absorbShard(corpus.value());

    const IngestOutcome outcome = fleet_->ingest(
        name, std::move(corpus.value()), timestampMs);

    JsonValue result = JsonValue::makeObject();
    result.set("fleet_revision", JsonValue(fleetRevision()));
    result.set("shard", JsonValue(name));
    result.set("window", JsonValue(outcome.window));
    result.set("alerts", JsonValue(outcome.alerts));
    result.set("evicted", JsonValue(outcome.evicted));
    result.set("ingested_total",
               JsonValue(fleet_->ingestedShards()));
    return result;
}

JsonValue
Server::handleWindowSummary(const QueuedRequest &request)
{
    requireFleet();
    checkDeadline(request.deadline);
    const JsonValue &params = request.request.params;

    const std::string scenario = stringParam(params, "scenario");
    DurationNs tFast = 0;
    DurationNs tSlow = 0;
    resolveThresholds(params, scenario, tFast, tSlow);

    std::string windowsSel;
    if (const JsonValue *sel = params.find("windows");
        sel != nullptr) {
        if (!sel->isString())
            failRequest(ErrorCode::BadRequest,
                        "param \"windows\" must be \"current\", "
                        "\"all\", or a window id");
        windowsSel = sel->asString();
    }
    if (!windowsSel.empty() && windowsSel != "current" &&
        windowsSel != "all" &&
        windowsSel.find_first_not_of("0123456789") !=
            std::string::npos) {
        failRequest(ErrorCode::BadRequest,
                    "param \"windows\" must be \"current\", "
                    "\"all\", or a window id");
    }
    const auto trailing = static_cast<std::size_t>(
        numberParamOr(params, "trailing", 0));
    const auto top = static_cast<std::size_t>(
        numberParamOr(params, "top", 5));
    const bool applyFilter =
        boolParamOr(params, "knowledge_filter", true);

    checkDeadline(request.deadline);
    return fleet_->windowSummary(scenario, tFast, tSlow, windowsSel,
                                 trailing, top, applyFilter);
}

JsonValue
Server::handleAlerts(const QueuedRequest &request)
{
    requireFleet();
    checkDeadline(request.deadline);
    const JsonValue &params = request.request.params;

    const auto afterSeq = static_cast<std::uint64_t>(
        numberParamOr(params, "after_seq", 0));
    auto waitMs = static_cast<std::uint64_t>(
        numberParamOr(params, "wait_ms", 0));
    if (waitMs != 0 && request.deadline) {
        // The long-poll must resolve inside the request deadline or
        // the client times out with nothing.
        const auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                *request.deadline - Clock::now())
                .count();
        if (remaining <= 0)
            waitMs = 0;
        else
            waitMs = std::min(
                waitMs, static_cast<std::uint64_t>(remaining));
    }

    AlertSink &sink = fleet_->alerts();
    const std::vector<Alert> alerts =
        waitMs != 0 ? sink.waitFor(afterSeq, waitMs)
                    : sink.since(afterSeq);

    JsonValue result = JsonValue::makeObject();
    result.set("fleet_revision", JsonValue(fleetRevision()));
    JsonValue list = JsonValue::makeArray();
    for (const Alert &alert : alerts)
        list.push(alertJson(alert));
    result.set("alerts", std::move(list));
    result.set("last_seq", JsonValue(sink.lastSeq()));
    return result;
}

// --------------------------------------------- observability results

std::string
Server::nodeName() const
{
    return std::string(config_.coordinator ? "coordinator"
                                           : "worker") +
           " @ " + config_.host + ":" + std::to_string(port_);
}

JsonValue
Server::telemetryPullResult() const
{
    NodeSpans node;
    node.node = nodeName();
    node.epochUnixUs = Telemetry::epochUnixUs();
    node.spans = Telemetry::snapshotSpans();
    JsonValue result = nodeSpansJson(node);
    result.set("enabled", JsonValue(Telemetry::enabled()));
    return result;
}

JsonValue
Server::metricsResult() const
{
    JsonValue result =
        metricsSnapshotJson(MetricsRegistry::global().snapshot());
    result.set("node", JsonValue(config_.host + ":" +
                                 std::to_string(port_)));
    result.set("role", JsonValue(config_.coordinator ? "coordinator"
                                                     : "worker"));
    return result;
}

JsonValue
Server::flightRecorderResult() const
{
    JsonValue records = JsonValue::makeArray();
    for (const FlightRecord &record : flightRecorder_.snapshot()) {
        JsonValue entry = JsonValue::makeObject();
        entry.set("method", JsonValue(record.method));
        if (!record.session.empty())
            entry.set("session", JsonValue(record.session));
        entry.set("completed_unix_us",
                  JsonValue(record.completedUnixUs));
        entry.set("queue_wait_us", JsonValue(record.queueWaitUs));
        entry.set("total_us", JsonValue(record.totalUs));
        if (record.hasDeadline)
            entry.set("deadline_slack_ms",
                      JsonValue(record.deadlineSlackMs));
        entry.set("outcome", JsonValue(record.outcome));
        entry.set("response_bytes", JsonValue(record.responseBytes));
        if (record.fanout != 0)
            entry.set("fanout", JsonValue(record.fanout));
        if (record.traceId != 0)
            entry.set("trace_id", JsonValue(hexId(record.traceId)));
        entry.set("protocol", JsonValue(record.protocol));
        entry.set("priority", JsonValue(record.priority));
        records.push(std::move(entry));
    }
    JsonValue result = JsonValue::makeObject();
    result.set("total", JsonValue(flightRecorder_.total()));
    result.set("capacity", JsonValue(flightRecorder_.capacity()));
    result.set("records", std::move(records));
    return result;
}

// ------------------------------------------- metrics HTTP listener

void
Server::metricsLoop()
{
    while (!metricsStop_.load(std::memory_order_acquire)) {
        pollfd fds[1];
        fds[0].fd = metricsFd_;
        fds[0].events = POLLIN;
        const int ready = ::poll(fds, 1, 250);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (ready == 0 || (fds[0].revents & POLLIN) == 0)
            continue;
        const int fd = ::accept(metricsFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        // One tiny blocking exchange per scrape: read the request
        // head, answer the full registry, close. Prometheus scrapers
        // and curl both speak exactly this.
        timeval timeout{};
        timeout.tv_sec = 2;
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                     sizeof(timeout));
        std::string head;
        char buffer[1024];
        while (head.find("\r\n\r\n") == std::string::npos &&
               head.size() < 16384) {
            const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
            if (n <= 0)
                break;
            head.append(buffer, static_cast<std::size_t>(n));
        }
        const std::string body = renderPrometheus(
            MetricsRegistry::global().snapshot(),
            {{"node",
              config_.host + ":" + std::to_string(port_)},
             {"role",
              config_.coordinator ? "coordinator" : "worker"}});
        std::string response =
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/plain; version=0.0.4; "
            "charset=utf-8\r\n"
            "Content-Length: " +
            std::to_string(body.size()) +
            "\r\n"
            "Connection: close\r\n\r\n" +
            body;
        std::size_t sent = 0;
        while (sent < response.size()) {
            const ssize_t n =
                ::send(fd, response.data() + sent,
                       response.size() - sent, MSG_NOSIGNAL);
            if (n <= 0)
                break;
            sent += static_cast<std::size_t>(n);
        }
        ::close(fd);
    }
}

JsonValue
Server::statsResult()
{
    const ServerStats stats = this->stats();
    const RegistryStats sessions = registry_.stats();

    JsonValue result = JsonValue::makeObject();
    result.set("draining",
               JsonValue(draining_.load(std::memory_order_acquire)));
    result.set("workers", JsonValue(workerCount_));
    result.set("max_inflight", JsonValue(config_.maxInflight));
    JsonValue requests = JsonValue::makeObject();
    requests.set("total", JsonValue(stats.requests));
    requests.set("ok", JsonValue(stats.ok));
    requests.set("errors", JsonValue(stats.errors));
    requests.set("rejected", JsonValue(stats.rejected));
    requests.set("dropped", JsonValue(stats.dropped));
    requests.set("inflight", JsonValue(stats.inflight));
    result.set("requests", std::move(requests));
    JsonValue connections = JsonValue::makeObject();
    connections.set("open", JsonValue(stats.connections));
    connections.set("accepted", JsonValue(stats.accepted));
    result.set("connections", std::move(connections));
    JsonValue protocol = JsonValue::makeObject();
    protocol.set("v2_connections", JsonValue(stats.v2Connections));
    protocol.set("protocol_errors", JsonValue(stats.protocolErrors));
    result.set("protocol", std::move(protocol));
    JsonValue sessionsJson = JsonValue::makeObject();
    sessionsJson.set("open", JsonValue(sessions.openSessions));
    sessionsJson.set("active_handles",
                     JsonValue(sessions.activeHandles));
    sessionsJson.set("opened", JsonValue(sessions.opened));
    sessionsJson.set("reused", JsonValue(sessions.reused));
    sessionsJson.set("evicted", JsonValue(sessions.evicted));
    sessionsJson.set("open_failures",
                     JsonValue(sessions.openFailures));
    result.set("sessions", std::move(sessionsJson));
    JsonValue latency = JsonValue::makeObject();
    latency.set("count", JsonValue(latencyHist_->count()));
    latency.set("p50_us", JsonValue(latencyHist_->percentile(0.50)));
    latency.set("p95_us", JsonValue(latencyHist_->percentile(0.95)));
    latency.set("p99_us", JsonValue(latencyHist_->percentile(0.99)));
    latency.set("max_us", JsonValue(latencyHist_->max()));
    result.set("latency", std::move(latency));
    return result;
}

// ------------------------------------------------------------ drain

void
Server::drain()
{
    TL_LOG(Info, "serve: draining (", stats().inflight,
           " requests inflight)");
    draining_.store(true, std::memory_order_release);
    if (fleet_)
        fleet_->stop();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }

    // Finish everything already admitted to the queue.
    {
        std::unique_lock<std::mutex> lock(queueMutex_);
        drainCv_.wait(lock, [this] { return inflight_ == 0; });
        stopWorkers_ = true;
    }
    queueCv_.notify_all();
    if (poolDriver_.joinable())
        poolDriver_.join();
    pool_.reset();

    // Hang up on every connection and join the readers.
    {
        std::lock_guard<std::mutex> lock(readersMutex_);
        for (const auto &slot : readers_)
            slot->conn->shutdownBoth();
    }
    reapReaders(true);
    registry_.evictAll();

    if (metricsThread_.joinable()) {
        metricsStop_.store(true, std::memory_order_release);
        metricsThread_.join();
    }
    if (metricsFd_ >= 0) {
        ::close(metricsFd_);
        metricsFd_ = -1;
    }

    if (!config_.selfTraceCorpusDir.empty()) {
        const std::string written = writeSelfTraceCorpus(
            Telemetry::snapshotSpans(), config_.selfTraceCorpusDir,
            nodeName());
        if (!written.empty())
            TL_LOG(Info, "serve: self-trace corpus written to ",
                   written);
    }

    TL_LOG(Info, "serve: drained");
    {
        std::lock_guard<std::mutex> lock(stoppedMutex_);
        stopped_.store(true, std::memory_order_release);
    }
    stoppedCv_.notify_all();
}

// ------------------------------------------------------------ misc

Expected<std::pair<std::string, std::uint16_t>>
parseHostPort(const std::string &text)
{
    const std::size_t colon = text.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= text.size()) {
        return SourceError{text, 0,
                           "expected HOST:PORT (e.g. 127.0.0.1:7070)"};
    }
    const std::string host = text.substr(0, colon);
    const std::string portText = text.substr(colon + 1);
    std::uint32_t port = 0;
    const auto [ptr, ec] = std::from_chars(
        portText.data(), portText.data() + portText.size(), port);
    if (ec != std::errc() ||
        ptr != portText.data() + portText.size() || port > 65535) {
        return SourceError{text, colon + 1,
                           "invalid port '" + portText + "'"};
    }
    return std::make_pair(host, static_cast<std::uint16_t>(port));
}

} // namespace server
} // namespace tracelens
