/**
 * @file
 * SessionRegistry implementation (src/server/registry.h): open-once
 * semantics via per-entry once_flags, ref-counted handles, and
 * idle/LRU eviction, with "server.sessions.*" metrics in the global
 * registry.
 */

#include "src/server/registry.h"

#include <algorithm>
#include <filesystem>
#include <map>
#include <optional>
#include <utility>

#include "src/util/logging.h"
#include "src/util/telemetry.h"

namespace tracelens
{
namespace server
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Canonical registry key: resolved path plus the component filter. */
std::string
sessionKey(const std::string &path,
           const std::vector<std::string> &components)
{
    std::error_code ec;
    const std::filesystem::path canonical =
        std::filesystem::weakly_canonical(path, ec);
    std::string key = ec ? path : canonical.string();
    for (const std::string &component : components) {
        key.push_back('\x1f'); // unit separator, not valid in globs
        key += component;
    }
    return key;
}

} // namespace

/** One registry slot: session storage plus open/ref/idle bookkeeping. */
struct SessionRegistry::Entry
{
    std::string key;
    std::once_flag openOnce;
    std::shared_ptr<CorpusSession> session; //!< Null until opened.
    /** Set when the open failed (the entry is then a tombstone). */
    std::optional<SourceError> openError;
    std::atomic<std::size_t> active{0};
    std::atomic<Clock::rep> lastUsed{0};
};

std::shared_ptr<const std::string>
CorpusSession::cachedResponse(const Digest &key) const
{
    std::lock_guard<std::mutex> lock(responseMutex_);
    const auto it = responses_.find(key);
    return it == responses_.end() ? nullptr : it->second;
}

void
CorpusSession::cacheResponse(const Digest &key,
                             std::shared_ptr<const std::string> line)
{
    std::lock_guard<std::mutex> lock(responseMutex_);
    responses_.insert_or_assign(key, std::move(line));
}

void
CorpusSession::absorbShard(const TraceCorpus &corpus)
{
    const std::unique_lock<std::shared_mutex> lock(analysisMutex_);
    analyzer_->addStreams(corpus);
    corpusDigest_ = analyzer_->corpusDigest();
}

SessionRegistry::Handle::Handle(std::shared_ptr<Entry> entry,
                                std::shared_ptr<CorpusSession> session,
                                SessionRegistry *registry)
    : entry_(std::move(entry)), session_(std::move(session)),
      registry_(registry)
{
}

void
SessionRegistry::Handle::release()
{
    if (entry_ != nullptr) {
        entry_->lastUsed.store(
            Clock::now().time_since_epoch().count(),
            std::memory_order_relaxed);
        entry_->active.fetch_sub(1, std::memory_order_acq_rel);
        registry_->activeHandles_.fetch_sub(
            1, std::memory_order_relaxed);
    }
    entry_.reset();
    session_.reset();
    registry_ = nullptr;
}

SessionRegistry::SessionRegistry(RegistryConfig config)
    : config_(std::move(config))
{
}

Expected<SessionRegistry::Handle>
SessionRegistry::acquire(const std::string &path,
                         const std::vector<std::string> &components)
{
    const std::string key = sessionKey(path, components);

    std::shared_ptr<Entry> entry;
    bool fresh = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto [it, inserted] = sessions_.try_emplace(key);
        if (inserted) {
            it->second = std::make_shared<Entry>();
            it->second->key = key;
            fresh = true;
        }
        entry = it->second;
        // Pin before dropping the lock so a concurrent evict pass
        // can never free the entry between lookup and open.
        entry->active.fetch_add(1, std::memory_order_acq_rel);
        entry->lastUsed.store(Clock::now().time_since_epoch().count(),
                              std::memory_order_relaxed);
    }
    activeHandles_.fetch_add(1, std::memory_order_relaxed);

    // Expensive open outside the registry lock; once per entry.
    std::call_once(entry->openOnce, [&] {
        TL_SPAN("server.session-open", "server");
        Expected<std::unique_ptr<TraceSource>> source =
            openSource(path, config_.source);
        if (!source) {
            entry->openError = source.error();
            return;
        }
        auto session = std::make_shared<CorpusSession>();
        session->path_ = path;
        session->source_ = std::move(source.value());

        AnalyzerConfig analyzerConfig;
        analyzerConfig.threads = config_.analysisThreads;
        analyzerConfig.artifactCacheDir = config_.artifactCacheDir;
        if (!components.empty())
            analyzerConfig.components = components;
        session->analyzer_ = std::make_unique<Analyzer>(
            *session->source_, analyzerConfig);

        const IngestStats &stats = session->source_->stats();
        if (stats.shards > 0 && stats.loadedShards == 0) {
            entry->openError =
                stats.errors.empty()
                    ? SourceError{path, 0, "no usable shards in source"}
                    : stats.errors.front();
            return;
        }
        session->corpusDigest_ = session->analyzer_->corpusDigest();

        // Precompute the ingest summary now, single-threaded: the
        // TraceSource is not thread-safe, so request handlers must
        // never touch it again.
        SessionIngestInfo &info = session->ingest_;
        info.describe = session->source_->describe();
        info.shards = stats.shards;
        info.loadedShards = stats.loadedShards;
        info.skippedShards = stats.skippedShards;
        info.ingestBytes = stats.ingestBytes;
        const TraceCorpus &corpus = session->analyzer_->corpus();
        info.events = corpus.totalEvents();
        info.instances = corpus.instances().size();
        std::map<std::string, std::pair<std::size_t, double>> tallies;
        for (const ScenarioInstance &inst : corpus.instances()) {
            auto &[count, totalMs] =
                tallies[corpus.scenarioName(inst.scenario)];
            ++count;
            totalMs += toMs(inst.duration());
        }
        for (const auto &[name, tally] : tallies) {
            info.scenarios.push_back(
                {name, tally.first,
                 tally.second / static_cast<double>(tally.first)});
        }

        entry->session = std::move(session);
        opened_.fetch_add(1, std::memory_order_relaxed);
        MetricsRegistry::global()
            .counter("server.sessions.opened")
            .add(1);
    });

    if (entry->openError) {
        // Unpin and drop the tombstone so a later request may retry
        // (the corpus may appear or be repaired between requests).
        const SourceError error = *entry->openError;
        entry->active.fetch_sub(1, std::memory_order_acq_rel);
        activeHandles_.fetch_sub(1, std::memory_order_relaxed);
        openFailures_.fetch_add(1, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            const auto it = sessions_.find(key);
            if (it != sessions_.end() && it->second == entry)
                sessions_.erase(it);
        }
        return error;
    }

    if (!fresh)
        reused_.fetch_add(1, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        enforceCapacityLocked();
        MetricsRegistry::global()
            .gauge("server.sessions.open")
            .set(static_cast<double>(sessions_.size()));
    }
    return Handle(entry, entry->session, this);
}

void
SessionRegistry::enforceCapacityLocked()
{
    while (sessions_.size() > config_.maxSessions) {
        auto victim = sessions_.end();
        Clock::rep oldest = 0;
        for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
            if (it->second->active.load(std::memory_order_acquire) > 0)
                continue;
            const Clock::rep used =
                it->second->lastUsed.load(std::memory_order_relaxed);
            if (victim == sessions_.end() || used < oldest) {
                victim = it;
                oldest = used;
            }
        }
        if (victim == sessions_.end())
            return; // every session is pinned; nothing evictable
        TL_LOG(Debug, "session registry: LRU-evicting ",
               victim->second->key);
        sessions_.erase(victim);
        evicted_.fetch_add(1, std::memory_order_relaxed);
        MetricsRegistry::global()
            .counter("server.sessions.evicted")
            .add(1);
    }
}

std::size_t
SessionRegistry::evictIdle()
{
    const Clock::rep now = Clock::now().time_since_epoch().count();
    const Clock::rep horizon =
        std::chrono::duration_cast<Clock::duration>(config_.idleTimeout)
            .count();

    std::size_t evicted = 0;
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
        Entry &entry = *it->second;
        const bool idle =
            entry.active.load(std::memory_order_acquire) == 0 &&
            now - entry.lastUsed.load(std::memory_order_relaxed) >=
                horizon;
        if (idle) {
            TL_LOG(Debug, "session registry: idle-evicting ",
                   entry.key);
            it = sessions_.erase(it);
            ++evicted;
        } else {
            ++it;
        }
    }
    if (evicted > 0) {
        evicted_.fetch_add(evicted, std::memory_order_relaxed);
        MetricsRegistry::global()
            .counter("server.sessions.evicted")
            .add(evicted);
        MetricsRegistry::global()
            .gauge("server.sessions.open")
            .set(static_cast<double>(sessions_.size()));
    }
    return evicted;
}

std::size_t
SessionRegistry::evictAll()
{
    std::size_t evicted = 0;
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
        if (it->second->active.load(std::memory_order_acquire) == 0) {
            it = sessions_.erase(it);
            ++evicted;
        } else {
            ++it;
        }
    }
    evicted_.fetch_add(evicted, std::memory_order_relaxed);
    return evicted;
}

RegistryStats
SessionRegistry::stats() const
{
    RegistryStats stats;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stats.openSessions = sessions_.size();
    }
    stats.activeHandles =
        activeHandles_.load(std::memory_order_relaxed);
    stats.opened = opened_.load(std::memory_order_relaxed);
    stats.reused = reused_.load(std::memory_order_relaxed);
    stats.evicted = evicted_.load(std::memory_order_relaxed);
    stats.openFailures =
        openFailures_.load(std::memory_order_relaxed);
    return stats;
}

} // namespace server
} // namespace tracelens
