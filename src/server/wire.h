/**
 * @file
 * Protocol-v2 binary framing and the shared symbol dictionary
 * (docs/SERVER.md, "Wire protocol v2"). Transport-free byte codecs
 * only — the daemon (src/server/server.cpp) and the client Session
 * (src/server/client.cpp) share this single implementation, and the
 * corruption tests drive it directly.
 *
 * ## Framing
 *
 * After the preface exchange, the connection is a sequence of frames:
 *
 *   u32 payload length (LE) | u8 type | u8 flags | u32 stream id (LE)
 *   ... payload bytes ...
 *
 * Streams multiplex concurrent requests on one connection: the client
 * opens a stream per request (odd ids, strictly increasing — the even
 * space is reserved for future server-initiated streams), the server
 * answers on the same stream, and END_STREAM closes it. SETTINGS,
 * GOAWAY, and PING live on stream 0.
 *
 * ## Flow control
 *
 * Response payload bytes are flow-controlled per stream (requests are
 * small and are not): a stream starts with the window the client
 * advertised in SETTINGS, every response frame consumes its payload
 * length, and WINDOW_UPDATE frames add credit. The server chunks a
 * response into frames of at most the peer's max payload and parks
 * the remainder when a window empties, so one huge cold `analyze`
 * response cannot monopolize the connection unboundedly ahead of
 * granted credit.
 *
 * ## Symbol dictionary
 *
 * Request params and response results transit as dictionary-encoded
 * JSON text. Inside the payload, byte values 0x01-0x03 are
 * instructions (rendered JSON escapes all control bytes, so they
 * cannot appear in the text itself):
 *
 *   0x01 varint(index)          emit table[index], quoted
 *   0x02 varint(len) bytes      emit quoted, append to table
 *   0x03 varint(len) bytes      emit quoted, do not index
 *
 * Every other byte passes through verbatim. Each direction of a
 * connection has its own table, seeded with the protocol's static key
 * strings and grown per session — so a `module!Function` symbol
 * string crosses the wire once and every later mention is a 2-3 byte
 * reference. Table state advances exactly with the byte stream
 * (insertions are processed in arrival order), which is why a
 * response's frames are written contiguously per response and whole
 * responses are delivered in encode order.
 */

#ifndef TRACELENS_SERVER_WIRE_H
#define TRACELENS_SERVER_WIRE_H

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/server/protocol.h"
#include "src/util/expected.h"
#include "src/util/telemetry.h"

namespace tracelens
{
namespace server
{
namespace wire
{

/** Preface line a v2 client sends first (newline-terminated). A v1
 *  server parses it as a malformed request and answers a JSON
 *  bad_request line, which the client takes as "fall back to v1". */
inline constexpr std::string_view kPreface = "TRACELENS-PROTO-2";

inline constexpr std::size_t kFrameHeaderBytes = 10;

/** Hard ceiling on any frame's payload length: lengths beyond this
 *  are treated as stream desync (GOAWAY), not as a skippable frame. */
inline constexpr std::uint32_t kMaxSaneFramePayload = 64u << 20;

enum class FrameType : std::uint8_t
{
    Settings = 1,     //!< Stream 0: connection parameters.
    Request = 2,      //!< Client->server, opens a stream.
    Response = 3,     //!< Server->client; END_STREAM on last chunk.
    WindowUpdate = 4, //!< Client->server: add response credit.
    Goaway = 5,       //!< Fatal protocol error; carries byte offset.
    Ping = 6,         //!< Liveness; echoed with kFlagAck.
};

inline constexpr std::uint8_t kFlagEndStream = 0x01;
inline constexpr std::uint8_t kFlagError = 0x02;
inline constexpr std::uint8_t kFlagAck = 0x04;

/** Decoded frame header. */
struct FrameHeader
{
    std::uint32_t length = 0;
    std::uint8_t type = 0;
    std::uint8_t flags = 0;
    std::uint32_t stream = 0;
};

/** Append one whole frame (header + payload) to @p out. */
void appendFrame(std::string &out, FrameType type, std::uint8_t flags,
                 std::uint32_t stream, std::string_view payload);

/** Decode a header from @p bytes (needs >= kFrameHeaderBytes). */
bool decodeFrameHeader(std::string_view bytes, FrameHeader &out);

// ----------------------------------------------------------- settings

inline constexpr std::uint32_t kDefaultMaxFramePayload = 256u << 10;
inline constexpr std::uint32_t kDefaultInitialWindow = 4u << 20;

/** Connection parameters exchanged in SETTINGS (varint id/value
 *  pairs; unknown ids are skipped for forward compatibility). */
struct Settings
{
    std::uint32_t protocolVersion = kProtocolVersionV2;
    /** Largest frame payload the sender accepts. */
    std::uint32_t maxFramePayload = kDefaultMaxFramePayload;
    /** Per-stream response window the sender grants initially. */
    std::uint32_t initialWindow = kDefaultInitialWindow;
    /**
     * Whether the sender understands the span-context request field
     * (setting id 4). Request payloads carry the field only when BOTH
     * sides advertised it, so a peer from before this setting existed
     * skips the unknown id and the request layout it sees is
     * unchanged — that is the whole negotiation.
     */
    bool tracing = false;
};

std::string encodeSettings(const Settings &settings);
Expected<Settings> decodeSettings(std::string_view payload);

// ----------------------------------------------------- request frames

/**
 * Ceiling on the span-context field's length byte. The current
 * encoding needs at most 21 bytes (two max-length varints + the
 * sampling flag); the slack is forward-compat room. A length beyond
 * this (or past the payload end) is hostile and rejects the request
 * — but only the request: span context sits before the
 * dictionary-encoded params, so a corrupt context never desyncs the
 * connection's symbol tables and never costs a GOAWAY.
 */
inline constexpr std::size_t kMaxSpanContextBytes = 64;

/** Decoded Request frame payload. */
struct RequestFrame
{
    std::uint8_t methodByte = 0;
    std::uint8_t priority = kPriorityNormal;
    std::uint64_t deadlineMs = 0;
    /** Dictionary-decoded params JSON text. */
    std::string paramsJson;
    /** Propagated span context (traceId 0 = none on this request). */
    SpanContext context;
    /**
     * Set when the span-context field was malformed in a way that
     * hides where the params start (oversized/truncated length): the
     * receiver must fail this one request with protocol_error and
     * keep the connection. Recoverable by construction — see
     * kMaxSpanContextBytes.
     */
    bool contextRejected = false;
};

class SymbolDict;

/**
 * Encode a Request payload (mutates the sender's @p dict). With
 * @p tracingNegotiated the payload carries the span-context field
 * (u8 length, then varint trace id, varint parent span id, u8
 * sampled); @p context may be null or invalid, encoding length 0.
 */
std::string encodeRequestPayload(Method method, std::uint8_t priority,
                                 std::uint64_t deadlineMs,
                                 std::string_view paramsJson,
                                 SymbolDict &dict,
                                 const SpanContext *context = nullptr,
                                 bool tracingNegotiated = false);

/**
 * Decode a Request payload (mutates the receiver's @p dict).
 * @p tracingNegotiated must mirror the sender's view (both SETTINGS
 * advertised tracing) — it decides whether a span-context field is
 * expected before the params. A context whose *content* is malformed
 * (bad varints, zero trace id) is dropped, not fatal: the field's
 * length still locates the params, so the request proceeds without a
 * context. Only a length that escapes the payload rejects the
 * request (RequestFrame::contextRejected).
 */
Expected<RequestFrame> decodeRequestPayload(std::string_view payload,
                                            SymbolDict &dict,
                                            bool tracingNegotiated
                                            = false);

// ------------------------------------------------------------- goaway

/** GOAWAY payload: varint byte offset + UTF-8 message. */
std::string encodeGoaway(std::uint64_t offset, std::string_view message);

struct GoawayInfo
{
    std::uint64_t offset = 0;
    std::string message;
};

Expected<GoawayInfo> decodeGoaway(std::string_view payload);

// ------------------------------------------------------ window update

/** WINDOW_UPDATE payload: varint credit in bytes. */
std::string encodeWindowUpdate(std::uint64_t credit);
Expected<std::uint64_t> decodeWindowUpdate(std::string_view payload);

// ---------------------------------------------------------- dictionary

/** Strings only this long are worth a table slot. */
inline constexpr std::size_t kDictMinString = 4;
/** Longest indexable string (bounds a hostile length prefix). */
inline constexpr std::size_t kDictMaxString = 1u << 14;
/** Per-direction table capacity; beyond it, literals stop indexing. */
inline constexpr std::size_t kDictMaxEntries = 1u << 16;

/**
 * One direction's symbol table: the sender encodes with it, the
 * receiver decodes with a mirror instance, and both mutate their copy
 * identically because insertions ride in the byte stream itself. Not
 * thread-safe — callers serialize access (the server encodes under
 * the connection write lock; the Session is single-threaded).
 */
class SymbolDict
{
  public:
    SymbolDict();

    /** Dictionary-encode rendered JSON text, appending to @p out. */
    void encode(std::string_view json, std::string &out);

    /**
     * Decode dictionary-encoded bytes back into JSON text. Fails (at
     * a payload-relative offset) on out-of-range table references and
     * truncated instructions. A failure can leave later insertions in
     * the payload unapplied — the connection's tables are no longer
     * in lockstep — so callers must treat it as fatal for the
     * session's dictionary (GOAWAY), even when they report the
     * offending request recoverably.
     */
    Expected<std::string> decode(std::string_view bytes);

    std::size_t entries() const { return table_.size(); }

    /** The protocol key strings both sides preload (index order). */
    static const std::vector<std::string> &staticTable();

  private:
    std::vector<std::string> table_;
    std::unordered_map<std::string, std::uint32_t> index_;
};

} // namespace wire
} // namespace server
} // namespace tracelens

#endif // TRACELENS_SERVER_WIRE_H
