/**
 * @file
 * Wire protocol of the TraceLens analysis service (docs/SERVER.md).
 *
 * Transport: plain TCP; each request and each response is one JSON
 * document on one line ("\n"-terminated, optional "\r" tolerated).
 *
 * Request shape:
 *
 *   {"id": 7, "method": "analyze", "params": {...},
 *    "deadline_ms": 2000}
 *
 * "id" (optional, number) is echoed verbatim on the response so a
 * client may pipeline requests; "deadline_ms" (optional) bounds the
 * request's total time in the server including queue wait. Responses
 * are either
 *
 *   {"id": 7, "ok": true, "result": {...}}
 *   {"id": 7, "ok": false,
 *    "error": {"code": "overloaded", "message": "..."}}
 *
 * This module is transport-free: parse/serialize only, so the unit
 * tests and the client share one implementation with the daemon.
 */

#ifndef TRACELENS_SERVER_PROTOCOL_H
#define TRACELENS_SERVER_PROTOCOL_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/util/expected.h"
#include "src/util/json.h"

namespace tracelens
{
namespace server
{

/** Protocol revision, echoed by `health` and `tracelens version`. */
inline constexpr std::uint32_t kProtocolVersion = 1;

/** Machine-readable failure classes (the "error.code" field). */
enum class ErrorCode
{
    BadRequest,       //!< Malformed JSON / missing or invalid params.
    Overloaded,       //!< Bounded queue full — retry later (429-style).
    DeadlineExceeded, //!< The request's deadline elapsed in the server.
    NotFound,         //!< Unknown corpus path / scenario / method.
    ShuttingDown,     //!< Daemon is draining; no new work accepted.
    Internal,         //!< Unexpected server-side failure.
};

/** Stable wire name of @p code ("bad_request", ...). */
std::string_view errorCodeName(ErrorCode code);

/** One parsed request line. */
struct Request
{
    /** Echoed on the response when present. */
    std::optional<double> id;
    std::string method;
    /** The "params" object (empty object when absent). */
    JsonValue params = JsonValue::makeObject();
    /** 0 = no explicit deadline (server default applies). */
    std::uint64_t deadlineMs = 0;
};

/**
 * Parse one request line (without the trailing newline). Fails with
 * the offset-carrying error for malformed JSON, a non-object
 * document, or a missing/invalid "method".
 */
Expected<Request> parseRequest(std::string_view line);

/** A success response line, newline-terminated. */
std::string renderResult(const std::optional<double> &id,
                         const JsonValue &result);

/** An error response line, newline-terminated. */
std::string renderError(const std::optional<double> &id,
                        ErrorCode code, std::string_view message);

} // namespace server
} // namespace tracelens

#endif // TRACELENS_SERVER_PROTOCOL_H
