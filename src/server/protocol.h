/**
 * @file
 * Version-negotiated wire protocol of the TraceLens analysis service
 * (docs/SERVER.md). This module is transport-free — parse/serialize
 * only — so the daemon, the client Session, and the tests share one
 * implementation of methods, error codes, and message shapes.
 *
 * Two protocol revisions share this vocabulary:
 *
 *  - **v1 (JSON lines)**: each request and each response is one JSON
 *    document on one "\n"-terminated line:
 *
 *      {"id": 7, "method": "analyze", "params": {...},
 *       "deadline_ms": 2000}
 *      {"id": 7, "ok": true, "result": {...}}
 *      {"id": 7, "ok": false,
 *       "error": {"code": "overloaded", "message": "..."}}
 *
 *  - **v2 (multiplexed binary frames)**: length-prefixed frames with
 *    per-stream ids, flow-control windows, priorities, and a shared
 *    per-session symbol dictionary (src/server/wire.h). Method and
 *    error-code identities, params shapes, and result JSON are
 *    identical to v1 — v2 changes the framing, not the semantics, so
 *    analysis reports are byte-identical across transports.
 *
 * Negotiation: a v2-capable client opens with the preface line
 * (wire::kPreface + "\n"). A v2 server upgrades the connection and
 * answers with a binary SETTINGS frame; a v1-only server answers a
 * JSON "bad_request" line (first byte '{'), which the client takes as
 * "speak v1". Anything that never sends the preface gets plain v1.
 */

#ifndef TRACELENS_SERVER_PROTOCOL_H
#define TRACELENS_SERVER_PROTOCOL_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/expected.h"
#include "src/util/json.h"
#include "src/util/telemetry.h"

namespace tracelens
{
namespace server
{

/** Oldest wire revision (newline-delimited JSON, PR 5). */
inline constexpr std::uint32_t kProtocolVersionV1 = 1;
/** Multiplexed binary framing + symbol dictionary. */
inline constexpr std::uint32_t kProtocolVersionV2 = 2;
/** Highest revision this build speaks (`health`, `version`). */
inline constexpr std::uint32_t kProtocolVersion = kProtocolVersionV2;

/** Every revision this build can negotiate, ascending. */
const std::vector<std::uint32_t> &supportedProtocolVersions();

// ------------------------------------------------------------ methods

/**
 * The service's method vocabulary — the single source of truth shared
 * by the server dispatch, the typed client API, the CLI, and the
 * tests. Wire names come from methodName(); nothing outside the
 * codec layer should spell a method as a string literal.
 */
enum class Method : std::uint8_t
{
    // Enumerator values are the v2 wire bytes — do not renumber.
    Health = 0,   //!< Liveness + protocol revisions; answered inline.
    Stats = 1,    //!< Server counters; answered inline.
    Shutdown = 2, //!< Begin graceful drain; answered inline.
    Analyze = 3,  //!< Scenario classification + pattern mining.
    Impact = 4,   //!< Component impact, overall and per scenario.
    Mine = 5,     //!< Raw contrast patterns (no knowledge filter).
    Ingest = 6,   //!< Corpus ingestion summary.
    Sleep = 7,    //!< Test-only worker occupancy (enableTestMethods).
    // Coordinator-mode worker methods (docs/SERVER.md): each returns
    // a base64 TLP1 partial-result payload instead of a finished
    // report, for the coordinator's scatter/gather.
    AnalyzePartial = 8, //!< One shard's scenario partial.
    ImpactPartial = 9,  //!< One shard's corpus-wide impact partial.
    MinePartial = 10,   //!< Alias of AnalyzePartial for mine gathers.
    ClusterStatus = 11, //!< Coordinator topology + worker health.
    // Observability methods (docs/TELEMETRY.md, "Distributed tracing
    // & metrics"): answered inline so they stay usable exactly when
    // the data plane is saturated — the moment you need them.
    TelemetryPull = 12,  //!< This node's recorded span buffer.
    Metrics = 13,        //!< Metrics-registry snapshot (with buckets).
    FlightRecorder = 14, //!< Recent completed-request ring.
    /** Coordinator-side span stitching: pull every worker's spans via
     *  telemetry_pull, merge with the coordinator's own buffer, and
     *  return one Chrome trace (queued — it fans out over TCP). */
    ClusterTrace = 15,
    // Continuous fleet mode (docs/FLEET.md): only served when the
    // daemon runs with --watch; rejected with BadRequest otherwise.
    IngestPush = 16,    //!< Stream one TLC1 shard into the live spool.
    WindowSummary = 17, //!< Rolling-window scenario summary.
    Alerts = 18,        //!< Sentinel alerts, optionally long-polled.
};

/** Stable wire name of @p method ("analyze", ...). */
std::string_view methodName(Method method);

/** Inverse of methodName(); nullopt for unknown names. */
std::optional<Method> parseMethod(std::string_view name);

/** The v2 wire byte of @p method (the enumerator value). */
std::uint8_t methodWireByte(Method method);

/** Inverse of methodWireByte(); nullopt for unknown bytes. */
std::optional<Method> methodFromWireByte(std::uint8_t byte);

/**
 * Control-plane methods are answered inline on the connection's
 * reader thread so they stay responsive when the worker queue is
 * saturated (health/stats/shutdown).
 */
bool isControlMethod(Method method);

// ----------------------------------------------------------- priority

/** v2 per-request priorities (v1 requests run as Normal). */
inline constexpr std::uint8_t kPriorityInteractive = 0;
inline constexpr std::uint8_t kPriorityNormal = 1;
inline constexpr std::uint8_t kPriorityBulk = 2;
inline constexpr std::uint8_t kPriorityLevels = 3;

// -------------------------------------------------------- error codes

/** Machine-readable failure classes (the "error.code" field). */
enum class ErrorCode
{
    BadRequest,       //!< Malformed JSON / missing or invalid params.
    Overloaded,       //!< Bounded queue full — retry later (429-style).
    DeadlineExceeded, //!< The request's deadline elapsed in the server.
    NotFound,         //!< Unknown corpus path / scenario / method.
    ShuttingDown,     //!< Daemon is draining; no new work accepted.
    ProtocolError,    //!< Framing violation (oversized line, bad frame,
                      //!< dictionary desync); carries a byte offset.
    Internal,         //!< Unexpected server-side failure.
};

/** Stable wire name of @p code ("bad_request", ...). */
std::string_view errorCodeName(ErrorCode code);

/** Inverse of errorCodeName(); nullopt for unknown names. */
std::optional<ErrorCode> parseErrorCode(std::string_view name);

/** One decoded protocol error (the "error" response member). */
struct ErrorInfo
{
    ErrorCode code = ErrorCode::Internal;
    std::string message;
    /**
     * For ProtocolError: the connection byte offset at which the
     * violation was detected (0 = not applicable / unknown). Rendered
     * as "error.offset" when nonzero.
     */
    std::uint64_t offset = 0;
};

// ----------------------------------------------------------- requests

/** One parsed request (either transport). */
struct Request
{
    /** v1: echoed on the response when present. v2 correlates by
     *  stream id instead and leaves this unset server-side. */
    std::optional<double> id;
    std::string method;
    /** The "params" object (empty object when absent). */
    JsonValue params = JsonValue::makeObject();
    /** 0 = no explicit deadline (server default applies). */
    std::uint64_t deadlineMs = 0;
    /** Scheduling class (kPriority*); v1 always Normal. */
    std::uint8_t priority = kPriorityNormal;
    /** Propagated span context (v2 with tracing negotiated; traceId
     *  0 = the request carried none). */
    SpanContext context;
};

/**
 * Typed request structs — the client-facing shape of each method's
 * params, one place instead of hand-built JSON at every call site.
 * toParams() renders exactly the params object the server validates.
 */
struct AnalyzeRequest
{
    std::string corpus;
    std::string scenario;
    std::optional<double> tfastMs;
    std::optional<double> tslowMs;
    std::optional<std::size_t> top;
    std::optional<bool> knowledgeFilter;
    std::vector<std::string> components;
    JsonValue toParams() const;
    static constexpr Method kMethod = Method::Analyze;
};

struct ImpactRequest
{
    std::string corpus;
    std::vector<std::string> components;
    JsonValue toParams() const;
    static constexpr Method kMethod = Method::Impact;
};

struct MineRequest
{
    std::string corpus;
    std::string scenario;
    std::optional<double> tfastMs;
    std::optional<double> tslowMs;
    std::optional<std::size_t> maxPatterns;
    JsonValue toParams() const;
    static constexpr Method kMethod = Method::Mine;
};

struct IngestRequest
{
    std::string corpus;
    JsonValue toParams() const;
    static constexpr Method kMethod = Method::Ingest;
};

struct SleepRequest
{
    double ms = 10.0;
    JsonValue toParams() const;
    static constexpr Method kMethod = Method::Sleep;
};

/**
 * One shard's scenario partial (coordinator scatter). Unlike
 * AnalyzeRequest, the thresholds are mandatory: the coordinator
 * resolves catalog defaults once and ships explicit values so every
 * worker classifies identically.
 */
struct AnalyzePartialRequest
{
    std::string corpus; //!< One shard file, not a directory.
    std::string scenario;
    double tfastMs = 0;
    double tslowMs = 0;
    std::vector<std::string> components;
    JsonValue toParams() const;
    static constexpr Method kMethod = Method::AnalyzePartial;
};

/** One shard's corpus-wide impact partial (coordinator scatter). */
struct ImpactPartialRequest
{
    std::string corpus; //!< One shard file, not a directory.
    std::vector<std::string> components;
    JsonValue toParams() const;
    static constexpr Method kMethod = Method::ImpactPartial;
};

/** Same payload as AnalyzePartialRequest, under the mine_partial
 *  method name (the coordinator's mine gather). */
struct MinePartialRequest
{
    std::string corpus;
    std::string scenario;
    double tfastMs = 0;
    double tslowMs = 0;
    JsonValue toParams() const;
    static constexpr Method kMethod = Method::MinePartial;
};

/** Coordinator topology probe. With @c metrics the response also
 *  aggregates every worker's metrics registry (exact histogram
 *  merge) into one "metrics" object. */
struct ClusterStatusRequest
{
    bool metrics = false;
    JsonValue toParams() const;
    static constexpr Method kMethod = Method::ClusterStatus;
};

/** This node's span buffer (spans recorded since startup/reset). */
struct TelemetryPullRequest
{
    JsonValue toParams() const;
    static constexpr Method kMethod = Method::TelemetryPull;
};

/** This node's metrics registry, bucket-exact. */
struct MetricsRequest
{
    JsonValue toParams() const;
    static constexpr Method kMethod = Method::Metrics;
};

/** The flight recorder's recent completed-request records. */
struct FlightRecorderRequest
{
    JsonValue toParams() const;
    static constexpr Method kMethod = Method::FlightRecorder;
};

/** Coordinator-stitched cluster-wide Chrome trace. */
struct ClusterTraceRequest
{
    JsonValue toParams() const;
    static constexpr Method kMethod = Method::ClusterTrace;
};

/**
 * Stream one finished TLC1 shard into a watched daemon's spool. The
 * shard lands via the rename-into-place convention and is ingested
 * synchronously: when the response arrives, the shard is in its
 * window and the sentinel has run. `fleet_revision` is mandatory so
 * mixed-version fleets fail loudly instead of mis-bucketing windows.
 */
struct IngestPushRequest
{
    /** Spool filename ("shard-0042.tlc"; no directories, no dots
     *  prefix). */
    std::string name;
    /** Raw TLC1 bytes, base64-encoded. */
    std::string payloadBase64;
    /** Pusher's fleetRevision() — checked against the daemon's. */
    std::uint32_t fleetRevision = 0;
    /** Window-bucketing override (ms since epoch); absent = daemon
     *  wall clock at ingest. */
    std::optional<std::uint64_t> timestampMs;
    JsonValue toParams() const;
    static constexpr Method kMethod = Method::IngestPush;
};

/** Rolling-window scenario summary from a watched daemon. */
struct WindowSummaryRequest
{
    std::string scenario;
    std::optional<double> tfastMs;
    std::optional<double> tslowMs;
    /** "current" (default), "all", or a decimal window id. */
    std::string windows;
    /** Merge the N windows up to the selection (0/1 = just it). */
    std::optional<std::size_t> trailing;
    std::optional<std::size_t> top;
    std::optional<bool> knowledgeFilter;
    JsonValue toParams() const;
    static constexpr Method kMethod = Method::WindowSummary;
};

/** Sentinel alerts with seq > afterSeq; waitMs long-polls for the
 *  first new alert before answering (bounded by the deadline). */
struct AlertsRequest
{
    std::uint64_t afterSeq = 0;
    std::optional<std::uint64_t> waitMs;
    JsonValue toParams() const;
    static constexpr Method kMethod = Method::Alerts;
};

// ---------------------------------------------------------- responses

/** One decoded response, success or error (either transport). */
struct Response
{
    bool ok = false;
    /** v1: the echoed request id. v2: assigned by the Session from
     *  its stream bookkeeping. */
    std::optional<double> id;
    /** The "result" object when ok. */
    JsonValue result;
    /** Populated when !ok. */
    ErrorInfo error;
};

// ------------------------------------------------------ v1 line codec

/**
 * Parse one request line (without the trailing newline). Fails with
 * the offset-carrying error for malformed JSON, a non-object
 * document, or a missing/invalid "method".
 */
Expected<Request> parseRequest(std::string_view line);

/** A success response line, newline-terminated. */
std::string renderResult(const std::optional<double> &id,
                         const JsonValue &result);

/** An error response line, newline-terminated. @p offset (when
 *  nonzero) becomes "error.offset" — see ErrorInfo::offset. */
std::string renderError(const std::optional<double> &id,
                        ErrorCode code, std::string_view message,
                        std::uint64_t offset = 0);

/** Parse one response line into the shared Response shape. */
Expected<Response> parseResponseLine(std::string_view line);

// ----------------------------------------- shared payload (v2 bodies)

/** Render the "error" object alone (v2 response payloads). */
std::string renderErrorObject(const ErrorInfo &error);

/** Decode an "error" object (v2 response payloads). */
ErrorInfo parseErrorObject(const JsonValue &error);

// ------------------------------------ observability payload codecs
//
// The `metrics` and `telemetry_pull` methods ship structured
// telemetry as JSON; these helpers are the single definition of
// those shapes, used by the server to render and by the coordinator
// to parse when aggregating. 64-bit ids cross as 16-hex-digit
// strings (a JSON number is a double and cannot hold them); bucket
// state crosses in full so coordinator-side histogram merges are
// exact.

/** {"counters": {...}, "gauges": {...}, "histograms": {name:
 *  {"count", "sum", "max", "buckets": [[index, count], ...]}}} */
JsonValue metricsSnapshotJson(const MetricsSnapshot &snapshot);

/** Inverse of metricsSnapshotJson(); tolerant of missing members
 *  (absent sections parse as empty). */
MetricsSnapshot parseMetricsSnapshot(const JsonValue &json);

/** {"node": ..., "epoch_unix_us": N, "spans": [{"name", "category",
 *  "tid", "depth", "start_us", "dur_us", "cpu_ns", "trace_id",
 *  "span_id", "parent_span_id", "args": {...}}, ...]} — the
 *  telemetry_pull result body (NodeSpans::pid is assigned by the
 *  stitcher, not carried on the wire). */
JsonValue nodeSpansJson(const NodeSpans &node);

/** Inverse of nodeSpansJson(); malformed span entries are skipped. */
NodeSpans parseNodeSpans(const JsonValue &json);

} // namespace server
} // namespace tracelens

#endif // TRACELENS_SERVER_PROTOCOL_H
