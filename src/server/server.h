/**
 * @file
 * The TraceLens analysis service: a long-running TCP daemon over the
 * warm pipeline state (docs/SERVER.md).
 *
 * `tracelens serve` keeps ingested corpora, wait graphs, AWGs, and
 * mined patterns resident between requests — the batch pipeline of
 * PRs 1–4 behind an always-on, low-latency query surface. Concurrent
 * clients speak newline-delimited JSON (protocol v1) or upgrade to
 * multiplexed binary frames with per-request priorities and a shared
 * symbol dictionary (protocol v2 — src/server/protocol.h and
 * src/server/wire.h); requests flow
 *
 *   reader thread (one per connection, socket I/O only)
 *     -> bounded request queue (maxInflight; "overloaded" rejection
 *        when full — backpressure instead of latency collapse)
 *     -> the work-stealing ThreadPool (src/util/parallel.h), each
 *        worker draining the queue and running handlers
 *     -> SessionRegistry (src/server/registry.h) for warm corpora
 *     -> response line written back on the requesting connection.
 *
 * Deadlines are cooperative: "deadline_ms" (or the server default) is
 * checked at dequeue, after session acquire, and at stage boundaries
 * inside handlers; an expired request answers "deadline_exceeded"
 * without burning further pipeline time.
 *
 * Shutdown: requestStop() is async-signal-safe (it only writes one
 * byte to the wake pipe), so a SIGTERM handler may call it directly.
 * The drain sequence stops accepting connections, rejects new
 * requests with "shutting_down", finishes everything already queued,
 * then closes connections and joins every thread.
 *
 * Telemetry: one "server.request" span per request (method, outcome,
 * cache state as args), queue-depth and latency histograms plus
 * request/rejection counters in MetricsRegistry::global().
 */

#ifndef TRACELENS_SERVER_SERVER_H
#define TRACELENS_SERVER_SERVER_H

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "src/fleet/service.h"
#include "src/server/flightrecorder.h"
#include "src/server/protocol.h"
#include "src/server/registry.h"
#include "src/server/wire.h"
#include "src/util/expected.h"
#include "src/util/parallel.h"

namespace tracelens
{
namespace server
{

/** Daemon configuration (CLI: `tracelens serve`). */
struct ServerConfig
{
    /** Bind address; IPv4 dotted quad (use 0.0.0.0 for all). */
    std::string host = "127.0.0.1";
    /** TCP port; 0 picks an ephemeral port (see Server::port()). */
    std::uint16_t port = 0;
    /** Request workers on the work-stealing pool; 0 = hardware. */
    unsigned workers = 0;
    /** Bound on queued + running requests; beyond it requests are
     *  rejected with "overloaded" (CLI: --max-inflight). */
    std::size_t maxInflight = 64;
    /** Deadline applied when a request carries none; 0 = unlimited. */
    std::uint64_t defaultDeadlineMs = 30000;
    /** Requests longer than this are rejected and the connection
     *  closed (a protocol-framing failure, not a slow consumer). */
    std::size_t maxLineBytes = 1 << 20;
    /** Enable the test-only "sleep" method (tests and load bench). */
    bool enableTestMethods = false;
    /** Offer the protocol-v2 upgrade (src/server/wire.h). Off, the
     *  daemon answers the preface with a JSON bad_request line and v2
     *  clients fall back to v1 — the interop tests' "old server". */
    bool enableProtocolV2 = true;
    /**
     * Coordinator mode (CLI: `tracelens serve --coordinator`): the
     * daemon answers analyze/impact/mine by scatter/gathering
     * `*_partial` requests over the worker daemons listed in
     * workerAddrs instead of analyzing locally (src/server/
     * coordinator.h). Requires a non-empty workerAddrs.
     */
    bool coordinator = false;
    /** Worker addresses ("host:port"), CLI --cluster-workers. */
    std::vector<std::string> workerAddrs;
    /** Coordinator per-shard request deadline (--shard-deadline-ms). */
    std::uint64_t shardDeadlineMs = 10000;
    /**
     * Prometheus exposition listener ("HOST:PORT", CLI
     * --metrics-listen); empty = no listener. Serves the process
     * metrics registry as text format 0.0.4 over plain HTTP.
     */
    std::string metricsListen;
    /** Write the metrics listener's bound port here (ephemeral-port
     *  discovery for scripts, CLI --metrics-port-file). */
    std::string metricsPortFile;
    /** Log completed requests slower than this at warn level
     *  (CLI --slow-request-ms); 0 = off. */
    std::uint64_t slowRequestMs = 0;
    /** Write this node's spans as a TLC1 corpus under this directory
     *  at drain (CLI --self-trace-corpus); empty = off. Implies span
     *  recording while the daemon runs. */
    std::string selfTraceCorpusDir;
    /** Flight-recorder ring size (completed-request records). */
    std::size_t flightRecorderCapacity = 256;
    /** Session layer: ingestion options, artifact cache, eviction. */
    RegistryConfig registry;
    /**
     * Continuous fleet mode (CLI: `tracelens serve --watch DIR`,
     * docs/FLEET.md): watch DIR for renamed-into-place shards, serve
     * ingest_push / window_summary / alerts, and run the regression
     * sentinel. Empty = fleet methods answer BadRequest.
     */
    std::string fleetWatchDir;
    /** Window width (--window-ms). */
    std::uint64_t fleetWindowMs = 60000;
    /** Bounded window ring (--max-windows). */
    std::size_t fleetMaxWindows = 8;
    /** Spool poll interval (--poll-ms). */
    std::uint64_t fleetPollMs = 200;
    /** Sentinel baseline width in windows (--baseline-windows). */
    std::size_t fleetBaselineWindows = 3;
    /** Watched scenarios (--watch-scenario, repeatable; empty = the
     *  full catalog). */
    std::vector<std::string> fleetScenarios;
    /** Alert JSONL sink (--alerts-out); empty = in-memory only. */
    std::string fleetAlertsPath;
};

/** Point-in-time server counters (the `stats` method's source). */
struct ServerStats
{
    std::uint64_t accepted = 0;   //!< Connections accepted.
    std::uint64_t requests = 0;   //!< Request lines parsed OK.
    std::uint64_t ok = 0;         //!< Responses with ok=true.
    std::uint64_t errors = 0;     //!< Error responses (all codes).
    std::uint64_t rejected = 0;   //!< Of which: overloaded rejections.
    std::uint64_t dropped = 0;    //!< Responses to vanished clients.
    std::size_t inflight = 0;     //!< Queued + running right now.
    std::size_t connections = 0;  //!< Open connections right now.
    std::uint64_t v2Connections = 0;   //!< Connections upgraded to v2.
    std::uint64_t protocolErrors = 0;  //!< Framing violations seen.
};

class Coordinator; // src/server/coordinator.h

class Server
{
  public:
    explicit Server(ServerConfig config = {});
    /** Stops and joins (requestStop + wait) if still running. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind, listen, and start the accept loop and worker pool.
     * Returns the bound port (the chosen one when config.port == 0).
     */
    Expected<std::uint16_t> start();

    /** Bound port after a successful start(). */
    std::uint16_t port() const { return port_; }

    /**
     * Begin the graceful drain. Async-signal-safe: only writes to the
     * wake pipe, so SIGTERM/SIGINT handlers may call it directly.
     * Idempotent.
     */
    void requestStop();

    /** Block until the drain completes and all threads are joined. */
    void wait();

    /** Whether the daemon finished draining. */
    bool stopped() const
    {
        return stopped_.load(std::memory_order_acquire);
    }

    ServerStats stats() const;
    const SessionRegistry &registry() const { return registry_; }
    const ServerConfig &config() const { return config_; }
    /** Metrics listener's bound port (0 = no listener). */
    std::uint16_t metricsPort() const { return metricsPort_; }
    const FlightRecorder &flightRecorder() const
    {
        return flightRecorder_;
    }

  private:
    /** One client connection; shared between its reader thread and
     *  whichever worker is writing a response. */
    struct Connection
    {
        int fd = -1;
        std::string peer;
        std::mutex writeMutex;
        std::atomic<bool> open{true};

        /** Total bytes received (reader thread only) — the source of
         *  the byte offsets in protocol_error / GOAWAY reports. */
        std::uint64_t bytesIn = 0;

        /** Protocol-v2 connection state; null while the connection
         *  speaks v1. Created by the reader thread at upgrade, before
         *  any v2 request is routed, so workers that reach it via a
         *  QueuedRequest observe it fully constructed. */
        struct WireState
        {
            // ---- reader thread only
            wire::SymbolDict recvDict;     //!< client->server params
            std::uint32_t lastStream = 0;  //!< highest request stream

            // ---- guarded by writeMutex
            wire::SymbolDict sendDict;     //!< server->client results
            wire::Settings peer;           //!< client's SETTINGS
            /** Remaining response credit per open stream (created
             *  lazily at peer.initialWindow). */
            std::map<std::uint32_t, std::int64_t> window;
            /** One queued response, already dictionary-encoded.
             *  Encode order == queue order == wire order, which is
             *  what keeps both ends' sendDict/recvDict in lockstep. */
            struct Outbound
            {
                std::uint32_t stream = 0;
                std::uint8_t finalFlags = 0;
                std::string bytes;
                std::size_t sent = 0;
            };
            std::deque<Outbound> outbound;
        };
        std::unique_ptr<WireState> wire;

        /** Write a full line; marks the connection closed on error.
         *  Returns false when the client vanished. */
        bool sendLine(const std::string &line);
        /** Same, caller already holds writeMutex. */
        bool sendAllLocked(std::string_view bytes);
        void shutdownBoth();
    };

    /** A request admitted to the bounded queue. */
    struct QueuedRequest
    {
        Request request;
        std::shared_ptr<Connection> conn;
        std::chrono::steady_clock::time_point arrival;
        /** Absolute deadline; nullopt = unlimited. */
        std::optional<std::chrono::steady_clock::time_point> deadline;
        /** v2 response stream; 0 = the connection speaks v1. */
        std::uint32_t stream = 0;
    };

    void acceptLoop();
    void readerLoop(std::shared_ptr<Connection> conn);
    void reapReaders(bool all);

    /** v1 line loop; hands off to readV2Frames() on the preface.
     *  Returns true when the socket failed (vs orderly close). */
    bool readV1Lines(const std::shared_ptr<Connection> &conn);
    /** v2 frame loop; @p pending = bytes read past the preface. */
    bool readV2Frames(const std::shared_ptr<Connection> &conn,
                      std::string pending);
    /** Dispatch one v2 frame; false = stop reading this connection. */
    bool handleFrame(const std::shared_ptr<Connection> &conn,
                     const wire::FrameHeader &header,
                     std::string_view payload,
                     std::uint64_t frameStart);
    /** Send GOAWAY (fatal framing violation) and hang up. */
    void sendGoaway(const std::shared_ptr<Connection> &conn,
                    std::uint64_t offset, const std::string &message);

    /** Parse and route one request line from @p conn. */
    void handleLine(const std::shared_ptr<Connection> &conn,
                    std::string_view line);
    /** Shared v1/v2 routing: control methods inline, the rest into
     *  the bounded priority queue. @p stream 0 = v1. */
    void routeRequest(const std::shared_ptr<Connection> &conn,
                      Request request, std::uint32_t stream);
    /** Run one queued request on a pool worker. */
    void process(QueuedRequest request);
    void workerLoop();
    /** Queued requests across all priority buckets (queueMutex_). */
    std::size_t queuedTotal() const;

    // ---- response emission (version-dispatching on stream == 0)
    void respondOk(const std::shared_ptr<Connection> &conn,
                   std::uint32_t stream,
                   const std::optional<double> &id,
                   const std::string &resultJson);
    void respondError(const std::shared_ptr<Connection> &conn,
                      std::uint32_t stream,
                      const std::optional<double> &id, ErrorCode code,
                      const std::string &message,
                      std::uint64_t offset = 0);
    void sendResponseV2(const std::shared_ptr<Connection> &conn,
                        std::uint32_t stream, bool isError,
                        const std::string &payloadJson);
    /** Drain Connection::WireState::outbound as far as the peer's
     *  flow-control windows allow (writeMutex held). */
    void flushOutboundLocked(const std::shared_ptr<Connection> &conn);

    /** Method handlers; return a result or throw HandlerError. */
    JsonValue handleAnalyze(const QueuedRequest &request);
    JsonValue handleImpact(const QueuedRequest &request);
    JsonValue handleMine(const QueuedRequest &request);
    JsonValue handleIngest(const QueuedRequest &request);
    JsonValue handleSleep(const QueuedRequest &request);
    /** Worker-side partial handlers (analyze_partial/mine_partial and
     *  impact_partial): one shard in, a TLP1 payload out. */
    JsonValue handleAnalyzePartial(const QueuedRequest &request);
    JsonValue handleImpactPartial(const QueuedRequest &request);
    /** Coordinator-side handlers: scatter/gather via coordinator_. */
    JsonValue handleCoordAnalyze(const QueuedRequest &request);
    JsonValue handleCoordImpact(const QueuedRequest &request);
    JsonValue handleCoordMine(const QueuedRequest &request);
    JsonValue handleClusterStatus(const QueuedRequest &request);
    /** Coordinator-side span stitching (queued: fans out over TCP). */
    JsonValue handleClusterTrace(const QueuedRequest &request);
    /** Continuous-mode handlers; BadRequest unless --watch is on. */
    void requireFleet() const;
    JsonValue handleIngestPush(const QueuedRequest &request);
    JsonValue handleWindowSummary(const QueuedRequest &request);
    JsonValue handleAlerts(const QueuedRequest &request);
    JsonValue statsResult();
    // Observability results (answered inline — see isControlMethod).
    JsonValue telemetryPullResult() const;
    JsonValue metricsResult() const;
    JsonValue flightRecorderResult() const;
    /** "host:port (role)" — how this node names itself in telemetry
     *  pulls and metrics labels. */
    std::string nodeName() const;
    /** Accept loop of the --metrics-listen HTTP endpoint. */
    void metricsLoop();

    void drain();

    ServerConfig config_;
    SessionRegistry registry_;
    /** Present only in coordinator mode (config_.coordinator). */
    std::unique_ptr<Coordinator> coordinator_;
    /** Present only in fleet mode (config_.fleetWatchDir). */
    std::unique_ptr<FleetService> fleet_;

    int listenFd_ = -1;
    std::uint16_t port_ = 0;
    int wakeRead_ = -1;
    int wakeWrite_ = -1;

    /** --metrics-listen endpoint (Prometheus text exposition). */
    int metricsFd_ = -1;
    std::uint16_t metricsPort_ = 0;
    std::thread metricsThread_;
    std::atomic<bool> metricsStop_{false};

    FlightRecorder flightRecorder_;
    std::chrono::steady_clock::time_point startTime_;

    std::thread acceptThread_;
    std::thread poolDriver_;
    std::unique_ptr<ThreadPool> pool_;
    unsigned workerCount_ = 0;

    /** Reader threads and their connections, reaped as they finish. */
    struct ReaderSlot
    {
        std::thread thread;
        std::shared_ptr<Connection> conn;
        std::atomic<bool> done{false};
    };
    std::mutex readersMutex_;
    std::list<std::unique_ptr<ReaderSlot>> readers_;

    std::mutex queueMutex_;
    std::condition_variable queueCv_;
    std::condition_variable drainCv_;
    /** One bucket per priority class; workers drain the lowest
     *  non-empty index first, so interactive requests overtake queued
     *  bulk work without preempting anything already running. */
    std::array<std::deque<QueuedRequest>, kPriorityLevels> queues_;
    std::size_t inflight_ = 0; //!< Queued + running (queueMutex_).
    bool stopWorkers_ = false;

    std::atomic<bool> started_{false};
    std::atomic<bool> draining_{false};
    std::atomic<bool> stopped_{false};
    std::mutex stoppedMutex_;
    std::condition_variable stoppedCv_;

    std::atomic<std::uint64_t> accepted_{0};
    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> ok_{0};
    std::atomic<std::uint64_t> errors_{0};
    std::atomic<std::uint64_t> rejected_{0};
    std::atomic<std::uint64_t> dropped_{0};
    std::atomic<std::size_t> connections_{0};
    std::atomic<std::uint64_t> v2Conns_{0};
    std::atomic<std::uint64_t> protocolErrors_{0};

    /** Lock-free metric handles, resolved once at start(). */
    Counter *requestsCounter_ = nullptr;
    Counter *rejectedCounter_ = nullptr;
    Counter *errorsCounter_ = nullptr;
    Histogram *queueDepthHist_ = nullptr;
    Histogram *latencyHist_ = nullptr;
    Histogram *queueWaitHist_ = nullptr;
    Gauge *inflightGauge_ = nullptr;
};

/** Parse "HOST:PORT"; fails on a malformed address or port. */
Expected<std::pair<std::string, std::uint16_t>>
parseHostPort(const std::string &text);

} // namespace server
} // namespace tracelens

#endif // TRACELENS_SERVER_SERVER_H
