/**
 * @file
 * Protocol-v2 frame and dictionary codecs (src/server/wire.h).
 */

#include "src/server/wire.h"

#include <cstring>

#include "src/util/varint.h"

namespace tracelens
{
namespace server
{
namespace wire
{

namespace
{

void
putU32le(std::string &out, std::uint32_t v)
{
    char buf[4];
    std::memcpy(buf, &v, 4);
    out.append(buf, 4);
}

const unsigned char *
bytesOf(std::string_view s)
{
    return reinterpret_cast<const unsigned char *>(s.data());
}

} // namespace

// ------------------------------------------------------------ framing

void
appendFrame(std::string &out, FrameType type, std::uint8_t flags,
            std::uint32_t stream, std::string_view payload)
{
    putU32le(out, static_cast<std::uint32_t>(payload.size()));
    out.push_back(static_cast<char>(type));
    out.push_back(static_cast<char>(flags));
    putU32le(out, stream);
    out.append(payload);
}

bool
decodeFrameHeader(std::string_view bytes, FrameHeader &out)
{
    if (bytes.size() < kFrameHeaderBytes)
        return false;
    std::memcpy(&out.length, bytes.data(), 4);
    out.type = static_cast<std::uint8_t>(bytes[4]);
    out.flags = static_cast<std::uint8_t>(bytes[5]);
    std::memcpy(&out.stream, bytes.data() + 6, 4);
    return true;
}

// ----------------------------------------------------------- settings

namespace
{

inline constexpr std::uint64_t kSettingProtocolVersion = 1;
inline constexpr std::uint64_t kSettingMaxFramePayload = 2;
inline constexpr std::uint64_t kSettingInitialWindow = 3;
inline constexpr std::uint64_t kSettingTracing = 4;

} // namespace

std::string
encodeSettings(const Settings &settings)
{
    std::string out;
    putVarint(out, kSettingProtocolVersion);
    putVarint(out, settings.protocolVersion);
    putVarint(out, kSettingMaxFramePayload);
    putVarint(out, settings.maxFramePayload);
    putVarint(out, kSettingInitialWindow);
    putVarint(out, settings.initialWindow);
    if (settings.tracing) {
        // Only advertised, never implied: a peer from before this
        // setting existed skips the unknown id (and never sends it),
        // so both sides agree the request layout is the legacy one.
        putVarint(out, kSettingTracing);
        putVarint(out, 1);
    }
    return out;
}

Expected<Settings>
decodeSettings(std::string_view payload)
{
    Settings settings;
    const unsigned char *data = bytesOf(payload);
    std::size_t pos = 0;
    while (pos < payload.size()) {
        std::uint64_t id = 0, value = 0;
        if (!getVarint(data, payload.size(), pos, id) ||
            !getVarint(data, payload.size(), pos, value)) {
            return SourceError{"<settings>", pos,
                               "truncated settings entry"};
        }
        switch (id) {
        case kSettingProtocolVersion:
            settings.protocolVersion =
                static_cast<std::uint32_t>(value);
            break;
        case kSettingMaxFramePayload:
            if (value == 0 || value > kMaxSaneFramePayload) {
                return SourceError{"<settings>", pos,
                                   "max_frame_payload out of range"};
            }
            settings.maxFramePayload =
                static_cast<std::uint32_t>(value);
            break;
        case kSettingInitialWindow:
            if (value == 0 || value > (1ull << 31)) {
                return SourceError{"<settings>", pos,
                                   "initial_window out of range"};
            }
            settings.initialWindow = static_cast<std::uint32_t>(value);
            break;
        case kSettingTracing:
            settings.tracing = value != 0;
            break;
        default:
            break; // unknown setting: skip (forward compatibility)
        }
    }
    return settings;
}

// ----------------------------------------------------- request frames

std::string
encodeRequestPayload(Method method, std::uint8_t priority,
                     std::uint64_t deadlineMs,
                     std::string_view paramsJson, SymbolDict &dict,
                     const SpanContext *context,
                     bool tracingNegotiated)
{
    std::string out;
    out.push_back(static_cast<char>(methodWireByte(method)));
    out.push_back(static_cast<char>(priority));
    putVarint(out, deadlineMs);
    if (tracingNegotiated) {
        if (context != nullptr && context->valid()) {
            std::string ctx;
            putVarint(ctx, context->traceId);
            putVarint(ctx, context->parentSpanId);
            ctx.push_back(context->sampled ? '\x01' : '\x00');
            out.push_back(static_cast<char>(ctx.size()));
            out.append(ctx);
        } else {
            out.push_back('\x00'); // field present, context absent
        }
    }
    dict.encode(paramsJson, out);
    return out;
}

Expected<RequestFrame>
decodeRequestPayload(std::string_view payload, SymbolDict &dict,
                     bool tracingNegotiated)
{
    if (payload.size() < 2) {
        return SourceError{"<request-frame>", 0,
                           "truncated request frame"};
    }
    RequestFrame frame;
    frame.methodByte = static_cast<std::uint8_t>(payload[0]);
    frame.priority = static_cast<std::uint8_t>(payload[1]);
    if (frame.priority >= kPriorityLevels)
        frame.priority = kPriorityBulk;
    std::size_t pos = 2;
    if (!getVarint(bytesOf(payload), payload.size(), pos,
                   frame.deadlineMs)) {
        return SourceError{"<request-frame>", pos,
                           "truncated request deadline"};
    }
    if (tracingNegotiated) {
        if (pos >= payload.size()) {
            return SourceError{"<request-frame>", pos,
                               "truncated span-context field"};
        }
        const auto ctxLen =
            static_cast<std::size_t>(
                static_cast<unsigned char>(payload[pos]));
        ++pos;
        if (ctxLen > kMaxSpanContextBytes ||
            ctxLen > payload.size() - pos) {
            // The length escapes the payload, so the params cannot be
            // located. Reject this request — and only this request:
            // nothing has touched the dictionary yet, so the
            // connection's tables stay in lockstep and later requests
            // decode fine.
            frame.contextRejected = true;
            frame.paramsJson = "{}";
            return frame;
        }
        if (ctxLen > 0) {
            const std::string_view ctx = payload.substr(pos, ctxLen);
            std::size_t cpos = 0;
            SpanContext parsed;
            std::uint64_t sampled = 0;
            if (getVarint(bytesOf(ctx), ctx.size(), cpos,
                          parsed.traceId) &&
                getVarint(bytesOf(ctx), ctx.size(), cpos,
                          parsed.parentSpanId) &&
                cpos < ctx.size() && parsed.traceId != 0) {
                // Sampling-flag bytes other than 0/1 mean "sampled"
                // (fuzz tolerance); bytes past the flag are ignored
                // for forward compatibility.
                sampled =
                    static_cast<unsigned char>(ctx[cpos]) != 0 ? 1 : 0;
                parsed.sampled = sampled != 0;
                frame.context = parsed;
            }
            // Malformed content is dropped, not fatal: the length
            // still locates the params, so the request proceeds
            // without a context.
            pos += ctxLen;
        }
    }
    Expected<std::string> params = dict.decode(payload.substr(pos));
    if (!params) {
        SourceError error = params.error();
        error.offset += pos;
        return error;
    }
    frame.paramsJson = std::move(params.value());
    return frame;
}

// ------------------------------------------------------------- goaway

std::string
encodeGoaway(std::uint64_t offset, std::string_view message)
{
    std::string out;
    putVarint(out, offset);
    out.append(message);
    return out;
}

Expected<GoawayInfo>
decodeGoaway(std::string_view payload)
{
    GoawayInfo info;
    std::size_t pos = 0;
    if (!getVarint(bytesOf(payload), payload.size(), pos,
                   info.offset)) {
        return SourceError{"<goaway>", pos, "truncated goaway frame"};
    }
    info.message.assign(payload.substr(pos));
    return info;
}

// ------------------------------------------------------ window update

std::string
encodeWindowUpdate(std::uint64_t credit)
{
    std::string out;
    putVarint(out, credit);
    return out;
}

Expected<std::uint64_t>
decodeWindowUpdate(std::string_view payload)
{
    std::uint64_t credit = 0;
    std::size_t pos = 0;
    if (!getVarint(bytesOf(payload), payload.size(), pos, credit) ||
        pos != payload.size() || credit == 0) {
        return SourceError{"<window-update>", pos,
                           "malformed window update"};
    }
    return credit;
}

// ---------------------------------------------------------- dictionary

namespace
{

inline constexpr char kOpReference = 0x01;
inline constexpr char kOpInsert = 0x02;
inline constexpr char kOpLiteral = 0x03;

} // namespace

const std::vector<std::string> &
SymbolDict::staticTable()
{
    // Protocol key strings that appear in almost every message, so
    // they never transit as literals at all. Order is part of the
    // wire contract: both sides seed identically.
    static const std::vector<std::string> table = {
        // request params
        "corpus", "scenario", "tfast_ms", "tslow_ms", "knowledge_filter",
        "components", "max_patterns", "deadline_ms",
        // analyze / mine results
        "classes", "fast", "middle", "slow", "slow_impact",
        "driver_cost_share", "coverage", "mining_stats", "suppressed",
        "patterns", "rank", "impact_ms", "count", "high_impact",
        "tuple", "total_patterns",
        // impact results
        "instances", "d_scn_ms", "d_wait_ms", "d_run_ms",
        "d_waitdist_ms", "ia_run", "ia_wait", "ia_opt", "per_scenario",
        // ingest results
        "source", "shards", "loaded_shards", "skipped_shards",
        "ingest_bytes", "events", "scenarios", "mean_ms",
        // health / stats / shutdown results
        "status", "protocol", "protocols", "draining", "workers",
        "max_inflight", "requests", "total", "errors", "rejected",
        "dropped", "inflight", "connections", "open", "accepted",
        "sessions", "active_handles", "opened", "reused", "evicted",
        "open_failures", "latency", "p50_us", "p95_us", "p99_us",
        "max_us", "stopping", "slept_ms",
        // error objects
        "code", "message", "offset", "bad_request", "overloaded",
        "deadline_exceeded", "not_found", "shutting_down",
        "protocol_error", "internal",
    };
    return table;
}

SymbolDict::SymbolDict()
{
    const std::vector<std::string> &seed = staticTable();
    table_.reserve(seed.size() + 256);
    for (const std::string &entry : seed) {
        index_.emplace(entry,
                       static_cast<std::uint32_t>(table_.size()));
        table_.push_back(entry);
    }
}

void
SymbolDict::encode(std::string_view json, std::string &out)
{
    std::size_t i = 0;
    const std::size_t n = json.size();
    while (i < n) {
        const char c = json[i];
        if (c != '"') {
            out.push_back(c);
            ++i;
            continue;
        }
        // Scan the string literal (rendered JSON, so escapes are
        // well-formed and the closing quote exists).
        std::size_t j = i + 1;
        while (j < n && json[j] != '"') {
            if (json[j] == '\\' && j + 1 < n)
                ++j;
            ++j;
        }
        if (j >= n) { // defensive: unterminated — copy verbatim
            out.append(json.substr(i));
            return;
        }
        const std::string_view token = json.substr(i + 1, j - i - 1);
        i = j + 1;
        if (token.size() < kDictMinString ||
            token.size() > kDictMaxString) {
            out.push_back('"');
            out.append(token);
            out.push_back('"');
            continue;
        }
        const auto hit = index_.find(std::string(token));
        if (hit != index_.end()) {
            out.push_back(kOpReference);
            putVarint(out, hit->second);
            continue;
        }
        if (table_.size() < kDictMaxEntries) {
            out.push_back(kOpInsert);
            putVarint(out, token.size());
            out.append(token);
            index_.emplace(std::string(token),
                           static_cast<std::uint32_t>(table_.size()));
            table_.emplace_back(token);
        } else {
            out.push_back(kOpLiteral);
            putVarint(out, token.size());
            out.append(token);
        }
    }
}

Expected<std::string>
SymbolDict::decode(std::string_view bytes)
{
    std::string out;
    out.reserve(bytes.size() + bytes.size() / 2);
    const unsigned char *data = bytesOf(bytes);
    std::size_t pos = 0;
    const std::size_t n = bytes.size();
    while (pos < n) {
        const char c = bytes[pos];
        if (c != kOpReference && c != kOpInsert && c != kOpLiteral) {
            out.push_back(c);
            ++pos;
            continue;
        }
        const std::size_t opAt = pos;
        ++pos;
        std::uint64_t value = 0;
        if (!getVarint(data, n, pos, value)) {
            return SourceError{"<dict>", opAt,
                               "truncated dictionary instruction"};
        }
        if (c == kOpReference) {
            if (value >= table_.size()) {
                return SourceError{
                    "<dict>", opAt,
                    detail::concat("dictionary index ", value,
                                   " out of range (table has ",
                                   table_.size(), " entries)")};
            }
            out.push_back('"');
            out.append(table_[value]);
            out.push_back('"');
            continue;
        }
        if (value < kDictMinString || value > kDictMaxString ||
            value > n - pos) {
            return SourceError{"<dict>", opAt,
                               detail::concat(
                                   "dictionary literal length ", value,
                                   " invalid or truncated")};
        }
        const std::string_view token =
            bytes.substr(pos, static_cast<std::size_t>(value));
        pos += static_cast<std::size_t>(value);
        out.push_back('"');
        out.append(token);
        out.push_back('"');
        if (c == kOpInsert && table_.size() < kDictMaxEntries) {
            index_.emplace(std::string(token),
                           static_cast<std::uint32_t>(table_.size()));
            table_.emplace_back(token);
        }
    }
    return out;
}

} // namespace wire
} // namespace server
} // namespace tracelens
