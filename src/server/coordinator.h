/**
 * @file
 * Coordinator side of the sharded analysis service (docs/SERVER.md):
 * consistent-hash shard placement over a set of worker daemons,
 * scatter of per-shard `*_partial` requests over protocol v2 client
 * sessions, and gather/merge through the partial-result layer
 * (src/core/partial.h).
 *
 * `tracelens serve --coordinator --cluster-workers host:port,...`
 * runs a Server whose analyze/impact/mine handlers delegate here. The
 * workers are plain `tracelens serve` daemons sharing a filesystem
 * view of the corpus; the coordinator enumerates the corpus's shard
 * files exactly as a single-node analyzer would (openSource's
 * directory order), asks each shard's owner worker for that shard's
 * partial, and folds the partials *in global shard order* with the
 * same merge functions the thread-level and incremental paths use —
 * which is why coordinator reports are byte-identical to single-node
 * reports over the same corpus.
 *
 * Failure semantics: a shard whose owner fails (connect, transport,
 * or error response) is retried once on its replica — the next
 * distinct worker clockwise on the hash ring. If the retry also
 * fails, the query *degrades* instead of failing: the response
 * carries "partial_results": true plus the missing shard list, and
 * the merge simply excludes those shards. Deadlines bound every
 * blocking step, so a dead worker can never hang a query past its
 * deadline. Mixed-version clusters fail fast: the coordinator
 * handshakes each worker's `health` and rejects the query with a
 * structured error when the advertised partial-encoding revision
 * differs from its own.
 */

#ifndef TRACELENS_SERVER_COORDINATOR_H
#define TRACELENS_SERVER_COORDINATOR_H

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/core/partial.h"
#include "src/server/client.h"
#include "src/server/protocol.h"
#include "src/trace/symbols.h"
#include "src/util/expected.h"
#include "src/util/json.h"

namespace tracelens
{
namespace server
{

// ----------------------------------------------------------- hash ring

/**
 * Consistent-hash ring over worker addresses. Each worker contributes
 * @c virtualNodes positions (hash of "addr#i"), which evens out the
 * shard distribution; a shard key maps to the first position at or
 * after its own hash (clockwise). The replica of a key is the next
 * *distinct* worker clockwise — the retry target when the owner
 * fails. Placement is a pure function of the worker list, so every
 * query (and every coordinator restart over the same topology) routes
 * shards identically, keeping worker-side session caches warm.
 */
class HashRing
{
  public:
    explicit HashRing(std::vector<std::string> workers,
                      unsigned virtualNodes = 64);

    const std::vector<std::string> &
    workers() const
    {
        return workers_;
    }

    /** Index (into workers()) of the worker owning @p key. */
    std::uint32_t primary(std::string_view key) const;

    /** Next distinct worker clockwise; nullopt with a single worker. */
    std::optional<std::uint32_t> replica(std::string_view key) const;

  private:
    std::vector<std::string> workers_;
    /** (position hash, worker index), sorted by hash. */
    std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;
};

// ---------------------------------------------------------- coordinator

/** Coordinator topology + scatter knobs (CLI: `tracelens serve`). */
struct CoordinatorConfig
{
    /** Worker addresses ("host:port"), as given on the CLI. */
    std::vector<std::string> workers;
    /** Virtual nodes per worker on the hash ring. */
    unsigned virtualNodes = 64;
    /** Per-shard request deadline; also bounds the retry call. */
    std::uint64_t shardDeadlineMs = 10000;
};

/** One shard the gather could not obtain (owner and replica failed). */
struct ShardFailure
{
    std::string shard;
    std::string worker; //!< Last worker tried.
    std::string reason;
};

/** Degradation bookkeeping for one gather. */
struct GatherReport
{
    std::size_t shards = 0;  //!< Shards the corpus enumerates to.
    std::size_t retried = 0; //!< Shards answered by their replica.
    std::vector<ShardFailure> missing;

    bool
    degraded() const
    {
        return !missing.empty();
    }
};

/** A gather failure that must abort the whole query. */
struct GatherError
{
    ErrorCode code = ErrorCode::Internal;
    std::string message;
};

/** Merged scenario gather (the analyze/mine coordinator state). */
struct ScenarioGather
{
    SymbolTable symbols; //!< Global frame table, shard-order interned.
    PartialClasses classes;
    PartialImpact slowImpact;
    PartialAwg awgFast;
    PartialAwg awgSlow;
    bool scenarioFound = false;
    GatherReport report;
};

/** Merged corpus-wide impact gather. */
struct ImpactGather
{
    PartialImpact all;
    /** Per-scenario accumulators in first-seen shard order; render
     *  order comes from the JSON object's key sort. */
    std::vector<std::pair<std::string, PartialImpact>> perScenario;
    GatherReport report;
};

class Coordinator
{
  public:
    explicit Coordinator(CoordinatorConfig config);

    const CoordinatorConfig &
    config() const
    {
        return config_;
    }
    const HashRing &
    ring() const
    {
        return ring_;
    }

    /**
     * The corpus's shard files in *exactly* the order a single-node
     * analyzer ingests them (openSource: directory -> sorted "*.tlc"
     * files; plain file -> itself). Shard order is the merge order,
     * so this must never diverge from src/trace/source.cpp.
     */
    static Expected<std::vector<std::string>>
    enumerateShards(const std::string &corpusPath);

    /**
     * Scatter one scenario-partial request per shard (@p method is
     * Method::AnalyzePartial or Method::MinePartial — same payload,
     * same worker handler) and merge the partials in shard order.
     * Returns an error only for query-level failures (bad corpus,
     * revision mismatch, deadline, scenario absent everywhere);
     * per-shard worker failures degrade into @c out.report instead.
     */
    std::optional<GatherError>
    gatherScenario(Method method, const std::string &corpusPath,
                   const std::string &scenario, double tfastMs,
                   double tslowMs,
                   const std::vector<std::string> &components,
                   const std::optional<
                       std::chrono::steady_clock::time_point> &deadline,
                   ScenarioGather &out);

    /** Scatter `impact_partial` and merge (same contract). */
    std::optional<GatherError>
    gatherImpact(const std::string &corpusPath,
                 const std::vector<std::string> &components,
                 const std::optional<
                     std::chrono::steady_clock::time_point> &deadline,
                 ImpactGather &out);

    /**
     * Probe every worker's `health` (short per-worker timeout) and
     * report the topology: address, reachability, protocol and
     * partial-encoding revisions, plus the liveness extras (uptime,
     * inflight, open sessions) the status table renders (the
     * `cluster_status` method).
     */
    JsonValue clusterStatus() const;

    /**
     * Pull every worker's metrics registry (`metrics` method) and
     * fold the snapshots into @p aggregate — bucket-exact for
     * histograms (Histogram::State). Returns one entry per worker:
     * {"node", "ok", ["error"]} describing the pull.
     */
    JsonValue clusterMetrics(MetricsRegistry &aggregate) const;

    /**
     * Pull every reachable worker's span buffer (`telemetry_pull`)
     * as NodeSpans ready for Telemetry::renderChromeTraceMerged().
     * Pids are NOT assigned here — the caller namespaces them after
     * prepending its own node. Unreachable workers are skipped with
     * a warning (a stitched trace is best-effort by nature).
     */
    std::vector<NodeSpans> pullWorkerSpans() const;

  private:
    class Scatter; // per-gather session bookkeeping (coordinator.cpp)

    /**
     * Worker-session pool. A gather that drains cleanly returns its
     * handshaken sessions here, so the next gather skips the TCP
     * connect, the v2 negotiation, and the health/revision handshake —
     * the dominant fixed cost of small gathers. A Session is
     * single-threaded, so concurrent gathers each check out their own;
     * a pooled socket that went stale is detected by the transport
     * failure and retried once on a fresh dial before the shard falls
     * back to its replica.
     */
    std::optional<Session> checkoutSession(std::uint32_t worker);
    void checkinSession(std::uint32_t worker, Session session);

    static constexpr std::size_t kMaxPooledSessionsPerWorker = 4;

    CoordinatorConfig config_;
    HashRing ring_;

    std::mutex poolMutex_;
    std::map<std::uint32_t, std::vector<Session>> pool_;
};

} // namespace server
} // namespace tracelens

#endif // TRACELENS_SERVER_COORDINATOR_H
