/**
 * @file
 * Typed client API for the analysis service — the counterpart of
 * src/server/server.h used by `tracelens query`, the protocol tests,
 * and the bench_scale load generator.
 *
 * One Session wraps one TCP connection and hides the transport: it
 * negotiates protocol v2 (binary frames, multiplexed streams, shared
 * symbol dictionary — src/server/wire.h) and falls back to v1 JSON
 * lines against older servers, so callers see the same typed
 * Request/Response structs (src/server/protocol.h) either way.
 *
 * Blocking calls:
 *
 *   auto session = Session::connect("127.0.0.1", port);
 *   AnalyzeRequest req;
 *   req.corpus = "corpus.tlc";
 *   req.scenario = "BrowserTabCreate";
 *   Expected<Response> r = session.value().analyze(req);
 *
 * Pipelining: send() issues a request without waiting and returns a
 * handle; wait() blocks for that specific response while buffering
 * any others that arrive first. Over v2 the requests genuinely
 * multiplex server-side (a cheap `stats` overtakes a cold `analyze`
 * because responses complete out of order on separate streams); over
 * v1 they pipeline in FIFO order on the line protocol.
 *
 * A Session is single-threaded by design — one connection, one
 * caller. Concurrent load generators open one Session per thread.
 *
 * RawConn is the low-level escape hatch for the robustness tests and
 * the smoke script: verbatim bytes in, lines or exact byte counts
 * out, so tests can speak *malformed* protocol (oversized lines,
 * truncated frames, bogus stream ids, half-closed sockets) — cases a
 * well-behaved Session would never produce.
 */

#ifndef TRACELENS_SERVER_CLIENT_H
#define TRACELENS_SERVER_CLIENT_H

#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "src/server/protocol.h"
#include "src/server/wire.h"
#include "src/util/expected.h"
#include "src/util/json.h"

namespace tracelens
{
namespace server
{

// ------------------------------------------------------------ RawConn

/** Low-level test/diagnostic connection: raw bytes and lines. */
class RawConn
{
  public:
    RawConn() = default;
    ~RawConn() { close(); }
    RawConn(RawConn &&other) noexcept { swap(other); }
    RawConn &
    operator=(RawConn &&other) noexcept
    {
        close();
        swap(other);
        return *this;
    }
    RawConn(const RawConn &) = delete;
    RawConn &operator=(const RawConn &) = delete;

    /**
     * Connect to @p host:@p port. @p timeout bounds every subsequent
     * blocking read (SO_RCVTIMEO), not the connect itself.
     */
    static Expected<RawConn>
    connect(const std::string &host, std::uint16_t port,
            std::chrono::milliseconds timeout =
                std::chrono::milliseconds(10000));

    bool connected() const { return fd_ >= 0; }
    const std::string &peer() const { return peer_; }

    /** Send raw bytes verbatim. */
    bool sendRaw(std::string_view bytes);

    /** Read one "\n"-terminated line (stripped); respects timeout. */
    Expected<std::string> readLine();

    /** Read exactly @p n bytes; respects timeout. */
    Expected<std::string> readExact(std::size_t n);

    /** Half-close: no more writes, reads still possible. */
    void shutdownWrite();

    void close();

    /** Total bytes written / read through this connection. */
    std::uint64_t bytesSent() const { return bytesSent_; }
    std::uint64_t bytesReceived() const { return bytesReceived_; }

  private:
    void
    swap(RawConn &other) noexcept
    {
        std::swap(fd_, other.fd_);
        std::swap(pending_, other.pending_);
        std::swap(peer_, other.peer_);
        std::swap(bytesSent_, other.bytesSent_);
        std::swap(bytesReceived_, other.bytesReceived_);
    }

    /** Pull more bytes from the socket into pending_. */
    Expected<bool> fill();

    int fd_ = -1;
    std::string pending_; //!< Bytes read past the last consume.
    std::string peer_;
    std::uint64_t bytesSent_ = 0;
    std::uint64_t bytesReceived_ = 0;
};

// ------------------------------------------------------------ Session

/** Which protocol revision connect() should end up speaking. */
enum class ProtocolPreference
{
    Auto, //!< Try v2, fall back to v1 against older servers.
    V1,   //!< Speak v1 without attempting the upgrade.
    V2,   //!< Require v2; fail if the server cannot negotiate it.
};

struct SessionOptions
{
    ProtocolPreference prefer = ProtocolPreference::Auto;
    /** Bounds every blocking read (SO_RCVTIMEO). */
    std::chrono::milliseconds ioTimeout{10000};
    /** v2: per-stream response window granted to the server. */
    std::uint32_t initialWindow = wire::kDefaultInitialWindow;
    /** v2: largest frame payload this client accepts. */
    std::uint32_t maxFramePayload = wire::kDefaultMaxFramePayload;
    /**
     * Advertise trace-context propagation in the v2 SETTINGS
     * exchange. Requests carry a span-context field only when *both*
     * sides advertised it (see wire::Settings::tracing), so turning
     * this off speaks byte-identical frames to a pre-tracing client.
     */
    bool tracing = true;
};

/** Per-request knobs. */
struct CallOptions
{
    /** 0 = server default. */
    std::uint64_t deadlineMs = 0;
    /** kPriority* (v2 scheduling class; ignored over v1). */
    std::uint8_t priority = kPriorityNormal;
    /**
     * Span context to propagate with the request (v2 only, and only
     * when tracing was negotiated — silently dropped otherwise).
     * When invalid (traceId == 0), sendV2 falls back to the calling
     * thread's Telemetry::currentContext(), so code running inside a
     * traced span propagates automatically.
     */
    SpanContext traceContext;
};

/** Transport-level counters (the wire-bytes bench reads these). */
struct WireStats
{
    std::uint64_t bytesSent = 0;
    std::uint64_t bytesReceived = 0;
    std::uint64_t framesSent = 0;     //!< v2 only.
    std::uint64_t framesReceived = 0; //!< v2 only.
};

class Session
{
  public:
    Session() = default;

    /** Connect and negotiate per @p options (see ProtocolPreference). */
    static Expected<Session> connect(const std::string &host,
                                     std::uint16_t port,
                                     SessionOptions options = {});

    bool connected() const { return conn_.connected(); }
    /** Negotiated revision: kProtocolVersionV1 or V2. */
    std::uint32_t protocolVersion() const { return version_; }
    /** True when both ends advertised trace-context propagation. */
    bool tracingNegotiated() const { return tracingNegotiated_; }
    WireStats wireStats() const;

    // ---- typed blocking calls

    Expected<Response> analyze(const AnalyzeRequest &request,
                               CallOptions options = {});
    Expected<Response> impact(const ImpactRequest &request,
                              CallOptions options = {});
    Expected<Response> mine(const MineRequest &request,
                            CallOptions options = {});
    Expected<Response> ingest(const IngestRequest &request,
                              CallOptions options = {});
    Expected<Response> sleep(const SleepRequest &request,
                             CallOptions options = {});
    Expected<Response> health();
    Expected<Response> stats();
    Expected<Response> shutdown();

    /**
     * Generic blocking round trip. Protocol-level errors
     * ("overloaded", ...) come back as Response with ok=false; the
     * Expected fails only on transport problems (connection lost,
     * read timeout, unparseable response).
     */
    Expected<Response> call(Method method, const JsonValue &params,
                            CallOptions options = {});

    // ---- pipelining

    /** Issue a request without waiting; returns a wait() handle. */
    Expected<std::uint64_t> send(Method method, const JsonValue &params,
                                 CallOptions options = {});

    /** Block for the response to @p handle, buffering any other
     *  responses that complete first. */
    Expected<Response> wait(std::uint64_t handle);

    void close();

  private:
    Expected<std::uint64_t> sendV1(Method method,
                                   const JsonValue &params,
                                   const CallOptions &options);
    Expected<std::uint64_t> sendV2(Method method,
                                   const JsonValue &params,
                                   const CallOptions &options);
    Expected<Response> waitV1(std::uint64_t handle);
    Expected<Response> waitV2(std::uint64_t handle);
    /** Read + dispatch one v2 frame (responses, settings, ping...). */
    Expected<bool> pumpFrameV2();

    RawConn conn_;
    std::uint32_t version_ = kProtocolVersionV1;
    SessionOptions options_;
    bool tracingNegotiated_ = false;
    std::uint64_t framesSent_ = 0;
    std::uint64_t framesReceived_ = 0;

    std::uint64_t nextId_ = 1;

    // v1 state: responses that arrived for ids we are not waiting on.
    std::map<std::uint64_t, Response> readyV1_;

    // v2 state
    wire::SymbolDict sendDict_; //!< client->server params
    wire::SymbolDict recvDict_; //!< server->client results
    wire::Settings serverSettings_;
    std::uint32_t nextStream_ = 1; //!< odd, strictly increasing
    struct StreamRx
    {
        std::uint64_t id = 0;
        std::string payload; //!< accumulated dict-encoded chunks
        std::uint64_t frames = 0;
    };
    std::map<std::uint32_t, StreamRx> openStreams_;
    std::map<std::uint64_t, std::uint32_t> idToStream_;
    std::map<std::uint64_t, Response> readyV2_;
};

} // namespace server
} // namespace tracelens

#endif // TRACELENS_SERVER_CLIENT_H
