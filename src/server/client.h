/**
 * @file
 * Blocking client for the analysis service — the counterpart of
 * src/server/server.h used by `tracelens query`, the protocol tests,
 * and the bench_scale load generator.
 *
 * One Client wraps one TCP connection. call() performs a full
 * request/response round trip; the lower-level sendRaw() / readLine()
 * and shutdownWrite() exist so the tests can speak *malformed*
 * protocol (oversized lines, half-closed sockets, disconnecting
 * mid-response) — robustness cases a well-behaved helper would hide.
 */

#ifndef TRACELENS_SERVER_CLIENT_H
#define TRACELENS_SERVER_CLIENT_H

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/server/protocol.h"
#include "src/util/expected.h"
#include "src/util/json.h"

namespace tracelens
{
namespace server
{

/** One response, success or error (transport failures use Expected). */
struct CallResult
{
    bool ok = false;
    std::optional<double> id;
    /** The "result" object when ok. */
    JsonValue result;
    /** The "error.code" / "error.message" fields when !ok. */
    std::string errorCode;
    std::string errorMessage;
};

class Client
{
  public:
    Client() = default;
    ~Client() { close(); }
    Client(Client &&other) noexcept { swap(other); }
    Client &
    operator=(Client &&other) noexcept
    {
        close();
        swap(other);
        return *this;
    }
    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /**
     * Connect to @p host:@p port. @p timeout bounds every subsequent
     * blocking read (SO_RCVTIMEO), not the connect itself.
     */
    static Expected<Client>
    connect(const std::string &host, std::uint16_t port,
            std::chrono::milliseconds timeout =
                std::chrono::milliseconds(10000));

    bool connected() const { return fd_ >= 0; }

    /**
     * One round trip: send {"id", "method", "params", "deadline_ms"}
     * and read the matching response line. Protocol-level errors
     * ("overloaded", ...) come back as CallResult with ok=false; the
     * Expected only fails on transport problems (connection lost,
     * read timeout, unparseable response).
     */
    Expected<CallResult> call(const std::string &method,
                              const JsonValue &params,
                              std::uint64_t deadlineMs = 0);

    /** Send raw bytes verbatim (tests: malformed / oversized input). */
    bool sendRaw(std::string_view bytes);

    /** Read one "\n"-terminated line (stripped); respects timeout. */
    Expected<std::string> readLine();

    /** Half-close: no more writes, reads still possible (tests). */
    void shutdownWrite();

    void close();

  private:
    void
    swap(Client &other) noexcept
    {
        std::swap(fd_, other.fd_);
        std::swap(pending_, other.pending_);
        std::swap(nextId_, other.nextId_);
        std::swap(peer_, other.peer_);
    }

    int fd_ = -1;
    std::string pending_; //!< Bytes read past the last line.
    double nextId_ = 1;
    std::string peer_;
};

} // namespace server
} // namespace tracelens

#endif // TRACELENS_SERVER_CLIENT_H
