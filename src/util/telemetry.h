/**
 * @file
 * Self-telemetry for the TraceLens pipeline: the analysis tool emits a
 * trace of its own execution.
 *
 * TraceLens reproduces a paper about comprehending performance from
 * execution traces, so the pipeline instruments itself with the same
 * discipline it applies to device drivers. Three facilities share this
 * module (the leveled TL_LOG sink lives in src/util/logging.h):
 *
 *  - Spans: RAII scopes (TL_SPAN / Span) recorded into per-thread
 *    buffers with wall time, thread CPU time, nesting depth, and
 *    optional key/value args. The whole recording is flushable as
 *    Chrome trace_event JSON (CLI: --trace-out FILE) and loads
 *    directly in Perfetto / chrome://tracing as a flame view of the
 *    ingest -> wait-graph -> impact -> AWG -> mining pipeline.
 *  - Metrics: a registry of named counters, gauges, and log-scale
 *    histograms (p50/p95/p99), dumpable as JSON (CLI: --metrics-out
 *    FILE). The artifact store's PipelineStats is a thin view over
 *    one of these registries (src/core/artifacts.h).
 *
 * Overhead contract: span recording is off by default; a disabled
 * Span costs one relaxed atomic load. Enabled recording appends to a
 * per-thread buffer behind a per-thread mutex that is uncontended
 * except during a flush, so cross-thread cache traffic stays nil on
 * the hot path. Spans are placed at shard/stage granularity, never
 * per event; bench_scale gates the measured end-to-end overhead at
 * < 3% (BENCH_telemetry.json).
 *
 * Naming conventions (docs/TELEMETRY.md): span names are
 * "<layer>.<operation>" ("stage.wait-graphs", "pool.run-shards"),
 * categories are the coarse layer ("ingest", "pipeline", "analysis",
 * "pool", "cli"); metric names are dot-paths ("pipeline.awg.hits",
 * "source.cache.misses", "pool.queue_depth").
 */

#ifndef TRACELENS_UTIL_TELEMETRY_H
#define TRACELENS_UTIL_TELEMETRY_H

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/util/logging.h"

namespace tracelens
{

// --------------------------------------------------------------- metrics

/** Monotonic event counter. All operations are thread-safe. */
class Counter
{
  public:
    void add(std::uint64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-write-wins instantaneous value. Thread-safe. */
class Gauge
{
  public:
    void set(double value)
    {
        value_.store(value, std::memory_order_relaxed);
    }

    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Log-scale histogram of non-negative integer samples.
 *
 * Values 0..7 get exact buckets; above that each power-of-two octave
 * splits into 8 geometric sub-buckets, so any recorded value is
 * represented with <= ~6% relative error — plenty for p50/p95/p99 on
 * latency- and depth-shaped distributions, at a fixed 496 buckets and
 * lock-free recording (one relaxed atomic increment per sample).
 */
class Histogram
{
  public:
    /** Sub-buckets per power-of-two octave (8 = 3 mantissa bits). */
    static constexpr std::uint32_t kSubBuckets = 8;
    /** Exact buckets 0..7, then 8 per octave for msb 3..63. */
    static constexpr std::size_t kBuckets = kSubBuckets * 62;

    /**
     * Transportable bucket state: the exact occupied buckets plus the
     * scalar accumulators. Because the bucket boundaries are fixed for
     * every Histogram, merging two states bucket-wise is *exact* — a
     * merged histogram answers every percentile query identically to
     * one that recorded the whole population directly. This is what
     * lets the coordinator aggregate worker latency histograms without
     * the quantile-averaging error naive aggregation incurs.
     */
    struct State
    {
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
        std::uint64_t max = 0;
        /** (bucket index, occupancy), occupied buckets only, index
         *  ascending. */
        std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;
    };

    void record(std::uint64_t value);

    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }
    std::uint64_t sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }
    std::uint64_t max() const
    {
        return max_.load(std::memory_order_relaxed);
    }

    /**
     * Approximate value at quantile @p q in [0, 1] (bucket midpoint);
     * 0 when the histogram is empty.
     */
    std::uint64_t percentile(double q) const;

    /** Fold @p other's samples into this histogram. */
    void mergeFrom(const Histogram &other);

    /** Snapshot the bucket state (see State). */
    State state() const;

    /** Fold a snapshot (e.g. one shipped from a worker) into this
     *  histogram; out-of-range bucket indices are ignored. */
    void mergeState(const State &other);

  private:
    static std::uint32_t bucketOf(std::uint64_t value);
    /** Representative (midpoint) value of bucket @p bucket. */
    static std::uint64_t bucketValue(std::uint32_t bucket);

    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> max_{0};
};

/**
 * A point-in-time copy of a registry's metrics, detached from the
 * live atomics — the unit that crosses process boundaries (the
 * `metrics` protocol method ships one as JSON) and the input to both
 * exposition renderers. Histograms carry full bucket state, so
 * merging snapshots from many workers into one registry is exact.
 */
struct MetricsSnapshot
{
    /** (name, value), name ascending. */
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, Histogram::State>> histograms;
};

/**
 * Render a snapshot in the Prometheus text exposition format
 * (version 0.0.4). Metric names are prefixed "tracelens_" and
 * sanitized (dots -> underscores); @p labels (e.g. {{"node",
 * "10.0.0.1:7070"}, {"role", "worker"}}) are attached to every
 * sample. Counters render as `counter`, gauges as `gauge`, and
 * histograms as `summary` (p50/p90/p99 quantiles plus _sum/_count,
 * the idiomatic shape for client-side quantiles).
 */
std::string renderPrometheus(
    const MetricsSnapshot &snapshot,
    const std::vector<std::pair<std::string, std::string>> &labels);

/**
 * Named metrics, created on first use and stable for the registry's
 * lifetime (returned references never invalidate). Lookup takes a
 * mutex; the returned handles are lock-free, so hot paths resolve a
 * metric once and hold the reference.
 *
 * Registries are instantiable so a component can keep private
 * counters (the ArtifactStore's per-analyzer PipelineStats) and still
 * fold them into the process-wide registry via mergeInto().
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** The metric named @p name, creating it on first use. Panics if
     *  the name already exists as a different metric kind. */
    Counter &counter(std::string_view name);
    Gauge &gauge(std::string_view name);
    Histogram &histogram(std::string_view name);

    /** The counter named @p name, or nullptr if never created. */
    const Counter *findCounter(std::string_view name) const;

    /**
     * Fold every metric into @p target by name: counters add, gauges
     * overwrite, histograms merge samples.
     */
    void mergeInto(MetricsRegistry &target) const;

    /**
     * JSON snapshot: {"counters": {...}, "gauges": {...},
     * "histograms": {name: {count, sum, max, p50, p95, p99}}},
     * keys sorted.
     */
    std::string renderJson() const;

    /** Detached copy of every metric, names ascending. */
    MetricsSnapshot snapshot() const;

    /**
     * Fold a snapshot into this registry by name: counters add,
     * gauges overwrite, histograms merge bucket state (exact — see
     * Histogram::State).
     */
    void merge(const MetricsSnapshot &snapshot);

    /** Drop every metric (tests). Outstanding references invalidate. */
    void reset();

    /** The process-wide registry (--metrics-out dumps this one). */
    static MetricsRegistry &global();

  private:
    struct Cell
    {
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    mutable std::mutex mutex_;
    std::map<std::string, Cell, std::less<>> cells_;
};

// ----------------------------------------------------------------- spans

/**
 * Propagated trace identity: which distributed trace the current work
 * belongs to and which span caused it. This is the compact context
 * the protocol-v2 REQUEST frame carries across the wire (trace id,
 * parent span id, sampling flag), so a query's spans on the client,
 * the coordinator, and every worker stitch into one causal tree.
 * A zero trace id means "no context".
 */
struct SpanContext
{
    std::uint64_t traceId = 0;
    std::uint64_t parentSpanId = 0;
    bool sampled = false;

    bool valid() const { return traceId != 0; }
};

/**
 * Installs @p context as the calling thread's current trace context
 * for the scope's lifetime (restoring the previous one on exit).
 * Spans opened while the scope is active record the context's trace
 * id, and a root-level span adopts the context's parent span id —
 * the receiving half of cross-process propagation.
 */
class TraceContextScope
{
  public:
    explicit TraceContextScope(const SpanContext &context);
    ~TraceContextScope();

    TraceContextScope(const TraceContextScope &) = delete;
    TraceContextScope &operator=(const TraceContextScope &) = delete;

  private:
    SpanContext saved_;
};

/**
 * RAII span: records one entry into the calling thread's telemetry
 * buffer when recording is enabled (Telemetry::setEnabled), and costs
 * a single relaxed atomic load when it is not. Name and category must
 * be string literals (the recording keeps the pointers).
 *
 * Every active span is assigned a process-unique 64-bit id and
 * records its parent (the innermost enclosing span on the thread, or
 * the thread's propagated remote parent at the root) plus the current
 * trace id — the edges the distributed stitcher walks.
 */
class Span
{
  public:
    Span(const char *name, const char *category);
    ~Span();

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** Whether this span is recording (telemetry enabled at entry). */
    bool active() const { return active_; }

    /** This span's id (0 on an inactive span). */
    std::uint64_t id() const { return spanId_; }

    /** Attach a key/value arg (shown in the trace viewer). The key
     *  must be a string literal. No-op on an inactive span. */
    void arg(const char *key, std::string value);
    void arg(const char *key, std::uint64_t value);

  private:
    const char *name_;
    const char *category_;
    std::uint64_t startUs_ = 0;
    std::uint64_t cpuStartNs_ = 0;
    std::uint64_t spanId_ = 0;
    std::uint64_t parentSpanId_ = 0;
    std::uint64_t traceId_ = 0;
    std::vector<std::pair<const char *, std::string>> args_;
    bool active_ = false;
};

/**
 * A 64-bit telemetry id rendered as 16 hex digits. Trace/span ids
 * cross JSON as strings in this form — a JSON number is a double and
 * cannot hold 64 bits losslessly.
 */
std::string hexId(std::uint64_t id);

/** Inverse of hexId(); returns 0 (the "no id" value) on malformed
 *  or oversized input. */
std::uint64_t parseHexId(std::string_view text);

/** One finished span, detached from the recording buffers — the unit
 *  `telemetry_pull` ships and the TLC1 self-trace writer consumes. */
struct SpanSnapshot
{
    std::string name;
    std::string category;
    std::uint32_t tid = 0;
    std::uint32_t depth = 0;
    std::uint64_t startUs = 0; //!< Relative to Telemetry::epochUnixUs.
    std::uint64_t durUs = 0;
    std::uint64_t cpuNs = 0;
    std::uint64_t traceId = 0;
    std::uint64_t spanId = 0;
    std::uint64_t parentSpanId = 0;
    std::vector<std::pair<std::string, std::string>> args;
};

/**
 * One process's span buffer in a multi-node merge: the spans, the
 * Chrome-trace pid namespace they render under, and the node's
 * telemetry epoch as wall-clock microseconds (used to rebase every
 * node onto one timeline). Distinct nodes MUST use distinct pids —
 * that is the fix for the tid-aliasing bug two processes' traces
 * used to hit when concatenated.
 */
struct NodeSpans
{
    std::string node;       //!< Display name ("coordinator @ host:port").
    std::uint32_t pid = 1;  //!< Chrome-trace pid namespace for the node.
    std::uint64_t epochUnixUs = 0; //!< 0 = leave timestamps as recorded.
    std::vector<SpanSnapshot> spans;
};

#define TL_TELEMETRY_CONCAT2(a, b) a##b
#define TL_TELEMETRY_CONCAT(a, b) TL_TELEMETRY_CONCAT2(a, b)

/** Scope-level span: TL_SPAN("stage.mining", "pipeline"); */
#define TL_SPAN(name, category) \
    ::tracelens::Span TL_TELEMETRY_CONCAT(tlSpan_, \
                                          __LINE__)(name, category)

/** Process-wide span recording control and the Chrome-trace sink. */
class Telemetry
{
  public:
    /** Whether spans record (off by default; --trace-out enables). */
    static bool enabled()
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    static void setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    /** Drop every recorded span (buffers stay registered). */
    static void reset();

    /** Spans recorded so far, across all threads. */
    static std::size_t spanCount();

    /**
     * The recording as Chrome trace_event JSON: one "X" (complete)
     * event per span with ts/dur in microseconds, thread CPU time and
     * nesting depth as args, sorted by (tid, ts) so per-thread
     * timestamps are monotonic. Loads in Perfetto / chrome://tracing.
     */
    static std::string renderChromeTrace();

    /**
     * Merge several nodes' span buffers into one Chrome trace. Every
     * node renders under its own pid with `process_name` /
     * `thread_name` metadata events (so two nodes' thread ids can
     * never alias), timestamps are rebased onto one wall-clock
     * timeline via each node's epoch, and a flow arrow is emitted for
     * every cross-node parent edge — a distributed gather renders as
     * one causal tree.
     */
    static std::string
    renderChromeTraceMerged(const std::vector<NodeSpans> &nodes);

    /** Detached copies of every recorded span, across all threads. */
    static std::vector<SpanSnapshot> snapshotSpans();

    /** Write renderChromeTrace() to @p path; false on I/O failure. */
    static bool writeChromeTrace(const std::string &path);

    /** Write the global metrics registry's JSON to @p path. */
    static bool writeMetricsJson(const std::string &path);

    /**
     * The wall-clock time (unix microseconds) of the process's
     * telemetry epoch — span startUs values are relative to this.
     */
    static std::uint64_t epochUnixUs();

    /** A fresh process-unique-ish 64-bit trace id (never 0). */
    static std::uint64_t newTraceId();

    /**
     * The context to propagate to a downstream call made from the
     * calling thread: the current trace id and sampling flag (from
     * the innermost TraceContextScope), with the innermost active
     * span on this thread as the parent.
     */
    static SpanContext currentContext();

  private:
    static std::atomic<bool> enabled_;
};

} // namespace tracelens

#endif // TRACELENS_UTIL_TELEMETRY_H
