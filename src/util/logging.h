/**
 * @file
 * Status-message and error helpers in the gem5 idiom.
 *
 * panic()  — an internal invariant was violated; aborts (library bug).
 * fatal()  — the user supplied an unusable configuration; exits cleanly.
 * warn()   — something is off but execution can continue.
 * inform() — plain status output.
 */

#ifndef TRACELENS_UTIL_LOGGING_H
#define TRACELENS_UTIL_LOGGING_H

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace tracelens
{

namespace detail
{

/** Concatenate a mixed argument pack into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/**
 * Abort with a message; used for conditions that indicate a TraceLens bug
 * regardless of user input.
 */
#define TL_PANIC(...) \
    ::tracelens::detail::panicImpl(__FILE__, __LINE__, \
                                   ::tracelens::detail::concat(__VA_ARGS__))

/**
 * Exit with an error message; used for conditions caused by bad user
 * configuration or inputs.
 */
#define TL_FATAL(...) \
    ::tracelens::detail::fatalImpl(__FILE__, __LINE__, \
                                   ::tracelens::detail::concat(__VA_ARGS__))

/** Panic when a library invariant fails. */
#define TL_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            TL_PANIC("assertion failed: ", #cond, " ", \
                     ::tracelens::detail::concat(__VA_ARGS__)); \
        } \
    } while (0)

/** Emit a non-fatal warning. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Emit a status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

} // namespace tracelens

#endif // TRACELENS_UTIL_LOGGING_H
