/**
 * @file
 * Status-message and error helpers in the gem5 idiom, plus the leveled
 * logging sink of the telemetry layer (src/util/telemetry.h).
 *
 * panic()  — an internal invariant was violated; aborts (library bug).
 * fatal()  — the user supplied an unusable configuration; exits cleanly.
 * TL_LOG(level, ...) — leveled diagnostics; suppressed below the
 *                      process log level (CLI: --log-level).
 * warn()   — shorthand for TL_LOG(Warn, ...).
 * inform() — shorthand for TL_LOG(Info, ...).
 *
 * Every diagnostic in src/ and tools/ goes through this sink — never
 * a bare std::cerr (enforced by scripts/check_logging.sh, run as the
 * telemetry.no_bare_cerr ctest). panic/fatal always print regardless
 * of the log level: they terminate the process.
 */

#ifndef TRACELENS_UTIL_LOGGING_H
#define TRACELENS_UTIL_LOGGING_H

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

namespace tracelens
{

/** Severity of one diagnostic; Off suppresses everything. */
enum class LogLevel : int
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
    Off = 4,
};

/** Current process-wide log threshold (default Info). Thread-safe. */
LogLevel logLevel();

/** Set the process-wide log threshold. Thread-safe. */
void setLogLevel(LogLevel level);

/** Parse "debug"/"info"/"warn"/"error"/"off"; false on anything else. */
bool parseLogLevel(std::string_view text, LogLevel &out);

/** Lower-case level name ("debug", ...). */
std::string_view logLevelName(LogLevel level);

/** Whether a message at @p level passes the current threshold. */
inline bool
shouldLog(LogLevel level)
{
    return static_cast<int>(level) >= static_cast<int>(logLevel());
}

namespace detail
{

/** Concatenate a mixed argument pack into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
/** The one sink: "<level>: <msg>" to stdout (Info) or stderr. */
void logImpl(LogLevel level, const std::string &msg);

} // namespace detail

/**
 * Emit a leveled diagnostic: TL_LOG(Warn, "shard ", i, " skipped").
 * Arguments are not evaluated when the level is suppressed.
 */
#define TL_LOG(level, ...) \
    do { \
        if (::tracelens::shouldLog(::tracelens::LogLevel::level)) { \
            ::tracelens::detail::logImpl( \
                ::tracelens::LogLevel::level, \
                ::tracelens::detail::concat(__VA_ARGS__)); \
        } \
    } while (0)

/**
 * Abort with a message; used for conditions that indicate a TraceLens bug
 * regardless of user input.
 */
#define TL_PANIC(...) \
    ::tracelens::detail::panicImpl(__FILE__, __LINE__, \
                                   ::tracelens::detail::concat(__VA_ARGS__))

/**
 * Exit with an error message; used for conditions caused by bad user
 * configuration or inputs.
 */
#define TL_FATAL(...) \
    ::tracelens::detail::fatalImpl(__FILE__, __LINE__, \
                                   ::tracelens::detail::concat(__VA_ARGS__))

/** Panic when a library invariant fails. */
#define TL_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            TL_PANIC("assertion failed: ", #cond, " ", \
                     ::tracelens::detail::concat(__VA_ARGS__)); \
        } \
    } while (0)

/** Emit a non-fatal warning (TL_LOG(Warn, ...)). */
template <typename... Args>
void
warn(Args &&...args)
{
    if (shouldLog(LogLevel::Warn))
        detail::logImpl(LogLevel::Warn,
                        detail::concat(std::forward<Args>(args)...));
}

/** Emit a status message (TL_LOG(Info, ...)). */
template <typename... Args>
void
inform(Args &&...args)
{
    if (shouldLog(LogLevel::Info))
        detail::logImpl(LogLevel::Info,
                        detail::concat(std::forward<Args>(args)...));
}

} // namespace tracelens

#endif // TRACELENS_UTIL_LOGGING_H
