/**
 * @file
 * Little-endian byte-codec helpers shared by the binary artifact
 * formats: appenders over std::string payloads and a bounds-checked
 * reader. Extracted from src/core/artifacts.cpp so the partial-result
 * wire encoding (src/core/partial.h) and the artifact cache speak the
 * same primitives — one place to keep the hostile-input discipline
 * (every read bounds-checked, counts validated against the remaining
 * buffer before any reserve).
 */

#ifndef TRACELENS_UTIL_BYTECODEC_H
#define TRACELENS_UTIL_BYTECODEC_H

#include <cstdint>
#include <string>

namespace tracelens
{

inline void
putU8(std::string &out, std::uint8_t v)
{
    out.push_back(static_cast<char>(v));
}

inline void
putU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

inline void
putU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

inline void
putI64(std::string &out, std::int64_t v)
{
    putU64(out, static_cast<std::uint64_t>(v));
}

/** Bounds-checked little-endian reader over an encoded payload. */
class ByteReader
{
  public:
    explicit ByteReader(const std::string &bytes) : bytes_(bytes) {}

    bool failed() const { return failed_; }
    bool atEnd() const { return pos_ == bytes_.size(); }

    std::uint8_t
    u8()
    {
        if (!need(1))
            return 0;
        return static_cast<std::uint8_t>(bytes_[pos_++]);
    }

    std::uint32_t
    u32()
    {
        if (!need(4))
            return 0;
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(bytes_[pos_ + i]))
                 << (8 * i);
        pos_ += 4;
        return v;
    }

    std::uint64_t
    u64()
    {
        if (!need(8))
            return 0;
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(bytes_[pos_ + i]))
                 << (8 * i);
        pos_ += 8;
        return v;
    }

    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

    /** Read @p n raw bytes into @p out; false (and failed) if short. */
    bool
    bytes(std::string &out, std::size_t n)
    {
        if (!need(n))
            return false;
        out.assign(bytes_, pos_, n);
        pos_ += n;
        return true;
    }

    /**
     * Validate a count of records of at least @p recordBytes each
     * against the remaining buffer, so a hostile count cannot drive a
     * multi-gigabyte reserve before the per-record reads would fail.
     */
    bool
    countFits(std::uint64_t count, std::size_t recordBytes)
    {
        const std::uint64_t remaining = bytes_.size() - pos_;
        if (count > remaining / recordBytes) {
            failed_ = true;
            return false;
        }
        return true;
    }

  private:
    bool
    need(std::size_t n)
    {
        if (failed_ || bytes_.size() - pos_ < n) {
            failed_ = true;
            return false;
        }
        return true;
    }

    const std::string &bytes_;
    std::size_t pos_ = 0;
    bool failed_ = false;
};

} // namespace tracelens

#endif // TRACELENS_UTIL_BYTECODEC_H
