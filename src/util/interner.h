/**
 * @file
 * String interning.
 *
 * Trace streams contain millions of events whose callstack frames repeat
 * heavily; analyses compare frames by identity constantly. The interner
 * maps each distinct string to a dense 32-bit id so frames and stacks can
 * be compared, hashed, and stored cheaply.
 */

#ifndef TRACELENS_UTIL_INTERNER_H
#define TRACELENS_UTIL_INTERNER_H

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace tracelens
{

/**
 * Maps strings to dense uint32 ids and back. Ids are assigned in first-
 * seen order starting from 0, which keeps serialized traces deterministic.
 */
class StringInterner
{
  public:
    StringInterner() = default;

    // index_ keys are string_views into this instance's strings_
    // deque. A memberwise copy would leave the new map's keys viewing
    // the *source's* storage — dangling once the source dies — so the
    // copy rebuilds the index over its own strings. Moves transfer
    // both containers wholesale (deque elements are address-stable)
    // and are noexcept so vector reallocation moves instead of
    // falling back to the copy.
    StringInterner(const StringInterner &other);
    StringInterner &operator=(const StringInterner &other);
    StringInterner(StringInterner &&) noexcept = default;
    StringInterner &operator=(StringInterner &&) noexcept = default;

    /** Intern @p s, returning its id (existing or newly assigned). */
    std::uint32_t intern(std::string_view s);

    /** Look up an id previously returned by intern(). */
    const std::string &lookup(std::uint32_t id) const;

    /**
     * Return the id for @p s if it is already interned, or UINT32_MAX.
     * Never allocates a new id.
     */
    std::uint32_t find(std::string_view s) const;

    /** Number of distinct interned strings. */
    std::size_t size() const { return strings_.size(); }

  private:
    std::deque<std::string> strings_;
    std::unordered_map<std::string_view, std::uint32_t> index_;
};

} // namespace tracelens

#endif // TRACELENS_UTIL_INTERNER_H
