/**
 * @file
 * Small statistics helpers: running accumulator, fixed-bucket histogram,
 * and exact percentile over retained samples.
 */

#ifndef TRACELENS_UTIL_STATS_H
#define TRACELENS_UTIL_STATS_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace tracelens
{

/**
 * Streaming accumulator tracking count, sum, min, max, mean, and
 * variance (Welford's algorithm).
 */
class Accumulator
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const Accumulator &other);

    std::size_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const;
    double max() const;
    double mean() const;

    /** Population variance; 0 for fewer than two samples. */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

  private:
    std::size_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

/**
 * Sample set with exact quantiles. Retains all samples; intended for
 * analysis-sized data (instance durations, pattern costs), not raw events.
 */
class SampleSet
{
  public:
    void add(double x);
    std::size_t count() const { return samples_.size(); }
    double sum() const;
    double mean() const;

    /** Exact quantile for q in [0, 1] by nearest-rank; 0 when empty. */
    double quantile(double q) const;

  private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/**
 * Histogram over log-spaced duration buckets, for textual distribution
 * summaries of event costs.
 */
class LogHistogram
{
  public:
    /**
     * Bucket i covers [base * 2^i, base * 2^(i+1)); values below base
     * land in bucket 0.
     *
     * @param base Lower edge of the first bucket (must be > 0).
     * @param num_buckets Number of buckets; overflow clamps to the last.
     */
    LogHistogram(double base, std::size_t num_buckets);

    void add(double x);
    std::size_t bucketCount() const { return counts_.size(); }
    std::uint64_t bucketValue(std::size_t i) const;
    std::uint64_t total() const { return total_; }

    /** Render as one line per non-empty bucket. */
    std::string render() const;

  private:
    double base_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

} // namespace tracelens

#endif // TRACELENS_UTIL_STATS_H
