/**
 * @file
 * SplitMix64 / xoshiro-style deterministic RNG implementation.
 */

#include "src/util/rng.h"

#include <cmath>

#include "src/util/logging.h"

namespace tracelens
{

namespace
{

std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitMix64(sm);
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    TL_ASSERT(lo <= hi, "bad uniform range");
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    TL_ASSERT(lo <= hi, "bad uniformInt range");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>((*this)());
    // Rejection-free modulo is fine here: span << 2^64 in practice and the
    // simulator does not need cryptographic uniformity.
    return lo + static_cast<std::int64_t>((*this)() % span);
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::exponential(double mean)
{
    TL_ASSERT(mean > 0.0, "exponential mean must be positive");
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

double
Rng::gaussian()
{
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * M_PI * u2);
}

double
Rng::logNormal(double median, double sigma)
{
    TL_ASSERT(median > 0.0 && sigma >= 0.0, "bad logNormal parameters");
    return median * std::exp(sigma * gaussian());
}

double
Rng::boundedPareto(double alpha, double lo, double hi)
{
    TL_ASSERT(alpha > 0.0 && lo > 0.0 && hi > lo, "bad boundedPareto");
    const double u = uniform();
    const double la = std::pow(lo, alpha);
    const double ha = std::pow(hi, alpha);
    return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

std::size_t
Rng::pickWeighted(const std::vector<double> &weights)
{
    TL_ASSERT(!weights.empty(), "pickWeighted needs weights");
    double total = 0.0;
    for (double w : weights) {
        TL_ASSERT(w >= 0.0, "negative weight");
        total += w;
    }
    TL_ASSERT(total > 0.0, "weights sum to zero");
    double x = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        x -= weights[i];
        if (x < 0.0)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::fork()
{
    return Rng((*this)());
}

} // namespace tracelens
