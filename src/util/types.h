/**
 * @file
 * Fundamental scalar types shared across TraceLens.
 *
 * All simulation and trace timestamps are expressed in nanoseconds of
 * virtual time as 64-bit signed integers. Durations use the same unit.
 * Identifier types are strong-ish aliases (plain integers, but with
 * distinct names) so signatures document intent.
 */

#ifndef TRACELENS_UTIL_TYPES_H
#define TRACELENS_UTIL_TYPES_H

#include <cstdint>
#include <limits>

namespace tracelens
{

/** Virtual time in nanoseconds. */
using TimeNs = std::int64_t;

/** A duration in nanoseconds. */
using DurationNs = std::int64_t;

/** Thread identifier within a trace stream. */
using ThreadId = std::uint32_t;

/** Process identifier within a trace stream. */
using ProcessId = std::uint32_t;

/** Interned callstack-frame (function signature) identifier. */
using FrameId = std::uint32_t;

/** Interned callstack identifier. */
using CallstackId = std::uint32_t;

/** Sentinel for "no thread". */
inline constexpr ThreadId kNoThread = std::numeric_limits<ThreadId>::max();

/** Sentinel for "no frame". */
inline constexpr FrameId kNoFrame = std::numeric_limits<FrameId>::max();

/** Sentinel for "no callstack". */
inline constexpr CallstackId kNoCallstack =
    std::numeric_limits<CallstackId>::max();

/** Sentinel for "unknown time". */
inline constexpr TimeNs kNoTime = std::numeric_limits<TimeNs>::min();

/** One microsecond in nanoseconds. */
inline constexpr DurationNs kMicrosecond = 1000;

/** One millisecond in nanoseconds. */
inline constexpr DurationNs kMillisecond = 1000 * kMicrosecond;

/** One second in nanoseconds. */
inline constexpr DurationNs kSecond = 1000 * kMillisecond;

/** Convert nanoseconds to fractional milliseconds. */
constexpr double
toMs(DurationNs ns)
{
    return static_cast<double>(ns) / static_cast<double>(kMillisecond);
}

/** Convert fractional milliseconds to nanoseconds. */
constexpr DurationNs
fromMs(double ms)
{
    return static_cast<DurationNs>(ms * static_cast<double>(kMillisecond));
}

} // namespace tracelens

#endif // TRACELENS_UTIL_TYPES_H
