/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * The simulator must be exactly reproducible from a seed, so we avoid
 * std::default_random_engine (implementation-defined) and implement
 * xoshiro256** seeded through SplitMix64, plus the handful of
 * distributions the workload generator needs. Distribution sampling is
 * implemented here (not via <random> distributions) because libstdc++'s
 * distribution algorithms are also not pinned by the standard.
 */

#ifndef TRACELENS_UTIL_RNG_H
#define TRACELENS_UTIL_RNG_H

#include <cstdint>
#include <vector>

namespace tracelens
{

/**
 * xoshiro256** PRNG with SplitMix64 seeding.
 *
 * Satisfies UniformRandomBitGenerator so it can interoperate with
 * standard algorithms when exact reproducibility does not matter.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed; any value (including 0) is valid. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    /** Next raw 64-bit value. */
    result_type operator()();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive; requires lo <= hi. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p);

    /** Exponential with the given mean (mean > 0). */
    double exponential(double mean);

    /**
     * Log-normal parameterized by the median and a dispersion factor
     * sigma (the log-space standard deviation). Heavy-tailed service
     * times in the simulator use this shape.
     */
    double logNormal(double median, double sigma);

    /** Standard normal via Box-Muller (deterministic, no cached spare). */
    double gaussian();

    /** Bounded Pareto with shape alpha, support [lo, hi). */
    double boundedPareto(double alpha, double lo, double hi);

    /**
     * Pick an index in [0, weights.size()) with probability proportional
     * to weights[i]. Weights must be non-negative with a positive sum.
     */
    std::size_t pickWeighted(const std::vector<double> &weights);

    /** Derive an independent child generator (stable given call order). */
    Rng fork();

  private:
    std::uint64_t s_[4];
};

} // namespace tracelens

#endif // TRACELENS_UTIL_RNG_H
