/**
 * @file
 * Glob-style wildcard matching for component filters.
 *
 * The impact and causality analyses select components by name patterns
 * such as "*.sys" (all device drivers) or "fv.sys" (one driver). Only
 * '*' (any run, possibly empty) and '?' (any single character) are
 * supported; matching is case-insensitive, mirroring Windows module
 * naming conventions.
 */

#ifndef TRACELENS_UTIL_WILDCARD_H
#define TRACELENS_UTIL_WILDCARD_H

#include <string>
#include <string_view>
#include <vector>

namespace tracelens
{

/** True iff @p text matches glob @p pattern (case-insensitive). */
bool wildcardMatch(std::string_view pattern, std::string_view text);

/**
 * A compiled set of wildcard patterns, matching if any member matches.
 */
class NameFilter
{
  public:
    NameFilter() = default;

    /** Construct from a list of glob patterns. */
    explicit NameFilter(std::vector<std::string> patterns);

    /** Add another pattern. */
    void add(std::string pattern);

    /** True iff any pattern matches @p name. */
    bool matches(std::string_view name) const;

    bool empty() const { return patterns_.empty(); }
    const std::vector<std::string> &patterns() const { return patterns_; }

  private:
    std::vector<std::string> patterns_;
};

} // namespace tracelens

#endif // TRACELENS_UTIL_WILDCARD_H
