/**
 * @file
 * String interner implementation.
 */

#include "src/util/interner.h"

#include <limits>

#include "src/util/logging.h"

namespace tracelens
{

StringInterner::StringInterner(const StringInterner &other)
    : strings_(other.strings_)
{
    index_.reserve(strings_.size());
    std::uint32_t id = 0;
    for (const std::string &s : strings_)
        index_.emplace(std::string_view(s), id++);
}

StringInterner &
StringInterner::operator=(const StringInterner &other)
{
    if (this != &other) {
        StringInterner copy(other);
        *this = std::move(copy);
    }
    return *this;
}

std::uint32_t
StringInterner::intern(std::string_view s)
{
    auto it = index_.find(s);
    if (it != index_.end())
        return it->second;

    TL_ASSERT(strings_.size() < std::numeric_limits<std::uint32_t>::max(),
              "interner exhausted");
    const auto id = static_cast<std::uint32_t>(strings_.size());
    // Deque elements never move, so a view into the stored string stays
    // valid for the interner's lifetime (including SSO buffers).
    strings_.emplace_back(s);
    index_.emplace(std::string_view(strings_.back()), id);
    return id;
}

const std::string &
StringInterner::lookup(std::uint32_t id) const
{
    TL_ASSERT(id < strings_.size(), "bad interner id ", id);
    return strings_[id];
}

std::uint32_t
StringInterner::find(std::string_view s) const
{
    auto it = index_.find(s);
    if (it == index_.end())
        return std::numeric_limits<std::uint32_t>::max();
    return it->second;
}

} // namespace tracelens
