/**
 * @file
 * panic/fatal/warn/inform implementations.
 */

#include "src/util/logging.h"

#include <cstdio>
#include <exception>

namespace tracelens
{
namespace detail
{

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    std::abort();
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    std::cout << "info: " << msg << std::endl;
}

} // namespace detail
} // namespace tracelens
