/**
 * @file
 * panic/fatal and the leveled logging sink.
 */

#include "src/util/logging.h"

#include <atomic>
#include <cstdio>
#include <exception>

namespace tracelens
{

namespace
{

std::atomic<int> g_logLevel{static_cast<int>(LogLevel::Info)};

} // namespace

LogLevel
logLevel()
{
    return static_cast<LogLevel>(
        g_logLevel.load(std::memory_order_relaxed));
}

void
setLogLevel(LogLevel level)
{
    g_logLevel.store(static_cast<int>(level), std::memory_order_relaxed);
}

std::string_view
logLevelName(LogLevel level)
{
    switch (level) {
    case LogLevel::Debug:
        return "debug";
    case LogLevel::Info:
        return "info";
    case LogLevel::Warn:
        return "warn";
    case LogLevel::Error:
        return "error";
    case LogLevel::Off:
        return "off";
    }
    return "unknown";
}

bool
parseLogLevel(std::string_view text, LogLevel &out)
{
    for (LogLevel level : {LogLevel::Debug, LogLevel::Info,
                           LogLevel::Warn, LogLevel::Error,
                           LogLevel::Off}) {
        if (text == logLevelName(level)) {
            out = level;
            return true;
        }
    }
    return false;
}

namespace detail
{

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    std::abort();
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
logImpl(LogLevel level, const std::string &msg)
{
    // Info keeps its historical home on stdout ("info: ..."); every
    // other level is a diagnostic and goes to stderr.
    std::ostream &out =
        level == LogLevel::Info ? std::cout : std::cerr;
    out << logLevelName(level) << ": " << msg << std::endl;
}

} // namespace detail
} // namespace tracelens
