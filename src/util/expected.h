/**
 * @file
 * Expected<T>: the result type of the fallible load/validate path.
 *
 * Loading real-world trace files must not be fatal — at fleet scale a
 * corrupt shard is a statistic, not an emergency stop. Every parser in
 * the ingestion layer therefore returns Expected<T>: either the value,
 * or a SourceError pinpointing the file, byte offset, and reason. The
 * legacy fatal entry points (readCorpusFile and friends) keep their
 * contract by rendering the error into TL_FATAL at the outermost
 * layer only.
 */

#ifndef TRACELENS_UTIL_EXPECTED_H
#define TRACELENS_UTIL_EXPECTED_H

#include <cstdint>
#include <string>
#include <utility>
#include <variant>

#include "src/util/logging.h"

namespace tracelens
{

/** Where and why a trace file could not be ingested. */
struct SourceError
{
    /** Path of the offending file ("<memory>" for in-memory buffers). */
    std::string file;
    /** Byte offset at which decoding failed. */
    std::uint64_t offset = 0;
    /** Human-readable cause. */
    std::string reason;

    /** Uniform one-line rendering: "file @ byte N: reason". */
    std::string
    render() const
    {
        return file + " @ byte " + std::to_string(offset) + ": " +
               reason;
    }
};

/**
 * A value or the SourceError explaining its absence. Deliberately
 * minimal (the std::expected subset the ingestion layer needs);
 * accessing the wrong alternative is a panic, not UB.
 */
template <typename T> class Expected
{
  public:
    Expected(T value) : state_(std::move(value)) {}
    Expected(SourceError error) : state_(std::move(error)) {}

    bool ok() const { return std::holds_alternative<T>(state_); }
    explicit operator bool() const { return ok(); }

    T &
    value()
    {
        TL_ASSERT(ok(), "Expected::value() on error: ",
                  std::get<SourceError>(state_).render());
        return std::get<T>(state_);
    }

    const T &
    value() const
    {
        TL_ASSERT(ok(), "Expected::value() on error: ",
                  std::get<SourceError>(state_).render());
        return std::get<T>(state_);
    }

    const SourceError &
    error() const
    {
        TL_ASSERT(!ok(), "Expected::error() on value");
        return std::get<SourceError>(state_);
    }

    /** Move the value out, or die with the rendered error (legacy
     *  fatal-on-bad-input entry points use this). */
    T
    valueOrFatal() &&
    {
        if (!ok())
            TL_FATAL(std::get<SourceError>(state_).render());
        return std::move(std::get<T>(state_));
    }

  private:
    std::variant<T, SourceError> state_;
};

} // namespace tracelens

#endif // TRACELENS_UTIL_EXPECTED_H
