/**
 * @file
 * Content hashing for artifact keys and hash-table functors.
 *
 * Two primitives live here:
 *
 *  - splitmix64(): the finalizer of the SplitMix64 generator, used as a
 *    cheap full-avalanche integer mixer. Unlike ad-hoc shift-and-xor
 *    folds it mixes every input bit into every output bit, and it is
 *    written entirely in std::uint64_t so it behaves identically on
 *    32-bit size_t targets (no undefined shifts).
 *
 *  - Digest: a streaming 128-bit content hash (two independently
 *    seeded FNV-1a lanes plus splitmix absorption for integers). It is
 *    the key type of the artifact-cached analysis pipeline
 *    (src/core/artifacts.h): shard byte digests, config fingerprints,
 *    and stage keys are all Digests. Not cryptographic — collision
 *    resistance is "good enough for cache keys", nothing more.
 *
 * Digests are deterministic across runs, processes, and platforms
 * (fixed seeds, fixed byte order of absorbed integers), which is what
 * makes the on-disk artifact cache reusable between analyses.
 */

#ifndef TRACELENS_UTIL_HASH_H
#define TRACELENS_UTIL_HASH_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace tracelens
{

/** SplitMix64 finalizer: a full-avalanche 64-bit mixer. */
constexpr std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * Streaming 128-bit content digest. Absorb bytes, integers, strings,
 * or other digests in any sequence; equal absorption sequences yield
 * equal digests. Chunk boundaries do not matter for byte absorption
 * (mixBytes(a) then mixBytes(b) == mixBytes(a+b)).
 */
class Digest
{
  public:
    constexpr Digest() = default;

    /** Absorb raw bytes (streaming FNV-1a on both lanes). */
    Digest &
    mixBytes(const void *data, std::size_t size)
    {
        const auto *bytes = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < size; ++i) {
            lo_ = (lo_ ^ bytes[i]) * kFnvPrime;
            hi_ = (hi_ ^ bytes[i]) * kFnvPrime;
        }
        return *this;
    }

    /** Absorb one integer (fixed little-endian-independent mixing). */
    constexpr Digest &
    mix(std::uint64_t value)
    {
        lo_ = splitmix64(lo_ ^ value);
        hi_ = splitmix64(hi_ + (value ^ 0x9e3779b97f4a7c15ULL));
        return *this;
    }

    /** Absorb a string's bytes plus its length. */
    Digest &
    mix(std::string_view text)
    {
        mixBytes(text.data(), text.size());
        return mix(static_cast<std::uint64_t>(text.size()));
    }

    /** Absorb another digest. */
    constexpr Digest &
    mix(const Digest &other)
    {
        return mix(other.hi_).mix(other.lo_);
    }

    constexpr std::uint64_t hi() const { return hi_; }
    constexpr std::uint64_t lo() const { return lo_; }

    /** 32 lowercase hex digits — stable artifact file names. */
    std::string
    hex() const
    {
        static const char digits[] = "0123456789abcdef";
        std::string out(32, '0');
        for (int i = 0; i < 16; ++i) {
            out[15 - i] = digits[(hi_ >> (4 * i)) & 0xF];
            out[31 - i] = digits[(lo_ >> (4 * i)) & 0xF];
        }
        return out;
    }

    friend constexpr bool
    operator==(const Digest &a, const Digest &b)
    {
        return a.hi_ == b.hi_ && a.lo_ == b.lo_;
    }

  private:
    static constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

    // Two distinct FNV offset bases so the lanes decorrelate.
    std::uint64_t hi_ = 0xcbf29ce484222325ULL;
    std::uint64_t lo_ = 0x84222325cbf29ce4ULL;
};

/** Hash functor for Digest keys in unordered containers. */
struct DigestHash
{
    std::size_t
    operator()(const Digest &d) const
    {
        return static_cast<std::size_t>(splitmix64(d.hi() ^ d.lo()));
    }
};

} // namespace tracelens

#endif // TRACELENS_UTIL_HASH_H
