/**
 * @file
 * A small JSON document model for the analysis-service protocol.
 *
 * The `tracelens serve` daemon speaks newline-delimited JSON over TCP
 * (docs/SERVER.md), which makes JSON text an *untrusted input*: every
 * byte of a request arrived from a socket. JsonValue::parse is
 * therefore written with the same discipline as the TLC1 decoders —
 * bounds-checked, depth-limited, and returning Expected<T> with the
 * byte offset of the first violation instead of throwing or trusting
 * the buffer.
 *
 * The model is deliberately tiny: null, bool, double, string, array,
 * object (sorted map, so render() is deterministic — equal documents
 * render to equal bytes, which the server's response cache relies
 * on). Numbers are IEEE doubles; integral values up to 2^53 render
 * without an exponent or trailing ".0", so ids and counters
 * round-trip textually.
 */

#ifndef TRACELENS_UTIL_JSON_H
#define TRACELENS_UTIL_JSON_H

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <type_traits>
#include <variant>
#include <vector>

#include "src/util/expected.h"

namespace tracelens
{

/** One JSON document node. */
class JsonValue
{
  public:
    using Array = std::vector<JsonValue>;
    /** Sorted keys: deterministic render order. */
    using Object = std::map<std::string, JsonValue, std::less<>>;

    JsonValue() : state_(nullptr) {}
    JsonValue(std::nullptr_t) : state_(nullptr) {}
    JsonValue(bool value) : state_(value) {}
    JsonValue(double value) : state_(value) {}
    /** Every integral type maps to the JSON number state. */
    template <typename T,
              typename = std::enable_if_t<std::is_integral_v<T> &&
                                          !std::is_same_v<T, bool>>>
    JsonValue(T value) : state_(static_cast<double>(value))
    {
    }
    JsonValue(std::string value) : state_(std::move(value)) {}
    JsonValue(std::string_view value) : state_(std::string(value)) {}
    JsonValue(const char *value) : state_(std::string(value)) {}
    JsonValue(Array value) : state_(std::move(value)) {}
    JsonValue(Object value) : state_(std::move(value)) {}

    static JsonValue makeArray() { return JsonValue(Array{}); }
    static JsonValue makeObject() { return JsonValue(Object{}); }

    bool isNull() const
    {
        return std::holds_alternative<std::nullptr_t>(state_);
    }
    bool isBool() const { return std::holds_alternative<bool>(state_); }
    bool isNumber() const
    {
        return std::holds_alternative<double>(state_);
    }
    bool isString() const
    {
        return std::holds_alternative<std::string>(state_);
    }
    bool isArray() const
    {
        return std::holds_alternative<Array>(state_);
    }
    bool isObject() const
    {
        return std::holds_alternative<Object>(state_);
    }

    /** Value accessors; panic on kind mismatch (check is*() first). */
    bool asBool() const { return std::get<bool>(state_); }
    double asNumber() const { return std::get<double>(state_); }
    const std::string &asString() const
    {
        return std::get<std::string>(state_);
    }
    const Array &asArray() const { return std::get<Array>(state_); }
    Array &asArray() { return std::get<Array>(state_); }
    const Object &asObject() const { return std::get<Object>(state_); }
    Object &asObject() { return std::get<Object>(state_); }

    /** Object member, or nullptr when absent / not an object. */
    const JsonValue *find(std::string_view key) const;

    /** Set an object member (the value must be an object). */
    JsonValue &
    set(std::string_view key, JsonValue value)
    {
        asObject().insert_or_assign(std::string(key),
                                    std::move(value));
        return *this;
    }

    /** Append an array element (the value must be an array). */
    JsonValue &
    push(JsonValue value)
    {
        asArray().push_back(std::move(value));
        return *this;
    }

    /** Compact single-line rendering (no trailing newline). */
    std::string render() const;

    /**
     * Parse one complete JSON document. Trailing non-whitespace, depth
     * beyond 64 levels, invalid escapes, bad numbers, and truncation
     * all fail with the byte offset of the violation.
     */
    static Expected<JsonValue> parse(std::string_view text);

  private:
    std::variant<std::nullptr_t, bool, double, std::string, Array,
                 Object>
        state_;
};

/** Escape @p text as a JSON string literal (with quotes). */
std::string jsonQuote(std::string_view text);

} // namespace tracelens

#endif // TRACELENS_UTIL_JSON_H
