/**
 * @file
 * Recursive-descent JSON parser and deterministic renderer
 * (src/util/json.h). The parser treats its input as hostile: every
 * read is bounds-checked, recursion is depth-limited, and failures
 * carry the byte offset for the error response.
 */

#include "src/util/json.h"

#include <array>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace tracelens
{

namespace
{

constexpr int kMaxDepth = 64;

/** Cursor over the document with offset-carrying failure. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    Expected<JsonValue>
    run()
    {
        JsonValue value;
        if (!parseValue(value, 0))
            return error_;
        skipSpace();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        return value;
    }

  private:
    SourceError
    fail(std::string reason)
    {
        error_ = SourceError{"<json>", pos_, std::move(reason)};
        failed_ = true;
        return error_;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_).rfind(word, 0) != 0)
            return false;
        pos_ += word.size();
        return true;
    }

    bool
    parseValue(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth) {
            fail("nesting deeper than 64 levels");
            return false;
        }
        skipSpace();
        if (pos_ >= text_.size()) {
            fail("unexpected end of document");
            return false;
        }
        const char c = text_[pos_];
        switch (c) {
        case 'n':
            if (!literal("null")) {
                fail("invalid literal");
                return false;
            }
            out = JsonValue(nullptr);
            return true;
        case 't':
            if (!literal("true")) {
                fail("invalid literal");
                return false;
            }
            out = JsonValue(true);
            return true;
        case 'f':
            if (!literal("false")) {
                fail("invalid literal");
                return false;
            }
            out = JsonValue(false);
            return true;
        case '"':
            return parseString(out);
        case '[':
            return parseArray(out, depth);
        case '{':
            return parseObject(out, depth);
        default:
            return parseNumber(out);
        }
    }

    bool
    parseNumber(JsonValue &out)
    {
        // from_chars accepts exactly the JSON number grammar apart
        // from leading '+' / leading '.'; reject those explicitly.
        const char c = text_[pos_];
        if (c != '-' && (c < '0' || c > '9')) {
            fail("invalid value");
            return false;
        }
        double value = 0.0;
        const char *begin = text_.data() + pos_;
        const char *end = text_.data() + text_.size();
        const auto [ptr, ec] = std::from_chars(begin, end, value);
        if (ec != std::errc() || !std::isfinite(value)) {
            fail("invalid number");
            return false;
        }
        pos_ += static_cast<std::size_t>(ptr - begin);
        out = JsonValue(value);
        return true;
    }

    bool
    hex4(std::uint32_t &out)
    {
        if (text_.size() - pos_ < 4) {
            fail("truncated \\u escape");
            return false;
        }
        out = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_ + static_cast<std::size_t>(i)];
            std::uint32_t digit = 0;
            if (c >= '0' && c <= '9')
                digit = static_cast<std::uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                digit = static_cast<std::uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                digit = static_cast<std::uint32_t>(c - 'A' + 10);
            else {
                fail("invalid \\u escape");
                return false;
            }
            out = out * 16 + digit;
        }
        pos_ += 4;
        return true;
    }

    static void
    appendUtf8(std::string &out, std::uint32_t cp)
    {
        if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else if (cp < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
            out.push_back(
                static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
    }

    bool
    parseString(JsonValue &out)
    {
        std::string value;
        if (!parseRawString(value))
            return false;
        out = JsonValue(std::move(value));
        return true;
    }

    bool
    parseRawString(std::string &value)
    {
        ++pos_; // opening quote
        while (true) {
            if (pos_ >= text_.size()) {
                fail("unterminated string");
                return false;
            }
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20) {
                fail("unescaped control character in string");
                return false;
            }
            if (c != '\\') {
                value.push_back(c);
                ++pos_;
                continue;
            }
            ++pos_;
            if (pos_ >= text_.size()) {
                fail("truncated escape");
                return false;
            }
            const char esc = text_[pos_++];
            switch (esc) {
            case '"': value.push_back('"'); break;
            case '\\': value.push_back('\\'); break;
            case '/': value.push_back('/'); break;
            case 'b': value.push_back('\b'); break;
            case 'f': value.push_back('\f'); break;
            case 'n': value.push_back('\n'); break;
            case 'r': value.push_back('\r'); break;
            case 't': value.push_back('\t'); break;
            case 'u': {
                std::uint32_t cp = 0;
                if (!hex4(cp))
                    return false;
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    // High surrogate: require the low half.
                    if (!(consume('\\') && consume('u'))) {
                        fail("lone high surrogate");
                        return false;
                    }
                    std::uint32_t low = 0;
                    if (!hex4(low))
                        return false;
                    if (low < 0xDC00 || low > 0xDFFF) {
                        fail("invalid surrogate pair");
                        return false;
                    }
                    cp = 0x10000 + ((cp - 0xD800) << 10) +
                         (low - 0xDC00);
                } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                    fail("lone low surrogate");
                    return false;
                }
                appendUtf8(value, cp);
                break;
            }
            default:
                fail("invalid escape");
                return false;
            }
        }
    }

    bool
    parseArray(JsonValue &out, int depth)
    {
        ++pos_; // '['
        JsonValue::Array items;
        skipSpace();
        if (consume(']')) {
            out = JsonValue(std::move(items));
            return true;
        }
        while (true) {
            JsonValue item;
            if (!parseValue(item, depth + 1))
                return false;
            items.push_back(std::move(item));
            skipSpace();
            if (consume(']'))
                break;
            if (!consume(',')) {
                fail("expected ',' or ']' in array");
                return false;
            }
        }
        out = JsonValue(std::move(items));
        return true;
    }

    bool
    parseObject(JsonValue &out, int depth)
    {
        ++pos_; // '{'
        JsonValue::Object members;
        skipSpace();
        if (consume('}')) {
            out = JsonValue(std::move(members));
            return true;
        }
        while (true) {
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                fail("expected string key in object");
                return false;
            }
            std::string key;
            if (!parseRawString(key))
                return false;
            skipSpace();
            if (!consume(':')) {
                fail("expected ':' after object key");
                return false;
            }
            JsonValue value;
            if (!parseValue(value, depth + 1))
                return false;
            members.insert_or_assign(std::move(key),
                                     std::move(value));
            skipSpace();
            if (consume('}'))
                break;
            if (!consume(',')) {
                fail("expected ',' or '}' in object");
                return false;
            }
        }
        out = JsonValue(std::move(members));
        return true;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    bool failed_ = false;
    SourceError error_;
};

void
renderNumber(std::string &out, double value)
{
    // Integral values inside the exact-double range render as
    // integers so ids and counters round-trip textually.
    if (value == std::floor(value) && std::fabs(value) <= 9e15) {
        char buf[32];
        const auto [ptr, ec] = std::to_chars(
            buf, buf + sizeof(buf),
            static_cast<long long>(value));
        out.append(buf, static_cast<std::size_t>(ptr - buf));
        (void)ec;
        return;
    }
    char buf[40];
    const int n =
        std::snprintf(buf, sizeof(buf), "%.17g", value);
    out.append(buf, static_cast<std::size_t>(n));
}

void
renderValue(std::string &out, const JsonValue &value)
{
    if (value.isNull()) {
        out += "null";
    } else if (value.isBool()) {
        out += value.asBool() ? "true" : "false";
    } else if (value.isNumber()) {
        renderNumber(out, value.asNumber());
    } else if (value.isString()) {
        out += jsonQuote(value.asString());
    } else if (value.isArray()) {
        out.push_back('[');
        bool first = true;
        for (const JsonValue &item : value.asArray()) {
            if (!first)
                out.push_back(',');
            first = false;
            renderValue(out, item);
        }
        out.push_back(']');
    } else {
        out.push_back('{');
        bool first = true;
        for (const auto &[key, member] : value.asObject()) {
            if (!first)
                out.push_back(',');
            first = false;
            out += jsonQuote(key);
            out.push_back(':');
            renderValue(out, member);
        }
        out.push_back('}');
    }
}

} // namespace

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (!isObject())
        return nullptr;
    const Object &members = asObject();
    const auto it = members.find(key);
    return it == members.end() ? nullptr : &it->second;
}

std::string
JsonValue::render() const
{
    std::string out;
    renderValue(out, *this);
    return out;
}

Expected<JsonValue>
JsonValue::parse(std::string_view text)
{
    return Parser(text).run();
}

std::string
jsonQuote(std::string_view text)
{
    std::string out;
    out.reserve(text.size() + 2);
    out.push_back('"');
    for (const char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

} // namespace tracelens
