/**
 * @file
 * Telemetry implementation: log-scale histograms, the metrics
 * registry, per-thread span buffers, and the Chrome trace_event JSON
 * writer.
 *
 * Span recording layout: every thread lazily registers one
 * ThreadBuffer in a process-wide list and appends finished spans to
 * it. The buffer's mutex is only ever contended by a flush
 * (renderChromeTrace / reset), so steady-state recording touches no
 * shared cache line except the enabled flag. Buffers are shared_ptr's
 * held by both the thread (thread_local) and the registry, so spans
 * recorded by pool workers survive the worker's exit and still appear
 * in the flush.
 */

#include "src/util/telemetry.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <ctime>
#include <fstream>
#include <unordered_map>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "src/util/hash.h"

namespace tracelens
{

// ------------------------------------------------------------- Histogram

std::uint32_t
Histogram::bucketOf(std::uint64_t value)
{
    if (value < kSubBuckets)
        return static_cast<std::uint32_t>(value);
    const int msb = 63 - std::countl_zero(value);
    const auto sub = static_cast<std::uint32_t>(
        (value >> (msb - 3)) & (kSubBuckets - 1));
    return static_cast<std::uint32_t>(msb - 2) * kSubBuckets + sub;
}

std::uint64_t
Histogram::bucketValue(std::uint32_t bucket)
{
    if (bucket < kSubBuckets)
        return bucket;
    const std::uint32_t msb = bucket / kSubBuckets + 2;
    const std::uint64_t sub = bucket % kSubBuckets;
    const std::uint64_t width = std::uint64_t{1} << (msb - 3);
    return (std::uint64_t{1} << msb) + sub * width + width / 2;
}

void
Histogram::record(std::uint64_t value)
{
    buckets_[bucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
}

std::uint64_t
Histogram::percentile(double q) const
{
    const std::uint64_t total = count();
    if (total == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    const auto rank = static_cast<std::uint64_t>(
        q * static_cast<double>(total - 1));
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
        cumulative += buckets_[b].load(std::memory_order_relaxed);
        if (cumulative > rank) {
            return std::min(bucketValue(static_cast<std::uint32_t>(b)),
                            max());
        }
    }
    return max();
}

Histogram::State
Histogram::state() const
{
    State state;
    state.count = count();
    state.sum = sum();
    state.max = max();
    for (std::size_t b = 0; b < kBuckets; ++b) {
        const std::uint64_t n =
            buckets_[b].load(std::memory_order_relaxed);
        if (n > 0)
            state.buckets.emplace_back(static_cast<std::uint32_t>(b),
                                       n);
    }
    return state;
}

void
Histogram::mergeState(const State &other)
{
    for (const auto &[bucket, n] : other.buckets) {
        if (bucket < kBuckets && n > 0)
            buckets_[bucket].fetch_add(n, std::memory_order_relaxed);
    }
    count_.fetch_add(other.count, std::memory_order_relaxed);
    sum_.fetch_add(other.sum, std::memory_order_relaxed);
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (other.max > seen &&
           !max_.compare_exchange_weak(seen, other.max,
                                       std::memory_order_relaxed)) {
    }
}

void
Histogram::mergeFrom(const Histogram &other)
{
    for (std::size_t b = 0; b < kBuckets; ++b) {
        const std::uint64_t n =
            other.buckets_[b].load(std::memory_order_relaxed);
        if (n > 0)
            buckets_[b].fetch_add(n, std::memory_order_relaxed);
    }
    count_.fetch_add(other.count(), std::memory_order_relaxed);
    sum_.fetch_add(other.sum(), std::memory_order_relaxed);
    std::uint64_t theirs = other.max();
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (theirs > seen &&
           !max_.compare_exchange_weak(seen, theirs,
                                       std::memory_order_relaxed)) {
    }
}

// ------------------------------------------------------- MetricsRegistry

Counter &
MetricsRegistry::counter(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = cells_.try_emplace(std::string(name));
    if (inserted)
        it->second.counter = std::make_unique<Counter>();
    TL_ASSERT(it->second.counter != nullptr,
              "metric '", std::string(name), "' is not a counter");
    return *it->second.counter;
}

Gauge &
MetricsRegistry::gauge(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = cells_.try_emplace(std::string(name));
    if (inserted)
        it->second.gauge = std::make_unique<Gauge>();
    TL_ASSERT(it->second.gauge != nullptr,
              "metric '", std::string(name), "' is not a gauge");
    return *it->second.gauge;
}

Histogram &
MetricsRegistry::histogram(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = cells_.try_emplace(std::string(name));
    if (inserted)
        it->second.histogram = std::make_unique<Histogram>();
    TL_ASSERT(it->second.histogram != nullptr,
              "metric '", std::string(name), "' is not a histogram");
    return *it->second.histogram;
}

const Counter *
MetricsRegistry::findCounter(std::string_view name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = cells_.find(name);
    return it == cells_.end() ? nullptr : it->second.counter.get();
}

void
MetricsRegistry::mergeInto(MetricsRegistry &target) const
{
    // Snapshot the cell pointers under our lock, then apply through
    // the target's own locking accessors — no lock is ever held on
    // both registries at once.
    struct Item
    {
        std::string name;
        const Counter *counter;
        const Gauge *gauge;
        const Histogram *histogram;
    };
    std::vector<Item> items;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        items.reserve(cells_.size());
        for (const auto &[name, cell] : cells_) {
            items.push_back({name, cell.counter.get(),
                             cell.gauge.get(), cell.histogram.get()});
        }
    }
    for (const Item &item : items) {
        if (item.counter != nullptr)
            target.counter(item.name).add(item.counter->value());
        if (item.gauge != nullptr)
            target.gauge(item.name).set(item.gauge->value());
        if (item.histogram != nullptr)
            target.histogram(item.name).mergeFrom(*item.histogram);
    }
}

namespace
{

/** Minimal JSON string escaping (quotes, backslashes, controls). */
std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
MetricsRegistry::renderJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream counters, gauges, histograms;
    bool firstCounter = true, firstGauge = true, firstHistogram = true;
    for (const auto &[name, cell] : cells_) {
        if (cell.counter != nullptr) {
            counters << (firstCounter ? "" : ",") << "\n    \""
                     << jsonEscape(name)
                     << "\": " << cell.counter->value();
            firstCounter = false;
        }
        if (cell.gauge != nullptr) {
            gauges << (firstGauge ? "" : ",") << "\n    \""
                   << jsonEscape(name) << "\": "
                   << cell.gauge->value();
            firstGauge = false;
        }
        if (cell.histogram != nullptr) {
            const Histogram &h = *cell.histogram;
            histograms << (firstHistogram ? "" : ",") << "\n    \""
                       << jsonEscape(name) << "\": {\"count\": "
                       << h.count() << ", \"sum\": " << h.sum()
                       << ", \"max\": " << h.max()
                       << ", \"p50\": " << h.percentile(0.50)
                       << ", \"p95\": " << h.percentile(0.95)
                       << ", \"p99\": " << h.percentile(0.99) << "}";
            firstHistogram = false;
        }
    }
    std::ostringstream out;
    out << "{\n  \"counters\": {" << counters.str() << "\n  },\n"
        << "  \"gauges\": {" << gauges.str() << "\n  },\n"
        << "  \"histograms\": {" << histograms.str() << "\n  }\n}\n";
    return out.str();
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snapshot;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, cell] : cells_) {
        if (cell.counter != nullptr)
            snapshot.counters.emplace_back(name,
                                           cell.counter->value());
        if (cell.gauge != nullptr)
            snapshot.gauges.emplace_back(name, cell.gauge->value());
        if (cell.histogram != nullptr)
            snapshot.histograms.emplace_back(name,
                                             cell.histogram->state());
    }
    return snapshot;
}

void
MetricsRegistry::merge(const MetricsSnapshot &snapshot)
{
    for (const auto &[name, value] : snapshot.counters)
        counter(name).add(value);
    for (const auto &[name, value] : snapshot.gauges)
        gauge(name).set(value);
    for (const auto &[name, state] : snapshot.histograms)
        histogram(name).mergeState(state);
}

namespace
{

/** Prometheus metric name: "tracelens_" + name with every character
 *  outside [a-zA-Z0-9_] replaced by '_'. */
std::string
prometheusName(std::string_view name)
{
    std::string out = "tracelens_";
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        out += ok ? c : '_';
    }
    return out;
}

/** Render one label set `{k="v",...}` (empty string for no labels). */
std::string
prometheusLabels(
    const std::vector<std::pair<std::string, std::string>> &labels,
    const std::string &extraKey = {}, const std::string &extraValue = {})
{
    if (labels.empty() && extraKey.empty())
        return {};
    std::string out = "{";
    bool first = true;
    auto append = [&](const std::string &key, const std::string &value) {
        if (!first)
            out += ",";
        first = false;
        out += key;
        out += "=\"";
        for (const char c : value) {
            if (c == '\\' || c == '"')
                out += '\\';
            if (c == '\n') {
                out += "\\n";
                continue;
            }
            out += c;
        }
        out += "\"";
    };
    for (const auto &[key, value] : labels)
        append(key, value);
    if (!extraKey.empty())
        append(extraKey, extraValue);
    out += "}";
    return out;
}

} // namespace

std::string
renderPrometheus(
    const MetricsSnapshot &snapshot,
    const std::vector<std::pair<std::string, std::string>> &labels)
{
    std::ostringstream out;
    const std::string labelSet = prometheusLabels(labels);
    for (const auto &[name, value] : snapshot.counters) {
        const std::string metric = prometheusName(name);
        out << "# TYPE " << metric << " counter\n"
            << metric << labelSet << " " << value << "\n";
    }
    for (const auto &[name, value] : snapshot.gauges) {
        const std::string metric = prometheusName(name);
        out << "# TYPE " << metric << " gauge\n"
            << metric << labelSet << " " << value << "\n";
    }
    for (const auto &[name, state] : snapshot.histograms) {
        // Reconstruct a histogram from the state so quantiles come
        // from the same bucket math every other consumer uses.
        Histogram scratch;
        scratch.mergeState(state);
        const std::string metric = prometheusName(name);
        out << "# TYPE " << metric << " summary\n";
        for (const auto &[q, label] :
             {std::pair<double, const char *>{0.5, "0.5"},
              {0.9, "0.9"},
              {0.99, "0.99"}}) {
            out << metric << prometheusLabels(labels, "quantile", label)
                << " " << scratch.percentile(q) << "\n";
        }
        out << metric << "_sum" << labelSet << " " << state.sum << "\n"
            << metric << "_count" << labelSet << " " << state.count
            << "\n";
    }
    return out.str();
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    cells_.clear();
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

// ----------------------------------------------------------------- spans

namespace
{

/** One finished span as recorded in a thread's buffer. */
struct SpanRecord
{
    const char *name;
    const char *category;
    std::uint64_t startUs;
    std::uint64_t durUs;
    std::uint64_t cpuNs;
    std::uint64_t traceId;
    std::uint64_t spanId;
    std::uint64_t parentSpanId;
    std::uint32_t depth;
    std::vector<std::pair<const char *, std::string>> args;
};

struct ThreadBuffer
{
    std::mutex mutex; //!< Contended only by flush/reset.
    std::vector<SpanRecord> records;
    std::uint32_t tid = 0;
    /** Current nesting depth; owner-thread only. */
    std::uint32_t depth = 0;
    /** Ids of the active (open) spans, innermost last; owner-thread
     *  only. The innermost id is the parent of the next span opened
     *  on this thread. */
    std::vector<std::uint64_t> activeSpans;
};

/** The calling thread's propagated trace context (TraceContextScope). */
SpanContext &
threadContext()
{
    thread_local SpanContext context;
    return context;
}

struct BufferRegistry
{
    std::mutex mutex;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
};

BufferRegistry &
bufferRegistry()
{
    static BufferRegistry registry;
    return registry;
}

ThreadBuffer &
threadBuffer()
{
    thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
        auto fresh = std::make_shared<ThreadBuffer>();
        BufferRegistry &registry = bufferRegistry();
        std::lock_guard<std::mutex> lock(registry.mutex);
        fresh->tid =
            static_cast<std::uint32_t>(registry.buffers.size() + 1);
        registry.buffers.push_back(fresh);
        return fresh;
    }();
    return *buffer;
}

/** The process's telemetry epoch: one steady-clock anchor for span
 *  timestamps plus the wall-clock time it corresponds to, captured
 *  together so multi-process merges can rebase onto one timeline. */
struct TelemetryEpoch
{
    std::chrono::steady_clock::time_point steady;
    std::uint64_t unixUs;
};

const TelemetryEpoch &
telemetryEpoch()
{
    static const TelemetryEpoch epoch = [] {
        TelemetryEpoch fresh;
        fresh.steady = std::chrono::steady_clock::now();
        fresh.unixUs = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::system_clock::now().time_since_epoch())
                .count());
        return fresh;
    }();
    return epoch;
}

/** Microseconds since the process's telemetry epoch (steady clock). */
std::uint64_t
nowUs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - telemetryEpoch().steady)
            .count());
}

/** Process-unique-ish 64-bit id: a splitmix64 walk seeded from the
 *  epoch wall clock and the pid, so two nodes' span ids do not
 *  collide in a stitched trace (they would under a bare counter). */
std::uint64_t
nextTelemetryId()
{
    static const std::uint64_t salt = [] {
        std::uint64_t pid = 0;
#ifndef _WIN32
        pid = static_cast<std::uint64_t>(::getpid());
#endif
        return telemetryEpoch().unixUs ^ (pid << 40);
    }();
    static std::atomic<std::uint64_t> serial{0};
    const std::uint64_t id = splitmix64(
        salt + serial.fetch_add(1, std::memory_order_relaxed));
    return id == 0 ? 1 : id;
}

/** Calling thread's CPU time in nanoseconds (0 where unsupported). */
std::uint64_t
threadCpuNs()
{
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
        return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
               static_cast<std::uint64_t>(ts.tv_nsec);
    }
#endif
    return 0;
}

} // namespace

std::atomic<bool> Telemetry::enabled_{false};

TraceContextScope::TraceContextScope(const SpanContext &context)
    : saved_(threadContext())
{
    threadContext() = context;
}

TraceContextScope::~TraceContextScope()
{
    threadContext() = saved_;
}

Span::Span(const char *name, const char *category)
    : name_(name), category_(category)
{
    if (!Telemetry::enabled())
        return;
    active_ = true;
    ThreadBuffer &buffer = threadBuffer();
    buffer.depth++;
    const SpanContext &context = threadContext();
    traceId_ = context.traceId;
    parentSpanId_ = buffer.activeSpans.empty()
                        ? context.parentSpanId
                        : buffer.activeSpans.back();
    spanId_ = nextTelemetryId();
    buffer.activeSpans.push_back(spanId_);
    startUs_ = nowUs();
    cpuStartNs_ = threadCpuNs();
}

Span::~Span()
{
    if (!active_)
        return;
    const std::uint64_t endUs = nowUs();
    const std::uint64_t cpuEndNs = threadCpuNs();
    ThreadBuffer &buffer = threadBuffer();
    // Spans are strictly scoped objects, so destruction order is LIFO
    // per thread and the top of the active stack is this span.
    if (!buffer.activeSpans.empty())
        buffer.activeSpans.pop_back();
    SpanRecord record;
    record.name = name_;
    record.category = category_;
    record.startUs = startUs_;
    record.durUs = endUs > startUs_ ? endUs - startUs_ : 0;
    record.cpuNs = cpuEndNs > cpuStartNs_ ? cpuEndNs - cpuStartNs_ : 0;
    record.traceId = traceId_;
    record.spanId = spanId_;
    record.parentSpanId = parentSpanId_;
    record.depth = --buffer.depth;
    record.args = std::move(args_);
    std::lock_guard<std::mutex> lock(buffer.mutex);
    buffer.records.push_back(std::move(record));
}

void
Span::arg(const char *key, std::string value)
{
    if (active_)
        args_.emplace_back(key, std::move(value));
}

void
Span::arg(const char *key, std::uint64_t value)
{
    if (active_)
        args_.emplace_back(key, std::to_string(value));
}

void
Telemetry::reset()
{
    BufferRegistry &registry = bufferRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    for (const auto &buffer : registry.buffers) {
        std::lock_guard<std::mutex> bufferLock(buffer->mutex);
        buffer->records.clear();
    }
}

std::size_t
Telemetry::spanCount()
{
    BufferRegistry &registry = bufferRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    std::size_t total = 0;
    for (const auto &buffer : registry.buffers) {
        std::lock_guard<std::mutex> bufferLock(buffer->mutex);
        total += buffer->records.size();
    }
    return total;
}

std::vector<SpanSnapshot>
Telemetry::snapshotSpans()
{
    std::vector<SpanSnapshot> spans;
    BufferRegistry &registry = bufferRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    for (const auto &buffer : registry.buffers) {
        std::lock_guard<std::mutex> bufferLock(buffer->mutex);
        for (const SpanRecord &record : buffer->records) {
            SpanSnapshot span;
            span.name = record.name;
            span.category = record.category;
            span.tid = buffer->tid;
            span.depth = record.depth;
            span.startUs = record.startUs;
            span.durUs = record.durUs;
            span.cpuNs = record.cpuNs;
            span.traceId = record.traceId;
            span.spanId = record.spanId;
            span.parentSpanId = record.parentSpanId;
            span.args.reserve(record.args.size());
            for (const auto &[key, value] : record.args)
                span.args.emplace_back(key, value);
            spans.push_back(std::move(span));
        }
    }
    return spans;
}

namespace
{
} // namespace

std::string
hexId(std::uint64_t id)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(id));
    return buf;
}

std::uint64_t
parseHexId(std::string_view text)
{
    if (text.empty() || text.size() > 16)
        return 0;
    std::uint64_t id = 0;
    for (const char c : text) {
        id <<= 4;
        if (c >= '0' && c <= '9')
            id |= static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            id |= static_cast<std::uint64_t>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F')
            id |= static_cast<std::uint64_t>(c - 'A' + 10);
        else
            return 0;
    }
    return id;
}

std::string
Telemetry::renderChromeTraceMerged(const std::vector<NodeSpans> &nodes)
{
    // Rebase every node onto the earliest node epoch, so one merged
    // timeline lines up wall-clock-wise across processes. Nodes with
    // an unknown epoch (0) keep their raw timestamps.
    std::uint64_t baseEpoch = 0;
    for (const NodeSpans &node : nodes) {
        if (node.epochUnixUs != 0 &&
            (baseEpoch == 0 || node.epochUnixUs < baseEpoch))
            baseEpoch = node.epochUnixUs;
    }

    // Where every span id lives, for cross-node flow arrows.
    struct SpanSite
    {
        std::size_t node;
        std::uint32_t tid;
        std::uint64_t ts;
    };
    std::unordered_map<std::uint64_t, SpanSite> sites;
    std::vector<std::vector<const SpanSnapshot *>> ordered(nodes.size());
    std::vector<std::uint64_t> shifts(nodes.size(), 0);
    for (std::size_t n = 0; n < nodes.size(); ++n) {
        const NodeSpans &node = nodes[n];
        shifts[n] = node.epochUnixUs != 0 ? node.epochUnixUs - baseEpoch
                                          : 0;
        ordered[n].reserve(node.spans.size());
        for (const SpanSnapshot &span : node.spans)
            ordered[n].push_back(&span);
        // Sort by (tid, ts, -dur) so each thread's timeline is
        // monotonic and parents precede children at equal timestamps —
        // what trace viewers and the nesting validator in
        // tests/telemetry_test.cpp expect.
        std::sort(ordered[n].begin(), ordered[n].end(),
                  [](const SpanSnapshot *a, const SpanSnapshot *b) {
                      if (a->tid != b->tid)
                          return a->tid < b->tid;
                      if (a->startUs != b->startUs)
                          return a->startUs < b->startUs;
                      return a->durUs > b->durUs;
                  });
        for (const SpanSnapshot &span : node.spans) {
            if (span.spanId != 0) {
                sites.emplace(span.spanId,
                              SpanSite{n, span.tid,
                                       span.startUs + shifts[n]});
            }
        }
    }

    std::ostringstream out;
    out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
    bool first = true;
    auto sep = [&]() -> std::ostream & {
        if (!first)
            out << ",\n";
        first = false;
        return out;
    };
    for (std::size_t n = 0; n < nodes.size(); ++n) {
        const NodeSpans &node = nodes[n];
        sep() << "{\"ph\": \"M\", \"pid\": " << node.pid
              << ", \"name\": \"process_name\", \"args\": {\"name\": \""
              << jsonEscape(node.node) << "\"}}";
        std::uint32_t lastTid = 0;
        bool haveTid = false;
        for (const SpanSnapshot *span : ordered[n]) {
            if (haveTid && span->tid == lastTid)
                continue;
            haveTid = true;
            lastTid = span->tid;
            sep() << "{\"ph\": \"M\", \"pid\": " << node.pid
                  << ", \"tid\": " << span->tid
                  << ", \"name\": \"thread_name\", \"args\": "
                     "{\"name\": \""
                  << jsonEscape(node.node) << " thread " << span->tid
                  << "\"}}";
        }
    }
    for (std::size_t n = 0; n < nodes.size(); ++n) {
        const NodeSpans &node = nodes[n];
        for (const SpanSnapshot *span : ordered[n]) {
            const std::uint64_t ts = span->startUs + shifts[n];
            sep() << "{\"name\": \"" << jsonEscape(span->name)
                  << "\", \"cat\": \"" << jsonEscape(span->category)
                  << "\", \"ph\": \"X\", \"pid\": " << node.pid
                  << ", \"tid\": " << span->tid << ", \"ts\": " << ts
                  << ", \"dur\": " << span->durUs
                  << ", \"args\": {\"cpu_us\": " << span->cpuNs / 1000
                  << ", \"depth\": " << span->depth;
            if (span->traceId != 0) {
                out << ", \"trace_id\": \"" << hexId(span->traceId)
                    << "\", \"span_id\": \"" << hexId(span->spanId)
                    << "\", \"parent_span_id\": \""
                    << hexId(span->parentSpanId) << "\"";
            }
            for (const auto &[key, value] : span->args) {
                out << ", \"" << jsonEscape(key) << "\": \""
                    << jsonEscape(value) << "\"";
            }
            out << "}}";
        }
    }
    // Flow arrows for cross-node parent edges: the parent's node
    // "starts" the flow, the child's node "finishes" it, which is how
    // one gather renders as a causal tree across machines.
    for (std::size_t n = 0; n < nodes.size(); ++n) {
        for (const SpanSnapshot *span : ordered[n]) {
            if (span->parentSpanId == 0 || span->spanId == 0)
                continue;
            const auto parent = sites.find(span->parentSpanId);
            if (parent == sites.end() || parent->second.node == n)
                continue;
            const std::string id = hexId(span->spanId);
            sep() << "{\"ph\": \"s\", \"id\": \"" << id
                  << "\", \"name\": \"request\", \"cat\": \"trace\", "
                     "\"pid\": "
                  << nodes[parent->second.node].pid
                  << ", \"tid\": " << parent->second.tid
                  << ", \"ts\": " << parent->second.ts << "}";
            sep() << "{\"ph\": \"f\", \"bp\": \"e\", \"id\": \"" << id
                  << "\", \"name\": \"request\", \"cat\": \"trace\", "
                     "\"pid\": "
                  << nodes[n].pid << ", \"tid\": " << span->tid
                  << ", \"ts\": " << span->startUs + shifts[n] << "}";
        }
    }
    out << "\n]}\n";
    return out.str();
}

std::string
Telemetry::renderChromeTrace()
{
    std::vector<NodeSpans> nodes(1);
    nodes[0].node = "tracelens";
    nodes[0].pid = 1;
    nodes[0].epochUnixUs = 0;
    nodes[0].spans = snapshotSpans();
    return renderChromeTraceMerged(nodes);
}

bool
Telemetry::writeChromeTrace(const std::string &path)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    const std::string json = renderChromeTrace();
    out.write(json.data(), static_cast<std::streamsize>(json.size()));
    return static_cast<bool>(out);
}

std::uint64_t
Telemetry::epochUnixUs()
{
    return telemetryEpoch().unixUs;
}

std::uint64_t
Telemetry::newTraceId()
{
    return nextTelemetryId();
}

SpanContext
Telemetry::currentContext()
{
    SpanContext context = threadContext();
    const ThreadBuffer &buffer = threadBuffer();
    if (!buffer.activeSpans.empty())
        context.parentSpanId = buffer.activeSpans.back();
    return context;
}

bool
Telemetry::writeMetricsJson(const std::string &path)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    const std::string json = MetricsRegistry::global().renderJson();
    out.write(json.data(), static_cast<std::streamsize>(json.size()));
    return static_cast<bool>(out);
}

} // namespace tracelens
