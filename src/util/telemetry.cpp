/**
 * @file
 * Telemetry implementation: log-scale histograms, the metrics
 * registry, per-thread span buffers, and the Chrome trace_event JSON
 * writer.
 *
 * Span recording layout: every thread lazily registers one
 * ThreadBuffer in a process-wide list and appends finished spans to
 * it. The buffer's mutex is only ever contended by a flush
 * (renderChromeTrace / reset), so steady-state recording touches no
 * shared cache line except the enabled flag. Buffers are shared_ptr's
 * held by both the thread (thread_local) and the registry, so spans
 * recorded by pool workers survive the worker's exit and still appear
 * in the flush.
 */

#include "src/util/telemetry.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <ctime>
#include <fstream>

namespace tracelens
{

// ------------------------------------------------------------- Histogram

std::uint32_t
Histogram::bucketOf(std::uint64_t value)
{
    if (value < kSubBuckets)
        return static_cast<std::uint32_t>(value);
    const int msb = 63 - std::countl_zero(value);
    const auto sub = static_cast<std::uint32_t>(
        (value >> (msb - 3)) & (kSubBuckets - 1));
    return static_cast<std::uint32_t>(msb - 2) * kSubBuckets + sub;
}

std::uint64_t
Histogram::bucketValue(std::uint32_t bucket)
{
    if (bucket < kSubBuckets)
        return bucket;
    const std::uint32_t msb = bucket / kSubBuckets + 2;
    const std::uint64_t sub = bucket % kSubBuckets;
    const std::uint64_t width = std::uint64_t{1} << (msb - 3);
    return (std::uint64_t{1} << msb) + sub * width + width / 2;
}

void
Histogram::record(std::uint64_t value)
{
    buckets_[bucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
}

std::uint64_t
Histogram::percentile(double q) const
{
    const std::uint64_t total = count();
    if (total == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    const auto rank = static_cast<std::uint64_t>(
        q * static_cast<double>(total - 1));
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
        cumulative += buckets_[b].load(std::memory_order_relaxed);
        if (cumulative > rank) {
            return std::min(bucketValue(static_cast<std::uint32_t>(b)),
                            max());
        }
    }
    return max();
}

void
Histogram::mergeFrom(const Histogram &other)
{
    for (std::size_t b = 0; b < kBuckets; ++b) {
        const std::uint64_t n =
            other.buckets_[b].load(std::memory_order_relaxed);
        if (n > 0)
            buckets_[b].fetch_add(n, std::memory_order_relaxed);
    }
    count_.fetch_add(other.count(), std::memory_order_relaxed);
    sum_.fetch_add(other.sum(), std::memory_order_relaxed);
    std::uint64_t theirs = other.max();
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (theirs > seen &&
           !max_.compare_exchange_weak(seen, theirs,
                                       std::memory_order_relaxed)) {
    }
}

// ------------------------------------------------------- MetricsRegistry

Counter &
MetricsRegistry::counter(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = cells_.try_emplace(std::string(name));
    if (inserted)
        it->second.counter = std::make_unique<Counter>();
    TL_ASSERT(it->second.counter != nullptr,
              "metric '", std::string(name), "' is not a counter");
    return *it->second.counter;
}

Gauge &
MetricsRegistry::gauge(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = cells_.try_emplace(std::string(name));
    if (inserted)
        it->second.gauge = std::make_unique<Gauge>();
    TL_ASSERT(it->second.gauge != nullptr,
              "metric '", std::string(name), "' is not a gauge");
    return *it->second.gauge;
}

Histogram &
MetricsRegistry::histogram(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = cells_.try_emplace(std::string(name));
    if (inserted)
        it->second.histogram = std::make_unique<Histogram>();
    TL_ASSERT(it->second.histogram != nullptr,
              "metric '", std::string(name), "' is not a histogram");
    return *it->second.histogram;
}

const Counter *
MetricsRegistry::findCounter(std::string_view name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = cells_.find(name);
    return it == cells_.end() ? nullptr : it->second.counter.get();
}

void
MetricsRegistry::mergeInto(MetricsRegistry &target) const
{
    // Snapshot the cell pointers under our lock, then apply through
    // the target's own locking accessors — no lock is ever held on
    // both registries at once.
    struct Item
    {
        std::string name;
        const Counter *counter;
        const Gauge *gauge;
        const Histogram *histogram;
    };
    std::vector<Item> items;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        items.reserve(cells_.size());
        for (const auto &[name, cell] : cells_) {
            items.push_back({name, cell.counter.get(),
                             cell.gauge.get(), cell.histogram.get()});
        }
    }
    for (const Item &item : items) {
        if (item.counter != nullptr)
            target.counter(item.name).add(item.counter->value());
        if (item.gauge != nullptr)
            target.gauge(item.name).set(item.gauge->value());
        if (item.histogram != nullptr)
            target.histogram(item.name).mergeFrom(*item.histogram);
    }
}

namespace
{

/** Minimal JSON string escaping (quotes, backslashes, controls). */
std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
MetricsRegistry::renderJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream counters, gauges, histograms;
    bool firstCounter = true, firstGauge = true, firstHistogram = true;
    for (const auto &[name, cell] : cells_) {
        if (cell.counter != nullptr) {
            counters << (firstCounter ? "" : ",") << "\n    \""
                     << jsonEscape(name)
                     << "\": " << cell.counter->value();
            firstCounter = false;
        }
        if (cell.gauge != nullptr) {
            gauges << (firstGauge ? "" : ",") << "\n    \""
                   << jsonEscape(name) << "\": "
                   << cell.gauge->value();
            firstGauge = false;
        }
        if (cell.histogram != nullptr) {
            const Histogram &h = *cell.histogram;
            histograms << (firstHistogram ? "" : ",") << "\n    \""
                       << jsonEscape(name) << "\": {\"count\": "
                       << h.count() << ", \"sum\": " << h.sum()
                       << ", \"max\": " << h.max()
                       << ", \"p50\": " << h.percentile(0.50)
                       << ", \"p95\": " << h.percentile(0.95)
                       << ", \"p99\": " << h.percentile(0.99) << "}";
            firstHistogram = false;
        }
    }
    std::ostringstream out;
    out << "{\n  \"counters\": {" << counters.str() << "\n  },\n"
        << "  \"gauges\": {" << gauges.str() << "\n  },\n"
        << "  \"histograms\": {" << histograms.str() << "\n  }\n}\n";
    return out.str();
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    cells_.clear();
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

// ----------------------------------------------------------------- spans

namespace
{

/** One finished span as recorded in a thread's buffer. */
struct SpanRecord
{
    const char *name;
    const char *category;
    std::uint64_t startUs;
    std::uint64_t durUs;
    std::uint64_t cpuNs;
    std::uint32_t depth;
    std::vector<std::pair<const char *, std::string>> args;
};

struct ThreadBuffer
{
    std::mutex mutex; //!< Contended only by flush/reset.
    std::vector<SpanRecord> records;
    std::uint32_t tid = 0;
    /** Current nesting depth; owner-thread only. */
    std::uint32_t depth = 0;
};

struct BufferRegistry
{
    std::mutex mutex;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
};

BufferRegistry &
bufferRegistry()
{
    static BufferRegistry registry;
    return registry;
}

ThreadBuffer &
threadBuffer()
{
    thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
        auto fresh = std::make_shared<ThreadBuffer>();
        BufferRegistry &registry = bufferRegistry();
        std::lock_guard<std::mutex> lock(registry.mutex);
        fresh->tid =
            static_cast<std::uint32_t>(registry.buffers.size() + 1);
        registry.buffers.push_back(fresh);
        return fresh;
    }();
    return *buffer;
}

/** Microseconds since the process's telemetry epoch (steady clock). */
std::uint64_t
nowUs()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch)
            .count());
}

/** Calling thread's CPU time in nanoseconds (0 where unsupported). */
std::uint64_t
threadCpuNs()
{
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
        return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
               static_cast<std::uint64_t>(ts.tv_nsec);
    }
#endif
    return 0;
}

} // namespace

std::atomic<bool> Telemetry::enabled_{false};

Span::Span(const char *name, const char *category)
    : name_(name), category_(category)
{
    if (!Telemetry::enabled())
        return;
    active_ = true;
    threadBuffer().depth++;
    startUs_ = nowUs();
    cpuStartNs_ = threadCpuNs();
}

Span::~Span()
{
    if (!active_)
        return;
    const std::uint64_t endUs = nowUs();
    const std::uint64_t cpuEndNs = threadCpuNs();
    ThreadBuffer &buffer = threadBuffer();
    SpanRecord record;
    record.name = name_;
    record.category = category_;
    record.startUs = startUs_;
    record.durUs = endUs > startUs_ ? endUs - startUs_ : 0;
    record.cpuNs = cpuEndNs > cpuStartNs_ ? cpuEndNs - cpuStartNs_ : 0;
    record.depth = --buffer.depth;
    record.args = std::move(args_);
    std::lock_guard<std::mutex> lock(buffer.mutex);
    buffer.records.push_back(std::move(record));
}

void
Span::arg(const char *key, std::string value)
{
    if (active_)
        args_.emplace_back(key, std::move(value));
}

void
Span::arg(const char *key, std::uint64_t value)
{
    if (active_)
        args_.emplace_back(key, std::to_string(value));
}

void
Telemetry::reset()
{
    BufferRegistry &registry = bufferRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    for (const auto &buffer : registry.buffers) {
        std::lock_guard<std::mutex> bufferLock(buffer->mutex);
        buffer->records.clear();
    }
}

std::size_t
Telemetry::spanCount()
{
    BufferRegistry &registry = bufferRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    std::size_t total = 0;
    for (const auto &buffer : registry.buffers) {
        std::lock_guard<std::mutex> bufferLock(buffer->mutex);
        total += buffer->records.size();
    }
    return total;
}

std::string
Telemetry::renderChromeTrace()
{
    // Snapshot every buffer, then sort by (tid, ts, -dur) so each
    // thread's timeline is monotonic and parents precede children at
    // equal timestamps — what trace viewers and the nesting validator
    // in tests/telemetry_test.cpp expect.
    struct Event
    {
        std::uint32_t tid;
        SpanRecord record;
    };
    std::vector<Event> events;
    {
        BufferRegistry &registry = bufferRegistry();
        std::lock_guard<std::mutex> lock(registry.mutex);
        for (const auto &buffer : registry.buffers) {
            std::lock_guard<std::mutex> bufferLock(buffer->mutex);
            for (const SpanRecord &record : buffer->records)
                events.push_back({buffer->tid, record});
        }
    }
    std::sort(events.begin(), events.end(),
              [](const Event &a, const Event &b) {
                  if (a.tid != b.tid)
                      return a.tid < b.tid;
                  if (a.record.startUs != b.record.startUs)
                      return a.record.startUs < b.record.startUs;
                  return a.record.durUs > b.record.durUs;
              });

    std::ostringstream out;
    out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
    out << "{\"ph\": \"M\", \"pid\": 1, \"name\": \"process_name\", "
           "\"args\": {\"name\": \"tracelens\"}}";
    for (const Event &event : events) {
        const SpanRecord &r = event.record;
        out << ",\n{\"name\": \"" << jsonEscape(r.name)
            << "\", \"cat\": \"" << jsonEscape(r.category)
            << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": " << event.tid
            << ", \"ts\": " << r.startUs << ", \"dur\": " << r.durUs
            << ", \"args\": {\"cpu_us\": " << r.cpuNs / 1000
            << ", \"depth\": " << r.depth;
        for (const auto &[key, value] : r.args) {
            out << ", \"" << jsonEscape(key) << "\": \""
                << jsonEscape(value) << "\"";
        }
        out << "}}";
    }
    out << "\n]}\n";
    return out.str();
}

bool
Telemetry::writeChromeTrace(const std::string &path)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    const std::string json = renderChromeTrace();
    out.write(json.data(), static_cast<std::streamsize>(json.size()));
    return static_cast<bool>(out);
}

bool
Telemetry::writeMetricsJson(const std::string &path)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    const std::string json = MetricsRegistry::global().renderJson();
    out.write(json.data(), static_cast<std::streamsize>(json.size()));
    return static_cast<bool>(out);
}

} // namespace tracelens
