/**
 * @file
 * Work-stealing thread pool and deterministic data-parallel helpers.
 *
 * The analysis pipeline is embarrassingly parallel across scenario
 * instances (wait-graph construction, impact accumulation, AWG
 * processing, pattern enumeration). This module provides the one
 * primitive all of those share: run a function over an index range on
 * N threads, with results delivered *in index order* so every caller
 * can keep a deterministic, serial merge step.
 *
 * Design:
 *  - ThreadPool owns N-1 worker threads; the calling thread always
 *    participates as worker 0, so a pool of size 1 spawns nothing and
 *    runs inline (the serial path and the parallel path share code).
 *  - Each worker owns a contiguous shard of the index range, packed
 *    into one 64-bit atomic (lo:32 | hi:32). Owners claim chunks from
 *    the front with a CAS; idle workers steal the back half of the
 *    largest remaining shard with a CAS. Contention is one CAS per
 *    chunk, not per index.
 *  - Scheduling is nondeterministic, but parallelMap writes result i
 *    to slot i, so *outputs* are deterministic. Any order-sensitive
 *    reduction (hash-set dedup, trie insertion) must stay on the
 *    caller's side, folding slots 0..n-1 in order — see
 *    ImpactAnalysis::analyze for the canonical pattern.
 *  - The first exception thrown by a body is captured and rethrown on
 *    the calling thread after all workers finish the job.
 */

#ifndef TRACELENS_UTIL_PARALLEL_H
#define TRACELENS_UTIL_PARALLEL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/util/telemetry.h"

namespace tracelens
{

/**
 * Resolve a user-facing thread-count knob: 0 means "all hardware
 * threads", anything else is taken literally (minimum 1).
 */
unsigned resolveThreads(unsigned threads);

/**
 * A fixed-size work-stealing thread pool executing one indexed loop at
 * a time. Not reentrant: a body must not call back into the same pool.
 */
class ThreadPool
{
  public:
    /** @param threads Total workers including the caller; 0 = auto. */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total worker count including the calling thread. */
    unsigned threadCount() const { return threadCount_; }

    /**
     * Invoke body(i) for every i in [begin, end), distributed over all
     * workers. Returns when every index has completed; rethrows the
     * first body exception.
     */
    void parallelFor(std::size_t begin, std::size_t end,
                     const std::function<void(std::size_t)> &body);

  private:
    /** One worker's shard of the range: lo in the high 32 bits. */
    struct alignas(64) Shard
    {
        std::atomic<std::uint64_t> range{0};
    };

    static std::uint64_t pack(std::uint32_t lo, std::uint32_t hi);

    void workerLoop(unsigned self);
    void runShards(unsigned self);
    bool claimFront(Shard &shard, std::uint32_t &lo, std::uint32_t &hi,
                    std::uint32_t chunk);
    bool stealBack(Shard &shard, std::uint32_t &lo, std::uint32_t &hi);
    void invoke(std::uint32_t lo, std::uint32_t hi);

    unsigned threadCount_;
    std::vector<std::thread> workers_;
    std::vector<Shard> shards_;

    /**
     * Pool telemetry, bound to MetricsRegistry::global() once at
     * construction so the hot claim/steal paths touch only lock-free
     * handles: jobs and successful steals as counters, the remaining
     * range length observed at every claim as a queue-depth histogram,
     * and one utilization gauge per worker (busy wall time over job
     * wall time, refreshed after every parallelFor).
     */
    Counter *jobsCounter_ = nullptr;
    Counter *stealsCounter_ = nullptr;
    Histogram *queueDepthHist_ = nullptr;
    std::vector<Gauge *> utilizationGauges_;
    std::vector<std::atomic<std::uint64_t>> busyNs_;

    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    std::uint64_t jobSerial_ = 0; //!< Incremented per parallelFor call.
    bool stopping_ = false;
    unsigned active_ = 0; //!< Workers still draining the current job.

    std::size_t jobBegin_ = 0;
    const std::function<void(std::size_t)> *jobBody_ = nullptr;
    std::exception_ptr jobError_;
    std::mutex errorMutex_;
};

/**
 * One-shot parallelFor: runs on an internal pool of @p threads workers
 * (caller included). threads <= 1 runs inline with zero overhead.
 */
void parallelFor(unsigned threads, std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)> &body);

/**
 * Map fn over [0, n) on @p threads workers and return the results in
 * index order — the deterministic fan-out primitive: parallelize the
 * per-item work, keep the fold serial and ordered.
 */
template <typename T, typename Fn>
std::vector<T>
parallelMap(unsigned threads, std::size_t n, Fn &&fn)
{
    std::vector<T> results(n);
    parallelFor(threads, 0, n,
                [&](std::size_t i) { results[i] = fn(i); });
    return results;
}

} // namespace tracelens

#endif // TRACELENS_UTIL_PARALLEL_H
