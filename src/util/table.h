/**
 * @file
 * ASCII table renderer for bench/report output.
 *
 * Benches print rows shaped like the paper's tables; this helper keeps
 * column alignment and formatting consistent across all of them.
 */

#ifndef TRACELENS_UTIL_TABLE_H
#define TRACELENS_UTIL_TABLE_H

#include <string>
#include <vector>

namespace tracelens
{

/** Column-aligned ASCII table with a header row and separator. */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Render the table, each row newline-terminated. */
    std::string render() const;

    std::size_t rowCount() const { return rows_.size(); }

    /** Format helpers used by the benches. */
    static std::string pct(double fraction, int decimals = 1);
    static std::string num(double value, int decimals = 1);
    static std::string ms(double milliseconds, int decimals = 1);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace tracelens

#endif // TRACELENS_UTIL_TABLE_H
