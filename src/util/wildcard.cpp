/**
 * @file
 * Iterative glob matcher ('*' and '?') used by component filters.
 */

#include "src/util/wildcard.h"

#include <cctype>

namespace tracelens
{

namespace
{

char
lower(char c)
{
    return static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
}

} // namespace

bool
wildcardMatch(std::string_view pattern, std::string_view text)
{
    // Iterative glob match with single backtrack point (classic
    // two-pointer algorithm, linear in |pattern| + |text| for one '*'
    // backtrack level, which is all globs like "*.sys" need).
    std::size_t p = 0, t = 0;
    std::size_t star = std::string_view::npos, mark = 0;

    while (t < text.size()) {
        // The star branch must win over a literal comparison: text may
        // itself contain '*', which must not consume the wildcard.
        if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            mark = t;
        } else if (p < pattern.size() &&
                   (pattern[p] == '?' ||
                    lower(pattern[p]) == lower(text[t]))) {
            ++p;
            ++t;
        } else if (star != std::string_view::npos) {
            p = star + 1;
            t = ++mark;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*')
        ++p;
    return p == pattern.size();
}

NameFilter::NameFilter(std::vector<std::string> patterns)
    : patterns_(std::move(patterns))
{
}

void
NameFilter::add(std::string pattern)
{
    patterns_.push_back(std::move(pattern));
}

bool
NameFilter::matches(std::string_view name) const
{
    for (const auto &p : patterns_) {
        if (wildcardMatch(p, name))
            return true;
    }
    return false;
}

} // namespace tracelens
