/**
 * @file
 * LEB128 varints and zigzag transforms, shared by the TLC1
 * compressed-block codec (src/trace/serialize.cpp) and the protocol-v2
 * wire framing (src/server/wire.cpp).
 *
 * Encoding appends to a std::string (both codecs assemble byte
 * buffers that way); decoding is bounds-checked against the input
 * span and never reads past it — every caller feeds untrusted bytes
 * (a corpus file or a socket).
 */

#ifndef TRACELENS_UTIL_VARINT_H
#define TRACELENS_UTIL_VARINT_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace tracelens
{

/** Append @p value as an LEB128 varint (1..10 bytes). */
inline void
putVarint(std::string &out, std::uint64_t value)
{
    while (value >= 0x80) {
        out.push_back(static_cast<char>((value & 0x7f) | 0x80));
        value >>= 7;
    }
    out.push_back(static_cast<char>(value));
}

/** Map a signed value to an unsigned one with small absolute values
 *  staying small (0,-1,1,-2,... -> 0,1,2,3,...). */
inline std::uint64_t
zigzagEncode(std::int64_t value)
{
    return (static_cast<std::uint64_t>(value) << 1) ^
           static_cast<std::uint64_t>(value >> 63);
}

inline std::int64_t
zigzagDecode(std::uint64_t value)
{
    return static_cast<std::int64_t>(value >> 1) ^
           -static_cast<std::int64_t>(value & 1);
}

/**
 * Decode one LEB128 varint from @p data (size @p size) starting at
 * @p pos. On success advances @p pos past the varint and returns
 * true; returns false on truncation or a varint longer than 10 bytes
 * (which cannot encode a 64-bit value and is therefore hostile
 * input). @p pos is left unspecified on failure.
 */
inline bool
getVarint(const unsigned char *data, std::size_t size,
          std::size_t &pos, std::uint64_t &value)
{
    value = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
        if (pos >= size)
            return false;
        const unsigned char byte = data[pos++];
        value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0) {
            // Reject non-canonical bits dribbling past 64 (shift 63
            // leaves one usable bit).
            if (shift == 63 && (byte & 0x7e) != 0)
                return false;
            return true;
        }
    }
    return false;
}

} // namespace tracelens

#endif // TRACELENS_UTIL_VARINT_H
