/**
 * @file
 * ASCII table layout and number formatting.
 */

#include "src/util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "src/util/logging.h"

namespace tracelens
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    TL_ASSERT(!headers_.empty(), "table needs headers");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    TL_ASSERT(cells.size() == headers_.size(),
              "row width ", cells.size(), " != header width ",
              headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream oss;
    auto emitRow = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            oss << (c == 0 ? "| " : " | ")
                << std::left << std::setw(static_cast<int>(widths[c]))
                << row[c];
        }
        oss << " |\n";
    };

    emitRow(headers_);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        oss << (c == 0 ? "|" : "-|") << std::string(widths[c] + 2, '-');
    }
    oss << "-|\n";
    for (const auto &row : rows_)
        emitRow(row);
    return oss.str();
}

std::string
TextTable::pct(double fraction, int decimals)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(decimals) << fraction * 100.0
        << "%";
    return oss.str();
}

std::string
TextTable::num(double value, int decimals)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(decimals) << value;
    return oss.str();
}

std::string
TextTable::ms(double milliseconds, int decimals)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(decimals) << milliseconds
        << "ms";
    return oss.str();
}

} // namespace tracelens
