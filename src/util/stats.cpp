/**
 * @file
 * Accumulator, histogram, and percentile implementations.
 */

#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/util/logging.h"

namespace tracelens
{

void
Accumulator::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void
Accumulator::merge(const Accumulator &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
Accumulator::min() const
{
    return count_ ? min_ : 0.0;
}

double
Accumulator::max() const
{
    return count_ ? max_ : 0.0;
}

double
Accumulator::mean() const
{
    return count_ ? mean_ : 0.0;
}

double
Accumulator::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

void
SampleSet::add(double x)
{
    samples_.push_back(x);
    sorted_ = false;
}

double
SampleSet::sum() const
{
    double s = 0.0;
    for (double x : samples_)
        s += x;
    return s;
}

double
SampleSet::mean() const
{
    return samples_.empty() ? 0.0
                            : sum() / static_cast<double>(samples_.size());
}

double
SampleSet::quantile(double q) const
{
    if (samples_.empty())
        return 0.0;
    TL_ASSERT(q >= 0.0 && q <= 1.0, "quantile out of range");
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    const auto n = samples_.size();
    auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(n)));
    if (rank > 0)
        --rank;
    return samples_[std::min(rank, n - 1)];
}

LogHistogram::LogHistogram(double base, std::size_t num_buckets)
    : base_(base), counts_(num_buckets, 0)
{
    TL_ASSERT(base > 0.0 && num_buckets > 0, "bad histogram shape");
}

void
LogHistogram::add(double x)
{
    std::size_t bucket = 0;
    if (x >= base_) {
        bucket = static_cast<std::size_t>(std::floor(std::log2(x / base_)));
        bucket = std::min(bucket, counts_.size() - 1);
    }
    ++counts_[bucket];
    ++total_;
}

std::uint64_t
LogHistogram::bucketValue(std::size_t i) const
{
    TL_ASSERT(i < counts_.size(), "bad bucket");
    return counts_[i];
}

std::string
LogHistogram::render() const
{
    std::ostringstream oss;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] == 0)
            continue;
        const double lo = base_ * std::pow(2.0, static_cast<double>(i));
        oss << "[" << lo << ", " << lo * 2 << "): " << counts_[i] << "\n";
    }
    return oss.str();
}

} // namespace tracelens
