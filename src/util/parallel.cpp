/**
 * @file
 * ThreadPool implementation: packed-range shards, CAS chunk claiming,
 * steal-half-from-the-back, condition-variable job hand-off.
 */

#include "src/util/parallel.h"

#include <algorithm>
#include <chrono>

#include "src/util/logging.h"

namespace tracelens
{

unsigned
resolveThreads(unsigned threads)
{
    if (threads != 0)
        return std::max(1u, threads);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

std::uint64_t
ThreadPool::pack(std::uint32_t lo, std::uint32_t hi)
{
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

ThreadPool::ThreadPool(unsigned threads)
    : threadCount_(resolveThreads(threads)), shards_(threadCount_),
      busyNs_(threadCount_)
{
    MetricsRegistry &metrics = MetricsRegistry::global();
    jobsCounter_ = &metrics.counter("pool.jobs");
    stealsCounter_ = &metrics.counter("pool.steals");
    queueDepthHist_ = &metrics.histogram("pool.queue_depth");
    utilizationGauges_.reserve(threadCount_);
    for (unsigned t = 0; t < threadCount_; ++t) {
        utilizationGauges_.push_back(&metrics.gauge(
            detail::concat("pool.worker", t, ".utilization")));
    }

    workers_.reserve(threadCount_ - 1);
    for (unsigned t = 1; t < threadCount_; ++t)
        workers_.emplace_back([this, t] { workerLoop(t); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::workerLoop(unsigned self)
{
    std::uint64_t seen = 0;
    while (true) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] {
                return stopping_ || jobSerial_ != seen;
            });
            if (stopping_)
                return;
            seen = jobSerial_;
        }
        runShards(self);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --active_;
        }
        done_.notify_one();
    }
}

bool
ThreadPool::claimFront(Shard &shard, std::uint32_t &lo,
                       std::uint32_t &hi, std::uint32_t chunk)
{
    std::uint64_t current = shard.range.load(std::memory_order_acquire);
    while (true) {
        const auto cur_lo = static_cast<std::uint32_t>(current >> 32);
        const auto cur_hi = static_cast<std::uint32_t>(current);
        if (cur_lo >= cur_hi)
            return false;
        const std::uint32_t take =
            std::min<std::uint32_t>(chunk, cur_hi - cur_lo);
        if (shard.range.compare_exchange_weak(
                current, pack(cur_lo + take, cur_hi),
                std::memory_order_acq_rel)) {
            queueDepthHist_->record(cur_hi - cur_lo);
            lo = cur_lo;
            hi = cur_lo + take;
            return true;
        }
    }
}

bool
ThreadPool::stealBack(Shard &shard, std::uint32_t &lo,
                      std::uint32_t &hi)
{
    std::uint64_t current = shard.range.load(std::memory_order_acquire);
    while (true) {
        const auto cur_lo = static_cast<std::uint32_t>(current >> 32);
        const auto cur_hi = static_cast<std::uint32_t>(current);
        if (cur_lo >= cur_hi)
            return false;
        // Take the back half (at least one index) so the victim keeps
        // its cache-warm front and the thief gets a meaty chunk.
        const std::uint32_t take =
            std::max<std::uint32_t>(1, (cur_hi - cur_lo) / 2);
        if (shard.range.compare_exchange_weak(
                current, pack(cur_lo, cur_hi - take),
                std::memory_order_acq_rel)) {
            queueDepthHist_->record(cur_hi - cur_lo);
            stealsCounter_->add(1);
            lo = cur_hi - take;
            hi = cur_hi;
            return true;
        }
    }
}

void
ThreadPool::invoke(std::uint32_t lo, std::uint32_t hi)
{
    const std::function<void(std::size_t)> &body = *jobBody_;
    for (std::uint32_t i = lo; i < hi; ++i) {
        try {
            body(jobBegin_ + i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(errorMutex_);
            if (!jobError_)
                jobError_ = std::current_exception();
        }
    }
}

void
ThreadPool::runShards(unsigned self)
{
    Span span("pool.worker", "pool");
    if (span.active())
        span.arg("worker", static_cast<std::uint64_t>(self));
    const auto started = std::chrono::steady_clock::now();

    // Chunk small enough to balance, large enough to amortize the CAS.
    const std::uint64_t own = shards_[self].range.load(
        std::memory_order_acquire);
    const std::uint32_t own_size = static_cast<std::uint32_t>(own) -
                                   static_cast<std::uint32_t>(own >> 32);
    const std::uint32_t chunk = std::max<std::uint32_t>(
        1, own_size / 8);

    std::uint32_t lo = 0, hi = 0;
    while (claimFront(shards_[self], lo, hi, chunk))
        invoke(lo, hi);

    // Own shard drained: steal from the victim with the most work
    // left until every shard is empty.
    while (true) {
        unsigned victim = threadCount_;
        std::uint32_t best = 0;
        for (unsigned t = 0; t < threadCount_; ++t) {
            if (t == self)
                continue;
            const std::uint64_t r =
                shards_[t].range.load(std::memory_order_acquire);
            const auto r_lo = static_cast<std::uint32_t>(r >> 32);
            const auto r_hi = static_cast<std::uint32_t>(r);
            if (r_hi > r_lo && r_hi - r_lo > best) {
                best = r_hi - r_lo;
                victim = t;
            }
        }
        if (victim == threadCount_)
            break; // nothing left anywhere
        if (stealBack(shards_[victim], lo, hi))
            invoke(lo, hi);
    }

    busyNs_[self].fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - started)
                .count()),
        std::memory_order_relaxed);
}

void
ThreadPool::parallelFor(std::size_t begin, std::size_t end,
                        const std::function<void(std::size_t)> &body)
{
    if (begin >= end)
        return;
    const std::size_t n = end - begin;
    TL_ASSERT(n <= UINT32_MAX, "parallelFor range too large");

    if (threadCount_ == 1 || n == 1) {
        for (std::size_t i = begin; i < end; ++i)
            body(i);
        return;
    }

    jobsCounter_->add(1);
    // Workers are quiescent between jobs, so per-job busy time can be
    // reset without synchronization beyond the job hand-off itself.
    for (unsigned t = 0; t < threadCount_; ++t)
        busyNs_[t].store(0, std::memory_order_relaxed);
    const auto jobStart = std::chrono::steady_clock::now();

    // Partition [0, n) into one contiguous shard per worker.
    const std::size_t per = n / threadCount_;
    const std::size_t extra = n % threadCount_;
    std::size_t next = 0;
    for (unsigned t = 0; t < threadCount_; ++t) {
        const std::size_t size = per + (t < extra ? 1 : 0);
        shards_[t].range.store(
            pack(static_cast<std::uint32_t>(next),
                 static_cast<std::uint32_t>(next + size)),
            std::memory_order_release);
        next += size;
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        jobBegin_ = begin;
        jobBody_ = &body;
        jobError_ = nullptr;
        active_ = threadCount_ - 1;
        ++jobSerial_;
    }
    wake_.notify_all();

    runShards(0); // the caller is worker 0

    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [&] { return active_ == 0; });
        jobBody_ = nullptr;
    }

    const double jobNs = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - jobStart)
            .count());
    if (jobNs > 0) {
        for (unsigned t = 0; t < threadCount_; ++t) {
            const double busy = static_cast<double>(
                busyNs_[t].load(std::memory_order_relaxed));
            utilizationGauges_[t]->set(std::min(1.0, busy / jobNs));
        }
    }

    if (jobError_)
        std::rethrow_exception(jobError_);
}

void
parallelFor(unsigned threads, std::size_t begin, std::size_t end,
            const std::function<void(std::size_t)> &body)
{
    const unsigned resolved = resolveThreads(threads);
    if (resolved == 1 || end - begin <= 1) {
        for (std::size_t i = begin; i < end; ++i)
            body(i);
        return;
    }
    ThreadPool pool(resolved);
    pool.parallelFor(begin, end, body);
}

} // namespace tracelens
