/**
 * @file
 * Continuous-mode composition root (src/fleet/service.h).
 */

#include "src/fleet/service.h"

#include <chrono>
#include <filesystem>
#include <utility>

#include "src/fleet/fleet.h"
#include "src/trace/serialize.h"
#include "src/util/logging.h"
#include "src/util/telemetry.h"

namespace tracelens
{

namespace
{

std::uint64_t
nowUnixMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

FleetWindowConfig
windowConfig(const FleetConfig &config)
{
    FleetWindowConfig out;
    out.windowNs = config.windowMs * 1000 * 1000;
    out.maxWindows = config.maxWindows;
    out.analyzer = config.analyzer;
    return out;
}

AlertSink::Config
sinkConfig(const FleetConfig &config)
{
    AlertSink::Config out;
    out.path = config.alertsPath;
    return out;
}

} // namespace

FleetService::FleetService(FleetConfig config)
    : config_(std::move(config)), sink_(sinkConfig(config_)),
      watcher_(config_.dir), windows_(windowConfig(config_)),
      sentinel_(windows_, sink_, config_.sentinel)
{
}

FleetService::~FleetService() { stop(); }

std::size_t
FleetService::pollOnce()
{
    std::lock_guard<std::mutex> lock(mutex_);
    const std::vector<std::string> fresh = watcher_.poll();
    std::size_t ingested = 0;
    for (const std::string &path : fresh) {
        Expected<TraceCorpus> corpus = readCorpusFileChecked(path);
        if (!corpus) {
            // Rename-into-place makes torn reads impossible; a bad
            // shard here is genuinely corrupt. Isolate it, exactly
            // like batch ingestion does.
            TL_LOG(Warn, "fleet: skipping corrupt shard ", path,
                   ": ", corpus.error().render());
            MetricsRegistry::global()
                .counter("fleet.skipped_shards")
                .add(1);
            continue;
        }
        ingestLocked(
            std::filesystem::path(path).filename().string(),
            std::move(corpus.value()), std::nullopt);
        ++ingested;
    }
    return ingested;
}

IngestOutcome
FleetService::ingest(std::string name, TraceCorpus corpus,
                     std::optional<std::uint64_t> timestampMs)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!config_.dir.empty()) {
        // The pusher landed this shard in the spool already; keep the
        // poll loop from ingesting the same file a second time.
        watcher_.markSeen(
            (std::filesystem::path(config_.dir) / name).string());
    }
    return ingestLocked(std::move(name), std::move(corpus),
                        timestampMs);
}

IngestOutcome
FleetService::ingestLocked(std::string name, TraceCorpus corpus,
                           std::optional<std::uint64_t> timestampMs)
{
    const auto start = std::chrono::steady_clock::now();
    const std::uint64_t stampMs =
        timestampMs ? *timestampMs : nowUnixMs();

    IngestOutcome outcome;
    outcome.window = windows_.addShard(
        std::move(name), std::move(corpus),
        stampMs * 1000 * 1000);
    outcome.alerts = sentinel_.evaluate();
    outcome.evicted = windows_.evictExpired().size();

    ingested_.fetch_add(1, std::memory_order_relaxed);
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start);
    MetricsRegistry::global().counter("fleet.ingested_shards").add(1);
    MetricsRegistry::global()
        .histogram("fleet.ingest_ms")
        .record(static_cast<std::uint64_t>(elapsed.count()));
    if (outcome.alerts != 0) {
        // Arrival -> emission latency of the alerts this shard
        // triggered (the BENCH_fleet.json gate).
        MetricsRegistry::global()
            .histogram("fleet.alert_latency_ms")
            .record(static_cast<std::uint64_t>(elapsed.count()));
    }
    return outcome;
}

void
FleetService::start()
{
    if (running_.exchange(true))
        return;
    thread_ = std::thread([this] {
        while (running_.load(std::memory_order_acquire)) {
            pollOnce();
            std::this_thread::sleep_for(
                std::chrono::milliseconds(config_.pollMs));
        }
    });
}

void
FleetService::stop()
{
    if (!running_.exchange(false))
        return;
    if (thread_.joinable())
        thread_.join();
}

JsonValue
FleetService::windowSummary(const std::string &scenario,
                            DurationNs tFast, DurationNs tSlow,
                            const std::string &windowsSel,
                            std::size_t trailing, std::size_t top,
                            bool applyKnowledgeFilter)
{
    std::lock_guard<std::mutex> lock(mutex_);

    std::vector<std::uint64_t> ids;
    if (windowsSel == "all") {
        ids = windows_.allWindows();
    } else {
        std::optional<std::uint64_t> anchor;
        if (windowsSel.empty() || windowsSel == "current") {
            anchor = windows_.currentWindow();
        } else if (!windowsSel.empty() &&
                   windowsSel.find_first_not_of("0123456789") ==
                       std::string::npos) {
            anchor = std::stoull(windowsSel);
        }
        if (anchor) {
            if (trailing > 1) {
                for (std::uint64_t id : windows_.allWindows()) {
                    if (id <= *anchor)
                        ids.push_back(id);
                }
                if (ids.size() > trailing)
                    ids.erase(ids.begin(),
                              ids.begin() +
                                  static_cast<std::ptrdiff_t>(
                                      ids.size() - trailing));
            } else {
                ids.push_back(*anchor);
            }
        }
    }

    const WindowScenarioSummary summary =
        windows_.summarize(ids, scenario, tFast, tSlow, top,
                           applyKnowledgeFilter);

    JsonValue result = JsonValue::makeObject();
    result.set("fleet_revision", JsonValue(fleetRevision()));
    result.set("window_ms", JsonValue(config_.windowMs));
    JsonValue windowIds = JsonValue::makeArray();
    for (std::uint64_t id : summary.windows)
        windowIds.push(JsonValue(id));
    result.set("windows", std::move(windowIds));
    result.set("shards", JsonValue(summary.shards));
    result.set("scenario_found", JsonValue(summary.scenarioFound));
    result.set("summary", summary.summary.json);
    return result;
}

JsonValue
FleetService::status()
{
    std::lock_guard<std::mutex> lock(mutex_);
    JsonValue result = JsonValue::makeObject();
    result.set("fleet_revision", JsonValue(fleetRevision()));
    result.set("dir", JsonValue(config_.dir));
    result.set("window_ms", JsonValue(config_.windowMs));
    result.set("max_windows", JsonValue(config_.maxWindows));
    result.set("ingested_shards", JsonValue(ingestedShards()));
    result.set("retained_shards", JsonValue(windows_.shardCount()));
    result.set("last_alert_seq", JsonValue(sink_.lastSeq()));
    JsonValue windowList = JsonValue::makeArray();
    for (const WindowInfo &info : windows_.windows()) {
        JsonValue entry = JsonValue::makeObject();
        entry.set("id", JsonValue(info.id));
        entry.set("shards", JsonValue(info.shards));
        windowList.push(std::move(entry));
    }
    result.set("window_list", std::move(windowList));
    const WatcherStats &stats = watcher_.stats();
    JsonValue watcher = JsonValue::makeObject();
    watcher.set("polls", JsonValue(stats.polls));
    watcher.set("skipped_entries", JsonValue(stats.skippedEntries));
    watcher.set("reported_shards", JsonValue(stats.reportedShards));
    result.set("watcher", std::move(watcher));
    return result;
}

} // namespace tracelens
