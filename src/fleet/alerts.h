/**
 * @file
 * Structured regression alerts and their sink.
 *
 * The sentinel (src/fleet/sentinel.h) emits Alert records; the sink
 * gives them three audiences at once:
 *
 *  - a JSON-lines file (one alertJson() object per line) for log
 *    shippers and post-mortems,
 *  - an in-memory ring served by the server's `alerts` method, with a
 *    condition-variable waitFor() so clients can long-poll instead of
 *    spinning,
 *  - the process metrics registry (`fleet.alerts` counter,
 *    `fleet.alert_latency_ms` histogram) for the PR 9 Prometheus
 *    endpoint.
 *
 * The JSON schema (docs/FLEET.md "Alert schema") round-trips through
 * parseAlert() and is covered by fleetRevision(): consumers of the
 * sink file should check the revision before trusting field
 * semantics.
 */

#ifndef TRACELENS_FLEET_ALERTS_H
#define TRACELENS_FLEET_ALERTS_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/util/json.h"

namespace tracelens
{

/** One sentinel finding. */
struct Alert
{
    /** Sink-assigned, strictly increasing from 1. */
    std::uint64_t seq = 0;
    /** Rule that fired: "cost_regression" | "impact_rank". */
    std::string rule;
    std::string scenario;
    /** Implicated component ("se.sys"), empty when not attributable. */
    std::string component;
    /** Window the regression was observed in. */
    std::uint64_t window = 0;
    /** Baseline window ids the current window was compared against. */
    std::vector<std::uint64_t> baselineWindows;
    /** Rule-specific severity ratio (current / baseline). */
    double ratio = 0.0;
    /** Human-readable evidence (top diff patterns, shares). */
    std::string detail;
    /** Emission wall-clock, milliseconds since the Unix epoch. */
    std::uint64_t unixMs = 0;
};

/** Render one alert as its schema object (fields in schema order). */
JsonValue alertJson(const Alert &alert);

/** Parse an alertJson() object; nullopt on schema violations. */
std::optional<Alert> parseAlert(const JsonValue &value);

/** See file comment. Thread-safe. */
class AlertSink
{
  public:
    struct Config
    {
        /** JSONL sink file; empty = in-memory ring only. */
        std::string path;
        /** In-memory ring capacity (older alerts roll off). */
        std::size_t capacity = 256;
    };

    AlertSink() : AlertSink(Config{}) {}
    explicit AlertSink(Config config);

    /**
     * Assign the next sequence number, record, append to the sink
     * file, bump metrics, and wake long-pollers. Returns the
     * assigned sequence number.
     */
    std::uint64_t emit(Alert alert);

    /** Ring alerts with seq > @p afterSeq, ascending. */
    std::vector<Alert> since(std::uint64_t afterSeq) const;

    /**
     * since(afterSeq), blocking up to @p maxWaitMs for the first new
     * alert when none is pending (the server's long-poll).
     */
    std::vector<Alert> waitFor(std::uint64_t afterSeq,
                               std::uint64_t maxWaitMs);

    /** Highest sequence number assigned so far (0 = none). */
    std::uint64_t lastSeq() const;

    const Config &config() const { return config_; }

  private:
    std::vector<Alert> sinceLocked(std::uint64_t afterSeq) const;

    Config config_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<Alert> ring_;
    std::uint64_t nextSeq_ = 1;
};

} // namespace tracelens

#endif // TRACELENS_FLEET_ALERTS_H
