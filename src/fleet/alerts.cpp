/**
 * @file
 * Alert JSON schema and the multi-audience sink (src/fleet/alerts.h).
 */

#include "src/fleet/alerts.h"

#include <chrono>
#include <fstream>
#include <utility>

#include "src/fleet/fleet.h"
#include "src/util/logging.h"
#include "src/util/telemetry.h"

namespace tracelens
{

JsonValue
alertJson(const Alert &alert)
{
    JsonValue out = JsonValue::makeObject();
    out.set("fleet_revision", JsonValue(fleetRevision()));
    out.set("seq", JsonValue(alert.seq));
    out.set("rule", JsonValue(alert.rule));
    out.set("scenario", JsonValue(alert.scenario));
    out.set("component", JsonValue(alert.component));
    out.set("window", JsonValue(alert.window));
    JsonValue baseline = JsonValue::makeArray();
    for (std::uint64_t id : alert.baselineWindows)
        baseline.push(JsonValue(id));
    out.set("baseline_windows", std::move(baseline));
    out.set("ratio", JsonValue(alert.ratio));
    out.set("detail", JsonValue(alert.detail));
    out.set("unix_ms", JsonValue(alert.unixMs));
    return out;
}

std::optional<Alert>
parseAlert(const JsonValue &value)
{
    if (!value.isObject())
        return std::nullopt;
    const JsonValue *revision = value.find("fleet_revision");
    if (revision == nullptr || !revision->isNumber() ||
        static_cast<std::uint32_t>(revision->asNumber()) !=
            fleetRevision())
        return std::nullopt;

    Alert alert;
    const auto number = [&](std::string_view key,
                            std::uint64_t &out) {
        const JsonValue *member = value.find(key);
        if (member == nullptr || !member->isNumber())
            return false;
        out = static_cast<std::uint64_t>(member->asNumber());
        return true;
    };
    const auto text = [&](std::string_view key, std::string &out) {
        const JsonValue *member = value.find(key);
        if (member == nullptr || !member->isString())
            return false;
        out = member->asString();
        return true;
    };
    if (!number("seq", alert.seq) || !text("rule", alert.rule) ||
        !text("scenario", alert.scenario) ||
        !text("component", alert.component) ||
        !number("window", alert.window) ||
        !text("detail", alert.detail) ||
        !number("unix_ms", alert.unixMs))
        return std::nullopt;
    const JsonValue *ratio = value.find("ratio");
    if (ratio == nullptr || !ratio->isNumber())
        return std::nullopt;
    alert.ratio = ratio->asNumber();
    const JsonValue *baseline = value.find("baseline_windows");
    if (baseline == nullptr || !baseline->isArray())
        return std::nullopt;
    for (const JsonValue &id : baseline->asArray()) {
        if (!id.isNumber())
            return std::nullopt;
        alert.baselineWindows.push_back(
            static_cast<std::uint64_t>(id.asNumber()));
    }
    return alert;
}

AlertSink::AlertSink(Config config) : config_(std::move(config))
{
    if (config_.capacity == 0)
        config_.capacity = 1;
}

std::uint64_t
AlertSink::emit(Alert alert)
{
    std::string line;
    std::uint64_t seq = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        alert.seq = nextSeq_++;
        if (alert.unixMs == 0) {
            alert.unixMs = static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::system_clock::now()
                        .time_since_epoch())
                    .count());
        }
        seq = alert.seq;
        line = alertJson(alert).render();
        ring_.push_back(std::move(alert));
        while (ring_.size() > config_.capacity)
            ring_.pop_front();
    }
    // File and metrics I/O outside the lock; waiters only need the
    // ring.
    if (!config_.path.empty()) {
        std::ofstream out(config_.path, std::ios::app);
        if (out)
            out << line << "\n";
        else
            TL_LOG(Warn, "fleet: cannot append alert to ",
                   config_.path);
    }
    MetricsRegistry::global().counter("fleet.alerts").add(1);
    cv_.notify_all();
    return seq;
}

std::vector<Alert>
AlertSink::sinceLocked(std::uint64_t afterSeq) const
{
    std::vector<Alert> out;
    for (const Alert &alert : ring_) {
        if (alert.seq > afterSeq)
            out.push_back(alert);
    }
    return out;
}

std::vector<Alert>
AlertSink::since(std::uint64_t afterSeq) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sinceLocked(afterSeq);
}

std::vector<Alert>
AlertSink::waitFor(std::uint64_t afterSeq, std::uint64_t maxWaitMs)
{
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait_for(lock, std::chrono::milliseconds(maxWaitMs), [&] {
        return nextSeq_ > afterSeq + 1;
    });
    return sinceLocked(afterSeq);
}

std::uint64_t
AlertSink::lastSeq() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return nextSeq_ - 1;
}

} // namespace tracelens
