/**
 * @file
 * Fleet-mode revision stamp.
 *
 * Continuous mode (docs/FLEET.md) spans processes: agents push shards
 * with `ingest_push`, daemons serve `window_summary` and `alerts`,
 * and `tracelens watch` tails a spool directory. Window semantics,
 * the alert JSON schema, and the ingest-push parameter contract must
 * all agree across those processes, so — exactly like
 * partialEncodingRevision() for the TLP1 payloads — a single integer
 * names the fleet protocol generation. `tracelens version` and the
 * server's `health` response advertise it, and `ingest_push` rejects
 * a mismatched pusher up front: mixed-version fleets fail the
 * handshake loudly instead of mis-bucketing windows silently.
 */

#ifndef TRACELENS_FLEET_FLEET_H
#define TRACELENS_FLEET_FLEET_H

#include <cstdint>

namespace tracelens
{

/**
 * Revision of the fleet/watch contract: window bucketing semantics,
 * alert schema, and the `ingest_push` / `window_summary` / `alerts`
 * parameter shapes. Bump on any incompatible change.
 */
std::uint32_t fleetRevision();

} // namespace tracelens

#endif // TRACELENS_FLEET_FLEET_H
