/**
 * @file
 * CorpusWatcher: poll-based discovery of finished shards in a spool
 * directory.
 *
 * Writers follow the rename-into-place convention (docs/TRACE_FORMAT.md
 * "Sharded corpora"): stage bytes under a temporary name (`*.tmp` or a
 * dotfile) in the *same directory*, then rename() to the final `*.tlc`
 * name. rename(2) within a filesystem is atomic, so a finished name
 * always denotes complete bytes; the watcher only ever reports names
 * accepted by isShardFilename() (src/trace/source.h), which is the
 * same predicate every corpus-directory scan uses.
 *
 * Polling, not inotify: the spool may live on NFS or be bind-mounted
 * into a container, where change notification is unreliable; a fleet
 * spool sees shards per tens of seconds, so a sub-second poll is far
 * below the noise floor. Each poll reports newly appeared shards in
 * filename order — the canonical merge order — and never reports the
 * same path twice.
 */

#ifndef TRACELENS_FLEET_WATCHER_H
#define TRACELENS_FLEET_WATCHER_H

#include <cstddef>
#include <string>
#include <unordered_set>
#include <vector>

namespace tracelens
{

/** Poll counters (surfaced by FleetService::status). */
struct WatcherStats
{
    std::size_t polls = 0;
    /** Directory entries skipped as unfinished/non-shard files. */
    std::size_t skippedEntries = 0;
    /** Finished shards reported over the watcher's lifetime. */
    std::size_t reportedShards = 0;
};

/** See file comment. Not thread-safe; callers serialize poll(). */
class CorpusWatcher
{
  public:
    explicit CorpusWatcher(std::string dir);

    /**
     * Scan the spool once. Returns the full paths of finished shards
     * that appeared since the previous poll, sorted by filename. A
     * missing or unreadable directory yields an empty batch (the
     * spool may be created after the watcher starts).
     */
    std::vector<std::string> poll();

    /**
     * Record @p path as already reported so a later poll() skips it.
     * The server's `ingest_push` handler writes shards into the spool
     * itself and ingests them synchronously; marking the landed path
     * here keeps the poll loop from ingesting the same shard twice.
     */
    void markSeen(const std::string &path);

    const std::string &dir() const { return dir_; }
    const WatcherStats &stats() const { return stats_; }

  private:
    std::string dir_;
    /** Full paths already reported. */
    std::unordered_set<std::string> seen_;
    WatcherStats stats_;
};

} // namespace tracelens

#endif // TRACELENS_FLEET_WATCHER_H
