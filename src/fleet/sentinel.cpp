/**
 * @file
 * Window-over-window regression rules (src/fleet/sentinel.h).
 */

#include "src/fleet/sentinel.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

#include "src/mining/diff.h"

namespace tracelens
{

namespace
{

/** Per-component total pattern impact, ranked descending. */
std::vector<std::pair<std::string, double>>
componentImpacts(const MiningResult &mining,
                 const SymbolTable &symbols)
{
    std::map<std::string, double> totals;
    for (const ContrastPattern &pattern : mining.patterns) {
        for (const std::string &component :
             patternComponents(pattern, symbols))
            totals[component] += pattern.impact();
    }
    std::vector<std::pair<std::string, double>> ranked(
        totals.begin(), totals.end());
    // Ties break by name (the map is name-sorted already), keeping
    // the ranking deterministic across arrival interleavings.
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto &a, const auto &b) {
                         return a.second > b.second;
                     });
    return ranked;
}

} // namespace

std::vector<std::string>
patternComponents(const ContrastPattern &pattern,
                  const SymbolTable &symbols)
{
    std::vector<std::string> components;
    const auto scan = [&](const std::vector<FrameId> &set) {
        for (FrameId frame : set) {
            if (frame == kNoFrame)
                continue;
            const std::string &name = symbols.componentName(frame);
            if (std::find(components.begin(), components.end(),
                          name) == components.end())
                components.push_back(name);
        }
    };
    scan(pattern.tuple.waits);
    scan(pattern.tuple.unwaits);
    scan(pattern.tuple.runnings);
    return components;
}

RegressionSentinel::RegressionSentinel(WindowedAnalyzer &windows,
                                       AlertSink &sink,
                                       SentinelConfig config)
    : windows_(windows), sink_(sink), config_(std::move(config))
{
    if (config_.baselineWindows == 0)
        config_.baselineWindows = 1;
    if (config_.topK == 0)
        config_.topK = 1;
}

std::size_t
RegressionSentinel::evaluate()
{
    const std::optional<std::uint64_t> current =
        windows_.currentWindow();
    if (!current)
        return 0;
    // Baseline: the most recent windows strictly before the current
    // one, up to baselineWindows of them.
    std::vector<std::uint64_t> baseline;
    for (std::uint64_t id : windows_.allWindows()) {
        if (id < *current)
            baseline.push_back(id);
    }
    if (baseline.size() > config_.baselineWindows)
        baseline.erase(baseline.begin(),
                       baseline.begin() +
                           static_cast<std::ptrdiff_t>(
                               baseline.size() -
                               config_.baselineWindows));
    if (baseline.empty())
        return 0; // nothing to regress against yet

    std::size_t emitted = 0;
    for (const ScenarioThresholds &scenario : config_.scenarios)
        emitted += evaluateScenario(scenario, *current, baseline);
    return emitted;
}

std::size_t
RegressionSentinel::evaluateScenario(
    const ScenarioThresholds &scenario, std::uint64_t current,
    const std::vector<std::uint64_t> &baseline)
{
    const WindowScenarioSummary now = windows_.summarize(
        {current}, scenario.name, scenario.tFast, scenario.tSlow,
        /*top=*/5, /*applyKnowledgeFilter=*/true);
    if (!now.scenarioFound)
        return 0;
    const WindowScenarioSummary base = windows_.summarize(
        baseline, scenario.name, scenario.tFast, scenario.tSlow,
        /*top=*/5, /*applyKnowledgeFilter=*/true);
    if (!base.scenarioFound)
        return 0;

    const MiningDiff diff = diffMiningResults(
        base.summary.mining, base.symbols, now.summary.mining,
        now.symbols, config_.changeRatio);

    std::size_t emitted = 0;

    // Rule 1: driver cost share of the slow class regressed.
    if (base.summary.driverCostShare > 0.0) {
        const double ratio = now.summary.driverCostShare /
                             base.summary.driverCostShare;
        if (ratio > config_.costRatio) {
            Alert alert;
            alert.rule = "cost_regression";
            alert.scenario = scenario.name;
            alert.window = current;
            alert.baselineWindows = baseline;
            alert.ratio = ratio;
            std::ostringstream detail;
            detail << "driver cost share "
                   << base.summary.driverCostShare * 100 << "% -> "
                   << now.summary.driverCostShare * 100 << "%; "
                   << diff.appeared.size() << " patterns appeared, "
                   << diff.changed.size() << " changed";
            alert.detail = detail.str();
            if (fireOnce(std::move(alert)))
                ++emitted;
        }
    }

    // Rule 2: a component entered the top-K impact ranking.
    const auto nowRanked =
        componentImpacts(now.summary.mining, now.symbols);
    const auto baseRanked =
        componentImpacts(base.summary.mining, base.symbols);
    const std::size_t k = config_.topK;
    std::vector<std::string> baseTop;
    for (std::size_t i = 0; i < std::min(k, baseRanked.size()); ++i)
        baseTop.push_back(baseRanked[i].first);
    for (std::size_t i = 0; i < std::min(k, nowRanked.size()); ++i) {
        const auto &[component, impact] = nowRanked[i];
        if (std::find(baseTop.begin(), baseTop.end(), component) !=
            baseTop.end())
            continue;
        double baseImpact = 0.0;
        for (const auto &[name, value] : baseRanked) {
            if (name == component)
                baseImpact = value;
        }
        Alert alert;
        alert.rule = "impact_rank";
        alert.scenario = scenario.name;
        alert.component = component;
        alert.window = current;
        alert.baselineWindows = baseline;
        // 1e9 stands in for "not ranked at all before" — infinities
        // do not survive JSON.
        alert.ratio =
            baseImpact > 0.0 ? impact / baseImpact : 1e9;
        std::ostringstream detail;
        detail << component << " entered impact top-" << k
               << " at rank " << i + 1 << "; evidence:\n"
               << diff.render(now.symbols, 3);
        alert.detail = detail.str();
        if (fireOnce(std::move(alert)))
            ++emitted;
    }
    return emitted;
}

bool
RegressionSentinel::fireOnce(Alert alert)
{
    std::string key = alert.rule;
    key += '|';
    key += alert.scenario;
    key += '|';
    key += alert.component;
    key += '|';
    key += std::to_string(alert.window);
    if (!fired_.insert(std::move(key)).second)
        return false;
    sink_.emit(std::move(alert));
    return true;
}

} // namespace tracelens
