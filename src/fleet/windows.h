/**
 * @file
 * WindowedAnalyzer: rolling time windows over a live shard stream.
 *
 * Continuous mode cannot re-analyze the past on every arrival, and it
 * cannot keep unbounded history. This layer buckets arriving shards
 * into fixed-width time windows (window id = timestamp / width, so
 * membership is a pure function of the timestamp — arrival
 * interleaving can never change it) and serves per-window and
 * trailing-N-window scenario summaries by *re-merging per-shard
 * partial results* (src/core/partial.h) instead of re-running the
 * pipeline:
 *
 *  - Each shard's ScenarioPartial is computed once (transient
 *    single-shard Analyzer) and cached per (scenario, thresholds).
 *  - A summary merges the selected windows' cached partials in
 *    *name-sorted order* — the same filename order openSource() and
 *    the coordinator's enumerateShards() use — through the exact
 *    gather fold of coordinator mode, then finalizes through the
 *    shared renderer (src/core/resultjson.h).
 *
 * Because the partial merge is associative and order-deterministic,
 * and the merge order is derived from shard *names* rather than
 * arrival times, a window summary is byte-identical to a cold batch
 * `analyze` over the same shard files regardless of how their
 * arrivals interleaved (asserted by tests/fleet_test.cpp and
 * scripts/smoke_fleet.sh).
 *
 * The ring is bounded: evictExpired() drops the oldest windows beyond
 * maxWindows, releasing their retained corpora and cached partials
 * (the in-memory artifact state of this layer). Not thread-safe —
 * FleetService serializes access.
 */

#ifndef TRACELENS_FLEET_WINDOWS_H
#define TRACELENS_FLEET_WINDOWS_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "src/core/analyzer.h"
#include "src/core/partial.h"
#include "src/core/resultjson.h"
#include "src/trace/stream.h"

namespace tracelens
{

/** Rolling-window configuration. */
struct FleetWindowConfig
{
    /** Window width; shards bucket by timestamp / width. */
    std::uint64_t windowNs = 60ull * 1000 * 1000 * 1000;
    /** Bounded ring: evictExpired() keeps the newest N windows. */
    std::size_t maxWindows = 8;
    /** Pipeline configuration for the per-shard partial analyzers. */
    AnalyzerConfig analyzer;
};

/** One window's metadata. */
struct WindowInfo
{
    std::uint64_t id = 0;
    std::size_t shards = 0;
    std::uint64_t firstTimestampNs = 0;
    std::uint64_t lastTimestampNs = 0;
};

/** A finalized summary over a window selection. */
struct WindowScenarioSummary
{
    /** Mining/coverage plus the analyze-shaped JSON object. */
    ScenarioSummary summary;
    /** Merged symbol table the summary's patterns index into. */
    SymbolTable symbols;
    bool scenarioFound = false;
    std::size_t shards = 0;
    /** The windows merged, ascending. */
    std::vector<std::uint64_t> windows;
};

/** See file comment. */
class WindowedAnalyzer
{
  public:
    explicit WindowedAnalyzer(FleetWindowConfig config = {});

    /** Window id owning @p timestampNs. */
    std::uint64_t windowOf(std::uint64_t timestampNs) const;

    /**
     * Ingest one shard under its spool @p name (the merge-order key;
     * a re-pushed name replaces the previous corpus). Returns the
     * owning window id.
     */
    std::uint64_t addShard(std::string name, TraceCorpus corpus,
                           std::uint64_t timestampNs);

    /**
     * Drop the oldest windows beyond maxWindows, releasing their
     * corpora and cached partials. Returns the evicted shard names
     * (the service uses them to clean the spool/session side).
     */
    std::vector<std::string> evictExpired();

    /** Per-window metadata, ascending by id. */
    std::vector<WindowInfo> windows() const;

    /** Newest window id; nullopt before the first shard. */
    std::optional<std::uint64_t> currentWindow() const;

    /** The newest @p n window ids (ascending); fewer when young. */
    std::vector<std::uint64_t> trailingWindows(std::size_t n) const;

    /** Every live window id, ascending. */
    std::vector<std::uint64_t> allWindows() const;

    /** Retained shards across all windows. */
    std::size_t shardCount() const;

    /**
     * Merge the selected windows' partials and finalize one scenario
     * summary (see file comment for the byte-identity contract).
     * Unknown window ids are ignored; an empty selection yields an
     * empty summary with scenarioFound = false.
     */
    WindowScenarioSummary
    summarize(const std::vector<std::uint64_t> &windowIds,
              const std::string &scenario, DurationNs tFast,
              DurationNs tSlow, std::size_t top,
              bool applyKnowledgeFilter) const;

    const FleetWindowConfig &config() const { return config_; }

  private:
    struct ShardEntry
    {
        std::string name;
        std::uint64_t timestampNs = 0;
        TraceCorpus corpus;
        /** Partial cache keyed by (scenario, tFast, tSlow). */
        mutable std::map<
            std::tuple<std::string, DurationNs, DurationNs>,
            ScenarioPartial>
            partials;
    };

    /** Compute-or-fetch one shard's cached scenario partial. */
    const ScenarioPartial &shardPartial(const ShardEntry &entry,
                                        const std::string &scenario,
                                        DurationNs tFast,
                                        DurationNs tSlow) const;

    FleetWindowConfig config_;
    /** Window id -> shards, insertion order within the window. */
    std::map<std::uint64_t, std::vector<ShardEntry>> windows_;
};

} // namespace tracelens

#endif // TRACELENS_FLEET_WINDOWS_H
