/**
 * @file
 * RegressionSentinel: the always-on answer to "which driver's impact
 * changed this week?".
 *
 * After every ingest the sentinel compares the current window against
 * a trailing baseline (the previous N windows merged) for each
 * watched scenario, through two rules:
 *
 *  - cost_regression — the scenario's driver cost share (the paper's
 *    headline (D_wait + D_run) / D_scn figure) grew by more than
 *    costRatio against the baseline.
 *  - impact_rank — a component entered the top-K of the per-component
 *    pattern-impact ranking that was not in the baseline's top-K.
 *    Evidence comes from diffMiningResults() (src/mining/diff.h):
 *    the appeared/changed patterns naming the component.
 *
 * Both rules fire *exactly once* per (rule, scenario, component,
 * window): a fired-key set suppresses re-firing while the window
 * keeps filling and evaluations repeat, so a persistent condition
 * produces one alert per window, never a flap per shard
 * (tests/fleet_test.cpp). Alerts go to an AlertSink
 * (src/fleet/alerts.h).
 *
 * Not thread-safe — FleetService serializes evaluate() with ingest.
 */

#ifndef TRACELENS_FLEET_SENTINEL_H
#define TRACELENS_FLEET_SENTINEL_H

#include <cstddef>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/core/analyzer.h"
#include "src/fleet/alerts.h"
#include "src/fleet/windows.h"

namespace tracelens
{

/** Sentinel rule thresholds. */
struct SentinelConfig
{
    /** Scenarios to watch, with their classification thresholds. */
    std::vector<ScenarioThresholds> scenarios;
    /** Trailing windows merged into the baseline. */
    std::size_t baselineWindows = 3;
    /** cost_regression fires above current/baseline cost-share ratio. */
    double costRatio = 1.5;
    /** diffMiningResults change ratio (pattern-level evidence). */
    double changeRatio = 1.5;
    /** impact_rank watches the top-K components by pattern impact. */
    std::size_t topK = 3;
};

/** See file comment. */
class RegressionSentinel
{
  public:
    RegressionSentinel(WindowedAnalyzer &windows, AlertSink &sink,
                       SentinelConfig config);

    /**
     * Compare the current window against its trailing baseline for
     * every watched scenario; emit alerts for fresh findings.
     * Returns the number of alerts emitted by this call.
     */
    std::size_t evaluate();

    const SentinelConfig &config() const { return config_; }

  private:
    /** Evaluate one scenario; returns alerts emitted. */
    std::size_t evaluateScenario(const ScenarioThresholds &scenario,
                                 std::uint64_t current,
                                 const std::vector<std::uint64_t>
                                     &baseline);

    /** Emit unless (rule, scenario, component, window) already fired. */
    bool fireOnce(Alert alert);

    WindowedAnalyzer &windows_;
    AlertSink &sink_;
    SentinelConfig config_;
    std::unordered_set<std::string> fired_;
};

/**
 * Components named by @p pattern's signature tuple, deduplicated
 * (each frame's component via @p symbols). The attribution the
 * impact_rank rule aggregates over.
 */
std::vector<std::string>
patternComponents(const ContrastPattern &pattern,
                  const SymbolTable &symbols);

} // namespace tracelens

#endif // TRACELENS_FLEET_SENTINEL_H
