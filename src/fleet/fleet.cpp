/**
 * @file
 * Fleet-mode revision stamp (src/fleet/fleet.h).
 */

#include "src/fleet/fleet.h"

namespace tracelens
{

std::uint32_t
fleetRevision()
{
    return 1;
}

} // namespace tracelens
