/**
 * @file
 * FleetService: the continuous-mode composition root.
 *
 * Owns the spool watcher, the rolling-window ring, the sentinel, and
 * the alert sink, and serializes every mutation behind one mutex so
 * the three entry points can interleave safely:
 *
 *  - the background poll thread (`tracelens watch`, or a daemon
 *    started with --watch) discovering renamed-into-place shards,
 *  - the server's `ingest_push` handler pushing decoded shards,
 *  - the server's `window_summary` / `alerts` handlers reading.
 *
 * Every ingest runs the same sequence: bucket the shard by timestamp,
 * evaluate the sentinel against the trailing baseline, evict expired
 * windows. Ingest throughput, alert counts, and shard-arrival →
 * alert-emission latency are exported through the metrics registry
 * (`fleet.*`, docs/TELEMETRY.md) and gated by bench_scale's
 * BENCH_fleet.json section.
 */

#ifndef TRACELENS_FLEET_SERVICE_H
#define TRACELENS_FLEET_SERVICE_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/fleet/alerts.h"
#include "src/fleet/sentinel.h"
#include "src/fleet/watcher.h"
#include "src/fleet/windows.h"
#include "src/util/json.h"

namespace tracelens
{

/** Continuous-mode configuration (CLI: `tracelens watch --help`). */
struct FleetConfig
{
    /** Spool directory to watch (and the ingest_push target). */
    std::string dir;
    /** Window width in milliseconds. */
    std::uint64_t windowMs = 60000;
    /** Bounded window ring size. */
    std::size_t maxWindows = 8;
    /** Poll interval of the background thread. */
    std::uint64_t pollMs = 200;
    /** Sentinel rules (watched scenarios + thresholds). */
    SentinelConfig sentinel;
    /** Pipeline configuration for per-shard partials. */
    AnalyzerConfig analyzer;
    /** Alert JSONL sink path; empty = in-memory ring only. */
    std::string alertsPath;
};

/** Outcome of one ingest (diagnostics + tests). */
struct IngestOutcome
{
    /** Window the shard landed in. */
    std::uint64_t window = 0;
    /** Alerts the post-ingest sentinel pass emitted. */
    std::size_t alerts = 0;
    /** Shards evicted by the post-ingest ring trim. */
    std::size_t evicted = 0;
};

/** See file comment. Thread-safe. */
class FleetService
{
  public:
    explicit FleetService(FleetConfig config);
    ~FleetService();

    FleetService(const FleetService &) = delete;
    FleetService &operator=(const FleetService &) = delete;

    /**
     * Scan the spool once and ingest every newly finished shard in
     * filename order (ingest time = wall clock). Returns the number
     * of shards ingested.
     */
    std::size_t pollOnce();

    /**
     * Ingest one corpus directly under spool name @p name.
     * @p timestampMs overrides the window-bucketing wall clock — the
     * determinism hook `ingest_push` exposes as `timestamp_ms`.
     */
    IngestOutcome ingest(std::string name, TraceCorpus corpus,
                         std::optional<std::uint64_t> timestampMs);

    /** Start/stop the background poll thread (idempotent). */
    void start();
    void stop();

    /**
     * One scenario summary over a window selection. @p windowsSel is
     * "current" (default), "all", or a decimal window id; @p trailing
     * widens the selection to the N windows up to and including the
     * selected one (0 = just the selection). Result: fleet_revision,
     * window metadata, and the analyze-shaped object under "summary".
     */
    JsonValue windowSummary(const std::string &scenario,
                            DurationNs tFast, DurationNs tSlow,
                            const std::string &windowsSel,
                            std::size_t trailing, std::size_t top,
                            bool applyKnowledgeFilter);

    /** Watch-state overview (windows, shards, alerts, watcher). */
    JsonValue status();

    AlertSink &alerts() { return sink_; }
    const FleetConfig &config() const { return config_; }

    /** Shards ingested over the service's lifetime. */
    std::uint64_t ingestedShards() const
    {
        return ingested_.load(std::memory_order_relaxed);
    }

  private:
    /** The locked ingest + sentinel + evict sequence. */
    IngestOutcome
    ingestLocked(std::string name, TraceCorpus corpus,
                 std::optional<std::uint64_t> timestampMs);

    FleetConfig config_;
    AlertSink sink_;
    CorpusWatcher watcher_;

    std::mutex mutex_; //!< guards windows_, sentinel_, watcher_
    WindowedAnalyzer windows_;
    RegressionSentinel sentinel_;

    std::atomic<std::uint64_t> ingested_{0};
    std::atomic<bool> running_{false};
    std::thread thread_;
};

} // namespace tracelens

#endif // TRACELENS_FLEET_SERVICE_H
