/**
 * @file
 * Rolling-window shard ring and partial re-merge (src/fleet/windows.h).
 */

#include "src/fleet/windows.h"

#include <algorithm>
#include <utility>

#include "src/trace/source.h"
#include "src/util/telemetry.h"

namespace tracelens
{

WindowedAnalyzer::WindowedAnalyzer(FleetWindowConfig config)
    : config_(std::move(config))
{
    if (config_.windowNs == 0)
        config_.windowNs = 1;
    if (config_.maxWindows == 0)
        config_.maxWindows = 1;
}

std::uint64_t
WindowedAnalyzer::windowOf(std::uint64_t timestampNs) const
{
    return timestampNs / config_.windowNs;
}

std::uint64_t
WindowedAnalyzer::addShard(std::string name, TraceCorpus corpus,
                           std::uint64_t timestampNs)
{
    // A re-pushed name replaces its previous corpus wherever it
    // lives — names are the merge-order identity, so one name must
    // never contribute twice.
    for (auto &[id, shards] : windows_) {
        shards.erase(std::remove_if(shards.begin(), shards.end(),
                                    [&](const ShardEntry &entry) {
                                        return entry.name == name;
                                    }),
                     shards.end());
    }
    for (auto it = windows_.begin(); it != windows_.end();) {
        if (it->second.empty())
            it = windows_.erase(it);
        else
            ++it;
    }

    const std::uint64_t id = windowOf(timestampNs);
    ShardEntry entry;
    entry.name = std::move(name);
    entry.timestampNs = timestampNs;
    entry.corpus = std::move(corpus);
    windows_[id].push_back(std::move(entry));
    return id;
}

std::vector<std::string>
WindowedAnalyzer::evictExpired()
{
    std::vector<std::string> evicted;
    while (windows_.size() > config_.maxWindows) {
        auto oldest = windows_.begin();
        for (const ShardEntry &entry : oldest->second)
            evicted.push_back(entry.name);
        windows_.erase(oldest);
    }
    if (!evicted.empty()) {
        MetricsRegistry::global()
            .counter("fleet.evicted_shards")
            .add(evicted.size());
    }
    return evicted;
}

std::vector<WindowInfo>
WindowedAnalyzer::windows() const
{
    std::vector<WindowInfo> out;
    out.reserve(windows_.size());
    for (const auto &[id, shards] : windows_) {
        WindowInfo info;
        info.id = id;
        info.shards = shards.size();
        for (const ShardEntry &entry : shards) {
            if (info.shards != 0 &&
                (info.firstTimestampNs == 0 ||
                 entry.timestampNs < info.firstTimestampNs))
                info.firstTimestampNs = entry.timestampNs;
            info.lastTimestampNs =
                std::max(info.lastTimestampNs, entry.timestampNs);
        }
        out.push_back(info);
    }
    return out;
}

std::optional<std::uint64_t>
WindowedAnalyzer::currentWindow() const
{
    if (windows_.empty())
        return std::nullopt;
    return windows_.rbegin()->first;
}

std::vector<std::uint64_t>
WindowedAnalyzer::trailingWindows(std::size_t n) const
{
    std::vector<std::uint64_t> ids = allWindows();
    if (ids.size() > n)
        ids.erase(ids.begin(),
                  ids.begin() +
                      static_cast<std::ptrdiff_t>(ids.size() - n));
    return ids;
}

std::vector<std::uint64_t>
WindowedAnalyzer::allWindows() const
{
    std::vector<std::uint64_t> ids;
    ids.reserve(windows_.size());
    for (const auto &[id, shards] : windows_)
        ids.push_back(id);
    return ids;
}

std::size_t
WindowedAnalyzer::shardCount() const
{
    std::size_t count = 0;
    for (const auto &[id, shards] : windows_)
        count += shards.size();
    return count;
}

const ScenarioPartial &
WindowedAnalyzer::shardPartial(const ShardEntry &entry,
                               const std::string &scenario,
                               DurationNs tFast, DurationNs tSlow) const
{
    const auto key = std::make_tuple(scenario, tFast, tSlow);
    auto it = entry.partials.find(key);
    if (it != entry.partials.end())
        return it->second;

    // Transient single-shard analyzer; the partial is the artifact we
    // keep, so the analyzer's own store stays in-memory.
    AnalyzerConfig config = config_.analyzer;
    config.artifactCacheDir.clear();
    EagerSource source(entry.corpus);
    Analyzer analyzer(source, std::move(config));
    ScenarioPartial partial =
        analyzer.scenarioPartial(scenario, tFast, tSlow);
    return entry.partials.emplace(key, std::move(partial))
        .first->second;
}

WindowScenarioSummary
WindowedAnalyzer::summarize(const std::vector<std::uint64_t> &windowIds,
                            const std::string &scenario,
                            DurationNs tFast, DurationNs tSlow,
                            std::size_t top,
                            bool applyKnowledgeFilter) const
{
    WindowScenarioSummary out;

    // Collect the selection's shards and restore canonical merge
    // order: sorted by name, exactly the filename order a batch
    // openSource() over the same files would use.
    std::vector<const ShardEntry *> selected;
    for (std::uint64_t id : windowIds) {
        auto it = windows_.find(id);
        if (it == windows_.end())
            continue;
        out.windows.push_back(id);
        for (const ShardEntry &entry : it->second)
            selected.push_back(&entry);
    }
    std::sort(out.windows.begin(), out.windows.end());
    out.windows.erase(
        std::unique(out.windows.begin(), out.windows.end()),
        out.windows.end());
    std::sort(selected.begin(), selected.end(),
              [](const ShardEntry *a, const ShardEntry *b) {
                  return a->name < b->name;
              });
    out.shards = selected.size();

    // The coordinator's gather fold (Coordinator::gatherScenario),
    // run locally over cached partials.
    PartialClasses classes;
    PartialImpact slowImpact;
    PartialAwg awgFast;
    PartialAwg awgSlow;
    std::uint32_t streams = 0;
    for (const ShardEntry *entry : selected) {
        ScenarioPartial partial =
            shardPartial(*entry, scenario, tFast, tSlow);
        if (entry->corpus.findScenario(scenario) != UINT32_MAX)
            out.scenarioFound = true;
        partial.remapFrames(out.symbols);
        classes.merge(partial.classes);
        partial.slowImpact.rebaseStreams(streams);
        slowImpact.merge(partial.slowImpact);
        awgFast.merge(partial.awgFast);
        awgSlow.merge(partial.awgSlow);
        streams += partial.streamCount;
    }

    const ImpactResult impact = slowImpact.finalize();
    const AggregatedWaitGraph fast = std::move(awgFast).finalize(true);
    const AggregatedWaitGraph slow = std::move(awgSlow).finalize(true);
    out.summary = summarizeScenario(scenario, tFast, tSlow, classes,
                                    impact, fast, slow, out.symbols,
                                    top, applyKnowledgeFilter);
    return out;
}

} // namespace tracelens
