/**
 * @file
 * Poll-based spool-directory watcher (src/fleet/watcher.h).
 */

#include "src/fleet/watcher.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "src/trace/source.h"

namespace tracelens
{

CorpusWatcher::CorpusWatcher(std::string dir) : dir_(std::move(dir)) {}

std::vector<std::string>
CorpusWatcher::poll()
{
    ++stats_.polls;
    std::vector<std::string> fresh;
    std::error_code ec;
    std::filesystem::directory_iterator it(dir_, ec);
    if (ec)
        return fresh; // spool not created yet, or transient error
    for (const auto &entry : it) {
        if (!entry.is_regular_file())
            continue;
        if (!isShardFilename(entry.path().filename().string())) {
            ++stats_.skippedEntries;
            continue;
        }
        std::string path = entry.path().string();
        if (seen_.count(path) != 0)
            continue;
        fresh.push_back(std::move(path));
    }
    std::sort(fresh.begin(), fresh.end());
    for (const std::string &path : fresh)
        seen_.insert(path);
    stats_.reportedShards += fresh.size();
    return fresh;
}

void
CorpusWatcher::markSeen(const std::string &path)
{
    seen_.insert(path);
}

} // namespace tracelens
