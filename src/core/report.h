/**
 * @file
 * Consolidated text report over a corpus: the document a performance
 * analyst would read first — corpus summary, validation, corpus-wide
 * and per-component impact, and per-scenario causality results with
 * by-design patterns filtered out.
 */

#ifndef TRACELENS_CORE_REPORT_H
#define TRACELENS_CORE_REPORT_H

#include <span>
#include <string>
#include <vector>

#include "src/core/analyzer.h"
#include "src/mining/knowledge.h"

namespace tracelens
{

// ScenarioThresholds (the per-scenario input) lives in
// src/core/analyzer.h next to the analyzeScenarios fan-out.

/** Report shaping options. */
struct ReportOptions
{
    /** Patterns listed per scenario. */
    std::size_t topPatterns = 5;
    /** Components listed in the per-component impact section. */
    std::size_t topComponents = 10;
    /** Apply KnowledgeBase::defaults() to suppress by-design noise. */
    bool applyKnowledgeFilter = true;
};

/**
 * Build the report. Scenarios not present in the corpus are skipped
 * (noted in the output).
 */
std::string buildReport(const Analyzer &analyzer,
                        std::span<const ScenarioThresholds> scenarios,
                        const ReportOptions &options = {});

} // namespace tracelens

#endif // TRACELENS_CORE_REPORT_H
