/**
 * @file
 * The partial-result merge layer: accumulator semantics (the exact
 * folds the serial pipeline performs, factored out so every reduction
 * path shares them) and the versioned TLP1 wire codec for the
 * cross-machine bundles.
 */

#include "src/core/partial.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "src/util/logging.h"

namespace tracelens
{

namespace
{

constexpr char kPartialMagic[4] = {'T', 'L', 'P', '1'};
constexpr std::uint32_t kPartialRevision = 1;

constexpr std::uint8_t kKindScenario = 1;
constexpr std::uint8_t kKindImpact = 2;

SourceError
corrupt(std::string_view what)
{
    return SourceError{"<partial>", 0,
                       "corrupt partial encoding: " + std::string(what)};
}

void
putString(std::string &out, std::string_view text)
{
    putU32(out, static_cast<std::uint32_t>(text.size()));
    out.append(text.data(), text.size());
}

bool
getString(ByteReader &reader, std::string &out)
{
    const std::uint32_t size = reader.u32();
    if (reader.failed() || !reader.countFits(size, 1))
        return false;
    return reader.bytes(out, size);
}

} // namespace

std::uint32_t
partialEncodingRevision()
{
    return kPartialRevision;
}

// ---------------------------------------------------------------- impact

void
PartialImpact::absorbInstance(
    DurationNs dScn, DurationNs dRun,
    std::span<const std::pair<EventRef, DurationNs>> waitHits)
{
    ++instances_;
    dScn_ += dScn;
    dRun_ += dRun;
    for (const auto &[ref, cost] : waitHits) {
        dWait_ += cost;
        if (seen_.insert(ref).second) {
            dWaitDist_ += cost;
            distinct_.emplace_back(ref, cost);
        }
    }
}

void
PartialImpact::merge(const PartialImpact &other)
{
    instances_ += other.instances_;
    dScn_ += other.dScn_;
    dRun_ += other.dRun_;
    dWait_ += other.dWait_;
    // Replay the other side's first-seen sequence through this
    // accumulator's seen-set: a wait the prefix already counted stays
    // counted once, exactly as the sequential fold would have it.
    for (const auto &[ref, cost] : other.distinct_) {
        if (seen_.insert(ref).second) {
            dWaitDist_ += cost;
            distinct_.emplace_back(ref, cost);
        }
    }
}

ImpactResult
PartialImpact::finalize() const
{
    ImpactResult result;
    result.instances = static_cast<std::size_t>(instances_);
    result.dScn = dScn_;
    result.dWait = dWait_;
    result.dRun = dRun_;
    result.dWaitDist = dWaitDist_;
    return result;
}

void
PartialImpact::rebaseStreams(std::uint32_t base)
{
    if (base == 0)
        return;
    seen_.clear();
    for (auto &[ref, cost] : distinct_) {
        ref.stream += base;
        seen_.insert(ref);
    }
}

void
PartialImpact::encode(std::string &out) const
{
    putU64(out, instances_);
    putI64(out, dScn_);
    putI64(out, dWait_);
    putI64(out, dRun_);
    putI64(out, dWaitDist_);
    putU64(out, static_cast<std::uint64_t>(distinct_.size()));
    for (const auto &[ref, cost] : distinct_) {
        putU32(out, ref.stream);
        putU32(out, ref.index);
        putI64(out, cost);
    }
}

bool
PartialImpact::decode(ByteReader &reader, PartialImpact &out)
{
    out = PartialImpact{};
    out.instances_ = reader.u64();
    out.dScn_ = reader.i64();
    out.dWait_ = reader.i64();
    out.dRun_ = reader.i64();
    out.dWaitDist_ = reader.i64();
    const std::uint64_t count = reader.u64();
    if (reader.failed() || !reader.countFits(count, 4 + 4 + 8))
        return false;
    out.distinct_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        EventRef ref;
        ref.stream = reader.u32();
        ref.index = reader.u32();
        const DurationNs cost = reader.i64();
        if (reader.failed())
            return false;
        if (!out.seen_.insert(ref).second)
            return false; // duplicates violate the first-seen contract
        out.distinct_.emplace_back(ref, cost);
    }
    return !reader.failed();
}

// ------------------------------------------------------------------- awg

PartialAwg::PartialAwg() = default;
PartialAwg::PartialAwg(PartialAwg &&) noexcept = default;
PartialAwg &PartialAwg::operator=(PartialAwg &&) noexcept = default;
PartialAwg::PartialAwg(const PartialAwg &) = default;
PartialAwg &PartialAwg::operator=(const PartialAwg &) = default;
PartialAwg::~PartialAwg() = default;

std::uint32_t
PartialAwg::absorbAggregated(std::uint32_t parent, const AwgKey &key,
                             DurationNs cost, std::uint64_t count,
                             DurationNs maxCost)
{
    // Lookup entries store node index + 1 so that the map's
    // default-constructed 0 means "absent".
    std::uint32_t id;
    std::uint32_t &encoded = lookup_[parent][key];
    if (encoded == 0) {
        id = static_cast<std::uint32_t>(awg_.nodes_.size());
        awg_.nodes_.emplace_back();
        awg_.nodes_.back().key = key;
        parents_.push_back(parent);
        encoded = id + 1;
        if (parent == kInvalidIndex)
            awg_.roots_.push_back(id);
        else
            awg_.nodes_[parent].children.push_back(id);
    } else {
        id = encoded - 1;
    }

    AggregatedWaitGraph::Node &merged = awg_.nodes_[id];
    merged.cost += cost;
    merged.count += count;
    merged.maxCost = std::max(merged.maxCost, maxCost);
    return id;
}

std::uint32_t
PartialAwg::absorb(std::uint32_t parent, const AwgKey &key,
                   DurationNs cost)
{
    return absorbAggregated(parent, key, cost, 1, cost);
}

void
PartialAwg::addSourceGraphs(std::uint64_t n)
{
    awg_.sourceGraphs_ += static_cast<std::size_t>(n);
}

void
PartialAwg::merge(const PartialAwg &other)
{
    // Replay the other trie's nodes in creation order. A node's parent
    // always has a smaller index, so the parent's mapping is resolved
    // by the time its children arrive — one forward pass reproduces
    // the first-encounter layout of absorbing both inputs' source
    // graphs sequentially.
    std::vector<std::uint32_t> map(other.awg_.nodes_.size());
    for (std::uint32_t i = 0; i < other.awg_.nodes_.size(); ++i) {
        const AggregatedWaitGraph::Node &node = other.awg_.nodes_[i];
        const std::uint32_t their_parent = other.parents_[i];
        const std::uint32_t parent = their_parent == kInvalidIndex
                                         ? kInvalidIndex
                                         : map[their_parent];
        map[i] = absorbAggregated(parent, node.key, node.cost,
                                  node.count, node.maxCost);
    }
    awg_.sourceGraphs_ += other.awg_.sourceGraphs_;
}

AggregatedWaitGraph
PartialAwg::finalize(bool reduce)
{
    lookup_.clear();
    parents_.clear();
    AggregatedWaitGraph awg = std::move(awg_);
    awg_ = AggregatedWaitGraph{};
    if (!reduce)
        return awg;

    // The non-optimizable reduction (Algorithm 1 step 4): prune root
    // waiting nodes whose cost is pure non-propagated hardware time.
    // Applied exactly once, over the fully merged trie — a root that
    // looks prunable within one shard may gain component children from
    // another, which is why partials stay unreduced.
    std::vector<std::uint32_t> kept_roots;
    std::vector<char> removed(awg.nodes_.size(), 0);
    for (std::uint32_t root : awg.roots_) {
        const auto &n = awg.nodes_[root];
        // "Single hardware-service leaf" in aggregated terms: a direct
        // device wait — signalled by the device itself (no component
        // unwait signature) with nothing under it but hardware leaves
        // (queue-mates on the same device are still pure hardware
        // time). Lock waits *fed* by hardware keep their component
        // unwait signature and survive: that time did propagate.
        // Childless device-readied waits are also pure hardware time:
        // their service interval was claimed by an earlier window.
        bool prunable = n.key.status == AwgStatus::Waiting &&
                        n.key.secondary == kNoFrame;
        for (std::uint32_t child : n.children) {
            prunable = prunable &&
                       awg.nodes_[child].key.status ==
                           AwgStatus::Hardware &&
                       awg.nodes_[child].children.empty();
        }
        if (prunable) {
            awg.reducedCost_ += n.cost;
            awg.reducedNodes_ += 1 + n.children.size();
            removed[root] = 1;
            for (std::uint32_t child : n.children)
                removed[child] = 1;
        } else {
            kept_roots.push_back(root);
        }
    }
    if (awg.reducedNodes_ == 0)
        return awg;

    // Compact the node vector, dropping pruned structures.
    std::vector<std::uint32_t> remap(awg.nodes_.size(), kInvalidIndex);
    std::vector<AggregatedWaitGraph::Node> compacted;
    compacted.reserve(awg.nodes_.size());
    for (std::uint32_t i = 0; i < awg.nodes_.size(); ++i) {
        if (removed[i])
            continue;
        remap[i] = static_cast<std::uint32_t>(compacted.size());
        compacted.push_back(std::move(awg.nodes_[i]));
    }
    for (auto &n : compacted) {
        for (auto &child : n.children)
            child = remap[child];
    }
    for (auto &root : kept_roots)
        root = remap[root];
    awg.nodes_ = std::move(compacted);
    awg.roots_ = std::move(kept_roots);
    return awg;
}

void
PartialAwg::remapFrames(std::span<const FrameId> remap)
{
    auto translate = [&](FrameId frame) {
        if (frame == kNoFrame)
            return kNoFrame;
        return frame < remap.size() ? remap[frame] : kNoFrame;
    };
    for (AggregatedWaitGraph::Node &node : awg_.nodes_) {
        node.key.primary = translate(node.key.primary);
        node.key.secondary = translate(node.key.secondary);
    }
    // Keys changed identity; rebuild the (parent, key) lookup. The
    // remap is injective over interned frames, so no two siblings
    // collapse onto one key.
    lookup_.clear();
    for (std::uint32_t i = 0; i < awg_.nodes_.size(); ++i)
        lookup_[parents_[i]][awg_.nodes_[i].key] = i + 1;
}

void
PartialAwg::encode(std::string &out) const
{
    // Parent-per-node layout: children lists and roots are recoverable
    // by one forward pass (creation order == sibling order), and the
    // decoder gets the parents_ array it needs for merge() for free.
    putU64(out, static_cast<std::uint64_t>(awg_.nodes_.size()));
    for (std::uint32_t i = 0; i < awg_.nodes_.size(); ++i) {
        const AggregatedWaitGraph::Node &node = awg_.nodes_[i];
        putU8(out, static_cast<std::uint8_t>(node.key.status));
        putU32(out, node.key.primary);
        putU32(out, node.key.secondary);
        putI64(out, node.cost);
        putU64(out, node.count);
        putI64(out, node.maxCost);
        putU32(out, parents_[i]);
    }
    putU64(out, static_cast<std::uint64_t>(awg_.sourceGraphs_));
}

bool
PartialAwg::decode(ByteReader &reader, PartialAwg &out)
{
    out = PartialAwg{};
    const std::uint64_t count = reader.u64();
    if (reader.failed() ||
        !reader.countFits(count, 1 + 4 + 4 + 8 + 8 + 8 + 4))
        return false;
    out.awg_.nodes_.reserve(count);
    out.parents_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        AggregatedWaitGraph::Node node;
        const std::uint8_t status = reader.u8();
        if (status > static_cast<std::uint8_t>(AwgStatus::Hardware))
            return false;
        node.key.status = static_cast<AwgStatus>(status);
        node.key.primary = reader.u32();
        node.key.secondary = reader.u32();
        node.cost = reader.i64();
        node.count = reader.u64();
        node.maxCost = reader.i64();
        const std::uint32_t parent = reader.u32();
        if (reader.failed())
            return false;
        if (parent != kInvalidIndex && parent >= i)
            return false; // parents precede children, always
        out.parents_.push_back(parent);
        if (parent == kInvalidIndex)
            out.awg_.roots_.push_back(static_cast<std::uint32_t>(i));
        else
            out.awg_.nodes_[parent].children.push_back(
                static_cast<std::uint32_t>(i));
        out.awg_.nodes_.push_back(std::move(node));
        std::uint32_t &encoded =
            out.lookup_[parent][out.awg_.nodes_.back().key];
        if (encoded != 0)
            return false; // duplicate (parent, key): not a trie
        encoded = static_cast<std::uint32_t>(i) + 1;
    }
    out.awg_.sourceGraphs_ =
        static_cast<std::size_t>(reader.u64());
    return !reader.failed();
}

// ---------------------------------------------------------------- mining

void
PartialMeta::merge(const PartialMeta &other)
{
    for (const auto &[tuple, stats] : other.metas) {
        MetaPatternStats &into = metas[tuple];
        into.cost += stats.cost;
        into.count += stats.count;
    }
}

void
PartialPatterns::merge(const PartialPatterns &other)
{
    fullPaths += other.fullPaths;
    selectedPaths += other.selectedPaths;
    for (const auto &[tuple, pattern] : other.patterns) {
        ContrastPattern &into = patterns[tuple];
        if (into.count == 0)
            into.tuple = pattern.tuple;
        into.cost += pattern.cost;
        into.count += pattern.count;
        into.maxExec = std::max(into.maxExec, pattern.maxExec);
    }
}

// ------------------------------------------------- cross-machine bundles

void
ScenarioPartial::remapFrames(SymbolTable &symbols)
{
    std::vector<FrameId> remap;
    remap.reserve(frames.size());
    for (const std::string &name : frames)
        remap.push_back(symbols.internFrame(name));
    awgFast.remapFrames(remap);
    awgSlow.remapFrames(remap);
}

void
ImpactPartial::rebaseStreams(std::uint32_t base)
{
    all.rebaseStreams(base);
    for (auto &[name, partial] : perScenario)
        partial.rebaseStreams(base);
}

namespace
{

void
putEnvelope(std::string &out, std::uint8_t kind)
{
    out.append(kPartialMagic, 4);
    putU32(out, kPartialRevision);
    putU8(out, kind);
}

/** Check magic + revision + kind; distinguishes the revision case. */
Expected<bool>
openEnvelope(const std::string &bytes, ByteReader &reader,
             std::uint8_t kind)
{
    if (bytes.size() < 9 ||
        std::memcmp(bytes.data(), kPartialMagic, 4) != 0)
        return corrupt("bad magic");
    reader.u32(); // magic, already checked
    const std::uint32_t revision = reader.u32();
    if (revision != kPartialRevision) {
        return SourceError{
            "<partial>", 0,
            "partial encoding revision mismatch: peer speaks " +
                std::to_string(revision) + ", this build speaks " +
                std::to_string(kPartialRevision)};
    }
    if (reader.u8() != kind)
        return corrupt("unexpected payload kind");
    return true;
}

void
encodeClasses(std::string &out, const PartialClasses &classes)
{
    putU64(out, classes.fast);
    putU64(out, classes.middle);
    putU64(out, classes.slow);
    putI64(out, classes.slowDuration);
}

bool
decodeClasses(ByteReader &reader, PartialClasses &out)
{
    out.fast = reader.u64();
    out.middle = reader.u64();
    out.slow = reader.u64();
    out.slowDuration = reader.i64();
    return !reader.failed();
}

} // namespace

std::string
encodeScenarioPartial(const ScenarioPartial &partial)
{
    std::string out;
    putEnvelope(out, kKindScenario);
    putU64(out, static_cast<std::uint64_t>(partial.frames.size()));
    for (const std::string &name : partial.frames)
        putString(out, name);
    putU32(out, partial.streamCount);
    encodeClasses(out, partial.classes);
    partial.slowImpact.encode(out);
    partial.awgFast.encode(out);
    partial.awgSlow.encode(out);
    return out;
}

Expected<ScenarioPartial>
decodeScenarioPartial(const std::string &bytes)
{
    ByteReader reader(bytes);
    Expected<bool> envelope =
        openEnvelope(bytes, reader, kKindScenario);
    if (!envelope)
        return envelope.error();

    ScenarioPartial partial;
    const std::uint64_t frame_count = reader.u64();
    if (reader.failed() || !reader.countFits(frame_count, 4))
        return corrupt("frame table");
    partial.frames.reserve(frame_count);
    for (std::uint64_t i = 0; i < frame_count; ++i) {
        std::string name;
        if (!getString(reader, name))
            return corrupt("frame name");
        partial.frames.push_back(std::move(name));
    }
    partial.streamCount = reader.u32();
    if (!decodeClasses(reader, partial.classes))
        return corrupt("classes");
    if (!PartialImpact::decode(reader, partial.slowImpact))
        return corrupt("impact");
    if (!PartialAwg::decode(reader, partial.awgFast))
        return corrupt("fast AWG");
    if (!PartialAwg::decode(reader, partial.awgSlow))
        return corrupt("slow AWG");
    if (reader.failed() || !reader.atEnd())
        return corrupt("trailing bytes");
    return partial;
}

std::string
encodeImpactPartial(const ImpactPartial &partial)
{
    std::string out;
    putEnvelope(out, kKindImpact);
    putU32(out, partial.streamCount);
    partial.all.encode(out);
    putU64(out,
           static_cast<std::uint64_t>(partial.perScenario.size()));
    for (const auto &[name, impact] : partial.perScenario) {
        putString(out, name);
        impact.encode(out);
    }
    return out;
}

Expected<ImpactPartial>
decodeImpactPartial(const std::string &bytes)
{
    ByteReader reader(bytes);
    Expected<bool> envelope = openEnvelope(bytes, reader, kKindImpact);
    if (!envelope)
        return envelope.error();

    ImpactPartial partial;
    partial.streamCount = reader.u32();
    if (!PartialImpact::decode(reader, partial.all))
        return corrupt("impact");
    const std::uint64_t scenario_count = reader.u64();
    if (reader.failed() || !reader.countFits(scenario_count, 4))
        return corrupt("scenario table");
    partial.perScenario.reserve(scenario_count);
    for (std::uint64_t i = 0; i < scenario_count; ++i) {
        std::string name;
        if (!getString(reader, name))
            return corrupt("scenario name");
        PartialImpact impact;
        if (!PartialImpact::decode(reader, impact))
            return corrupt("scenario impact");
        partial.perScenario.emplace_back(std::move(name),
                                         std::move(impact));
    }
    if (reader.failed() || !reader.atEnd())
        return corrupt("trailing bytes");
    return partial;
}

// ----------------------------------------------------------------- base64

namespace
{

constexpr char kBase64Alphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

} // namespace

std::string
base64Encode(std::string_view bytes)
{
    std::string out;
    out.reserve((bytes.size() + 2) / 3 * 4);
    std::size_t i = 0;
    for (; i + 3 <= bytes.size(); i += 3) {
        const std::uint32_t v =
            (static_cast<unsigned char>(bytes[i]) << 16) |
            (static_cast<unsigned char>(bytes[i + 1]) << 8) |
            static_cast<unsigned char>(bytes[i + 2]);
        out.push_back(kBase64Alphabet[(v >> 18) & 63]);
        out.push_back(kBase64Alphabet[(v >> 12) & 63]);
        out.push_back(kBase64Alphabet[(v >> 6) & 63]);
        out.push_back(kBase64Alphabet[v & 63]);
    }
    const std::size_t rest = bytes.size() - i;
    if (rest == 1) {
        const std::uint32_t v = static_cast<unsigned char>(bytes[i])
                                << 16;
        out.push_back(kBase64Alphabet[(v >> 18) & 63]);
        out.push_back(kBase64Alphabet[(v >> 12) & 63]);
        out.push_back('=');
        out.push_back('=');
    } else if (rest == 2) {
        const std::uint32_t v =
            (static_cast<unsigned char>(bytes[i]) << 16) |
            (static_cast<unsigned char>(bytes[i + 1]) << 8);
        out.push_back(kBase64Alphabet[(v >> 18) & 63]);
        out.push_back(kBase64Alphabet[(v >> 12) & 63]);
        out.push_back(kBase64Alphabet[(v >> 6) & 63]);
        out.push_back('=');
    }
    return out;
}

std::optional<std::string>
base64Decode(std::string_view text)
{
    if (text.size() % 4 != 0)
        return std::nullopt;
    static const auto value = [] {
        std::array<std::int8_t, 256> table;
        table.fill(-1);
        for (int i = 0; i < 64; ++i)
            table[static_cast<unsigned char>(kBase64Alphabet[i])] =
                static_cast<std::int8_t>(i);
        return table;
    }();

    std::string out;
    out.reserve(text.size() / 4 * 3);
    for (std::size_t i = 0; i < text.size(); i += 4) {
        int pad = 0;
        std::uint32_t v = 0;
        for (int j = 0; j < 4; ++j) {
            const char c = text[i + j];
            if (c == '=') {
                // Padding only in the last two positions of the final
                // quantum, and nothing may follow it.
                if (i + 4 != text.size() || j < 2 ||
                    (j == 2 && text[i + 3] != '='))
                    return std::nullopt;
                ++pad;
                v <<= 6;
                continue;
            }
            const std::int8_t digit =
                value[static_cast<unsigned char>(c)];
            if (digit < 0 || pad > 0)
                return std::nullopt;
            v = (v << 6) | static_cast<std::uint32_t>(digit);
        }
        out.push_back(static_cast<char>((v >> 16) & 0xFF));
        if (pad < 2)
            out.push_back(static_cast<char>((v >> 8) & 0xFF));
        if (pad < 1)
            out.push_back(static_cast<char>(v & 0xFF));
    }
    return out;
}

} // namespace tracelens
