/**
 * @file
 * Shared JSON renderers for merged scenario results.
 *
 * The server's `analyze`/`coord-analyze` handlers and the fleet
 * layer's rolling-window summaries (src/fleet/windows.h) must emit
 * *byte-identical* JSON for the same underlying shards — that is the
 * acceptance contract tested by tests/fleet_test.cpp and
 * scripts/smoke_fleet.sh. Rather than keeping two renderers in sync
 * by convention, the finalize-and-render path lives here once:
 * impact/pattern JSON shapes, the gathered-AWG miner, and the full
 * scenario-summary object built from merged Partial* state.
 */

#ifndef TRACELENS_CORE_RESULTJSON_H
#define TRACELENS_CORE_RESULTJSON_H

#include <cstddef>
#include <string>

#include "src/awg/awg.h"
#include "src/core/partial.h"
#include "src/impact/impact.h"
#include "src/mining/coverage.h"
#include "src/mining/miner.h"
#include "src/trace/symbols.h"
#include "src/util/json.h"
#include "src/util/types.h"

namespace tracelens
{

/** The `slow_impact` / `impact` JSON object shape. */
JsonValue impactJson(const ImpactResult &impact);

/** One ranked pattern entry of a `patterns` array. */
JsonValue patternJson(const ContrastPattern &pattern, DurationNs tSlow,
                      const SymbolTable &symbols, std::size_t rank);

/**
 * Mine two merged AWGs exactly as a single-node analyzer would
 * (AnalyzerConfig mining defaults; thread count never changes the
 * ranked result). The miner only reads the AWGs, not the corpus.
 */
MiningResult mineGathered(const AggregatedWaitGraph &fast,
                          const AggregatedWaitGraph &slow,
                          DurationNs tFast, DurationNs tSlow);

/**
 * A scenario summary finalized from merged partial state: the mined
 * patterns plus the rendered JSON object — the exact shape `analyze`
 * returns, so callers can byte-compare across batch, coordinator,
 * and rolling-window paths.
 */
struct ScenarioSummary
{
    MiningResult mining;
    CoverageResult coverage;
    double driverCostShare = 0.0;
    JsonValue json;
};

/**
 * Finalize merged scenario partials into the canonical summary JSON:
 * mine the AWGs, compute coverage, apply the knowledge filter when
 * requested, and emit the result object with keys in `analyze` order
 * (scenario, tfast_ms, tslow_ms, classes, slow_impact,
 * driver_cost_share, coverage, mining_stats, suppressed, patterns).
 *
 * @p awgFast / @p awgSlow must already be finalized *reduced* graphs;
 * @p slowImpact must already be finalized. @p symbols is the merged
 * table the partial frames were interned into.
 */
ScenarioSummary
summarizeScenario(const std::string &scenario, DurationNs tFast,
                  DurationNs tSlow, const PartialClasses &classes,
                  const ImpactResult &slowImpact,
                  const AggregatedWaitGraph &awgFast,
                  const AggregatedWaitGraph &awgSlow,
                  const SymbolTable &symbols, std::size_t top,
                  bool applyKnowledgeFilter);

} // namespace tracelens

#endif // TRACELENS_CORE_RESULTJSON_H
