/**
 * @file
 * Mergeable partial results: the explicit merge layer of the pipeline.
 *
 * Every reduction in the analysis stack — the thread-level folds inside
 * ImpactAnalysis / AwgBuilder / ContrastMiner, the incremental
 * `Analyzer::addStreams` path, and the cross-machine scatter/gather of
 * coordinator mode (docs/SERVER.md) — goes through the Partial* types
 * in this header. Each type is an accumulator with an associative
 * `merge()`; merging the per-shard partials in shard order and then
 * finalizing produces results *byte-identical* to a single sequential
 * pass over the merged corpus. That invariant (associativity +
 * order-preserving determinism, see docs/ARCHITECTURE.md
 * "Partial-result merge layer") is what makes thread counts, shard
 * splits, and machine boundaries all invisible in the output.
 *
 * The cross-machine types additionally carry a versioned TLA1-style
 * wire encoding ("TLP1": magic, revision, typed payload —
 * src/util/bytecodec.h primitives, every read bounds-checked). Frame
 * identity across machines: a scenario partial embeds its shard's full
 * frame-name table in interning order; the coordinator interns the
 * tables shard by shard into its own SymbolTable, which reproduces the
 * exact FrameId assignment of a single-node analyzer ingesting the
 * same shards in the same order (interning is idempotent and
 * order-determined). Mixed-revision clusters are rejected up front —
 * `health` advertises partialEncodingRevision() — and again at decode.
 */

#ifndef TRACELENS_CORE_PARTIAL_H
#define TRACELENS_CORE_PARTIAL_H

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/awg/awg.h"
#include "src/impact/impact.h"
#include "src/mining/miner.h"
#include "src/trace/symbols.h"
#include "src/util/bytecodec.h"
#include "src/util/expected.h"

namespace tracelens
{

/**
 * Revision of the partial-result wire encoding. Bumped whenever the
 * TLP1 payload layout or the semantics of any encoded field change;
 * coordinator and workers must agree (advertised by `health` and
 * `tracelens version`, checked before any decode).
 */
std::uint32_t partialEncodingRevision();

// --------------------------------------------------------------- classes

/**
 * Partial contrast-classification tally of one instance subset: class
 * sizes plus the slow class's total instance time (the
 * driver_cost_share denominator). Merge is integer summation.
 */
struct PartialClasses
{
    std::uint64_t fast = 0;
    std::uint64_t middle = 0;
    std::uint64_t slow = 0;
    DurationNs slowDuration = 0;

    void
    merge(const PartialClasses &other)
    {
        fast += other.fast;
        middle += other.middle;
        slow += other.slow;
        slowDuration += other.slowDuration;
    }
};

// ---------------------------------------------------------------- impact

/**
 * Partial impact accumulator over a prefix of an instance-graph
 * sequence. Scalar sums merge commutatively; D_waitdist depends on
 * *first-seen* wait dedup, so the accumulator keeps the distinct waits
 * in first-seen order and `merge()` replays the other side's distinct
 * sequence through its own seen-set — exactly the fold the serial path
 * performs, hence associative and order-preserving.
 */
class PartialImpact
{
  public:
    /**
     * Fold one instance graph's contribution: @p waitHits are the
     * matched top-level waits in BFS order (ImpactAnalysis::collect).
     */
    void absorbInstance(
        DurationNs dScn, DurationNs dRun,
        std::span<const std::pair<EventRef, DurationNs>> waitHits);

    /** Append @p other, which must cover the *following* instances. */
    void merge(const PartialImpact &other);

    /** The accumulated metrics. */
    ImpactResult finalize() const;

    /**
     * Shift every distinct wait's stream id by @p base. Cross-machine
     * gather rebases each shard's stream-local EventRefs onto the
     * merged corpus's stream numbering (stream ids concatenate in
     * shard order) so refs from different shards can never collide.
     */
    void rebaseStreams(std::uint32_t base);

    void encode(std::string &out) const;
    static bool decode(ByteReader &reader, PartialImpact &out);

  private:
    std::uint64_t instances_ = 0;
    DurationNs dScn_ = 0;
    DurationNs dWait_ = 0;
    DurationNs dRun_ = 0;
    DurationNs dWaitDist_ = 0;
    /** Distinct counted waits, in first-seen order. */
    std::vector<std::pair<EventRef, DurationNs>> distinct_;
    std::unordered_set<EventRef, EventRefHash> seen_;
};

// ------------------------------------------------------------------- awg

/**
 * Partial Aggregated Wait Graph: the trie under construction, before
 * the non-optimizable reduction. Owns the node-creation bookkeeping
 * (per-node parent, (parent, key) lookup) that AwgBuilder's merge step
 * used to keep privately, so that the same first-encounter node layout
 * is reproduced whether source graphs are absorbed directly (thread
 * and incremental paths) or whole shard fragments are merged
 * (coordinator gather). Partials stay *unreduced* — a root prunable
 * within one shard may gain children from another — and `finalize()`
 * applies the reduction exactly once over the merged trie.
 */
class PartialAwg
{
  public:
    PartialAwg();
    PartialAwg(PartialAwg &&) noexcept;
    PartialAwg &operator=(PartialAwg &&) noexcept;
    PartialAwg(const PartialAwg &);
    PartialAwg &operator=(const PartialAwg &);
    ~PartialAwg();

    /**
     * Merge one source node under @p parent (kInvalidIndex = root
     * level): find-or-create the (parent, key) child, add @p cost,
     * count one occurrence. Returns the node id for descending into
     * children. This is Algorithm 1's step-3 trie merge.
     */
    std::uint32_t absorb(std::uint32_t parent, const AwgKey &key,
                         DurationNs cost);

    /** Account @p n aggregated source graphs. */
    void addSourceGraphs(std::uint64_t n);

    /**
     * Merge @p other's whole trie. Nodes are replayed in creation
     * order with parents mapped through this trie, which reproduces
     * the node layout of absorbing both inputs' source graphs
     * sequentially — the associativity that makes shard-order gather
     * byte-identical to a single-node aggregation.
     */
    void merge(const PartialAwg &other);

    /**
     * Apply the non-optimizable reduction (when @p reduce) and release
     * the finished AWG. The partial is consumed.
     */
    AggregatedWaitGraph finalize(bool reduce);

    /** Rewrite every node key's frames through @p remap (decode-side
     *  frame-table translation); kNoFrame is preserved. */
    void remapFrames(std::span<const FrameId> remap);

    void encode(std::string &out) const;
    static bool decode(ByteReader &reader, PartialAwg &out);

  private:
    /** Find-or-create with explicit aggregates (fragment merge). */
    std::uint32_t absorbAggregated(std::uint32_t parent,
                                   const AwgKey &key, DurationNs cost,
                                   std::uint64_t count,
                                   DurationNs maxCost);

    AggregatedWaitGraph awg_;
    /** Parent node id per node (kInvalidIndex for roots); a node's
     *  parent always precedes it, which is what lets merge() replay
     *  another trie in one forward pass. */
    std::vector<std::uint32_t> parents_;
    /** (parent, key) -> node id + 1 (0 = absent). */
    std::unordered_map<
        std::uint32_t,
        std::unordered_map<AwgKey, std::uint32_t, AwgKeyHash>>
        lookup_;
};

// ---------------------------------------------------------------- mining

/**
 * Partial meta-pattern tally (mining step 1): per-tuple (C, N) sums.
 * Merge is integer summation — associative and commutative.
 */
struct PartialMeta
{
    std::unordered_map<SignatureSetTuple, MetaPatternStats,
                       SignatureSetTupleHash>
        metas;

    void merge(const PartialMeta &other);
};

/**
 * Partial full-path contrast patterns (mining step 3): per-tuple
 * aggregates plus the path counters. Merge sums C/N/path counters and
 * takes the max single execution.
 */
struct PartialPatterns
{
    std::unordered_map<SignatureSetTuple, ContrastPattern,
                       SignatureSetTupleHash>
        patterns;
    std::uint64_t fullPaths = 0;
    std::uint64_t selectedPaths = 0;

    void merge(const PartialPatterns &other);
};

// ------------------------------------------------- cross-machine bundles

/**
 * One shard's contribution to a scenario analysis (the
 * `analyze_partial` / `mine_partial` payload): classification tally,
 * slow-class impact, and the two unreduced AWG fragments, plus the
 * shard's frame-name table (interning order) and stream count that let
 * the coordinator rebuild global frame/stream identity.
 */
struct ScenarioPartial
{
    PartialClasses classes;
    PartialImpact slowImpact;
    PartialAwg awgFast;
    PartialAwg awgSlow;
    /** Shard frame names, index = shard-local FrameId. */
    std::vector<std::string> frames;
    /** Streams in the shard corpus (EventRef rebase unit). */
    std::uint32_t streamCount = 0;

    /**
     * Intern this shard's frames into @p symbols (the coordinator's
     * table) and rewrite the AWG fragments' keys to the global ids.
     * Called in global shard order, this reproduces the FrameId
     * assignment of a single-node merged corpus.
     */
    void remapFrames(SymbolTable &symbols);
};

/**
 * One shard's corpus-wide impact partial (the `impact_partial`
 * payload): the "all" accumulator plus per-scenario accumulators keyed
 * by scenario *name* (names are global; ids are shard-local).
 */
struct ImpactPartial
{
    PartialImpact all;
    std::vector<std::pair<std::string, PartialImpact>> perScenario;
    std::uint32_t streamCount = 0;

    void rebaseStreams(std::uint32_t base);
};

/** Encode with the TLP1 envelope (magic, revision, payload). */
std::string encodeScenarioPartial(const ScenarioPartial &partial);
std::string encodeImpactPartial(const ImpactPartial &partial);

/**
 * Decode a TLP1 envelope. Fails with a "revision mismatch" message
 * when the producer spoke a different partialEncodingRevision() — the
 * mixed-version backstop behind the health handshake — and a "corrupt"
 * message on any framing violation.
 */
Expected<ScenarioPartial> decodeScenarioPartial(const std::string &bytes);
Expected<ImpactPartial> decodeImpactPartial(const std::string &bytes);

// ----------------------------------------------------------------- base64

/** Standard base64 (RFC 4648, with padding). */
std::string base64Encode(std::string_view bytes);
/** Decode; nullopt on any non-base64 input. */
std::optional<std::string> base64Decode(std::string_view text);

} // namespace tracelens

#endif // TRACELENS_CORE_PARTIAL_H
