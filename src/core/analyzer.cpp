#include "src/core/analyzer.h"

#include "src/util/logging.h"

namespace tracelens
{

double
ScenarioAnalysis::driverCostShare()
 const
{
    if (slowDuration == 0)
        return 0.0;
    return static_cast<double>(slowImpact.dWait + slowImpact.dRun) /
           static_cast<double>(slowDuration);
}

double
ScenarioAnalysis::nonOptimizableShare() const
{
    const DurationNs reduced = awgSlow.reducedCost();
    const DurationNs kept = awgSlow.totalRootCost();
    if (reduced + kept == 0)
        return 0.0;
    return static_cast<double>(reduced) /
           static_cast<double>(reduced + kept);
}

Analyzer::Analyzer(const TraceCorpus &corpus, AnalyzerConfig config)
    : corpus_(corpus), config_(std::move(config)),
      components_(config_.components)
{
}

const std::vector<WaitGraph> &
Analyzer::graphs() const
{
    if (!graphsBuilt_) {
        WaitGraphBuilder builder(corpus_, config_.waitGraph);
        graphs_ = builder.buildAll();
        graphsBuilt_ = true;
    }
    return graphs_;
}

ImpactResult
Analyzer::impactAll() const
{
    ImpactAnalysis impact(corpus_, components_);
    return impact.analyze(graphs());
}

std::unordered_map<std::uint32_t, ImpactResult>
Analyzer::impactPerScenario() const
{
    ImpactAnalysis impact(corpus_, components_);
    return impact.analyzePerScenario(graphs());
}

ContrastClasses
Analyzer::classify(std::uint32_t scenario, DurationNs t_fast,
                   DurationNs t_slow) const
{
    TL_ASSERT(t_fast > 0 && t_slow > t_fast, "bad thresholds");
    ContrastClasses classes;
    const auto &instances = corpus_.instances();
    for (std::uint32_t i = 0; i < instances.size(); ++i) {
        if (instances[i].scenario != scenario)
            continue;
        const DurationNs duration = instances[i].duration();
        if (duration < t_fast)
            classes.fast.push_back(i);
        else if (duration > t_slow)
            classes.slow.push_back(i);
        else
            classes.middle.push_back(i);
    }
    return classes;
}

ScenarioAnalysis
Analyzer::analyzeScenario(std::string_view name, DurationNs t_fast,
                          DurationNs t_slow) const
{
    const std::uint32_t scenario = corpus_.findScenario(name);
    if (scenario == UINT32_MAX)
        TL_FATAL("scenario '", std::string(name), "' not in corpus");

    ScenarioAnalysis analysis;
    analysis.name = std::string(name);
    analysis.tFast = t_fast;
    analysis.tSlow = t_slow;
    analysis.classes = classify(scenario, t_fast, t_slow);

    const std::vector<WaitGraph> &all = graphs();
    auto gather = [&](const std::vector<std::uint32_t> &indices) {
        std::vector<WaitGraph> subset;
        subset.reserve(indices.size());
        for (std::uint32_t i : indices)
            subset.push_back(all[i]); // copy: subsets stay independent
        return subset;
    };

    const std::vector<WaitGraph> fast_graphs =
        gather(analysis.classes.fast);
    const std::vector<WaitGraph> slow_graphs =
        gather(analysis.classes.slow);

    ImpactAnalysis impact(corpus_, components_);
    analysis.slowImpact = impact.analyze(slow_graphs);
    for (std::uint32_t i : analysis.classes.slow)
        analysis.slowDuration += corpus_.instances()[i].duration();

    AwgBuilder awg_builder(corpus_, components_, config_.awg);
    analysis.awgFast = awg_builder.aggregate(fast_graphs);
    analysis.awgSlow = awg_builder.aggregate(slow_graphs);

    MiningOptions mining_options;
    mining_options.maxSegmentLength = config_.maxSegmentLength;
    mining_options.tFast = t_fast;
    mining_options.tSlow = t_slow;
    mining_options.useMetaPatternGate = config_.useMetaPatternGate;
    ContrastMiner miner(corpus_, mining_options);
    analysis.mining = miner.mine(analysis.awgFast, analysis.awgSlow);

    // RQ1 denominator: the total driver cost as aggregated — the kept
    // graph plus the non-optimizable portion removed by ReduceAWG
    // (Section 5.2.2 accounts exactly this way).
    analysis.coverage = computeCoverage(
        analysis.mining,
        analysis.awgSlow.reducedCost() + analysis.awgSlow.totalRootCost(),
        t_slow);

    return analysis;
}

} // namespace tracelens
