/**
 * @file
 * Analyzer: per-shard ingestion with content digesting, the artifact
 * stage graph (wait graphs -> classes/impact -> AWGs -> mining), and
 * the multi-scenario fan-out.
 */

#include "src/core/analyzer.h"

#include "src/trace/merge.h"
#include "src/trace/serialize.h"
#include "src/util/logging.h"
#include "src/util/parallel.h"
#include "src/util/telemetry.h"

namespace tracelens
{

double
ScenarioAnalysis::driverCostShare()
 const
{
    if (slowDuration == 0)
        return 0.0;
    return static_cast<double>(slowImpact.dWait + slowImpact.dRun) /
           static_cast<double>(slowDuration);
}

double
ScenarioAnalysis::nonOptimizableShare() const
{
    const DurationNs reduced = awgSlow.reducedCost();
    const DurationNs kept = awgSlow.totalRootCost();
    if (reduced + kept == 0)
        return 0.0;
    return static_cast<double>(reduced) /
           static_cast<double>(reduced + kept);
}

Analyzer::Analyzer(TraceSource &source, AnalyzerConfig config)
    : source_(&source), config_(std::move(config)),
      components_(config_.components), store_(config_.artifactCacheDir)
{
    computeFingerprints();
    const std::size_t count = source.shardCount();
    for (std::size_t i = 0; i < count; ++i) {
        Expected<CorpusPtr> shard = source.shard(i);
        if (!shard)
            continue; // isolated and recorded in source.stats()
        absorb(*shard.value(), shard.value());
    }
}

void
Analyzer::computeFingerprints()
{
    Digest base;
    base.mix(kSchemaVersion);
    base.mix(static_cast<std::uint64_t>(config_.components.size()));
    for (const std::string &component : config_.components)
        base.mix(std::string_view(component));

    fpWaitGraph_ = base;
    fpWaitGraph_.mix(config_.waitGraph.maxDepth)
        .mix(config_.waitGraph.maxNodes)
        .mix(static_cast<std::uint64_t>(config_.waitGraph.containmentOnly))
        .mix(static_cast<std::uint64_t>(config_.waitGraph.clipToWindows));

    // Classification reads only instance durations, so its fingerprint
    // carries no component or graph options.
    fpClasses_ = Digest{};
    fpClasses_.mix(kSchemaVersion);

    fpAwg_ = fpWaitGraph_;
    fpAwg_.mix(static_cast<std::uint64_t>(
                   config_.awg.eliminateInnerIrrelevant))
        .mix(static_cast<std::uint64_t>(config_.awg.reduceNonOptimizable));

    fpMining_ = fpAwg_;
    fpMining_.mix(config_.maxSegmentLength)
        .mix(static_cast<std::uint64_t>(config_.useMetaPatternGate));
}

void
Analyzer::absorb(const TraceCorpus &part, CorpusPtr alias)
{
    Span span("analyzer.ingest-shard", "analysis");
    if (span.active()) {
        span.arg("shard", static_cast<std::uint64_t>(shards_.size()));
        span.arg("instances",
                 static_cast<std::uint64_t>(part.instances().size()));
    }

    ShardRecord record;
    record.digest = digestCorpus(part);
    record.chain = shards_.empty() ? Digest{} : shards_.back().chain;
    record.chain.mix(record.digest);
    record.firstInstance =
        static_cast<std::uint32_t>(corpus_->instances().size());
    record.instanceCount =
        static_cast<std::uint32_t>(part.instances().size());

    if (shards_.empty() && alias != nullptr) {
        // Single-shard fast path: adopt the shard as the analysis
        // corpus without a merge copy (copy-on-append later).
        aliasShard_ = std::move(alias);
        corpus_ = aliasShard_.get();
    } else {
        ensureOwned();
        appendCorpus(ownedCorpus_, part);
    }
    shards_.push_back(record);

    // (Re-)prime the symbol table's per-filter match cache: the
    // parallel stages consult it concurrently, which is safe only
    // once the entry covers every interned frame.
    corpus_->symbols().primeFilter(components_);
}

void
Analyzer::ensureOwned()
{
    if (aliasShard_ == nullptr)
        return;
    // appendCorpus re-interns in id order, so the copy is structurally
    // identical to the alias (same ids, same instance order) and every
    // existing artifact stays valid.
    ownedCorpus_ = TraceCorpus{};
    appendCorpus(ownedCorpus_, *aliasShard_);
    aliasShard_.reset();
    corpus_ = &ownedCorpus_;
}

void
Analyzer::addStreams(const TraceCorpus &part)
{
    ensureOwned();
    absorb(part, nullptr);
}

const Digest &
Analyzer::chainTip() const
{
    static const Digest kEmptyChain;
    return shards_.empty() ? kEmptyChain : shards_.back().chain;
}

Digest
Analyzer::stageKey(const Digest &fingerprint, std::string_view salt,
                   const Digest &input)
{
    Digest key = fingerprint;
    key.mix(salt);
    key.mix(input);
    return key;
}

const std::vector<WaitGraph> &
Analyzer::graphs() const
{
    std::lock_guard<std::mutex> lock(graphsMutex_);
    if (graphsShards_ != shards_.size()) {
        Span span("analyzer.graphs", "analysis");
        if (span.active()) {
            span.arg("shards",
                     static_cast<std::uint64_t>(shards_.size()));
            span.arg("instances", static_cast<std::uint64_t>(
                                      corpus_->instances().size()));
        }
        graphs_.clear();
        graphs_.reserve(corpus_->instances().size());
        const unsigned threads = resolveThreads(config_.threads);
        WaitGraphBuilder builder(*corpus_, config_.waitGraph);
        for (const ShardRecord &shard : shards_) {
            // Keyed by the shard's *chain* digest: a shard's graphs
            // depend on the merged corpus' stream indices and interned
            // ids, which the prefix shards determine.
            const Digest key =
                stageKey(fpWaitGraph_, "waitgraphs", shard.chain);
            auto bundle = store_.waitGraphs(key, [&] {
                return builder.buildRangeParallel(
                    shard.firstInstance, shard.instanceCount, threads);
            });
            graphs_.insert(graphs_.end(), bundle->begin(),
                           bundle->end());
        }
        graphsShards_ = shards_.size();
    }
    return graphs_;
}

ImpactResult
Analyzer::impactAll() const
{
    const Digest key = stageKey(fpWaitGraph_, "impact:all", chainTip());
    auto result = store_.get<ImpactResult>(Stage::Impact, key, [&] {
        ImpactAnalysis impact(*corpus_, components_);
        return impact.analyze(graphs(), config_.threads);
    });
    return *result;
}

std::unordered_map<std::uint32_t, ImpactResult>
Analyzer::impactPerScenario() const
{
    const Digest key =
        stageKey(fpWaitGraph_, "impact:per-scenario", chainTip());
    using Map = std::unordered_map<std::uint32_t, ImpactResult>;
    auto result = store_.get<Map>(Stage::Impact, key, [&] {
        ImpactAnalysis impact(*corpus_, components_);
        return impact.analyzePerScenario(graphs(), config_.threads);
    });
    return *result;
}

ContrastClasses
Analyzer::classify(std::uint32_t scenario, DurationNs t_fast,
                   DurationNs t_slow) const
{
    TL_ASSERT(t_fast > 0 && t_slow > t_fast, "bad thresholds");
    Digest key = stageKey(fpClasses_, "classes", chainTip());
    key.mix(scenario)
        .mix(static_cast<std::uint64_t>(t_fast))
        .mix(static_cast<std::uint64_t>(t_slow));
    auto classes = store_.get<ContrastClasses>(Stage::Classes, key, [&] {
        ContrastClasses result;
        // T_fast/T_slow classification as a sweep over the instance
        // columns — two small arrays instead of the full records.
        const auto scenarios = corpus_->instanceScenarios();
        const auto durations = corpus_->instanceDurations();
        for (std::uint32_t i = 0; i < scenarios.size(); ++i) {
            if (scenarios[i] != scenario)
                continue;
            const DurationNs duration = durations[i];
            if (duration < t_fast)
                result.fast.push_back(i);
            else if (duration > t_slow)
                result.slow.push_back(i);
            else
                result.middle.push_back(i);
        }
        return result;
    });
    return *classes;
}

ScenarioPartial
Analyzer::scenarioPartial(std::string_view name, DurationNs t_fast,
                          DurationNs t_slow) const
{
    Span span("analyzer.scenario-partial", "analysis");
    if (span.active())
        span.arg("scenario", std::string(name));

    ScenarioPartial partial;
    partial.streamCount =
        static_cast<std::uint32_t>(corpus_->streamCount());
    const SymbolTable &symbols = corpus_->symbols();
    partial.frames.reserve(symbols.frameCount());
    for (FrameId f = 0; f < symbols.frameCount(); ++f)
        partial.frames.push_back(symbols.frameName(f));

    const std::uint32_t scenario = corpus_->findScenario(name);
    if (scenario == UINT32_MAX)
        return partial; // no instances here: empty, still mergeable

    const ContrastClasses classes = classify(scenario, t_fast, t_slow);
    partial.classes.fast = classes.fast.size();
    partial.classes.middle = classes.middle.size();
    partial.classes.slow = classes.slow.size();
    for (std::uint32_t i : classes.slow)
        partial.classes.slowDuration +=
            corpus_->instances()[i].duration();

    const std::vector<WaitGraph> &all = graphs();
    auto gather = [&](const std::vector<std::uint32_t> &indices) {
        std::vector<WaitGraph> subset;
        subset.reserve(indices.size());
        for (std::uint32_t i : indices)
            subset.push_back(all[i]);
        return subset;
    };

    ImpactAnalysis impact(*corpus_, components_);
    partial.slowImpact =
        impact.analyzePartial(gather(classes.slow), config_.threads);

    AwgBuilder builder(*corpus_, components_, config_.awg);
    partial.awgFast =
        builder.aggregatePartial(gather(classes.fast), config_.threads);
    partial.awgSlow =
        builder.aggregatePartial(gather(classes.slow), config_.threads);
    return partial;
}

ImpactPartial
Analyzer::impactPartial() const
{
    Span span("analyzer.impact-partial", "analysis");

    ImpactPartial partial;
    partial.streamCount =
        static_cast<std::uint32_t>(corpus_->streamCount());
    ImpactAnalysis impact(*corpus_, components_);
    partial.all = impact.analyzePartial(graphs(), config_.threads);
    for (auto &[scenario, accumulator] :
         impact.analyzePerScenarioPartial(graphs(), config_.threads)) {
        partial.perScenario.emplace_back(
            corpus_->scenarioName(scenario), std::move(accumulator));
    }
    return partial;
}

ScenarioAnalysis
Analyzer::analyzeScenario(std::string_view name, DurationNs t_fast,
                          DurationNs t_slow) const
{
    return analyzeScenarioWithThreads(name, t_fast, t_slow,
                                      config_.threads);
}

std::vector<ScenarioAnalysis>
Analyzer::analyzeScenarios(
    std::span<const ScenarioThresholds> scenarios) const
{
    graphs(); // build once, up front, across all configured threads
    // Scenario analyses are independent; fan them out and keep each
    // one's inner stages serial so the machine is not oversubscribed.
    return parallelMap<ScenarioAnalysis>(
        config_.threads, scenarios.size(), [&](std::size_t i) {
            return analyzeScenarioWithThreads(
                scenarios[i].name, scenarios[i].tFast,
                scenarios[i].tSlow, 1);
        });
}

ScenarioAnalysis
Analyzer::analyzeScenarioWithThreads(std::string_view name,
                                     DurationNs t_fast,
                                     DurationNs t_slow,
                                     unsigned threads) const
{
    Span span("analyzer.scenario", "analysis");
    if (span.active())
        span.arg("scenario", std::string(name));

    const std::uint32_t scenario = corpus_->findScenario(name);
    if (scenario == UINT32_MAX)
        TL_FATAL("scenario '", std::string(name), "' not in corpus");

    ScenarioAnalysis analysis;
    analysis.name = std::string(name);
    analysis.tFast = t_fast;
    analysis.tSlow = t_slow;
    analysis.classes = classify(scenario, t_fast, t_slow);

    // Per-scenario stage keys share this suffix: the data chain plus
    // the (scenario, thresholds) coordinates of the contrast classes.
    Digest coords = chainTip();
    coords.mix(scenario)
        .mix(static_cast<std::uint64_t>(t_fast))
        .mix(static_cast<std::uint64_t>(t_slow));

    const std::vector<WaitGraph> &all = graphs();
    auto gather = [&](const std::vector<std::uint32_t> &indices) {
        std::vector<WaitGraph> subset;
        subset.reserve(indices.size());
        for (std::uint32_t i : indices)
            subset.push_back(all[i]); // copy: subsets stay independent
        return subset;
    };

    auto slowImpact = store_.get<ImpactResult>(
        Stage::Impact, stageKey(fpWaitGraph_, "impact:slow", coords),
        [&] {
            ImpactAnalysis impact(*corpus_, components_);
            return impact.analyze(gather(analysis.classes.slow),
                                  threads);
        });
    analysis.slowImpact = *slowImpact;
    for (std::uint32_t i : analysis.classes.slow)
        analysis.slowDuration += corpus_->instances()[i].duration();

    auto awgFast = store_.awg(
        stageKey(fpAwg_, "awg:fast", coords), [&] {
            AwgBuilder builder(*corpus_, components_, config_.awg);
            return builder.aggregate(gather(analysis.classes.fast),
                                     threads);
        });
    auto awgSlow = store_.awg(
        stageKey(fpAwg_, "awg:slow", coords), [&] {
            AwgBuilder builder(*corpus_, components_, config_.awg);
            return builder.aggregate(gather(analysis.classes.slow),
                                     threads);
        });
    analysis.awgFast = *awgFast;
    analysis.awgSlow = *awgSlow;

    auto mining = store_.get<MiningResult>(
        Stage::Mining, stageKey(fpMining_, "mining", coords), [&] {
            MiningOptions mining_options;
            mining_options.maxSegmentLength = config_.maxSegmentLength;
            mining_options.tFast = t_fast;
            mining_options.tSlow = t_slow;
            mining_options.useMetaPatternGate =
                config_.useMetaPatternGate;
            ContrastMiner miner(*corpus_, mining_options);
            return miner.mine(*awgFast, *awgSlow, threads);
        });
    analysis.mining = *mining;

    // RQ1 denominator: the total driver cost as aggregated — the kept
    // graph plus the non-optimizable portion removed by ReduceAWG
    // (Section 5.2.2 accounts exactly this way). Cheap to derive, so
    // not memoized.
    analysis.coverage = computeCoverage(
        analysis.mining,
        analysis.awgSlow.reducedCost() + analysis.awgSlow.totalRootCost(),
        t_slow);

    return analysis;
}

} // namespace tracelens
