/**
 * @file
 * Analyzer facade: thread-safe one-time wait-graph build, parallel
 * impact/AWG/mining stages, and the multi-scenario fan-out.
 */

#include "src/core/analyzer.h"

#include "src/util/logging.h"
#include "src/util/parallel.h"

namespace tracelens
{

double
ScenarioAnalysis::driverCostShare()
 const
{
    if (slowDuration == 0)
        return 0.0;
    return static_cast<double>(slowImpact.dWait + slowImpact.dRun) /
           static_cast<double>(slowDuration);
}

double
ScenarioAnalysis::nonOptimizableShare() const
{
    const DurationNs reduced = awgSlow.reducedCost();
    const DurationNs kept = awgSlow.totalRootCost();
    if (reduced + kept == 0)
        return 0.0;
    return static_cast<double>(reduced) /
           static_cast<double>(reduced + kept);
}

Analyzer::Analyzer(TraceSource &source, AnalyzerConfig config)
    : Analyzer(nullptr, &source, std::move(config))
{
}

Analyzer::Analyzer(const TraceCorpus &corpus, AnalyzerConfig config)
    : Analyzer(std::make_unique<EagerSource>(corpus), nullptr,
               std::move(config))
{
}

Analyzer::Analyzer(std::unique_ptr<TraceSource> owned,
                   TraceSource *external, AnalyzerConfig config)
    : ownedSource_(std::move(owned)),
      source_(external != nullptr ? external : ownedSource_.get()),
      corpus_(source_->corpus()), config_(std::move(config)),
      components_(config_.components)
{
    // Prime the symbol table's per-filter match cache up front: the
    // parallel stages (and the analyzeScenarios fan-out) may consult
    // it concurrently, which is safe only once the entry exists.
    corpus_.symbols().primeFilter(components_);
}

const std::vector<WaitGraph> &
Analyzer::graphs() const
{
    std::call_once(graphsOnce_, [&] {
        WaitGraphBuilder builder(corpus_, config_.waitGraph);
        graphs_ =
            builder.buildAllParallel(resolveThreads(config_.threads));
    });
    return graphs_;
}

ImpactResult
Analyzer::impactAll() const
{
    ImpactAnalysis impact(corpus_, components_);
    return impact.analyze(graphs(), config_.threads);
}

std::unordered_map<std::uint32_t, ImpactResult>
Analyzer::impactPerScenario() const
{
    ImpactAnalysis impact(corpus_, components_);
    return impact.analyzePerScenario(graphs(), config_.threads);
}

ContrastClasses
Analyzer::classify(std::uint32_t scenario, DurationNs t_fast,
                   DurationNs t_slow) const
{
    TL_ASSERT(t_fast > 0 && t_slow > t_fast, "bad thresholds");
    ContrastClasses classes;
    const auto &instances = corpus_.instances();
    for (std::uint32_t i = 0; i < instances.size(); ++i) {
        if (instances[i].scenario != scenario)
            continue;
        const DurationNs duration = instances[i].duration();
        if (duration < t_fast)
            classes.fast.push_back(i);
        else if (duration > t_slow)
            classes.slow.push_back(i);
        else
            classes.middle.push_back(i);
    }
    return classes;
}

ScenarioAnalysis
Analyzer::analyzeScenario(std::string_view name, DurationNs t_fast,
                          DurationNs t_slow) const
{
    return analyzeScenarioWithThreads(name, t_fast, t_slow,
                                      config_.threads);
}

std::vector<ScenarioAnalysis>
Analyzer::analyzeScenarios(
    std::span<const ScenarioThresholds> scenarios) const
{
    graphs(); // build once, up front, across all configured threads
    // Scenario analyses are independent; fan them out and keep each
    // one's inner stages serial so the machine is not oversubscribed.
    return parallelMap<ScenarioAnalysis>(
        config_.threads, scenarios.size(), [&](std::size_t i) {
            return analyzeScenarioWithThreads(
                scenarios[i].name, scenarios[i].tFast,
                scenarios[i].tSlow, 1);
        });
}

ScenarioAnalysis
Analyzer::analyzeScenarioWithThreads(std::string_view name,
                                     DurationNs t_fast,
                                     DurationNs t_slow,
                                     unsigned threads) const
{
    const std::uint32_t scenario = corpus_.findScenario(name);
    if (scenario == UINT32_MAX)
        TL_FATAL("scenario '", std::string(name), "' not in corpus");

    ScenarioAnalysis analysis;
    analysis.name = std::string(name);
    analysis.tFast = t_fast;
    analysis.tSlow = t_slow;
    analysis.classes = classify(scenario, t_fast, t_slow);

    const std::vector<WaitGraph> &all = graphs();
    auto gather = [&](const std::vector<std::uint32_t> &indices) {
        std::vector<WaitGraph> subset;
        subset.reserve(indices.size());
        for (std::uint32_t i : indices)
            subset.push_back(all[i]); // copy: subsets stay independent
        return subset;
    };

    const std::vector<WaitGraph> fast_graphs =
        gather(analysis.classes.fast);
    const std::vector<WaitGraph> slow_graphs =
        gather(analysis.classes.slow);

    ImpactAnalysis impact(corpus_, components_);
    analysis.slowImpact = impact.analyze(slow_graphs, threads);
    for (std::uint32_t i : analysis.classes.slow)
        analysis.slowDuration += corpus_.instances()[i].duration();

    AwgBuilder awg_builder(corpus_, components_, config_.awg);
    analysis.awgFast = awg_builder.aggregate(fast_graphs, threads);
    analysis.awgSlow = awg_builder.aggregate(slow_graphs, threads);

    MiningOptions mining_options;
    mining_options.maxSegmentLength = config_.maxSegmentLength;
    mining_options.tFast = t_fast;
    mining_options.tSlow = t_slow;
    mining_options.useMetaPatternGate = config_.useMetaPatternGate;
    ContrastMiner miner(corpus_, mining_options);
    analysis.mining =
        miner.mine(analysis.awgFast, analysis.awgSlow, threads);

    // RQ1 denominator: the total driver cost as aggregated — the kept
    // graph plus the non-optimizable portion removed by ReduceAWG
    // (Section 5.2.2 accounts exactly this way).
    analysis.coverage = computeCoverage(
        analysis.mining,
        analysis.awgSlow.reducedCost() + analysis.awgSlow.totalRootCost(),
        t_slow);

    return analysis;
}

} // namespace tracelens
