/**
 * @file
 * Self-contained HTML rendering of the consolidated report; scenario
 * analyses are computed via the Analyzer's parallel fan-out.
 */

#include "src/core/htmlreport.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "src/impact/breakdown.h"
#include "src/mining/knowledge.h"
#include "src/trace/validate.h"
#include "src/util/logging.h"
#include "src/util/table.h"
#include "src/util/telemetry.h"

namespace tracelens
{

namespace
{

std::string
escape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '&':
            out += "&amp;";
            break;
          case '<':
            out += "&lt;";
            break;
          case '>':
            out += "&gt;";
            break;
          case '"':
            out += "&quot;";
            break;
          default:
            out += c;
        }
    }
    return out;
}

const char *kStyle = R"css(
body { font-family: -apple-system, "Segoe UI", sans-serif; margin: 2em;
       color: #1a1a2e; max-width: 70em; }
h1 { border-bottom: 3px solid #4361ee; padding-bottom: 0.2em; }
h2 { color: #3a0ca3; margin-top: 1.6em; }
table { border-collapse: collapse; margin: 0.8em 0; }
th, td { border: 1px solid #cbd5e1; padding: 0.3em 0.7em;
         text-align: left; font-size: 0.92em; }
th { background: #eef2ff; }
code, .sig { font-family: ui-monospace, Consolas, monospace;
             font-size: 0.9em; }
.metric { display: inline-block; background: #eef2ff; margin: 0.2em;
          padding: 0.4em 0.8em; border-radius: 6px; }
.metric b { color: #4361ee; }
details { margin: 0.3em 0 0.3em 1em; }
summary { cursor: pointer; }
.pattern { background: #f8fafc; border-left: 4px solid #4361ee;
           margin: 0.6em 0; padding: 0.5em 0.9em; }
.hi { border-left-color: #e63946; }
.muted { color: #64748b; font-size: 0.88em; }
)css";

/** Recursively render an AWG subtree as nested <details>. */
void
renderAwgNode(std::ostringstream &html, const AggregatedWaitGraph &awg,
              const SymbolTable &symbols, std::uint32_t id, int depth,
              int max_depth)
{
    const auto &node = awg.node(id);
    std::ostringstream label;
    auto name = [&](FrameId f) {
        return f == kNoFrame ? std::string("&lt;other&gt;")
                             : escape(symbols.frameName(f));
    };
    switch (node.key.status) {
      case AwgStatus::Waiting:
        label << name(node.key.primary) << " &larr; "
              << name(node.key.secondary) << " (waiting)";
        break;
      case AwgStatus::Running:
        label << name(node.key.primary) << " (running)";
        break;
      case AwgStatus::Hardware:
        label << name(node.key.primary) << " (hardware)";
        break;
    }
    label << " <span class=muted>C=" << TextTable::num(toMs(node.cost))
          << "ms N=" << node.count << "</span>";

    if (node.children.empty() || depth >= max_depth) {
        html << "<div class=sig>" << label.str() << "</div>\n";
        return;
    }
    html << "<details" << (depth == 0 ? " open" : "") << "><summary "
         << "class=sig>" << label.str() << "</summary>\n";
    for (std::uint32_t child : node.children)
        renderAwgNode(html, awg, symbols, child, depth + 1, max_depth);
    html << "</details>\n";
}

} // namespace

std::string
buildHtmlReport(const Analyzer &analyzer,
                std::span<const ScenarioThresholds> scenarios,
                const ReportOptions &options)
{
    const TraceCorpus &corpus = analyzer.corpus();
    std::ostringstream html;

    html << "<!doctype html><html><head><meta charset=\"utf-8\">"
         << "<title>TraceLens report</title><style>" << kStyle
         << "</style></head><body>\n";
    html << "<h1>TraceLens report</h1>\n";

    html << "<p class=muted>" << corpus.streamCount() << " streams, "
         << corpus.instances().size() << " scenario instances, "
         << corpus.totalEvents() << " events. Validation: "
         << escape(validateCorpus(corpus).render()) << "</p>\n";

    const ImpactResult impact = analyzer.impactAll();
    html << "<h2>Impact analysis (all scenarios)</h2>\n";
    html << "<div><span class=metric>IA_wait <b>"
         << TextTable::pct(impact.iaWait()) << "</b></span>"
         << "<span class=metric>IA_run <b>"
         << TextTable::pct(impact.iaRun()) << "</b></span>"
         << "<span class=metric>IA_opt <b>"
         << TextTable::pct(impact.iaOpt()) << "</b></span>"
         << "<span class=metric>D<sub>wait</sub>/D<sub>waitdist</sub> "
         << "<b>" << TextTable::num(impact.waitAmplification(), 2)
         << "</b></span></div>\n";

    html << "<h2>Impact by component</h2>\n<table><tr><th>Component"
         << "</th><th>Wait</th><th>Run</th><th>Waits</th></tr>\n";
    const auto by_component = impactByComponent(
        corpus, analyzer.graphs(), analyzer.components());
    for (std::size_t i = 0;
         i < std::min(options.topComponents, by_component.size());
         ++i) {
        const ComponentImpact &c = by_component[i];
        html << "<tr><td class=sig>" << escape(c.component)
             << "</td><td>" << TextTable::ms(toMs(c.wait))
             << "</td><td>" << TextTable::ms(toMs(c.run))
             << "</td><td>" << c.waitEvents << "</td></tr>\n";
    }
    html << "</table>\n";

    // Fan the scenario analyses out in parallel, render in order.
    std::vector<ScenarioThresholds> present;
    for (const ScenarioThresholds &scenario : scenarios) {
        if (corpus.findScenario(scenario.name) != UINT32_MAX)
            present.push_back(scenario);
    }
    const std::vector<ScenarioAnalysis> analyses =
        analyzer.analyzeScenarios(present);

    const KnowledgeBase knowledge = KnowledgeBase::defaults();
    std::size_t next_present = 0;
    for (const ScenarioThresholds &scenario : scenarios) {
        html << "<h2>Scenario " << escape(scenario.name)
             << " <span class=muted>(T_fast="
             << toMs(scenario.tFast) << "ms, T_slow="
             << toMs(scenario.tSlow) << "ms)</span></h2>\n";
        if (corpus.findScenario(scenario.name) == UINT32_MAX) {
            html << "<p class=muted>not present in this corpus</p>\n";
            continue;
        }
        const ScenarioAnalysis &analysis = analyses[next_present++];
        html << "<p>" << analysis.classes.fast.size() << " fast / "
             << analysis.classes.middle.size() << " middle / "
             << analysis.classes.slow.size() << " slow instances; "
             << escape(analysis.coverage.render())
             << "; non-optimizable "
             << TextTable::pct(analysis.nonOptimizableShare())
             << "</p>\n";

        std::vector<ContrastPattern> patterns =
            analysis.mining.patterns;
        if (options.applyKnowledgeFilter) {
            FilteredMiningResult filtered =
                knowledge.apply(analysis.mining, corpus.symbols());
            if (!filtered.suppressed.empty()) {
                html << "<p class=muted>"
                     << filtered.suppressed.size()
                     << " pattern(s) suppressed as by-design ("
                     << escape(filtered.suppressed.front().reason)
                     << ")</p>\n";
            }
            patterns = std::move(filtered.kept);
        }

        const std::size_t top =
            std::min(options.topPatterns, patterns.size());
        for (std::size_t i = 0; i < top; ++i) {
            const ContrastPattern &p = patterns[i];
            const bool high = p.highImpact(scenario.tSlow);
            html << "<div class=\"pattern" << (high ? " hi" : "")
                 << "\"><b>#" << i + 1 << "</b> impact "
                 << toMs(static_cast<DurationNs>(p.impact()))
                 << "ms, N=" << p.count
                 << (high ? " <b>[high-impact]</b>" : "") << "<br>"
                 << "<span class=sig>"
                 << escape(p.tuple.renderCompact(corpus.symbols()))
                 << "</span></div>\n";
        }

        if (!analysis.awgSlow.empty()) {
            html << "<details><summary>slow-class Aggregated Wait "
                 << "Graph (heaviest roots)</summary>\n";
            // Heaviest three roots, each to limited depth.
            std::vector<std::uint32_t> roots(
                analysis.awgSlow.roots().begin(),
                analysis.awgSlow.roots().end());
            std::sort(roots.begin(), roots.end(),
                      [&](std::uint32_t a, std::uint32_t b) {
                          return analysis.awgSlow.node(a).cost >
                                 analysis.awgSlow.node(b).cost;
                      });
            for (std::size_t r = 0; r < std::min<std::size_t>(
                                            3, roots.size());
                 ++r) {
                renderAwgNode(html, analysis.awgSlow,
                              corpus.symbols(), roots[r], 0, 6);
            }
            html << "</details>\n";
        }
    }

    html << "<hr><p class=muted>Generated by TraceLens (reproduction "
         << "of Yu et al., ASPLOS'14).</p></body></html>\n";
    return html.str();
}

void
writeHtmlReportFile(const Analyzer &analyzer,
                    std::span<const ScenarioThresholds> scenarios,
                    const std::string &path,
                    const ReportOptions &options)
{
    Span span("report.html", "analysis");
    if (span.active())
        span.arg("path", path);

    std::ofstream out(path);
    if (!out)
        TL_FATAL("cannot open '", path, "' for writing");
    out << buildHtmlReport(analyzer, scenarios, options);
    if (!out)
        TL_FATAL("write to '", path, "' failed");
}

} // namespace tracelens
