/**
 * @file
 * The artifact store of the incremental analysis pipeline.
 *
 * The Analyzer used to be an opaque facade: every derived result
 * (wait graphs, contrast classes, impact metrics, AWGs, mined
 * patterns) was recomputed from scratch for every analyzer instance.
 * This module turns those results into *artifacts*: immutable values
 * keyed by a content hash of everything that influenced them — the
 * digest chain of the input shards plus a fingerprint of the analysis
 * configuration (see docs/ARCHITECTURE.md, "Pipeline stage graph &
 * artifact keys").
 *
 * ArtifactStore memoizes artifacts per key:
 *
 *  - in memory, always: a thread-safe map of type-erased values with
 *    per-entry once-semantics, so concurrent analyses (the
 *    analyzeScenarios fan-out) share one build per key;
 *  - on disk, optionally: the two expensive stages — per-shard wait
 *    graph bundles and aggregated wait graphs — serialize to
 *    "<stage>-<keyhex>.tla" files under a cache directory (CLI:
 *    --artifact-cache DIR), so a later process warm-starts without
 *    recomputing. Corrupt or stale cache files are never trusted:
 *    every load validates magic, version, stage, key echo, and a
 *    payload checksum, and any mismatch falls back to a rebuild that
 *    overwrites the bad file.
 *
 * Because keys are content hashes, incrementality falls out for free:
 * appending a shard changes only the chain suffix, so every artifact
 * derived from the unchanged prefix keeps its key and is served from
 * the store, while artifacts downstream of the new data miss and
 * rebuild. PipelineStats counts exactly that (hits, misses, disk
 * traffic, build wall time) per stage.
 */

#ifndef TRACELENS_CORE_ARTIFACTS_H
#define TRACELENS_CORE_ARTIFACTS_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/awg/awg.h"
#include "src/util/hash.h"
#include "src/util/telemetry.h"
#include "src/waitgraph/waitgraph.h"

namespace tracelens
{

/** The memoized stages of the analysis pipeline. */
enum class Stage : std::uint8_t
{
    WaitGraphs = 0, //!< Per-shard wait-graph bundles (disk-backed).
    Classes = 1,    //!< Per-scenario fast/slow contrast classes.
    Impact = 2,     //!< Corpus / per-scenario / slow-class impact.
    Awg = 3,        //!< Fast and slow aggregated wait graphs (disk-backed).
    Mining = 4,     //!< Per-scenario contrast-mining results.
};

/** Number of pipeline stages (array sizing). */
inline constexpr std::size_t kStageCount = 5;

/** Human-readable stage name ("wait-graphs", ...). */
std::string_view stageName(Stage stage);

/** Cache counters of one pipeline stage. */
struct StageStats
{
    std::uint64_t hits = 0;       //!< Served from the in-memory map.
    std::uint64_t misses = 0;     //!< Built from the inputs.
    std::uint64_t diskHits = 0;   //!< Deserialized from the disk cache.
    std::uint64_t diskWrites = 0; //!< Artifact files written.
    std::uint64_t diskBytes = 0;  //!< Bytes read from + written to disk.
    double buildMs = 0.0;         //!< Wall time spent producing values.
};

/**
 * Per-stage cache counters of one pipeline run. This is a *snapshot
 * view* over the store's MetricsRegistry ("pipeline.<stage>.<name>"
 * counters), kept as a struct so existing callers and the CLI's
 * --pipeline-stats rendering stay byte-compatible.
 */
struct PipelineStats
{
    StageStats stages[kStageCount];

    const StageStats &of(Stage stage) const
    {
        return stages[static_cast<std::size_t>(stage)];
    }

    /** Multi-line human-readable rendering (CLI --pipeline-stats). */
    std::string render() const;
};

/**
 * Thread-safe keyed memoization of pipeline artifacts. Values are
 * immutable once published; concurrent requests for one key run the
 * build exactly once (the others block and then share the result).
 * Lookups for *different* keys never serialize behind a build.
 */
class ArtifactStore
{
  public:
    /**
     * @param diskDir Directory for the optional on-disk cache of
     *        wait-graph bundles and AWGs (created on first write);
     *        empty = memory-only.
     */
    explicit ArtifactStore(std::string diskDir = {});

    /** Folds this store's counters into MetricsRegistry::global(), so
     *  --metrics-out reports process-wide pipeline totals. */
    ~ArtifactStore();

    ArtifactStore(const ArtifactStore &) = delete;
    ArtifactStore &operator=(const ArtifactStore &) = delete;

    /**
     * The artifact for @p key, building it via @p build on first
     * request. @p T must match the type every caller uses for this
     * key (keys embed a stage salt, so stages cannot collide).
     */
    template <typename T, typename F>
    std::shared_ptr<const T>
    get(Stage stage, const Digest &key, F &&build)
    {
        auto erased = getOrBuild(stage, key, [&]() -> BuildOutcome {
            return {std::make_shared<const T>(build()), false, 0};
        });
        return std::static_pointer_cast<const T>(erased);
    }

    /**
     * One shard's wait-graph bundle: in-memory memoized and, when a
     * disk directory is configured, persisted/restored as a
     * "waitgraphs-<keyhex>.tla" file.
     */
    std::shared_ptr<const std::vector<WaitGraph>>
    waitGraphs(const Digest &key,
               const std::function<std::vector<WaitGraph>()> &build);

    /** An aggregated wait graph; disk-backed like waitGraphs(). */
    std::shared_ptr<const AggregatedWaitGraph>
    awg(const Digest &key,
        const std::function<AggregatedWaitGraph()> &build);

    /** Snapshot of the per-stage counters. */
    PipelineStats stats() const;

    const std::string &diskDir() const { return diskDir_; }

  private:
    struct Entry
    {
        std::once_flag once;
        std::shared_ptr<const void> value;
    };

    /** One erased build's result plus how the value was produced. */
    struct BuildOutcome
    {
        std::shared_ptr<const void> value;
        bool fromDisk = false;        //!< Deserialized, not computed.
        std::uint64_t diskBytes = 0;  //!< Payload bytes read.
    };

    using ErasedBuild = std::function<BuildOutcome()>;

    /**
     * Core memoization: find-or-insert the entry under the map mutex,
     * then run @p build under the entry's once_flag *outside* it, so
     * builds for distinct keys proceed concurrently. The build is
     * timed and counted as a miss or disk hit per its outcome; a
     * value already present counts as a hit. Every request records a
     * "stage.<name>" telemetry span carrying the artifact key and the
     * hit/miss/disk-hit outcome as span args.
     */
    std::shared_ptr<const void>
    getOrBuild(Stage stage, const Digest &key, const ErasedBuild &build);

    /** Path of the artifact file for @p key in @p stage. */
    std::string artifactPath(Stage stage, const Digest &key) const;

    void countHit(Stage stage);
    void recordBuild(Stage stage, bool fromDisk, std::uint64_t diskBytes,
                     double ms);
    void countDiskWrite(Stage stage, std::uint64_t bytes);

    std::string diskDir_;

    mutable std::mutex mutex_;
    std::unordered_map<Digest, std::unique_ptr<Entry>, DigestHash>
        entries_;

    /**
     * Per-store metrics backing PipelineStats: lock-free handles into
     * metrics_, one set per stage ("pipeline.<stage>.hits", ...).
     * Build wall time accumulates in nanoseconds (a counter) and is
     * rendered back to milliseconds by stats().
     */
    struct StageCounters
    {
        Counter *hits = nullptr;
        Counter *misses = nullptr;
        Counter *diskHits = nullptr;
        Counter *diskWrites = nullptr;
        Counter *diskBytes = nullptr;
        Counter *buildNs = nullptr;
    };

    MetricsRegistry metrics_;
    StageCounters counters_[kStageCount];
};

/**
 * Binary codec of wait-graph bundles for the disk cache. The payload
 * is a flat little-endian encoding of every graph's nodes, roots, and
 * instance; decode() bounds-checks every count and index and reports
 * failure instead of reading past the buffer.
 */
struct WaitGraphCodec
{
    static void encode(const std::vector<WaitGraph> &graphs,
                       std::string &out);
    static bool decode(const std::string &bytes,
                       std::vector<WaitGraph> &graphs);
};

/** Binary codec of aggregated wait graphs for the disk cache. */
struct AwgCodec
{
    static void encode(const AggregatedWaitGraph &awg, std::string &out);
    static bool decode(const std::string &bytes,
                       AggregatedWaitGraph &awg);
};

/** On-disk artifact (TLA1) format revision (`tracelens version`). */
std::uint32_t artifactCacheVersion();

} // namespace tracelens

#endif // TRACELENS_CORE_ARTIFACTS_H
