/**
 * @file
 * The TraceLens public facade: the full two-step analysis pipeline of
 * the paper over a trace corpus.
 *
 * Step 1 (impact analysis, Section 3): corpus-wide and per-scenario
 * IA_run / IA_wait / IA_opt for a chosen component filter.
 *
 * Step 2 (causality analysis, Section 4): per scenario — classify
 * instances into fast/slow classes by the scenario's thresholds, build
 * the two Aggregated Wait Graphs, mine ranked contrast patterns, and
 * compute the RQ1 coverage figures.
 *
 * Wait graphs for all instances are built once and cached; scenario
 * analyses reuse them.
 *
 * Every stage is corpus-parallel across AnalyzerConfig::threads
 * workers with deterministic merges: results are bit-identical for
 * every thread count (see docs/ARCHITECTURE.md for the threading
 * model).
 */

#ifndef TRACELENS_CORE_ANALYZER_H
#define TRACELENS_CORE_ANALYZER_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/awg/awg.h"
#include "src/impact/impact.h"
#include "src/mining/coverage.h"
#include "src/mining/miner.h"
#include "src/trace/source.h"
#include "src/trace/stream.h"
#include "src/waitgraph/waitgraph.h"

namespace tracelens
{

/** Pipeline configuration. */
struct AnalyzerConfig
{
    /** Component filter; the paper's study uses all drivers. */
    std::vector<std::string> components = {"*.sys"};
    WaitGraphOptions waitGraph;
    AwgOptions awg;
    /** k and the meta-pattern gate; thresholds come per scenario. */
    std::uint32_t maxSegmentLength = 5;
    bool useMetaPatternGate = true;
    /**
     * Worker threads for every pipeline stage (wait-graph
     * construction, impact accumulation, AWG aggregation, mining, and
     * the analyzeScenarios fan-out): 0 = all hardware threads
     * (default), 1 = fully serial. Every stage merges per-shard
     * results deterministically, so analysis output is bit-identical
     * for every thread count.
     */
    unsigned threads = 0;
};

/** A scenario name with its developer-specified thresholds. */
struct ScenarioThresholds
{
    std::string name;
    DurationNs tFast = 0;
    DurationNs tSlow = 0;
};

/** Instance classification for one scenario. */
struct ContrastClasses
{
    std::vector<std::uint32_t> fast;   //!< duration < T_fast.
    std::vector<std::uint32_t> slow;   //!< duration > T_slow.
    std::vector<std::uint32_t> middle; //!< between thresholds (unused).
};

/** Full causality-analysis output for one scenario. */
struct ScenarioAnalysis
{
    std::string name;
    DurationNs tFast = 0;
    DurationNs tSlow = 0;
    ContrastClasses classes;

    /** Impact metrics over the slow class only. */
    ImpactResult slowImpact;
    /** Total instance time of the slow class (D_scn of the class). */
    DurationNs slowDuration = 0;

    AggregatedWaitGraph awgFast;
    AggregatedWaitGraph awgSlow;
    MiningResult mining;
    CoverageResult coverage;

    /** Driver time share of the slow class: (D_wait+D_run)/D_scn. */
    double driverCostShare() const;
    /**
     * Share of slow-class AWG time removed as non-optimizable direct
     * hardware service (ReduceAWG).
     */
    double nonOptimizableShare() const;
};

/** The pipeline facade. */
class Analyzer
{
  public:
    /**
     * Analyze the corpus served by @p source — the preferred
     * constructor: the source decides how trace bytes reach memory
     * (eager load, mmap, sharded directory) and isolates corrupt
     * shards; the analyzer only consumes the merged view. The first
     * call materializes the corpus, so construction may ingest.
     * @p source must outlive the analyzer.
     */
    explicit Analyzer(TraceSource &source, AnalyzerConfig config = {});

    /**
     * Analyze an already-resident corpus. Kept for compatibility —
     * delegates to an internal EagerSource wrapping @p corpus, with
     * identical results. New code should construct a TraceSource
     * (see openSource()) and use the constructor above; this one is
     * slated for removal once callers have migrated (see
     * docs/ARCHITECTURE.md, "TraceSource API").
     */
    explicit Analyzer(const TraceCorpus &corpus,
                      AnalyzerConfig config = {});

    /** Corpus-wide impact analysis (the Section 5.1 headline). */
    ImpactResult impactAll() const;

    /** Impact per scenario id. */
    std::unordered_map<std::uint32_t, ImpactResult>
    impactPerScenario() const;

    /** Classify one scenario's instances against thresholds. */
    ContrastClasses classify(std::uint32_t scenario, DurationNs t_fast,
                             DurationNs t_slow) const;

    /** Run the full causality analysis for one scenario. */
    ScenarioAnalysis analyzeScenario(std::string_view name,
                                     DurationNs t_fast,
                                     DurationNs t_slow) const;

    /**
     * Analyze several scenarios, fanning the independent analyses out
     * over the configured thread count (each analysis then runs its
     * own stages serially to avoid oversubscription). Results are
     * returned in input order and are identical to calling
     * analyzeScenario once per entry. Fatal if any named scenario is
     * not in the corpus — filter with TraceCorpus::findScenario first.
     */
    std::vector<ScenarioAnalysis>
    analyzeScenarios(std::span<const ScenarioThresholds> scenarios) const;

    /**
     * The cached per-instance wait graphs. Built on first use across
     * the configured thread count; initialization is thread-safe
     * (std::call_once), so concurrent analyses share one build.
     */
    const std::vector<WaitGraph> &graphs() const;

    const TraceCorpus &corpus() const { return corpus_; }
    /** The ingestion source feeding this analyzer. */
    TraceSource &source() const { return *source_; }
    const AnalyzerConfig &config() const { return config_; }
    const NameFilter &components() const { return components_; }

  private:
    /** Common constructor: exactly one of @p owned / @p external. */
    Analyzer(std::unique_ptr<TraceSource> owned, TraceSource *external,
             AnalyzerConfig config);

    /** analyzeScenario with an explicit stage-level thread count. */
    ScenarioAnalysis analyzeScenarioWithThreads(std::string_view name,
                                                DurationNs t_fast,
                                                DurationNs t_slow,
                                                unsigned threads) const;

    std::unique_ptr<TraceSource> ownedSource_;
    TraceSource *source_;
    const TraceCorpus &corpus_;
    AnalyzerConfig config_;
    NameFilter components_;
    mutable std::vector<WaitGraph> graphs_;
    mutable std::once_flag graphsOnce_;
};

} // namespace tracelens

#endif // TRACELENS_CORE_ANALYZER_H
