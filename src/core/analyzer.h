/**
 * @file
 * The TraceLens pipeline facade: the full two-step analysis of the
 * paper over a trace corpus, restructured as an explicit stage graph
 * over an artifact store.
 *
 * Step 1 (impact analysis, Section 3): corpus-wide and per-scenario
 * IA_run / IA_wait / IA_opt for a chosen component filter.
 *
 * Step 2 (causality analysis, Section 4): per scenario — classify
 * instances into fast/slow classes by the scenario's thresholds, build
 * the two Aggregated Wait Graphs, mine ranked contrast patterns, and
 * compute the RQ1 coverage figures.
 *
 * Every derived result is an *artifact* in an ArtifactStore
 * (src/core/artifacts.h), keyed by a content hash of its inputs: the
 * digest chain of the ingested shards plus a fingerprint of the
 * relevant configuration. Two consequences:
 *
 *  - Incrementality: addStreams() appends trace data and invalidates
 *    nothing that was derived from the existing shards — only the new
 *    shard's artifacts (and whole-corpus aggregates) rebuild. The
 *    results are bit-identical to a cold analysis of the merged
 *    corpus (asserted by tests/incremental_test.cpp).
 *  - Warm starts: with AnalyzerConfig::artifactCacheDir set, wait
 *    graphs and AWGs persist to disk and a later process reuses them.
 *
 * Keys exclude the thread count: every stage merges per-shard results
 * deterministically, so analysis output is bit-identical for every
 * thread count (see docs/ARCHITECTURE.md for the threading model and
 * the stage-graph key derivation).
 */

#ifndef TRACELENS_CORE_ANALYZER_H
#define TRACELENS_CORE_ANALYZER_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/awg/awg.h"
#include "src/core/artifacts.h"
#include "src/core/partial.h"
#include "src/impact/impact.h"
#include "src/mining/coverage.h"
#include "src/mining/miner.h"
#include "src/trace/source.h"
#include "src/trace/stream.h"
#include "src/util/hash.h"
#include "src/waitgraph/waitgraph.h"

namespace tracelens
{

/** Pipeline configuration. */
struct AnalyzerConfig
{
    /** Component filter; the paper's study uses all drivers. */
    std::vector<std::string> components = {"*.sys"};
    WaitGraphOptions waitGraph;
    AwgOptions awg;
    /** k and the meta-pattern gate; thresholds come per scenario. */
    std::uint32_t maxSegmentLength = 5;
    bool useMetaPatternGate = true;
    /**
     * Worker threads for every pipeline stage (wait-graph
     * construction, impact accumulation, AWG aggregation, mining, and
     * the analyzeScenarios fan-out): 0 = all hardware threads
     * (default), 1 = fully serial. Every stage merges per-shard
     * results deterministically, so analysis output is bit-identical
     * for every thread count — which is also why artifact keys exclude
     * the thread count.
     */
    unsigned threads = 0;
    /**
     * Directory for the on-disk artifact cache (wait-graph bundles and
     * AWGs survive the process; CLI: --artifact-cache DIR). Empty
     * (default) = in-memory memoization only.
     */
    std::string artifactCacheDir;
};

/** A scenario name with its developer-specified thresholds. */
struct ScenarioThresholds
{
    std::string name;
    DurationNs tFast = 0;
    DurationNs tSlow = 0;
};

/** Instance classification for one scenario. */
struct ContrastClasses
{
    std::vector<std::uint32_t> fast;   //!< duration < T_fast.
    std::vector<std::uint32_t> slow;   //!< duration > T_slow.
    std::vector<std::uint32_t> middle; //!< between thresholds (unused).
};

/** Full causality-analysis output for one scenario. */
struct ScenarioAnalysis
{
    std::string name;
    DurationNs tFast = 0;
    DurationNs tSlow = 0;
    ContrastClasses classes;

    /** Impact metrics over the slow class only. */
    ImpactResult slowImpact;
    /** Total instance time of the slow class (D_scn of the class). */
    DurationNs slowDuration = 0;

    AggregatedWaitGraph awgFast;
    AggregatedWaitGraph awgSlow;
    MiningResult mining;
    CoverageResult coverage;

    /** Driver time share of the slow class: (D_wait+D_run)/D_scn. */
    double driverCostShare() const;
    /**
     * Share of slow-class AWG time removed as non-optimizable direct
     * hardware service (ReduceAWG).
     */
    double nonOptimizableShare() const;
};

/** The pipeline facade. */
class Analyzer
{
  public:
    /**
     * Analyze the corpus served by @p source: the source decides how
     * trace bytes reach memory (eager load, mmap, sharded directory)
     * and isolates corrupt shards; the analyzer ingests the usable
     * shards one at a time, recording each shard's content digest for
     * artifact keying, so construction may materialize. @p source
     * must outlive the analyzer.
     */
    explicit Analyzer(TraceSource &source, AnalyzerConfig config = {});

    /**
     * Append @p part's streams and instances to the analysis corpus
     * as one additional shard. Artifacts derived from the existing
     * shards keep their keys and are served from the store; only the
     * new shard's wait graphs and the whole-corpus aggregates
     * (impact, classes, AWGs, mining) rebuild. Results are
     * bit-identical to analyzing the merged corpus cold.
     *
     * Not thread-safe against concurrent analysis calls; references
     * previously returned by corpus() and graphs() are invalidated.
     */
    void addStreams(const TraceCorpus &part);

    /** Corpus-wide impact analysis (the Section 5.1 headline). */
    ImpactResult impactAll() const;

    /** Impact per scenario id. */
    std::unordered_map<std::uint32_t, ImpactResult>
    impactPerScenario() const;

    /** Classify one scenario's instances against thresholds. */
    ContrastClasses classify(std::uint32_t scenario, DurationNs t_fast,
                             DurationNs t_slow) const;

    /** Run the full causality analysis for one scenario. */
    ScenarioAnalysis analyzeScenario(std::string_view name,
                                     DurationNs t_fast,
                                     DurationNs t_slow) const;

    /**
     * Analyze several scenarios, fanning the independent analyses out
     * over the configured thread count (each analysis then runs its
     * own stages serially to avoid oversubscription). Results are
     * returned in input order and are identical to calling
     * analyzeScenario once per entry. Fatal if any named scenario is
     * not in the corpus — filter with TraceCorpus::findScenario first.
     */
    std::vector<ScenarioAnalysis>
    analyzeScenarios(std::span<const ScenarioThresholds> scenarios) const;

    /**
     * This corpus's contribution to a scatter/gathered scenario
     * analysis (the worker side of coordinator mode, docs/SERVER.md):
     * classification tally, slow-class impact accumulator, and the
     * two unreduced AWG fragments, plus the frame table and stream
     * count that let the coordinator rebuild global identity. A
     * scenario absent from this corpus yields empty partials (still
     * carrying the frame table — the coordinator interns every
     * shard's frames, present or not, to reproduce single-node
     * interning order).
     */
    ScenarioPartial scenarioPartial(std::string_view name,
                                    DurationNs t_fast,
                                    DurationNs t_slow) const;

    /** This corpus's corpus-wide + per-scenario impact partials. */
    ImpactPartial impactPartial() const;

    /**
     * The per-instance wait graphs, in instance order. Assembled from
     * the store's per-shard bundles on first use (and re-assembled
     * after addStreams); thread-safe, so concurrent analyses share
     * one build.
     */
    const std::vector<WaitGraph> &graphs() const;

    /** The merged analysis corpus over all ingested shards. */
    const TraceCorpus &corpus() const { return *corpus_; }
    /** The ingestion source feeding this analyzer. */
    TraceSource &source() const { return *source_; }
    const AnalyzerConfig &config() const { return config_; }
    const NameFilter &components() const { return components_; }

    /** Number of shards ingested so far (source shards + addStreams). */
    std::size_t shardCount() const { return shards_.size(); }

    /**
     * Content digest of the whole ingested corpus (the shard-chain
     * tip every whole-corpus artifact key hashes). Two analyzers over
     * identical shard sequences report equal digests, which is what
     * the analysis service keys its response cache on.
     */
    const Digest &corpusDigest() const { return chainTip(); }

    /** Snapshot of the per-stage artifact-cache counters. */
    PipelineStats pipelineStats() const { return store_.stats(); }

  private:
    /**
     * One ingested shard: its content digest, the running chain
     * digest over all shards up to and including it (artifact keys
     * hash the chain, so a change anywhere in the prefix invalidates
     * every later shard's artifacts), and its instance range in the
     * merged corpus.
     */
    struct ShardRecord
    {
        Digest digest;
        Digest chain;
        std::uint32_t firstInstance = 0;
        std::uint32_t instanceCount = 0;
    };

    /** Derive the per-stage config fingerprints (constructor). */
    void computeFingerprints();

    /**
     * Ingest @p part as the next shard. @p alias, when non-null, is a
     * handle to @p part that may be adopted directly as the analysis
     * corpus (single-shard fast path — no copy); a second shard
     * forces the copy-on-append switch to an owned merged corpus.
     */
    void absorb(const TraceCorpus &part, CorpusPtr alias);

    /** Switch from an aliased single shard to an owned copy. */
    void ensureOwned();

    /** Chain digest over all ingested shards (seed when none). */
    const Digest &chainTip() const;

    /** fingerprint + stage salt + input digest -> artifact key. */
    static Digest stageKey(const Digest &fingerprint,
                           std::string_view salt, const Digest &input);

    /** analyzeScenario with an explicit stage-level thread count. */
    ScenarioAnalysis analyzeScenarioWithThreads(std::string_view name,
                                                DurationNs t_fast,
                                                DurationNs t_slow,
                                                unsigned threads) const;

    TraceSource *source_;
    AnalyzerConfig config_;
    NameFilter components_;

    /** Non-null while the corpus aliases a single source shard. */
    CorpusPtr aliasShard_;
    /** The merged corpus once >1 shard (or addStreams) forced a copy. */
    TraceCorpus ownedCorpus_;
    const TraceCorpus *corpus_ = &ownedCorpus_;

    std::vector<ShardRecord> shards_;
    static constexpr std::uint64_t kSchemaVersion = 1;
    Digest fpWaitGraph_; //!< components + wait-graph options.
    Digest fpClasses_;   //!< thresholds-only stage (no components).
    Digest fpAwg_;       //!< fpWaitGraph_ + AWG options.
    Digest fpMining_;    //!< fpAwg_ + mining options.

    mutable ArtifactStore store_;
    mutable std::mutex graphsMutex_;
    mutable std::vector<WaitGraph> graphs_;
    /** Shard count graphs_ was assembled for (stale when != shards_). */
    mutable std::size_t graphsShards_ = 0;
};

} // namespace tracelens

#endif // TRACELENS_CORE_ANALYZER_H
