/**
 * @file
 * Shared finalize-and-render path for merged scenario results (see
 * src/core/resultjson.h for the byte-identity contract).
 */

#include "src/core/resultjson.h"

#include <algorithm>

#include "src/core/analyzer.h"
#include "src/mining/knowledge.h"

namespace tracelens
{

JsonValue
impactJson(const ImpactResult &impact)
{
    JsonValue out = JsonValue::makeObject();
    out.set("instances", JsonValue(impact.instances));
    out.set("d_scn_ms", JsonValue(toMs(impact.dScn)));
    out.set("d_wait_ms", JsonValue(toMs(impact.dWait)));
    out.set("d_run_ms", JsonValue(toMs(impact.dRun)));
    out.set("d_waitdist_ms", JsonValue(toMs(impact.dWaitDist)));
    out.set("ia_run", JsonValue(impact.iaRun()));
    out.set("ia_wait", JsonValue(impact.iaWait()));
    out.set("ia_opt", JsonValue(impact.iaOpt()));
    return out;
}

JsonValue
patternJson(const ContrastPattern &pattern, DurationNs tSlow,
            const SymbolTable &symbols, std::size_t rank)
{
    JsonValue out = JsonValue::makeObject();
    out.set("rank", JsonValue(rank));
    out.set("impact_ms",
            JsonValue(toMs(static_cast<DurationNs>(pattern.impact()))));
    out.set("count", JsonValue(pattern.count));
    out.set("high_impact", JsonValue(pattern.highImpact(tSlow)));
    out.set("tuple", JsonValue(pattern.tuple.renderCompact(symbols)));
    return out;
}

MiningResult
mineGathered(const AggregatedWaitGraph &fast,
             const AggregatedWaitGraph &slow, DurationNs tFast,
             DurationNs tSlow)
{
    const AnalyzerConfig defaults;
    MiningOptions options;
    options.maxSegmentLength = defaults.maxSegmentLength;
    options.tFast = tFast;
    options.tSlow = tSlow;
    options.useMetaPatternGate = defaults.useMetaPatternGate;
    const TraceCorpus dummy;
    ContrastMiner miner(dummy, options);
    return miner.mine(fast, slow, 1);
}

ScenarioSummary
summarizeScenario(const std::string &scenario, DurationNs tFast,
                  DurationNs tSlow, const PartialClasses &classes,
                  const ImpactResult &slowImpact,
                  const AggregatedWaitGraph &awgFast,
                  const AggregatedWaitGraph &awgSlow,
                  const SymbolTable &symbols, std::size_t top,
                  bool applyKnowledgeFilter)
{
    ScenarioSummary summary;
    summary.mining = mineGathered(awgFast, awgSlow, tFast, tSlow);
    summary.coverage = computeCoverage(
        summary.mining,
        awgSlow.reducedCost() + awgSlow.totalRootCost(), tSlow);

    std::vector<ContrastPattern> patterns = summary.mining.patterns;
    std::size_t suppressed = 0;
    if (applyKnowledgeFilter) {
        const auto filtered =
            KnowledgeBase::defaults().apply(summary.mining, symbols);
        suppressed = filtered.suppressed.size();
        patterns = filtered.kept;
    }

    summary.driverCostShare =
        classes.slowDuration == 0
            ? 0.0
            : static_cast<double>(slowImpact.dWait + slowImpact.dRun) /
                  static_cast<double>(classes.slowDuration);

    JsonValue result = JsonValue::makeObject();
    result.set("scenario", JsonValue(scenario));
    result.set("tfast_ms", JsonValue(toMs(tFast)));
    result.set("tslow_ms", JsonValue(toMs(tSlow)));
    JsonValue classesJson = JsonValue::makeObject();
    classesJson.set("fast", JsonValue(classes.fast));
    classesJson.set("middle", JsonValue(classes.middle));
    classesJson.set("slow", JsonValue(classes.slow));
    result.set("classes", std::move(classesJson));
    result.set("slow_impact", impactJson(slowImpact));
    result.set("driver_cost_share", JsonValue(summary.driverCostShare));
    result.set("coverage", JsonValue(summary.coverage.render()));
    result.set("mining_stats",
               JsonValue(summary.mining.stats.render()));
    result.set("suppressed", JsonValue(suppressed));
    JsonValue list = JsonValue::makeArray();
    for (std::size_t i = 0; i < std::min(top, patterns.size()); ++i)
        list.push(patternJson(patterns[i], tSlow, symbols, i + 1));
    result.set("patterns", std::move(list));
    summary.json = std::move(result);
    return summary;
}

} // namespace tracelens
