/**
 * @file
 * Self-contained HTML report: the text report's content as a single
 * shareable .html file (inline CSS, no external assets) with the
 * slow-class Aggregated Wait Graph rendered as collapsible trees —
 * the artifact an analyst attaches to a bug report.
 */

#ifndef TRACELENS_CORE_HTMLREPORT_H
#define TRACELENS_CORE_HTMLREPORT_H

#include <span>
#include <string>

#include "src/core/report.h"

namespace tracelens
{

/** Build the HTML report (same inputs as buildReport). */
std::string buildHtmlReport(const Analyzer &analyzer,
                            std::span<const ScenarioThresholds> scenarios,
                            const ReportOptions &options = {});

/** Write the HTML report to @p path (fatal on I/O failure). */
void writeHtmlReportFile(const Analyzer &analyzer,
                         std::span<const ScenarioThresholds> scenarios,
                         const std::string &path,
                         const ReportOptions &options = {});

} // namespace tracelens

#endif // TRACELENS_CORE_HTMLREPORT_H
