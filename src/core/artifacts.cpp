/**
 * @file
 * ArtifactStore: thread-safe keyed memoization with an optional
 * on-disk cache, plus the binary codecs for the two disk-backed
 * artifact kinds (wait-graph bundles and AWGs).
 *
 * Disk format ("TLA1"):
 *
 *   magic "TLA1", version u32, stage u32,
 *   key echo (hi u64, lo u64),
 *   payload size u64, payload checksum (hi u64, lo u64),
 *   payload bytes.
 *
 * A load is trusted only when every header field matches what the
 * reader expects *and* the payload re-hashes to the stored checksum;
 * anything else (truncation, bit flips, a stale schema, a key
 * collision in the file name) degrades to a cache miss. Writes go to
 * a temporary file first and are renamed into place, so readers never
 * observe a half-written artifact.
 */

#include "src/core/artifacts.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>

#include "src/util/bytecodec.h"
#include "src/util/logging.h"
#include "src/util/telemetry.h"

namespace tracelens
{

namespace
{

constexpr char kMagic[4] = {'T', 'L', 'A', '1'};
constexpr std::uint32_t kVersion = 1;

/** Fixed-size header preceding every artifact payload. */
constexpr std::size_t kHeaderBytes =
    4 + 4 + 4 + 8 + 8 + 8 + 8 + 8; // magic..checksum

double
msSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

Digest
payloadChecksum(const std::string &payload)
{
    Digest d;
    d.mixBytes(payload.data(), payload.size());
    return d;
}

/**
 * Read an artifact file and return its payload, or nullopt when the
 * file is missing, truncated, from another schema version/stage/key,
 * or fails its checksum.
 */
std::optional<std::string>
loadArtifactFile(const std::string &path, Stage stage, const Digest &key)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string bytes = std::move(buffer).str();
    if (bytes.size() < kHeaderBytes)
        return std::nullopt;
    if (std::memcmp(bytes.data(), kMagic, 4) != 0)
        return std::nullopt;

    ByteReader reader(bytes);
    reader.u32(); // magic, already checked
    if (reader.u32() != kVersion)
        return std::nullopt;
    if (reader.u32() != static_cast<std::uint32_t>(stage))
        return std::nullopt;
    if (reader.u64() != key.hi() || reader.u64() != key.lo())
        return std::nullopt;
    const std::uint64_t payload_size = reader.u64();
    const std::uint64_t check_hi = reader.u64();
    const std::uint64_t check_lo = reader.u64();
    if (reader.failed() ||
        payload_size != bytes.size() - kHeaderBytes)
        return std::nullopt;

    std::string payload = bytes.substr(kHeaderBytes);
    const Digest check = payloadChecksum(payload);
    if (check.hi() != check_hi || check.lo() != check_lo)
        return std::nullopt;
    return payload;
}

/**
 * Write an artifact file (tmp + rename, so concurrent readers never
 * see a partial file). Failures are logged and swallowed: the disk
 * cache is an optimization, never a correctness dependency.
 */
void
storeArtifactFile(const std::string &path, Stage stage,
                  const Digest &key, const std::string &payload)
{
    std::error_code ec;
    std::filesystem::create_directories(
        std::filesystem::path(path).parent_path(), ec);

    std::string header;
    header.reserve(kHeaderBytes);
    header.append(kMagic, 4);
    putU32(header, kVersion);
    putU32(header, static_cast<std::uint32_t>(stage));
    putU64(header, key.hi());
    putU64(header, key.lo());
    putU64(header, payload.size());
    const Digest check = payloadChecksum(payload);
    putU64(header, check.hi());
    putU64(header, check.lo());

    // The temp name must be unique per writer: two processes (or two
    // stores in one process) sharing a cache directory may store the
    // same artifact concurrently, and a shared "path + .tmp" lets one
    // writer rename the other's half-written file into place. The
    // content under a given name is identical across writers, so with
    // unique temp names the last rename wins harmlessly.
    static std::atomic<std::uint64_t> serial{0};
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid()) + "." +
        std::to_string(serial.fetch_add(1, std::memory_order_relaxed));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            warn("artifact cache: cannot write ", tmp);
            return;
        }
        out.write(header.data(),
                  static_cast<std::streamsize>(header.size()));
        out.write(payload.data(),
                  static_cast<std::streamsize>(payload.size()));
        if (!out) {
            warn("artifact cache: short write to ", tmp);
            return;
        }
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        warn("artifact cache: rename failed for ", path, ": ",
             ec.message());
}

} // namespace

std::string_view
stageName(Stage stage)
{
    switch (stage) {
    case Stage::WaitGraphs:
        return "wait-graphs";
    case Stage::Classes:
        return "classes";
    case Stage::Impact:
        return "impact";
    case Stage::Awg:
        return "awg";
    case Stage::Mining:
        return "mining";
    }
    return "unknown";
}

namespace
{

/** Span name literal per stage (span names must outlive the flush). */
const char *
stageSpanName(Stage stage)
{
    switch (stage) {
    case Stage::WaitGraphs:
        return "stage.wait-graphs";
    case Stage::Classes:
        return "stage.classes";
    case Stage::Impact:
        return "stage.impact";
    case Stage::Awg:
        return "stage.awg";
    case Stage::Mining:
        return "stage.mining";
    }
    return "stage.unknown";
}

} // namespace

std::string
PipelineStats::render() const
{
    std::ostringstream oss;
    oss << "pipeline stages:\n";
    for (std::size_t i = 0; i < kStageCount; ++i) {
        const StageStats &s = stages[i];
        oss << "  " << stageName(static_cast<Stage>(i)) << ": "
            << s.hits << " hit" << (s.hits == 1 ? "" : "s") << ", "
            << s.misses << " miss" << (s.misses == 1 ? "" : "es");
        if (s.diskHits || s.diskWrites || s.diskBytes)
            oss << ", " << s.diskHits << " disk hit"
                << (s.diskHits == 1 ? "" : "s") << ", " << s.diskWrites
                << " disk write" << (s.diskWrites == 1 ? "" : "s")
                << ", " << s.diskBytes << " disk bytes";
        oss << ", " << s.buildMs << " ms build\n";
    }
    return oss.str();
}

ArtifactStore::ArtifactStore(std::string diskDir)
    : diskDir_(std::move(diskDir))
{
    // Resolve the per-stage metric handles once; every hot-path
    // update after this is a relaxed atomic increment.
    for (std::size_t i = 0; i < kStageCount; ++i) {
        const std::string prefix =
            "pipeline." + std::string(stageName(static_cast<Stage>(i)));
        counters_[i].hits = &metrics_.counter(prefix + ".hits");
        counters_[i].misses = &metrics_.counter(prefix + ".misses");
        counters_[i].diskHits =
            &metrics_.counter(prefix + ".disk_hits");
        counters_[i].diskWrites =
            &metrics_.counter(prefix + ".disk_writes");
        counters_[i].diskBytes =
            &metrics_.counter(prefix + ".disk_bytes");
        counters_[i].buildNs = &metrics_.counter(prefix + ".build_ns");
    }
}

ArtifactStore::~ArtifactStore()
{
    metrics_.mergeInto(MetricsRegistry::global());
}

std::shared_ptr<const void>
ArtifactStore::getOrBuild(Stage stage, const Digest &key,
                          const ErasedBuild &build)
{
    Span span(stageSpanName(stage), "pipeline");
    if (span.active())
        span.arg("key", key.hex());

    Entry *entry = nullptr;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto [it, inserted] = entries_.try_emplace(key);
        if (inserted)
            it->second = std::make_unique<Entry>();
        entry = it->second.get();
    }

    bool builtHere = false;
    bool fromDisk = false;
    std::call_once(entry->once, [&] {
        const auto start = std::chrono::steady_clock::now();
        BuildOutcome outcome = build();
        entry->value = std::move(outcome.value);
        fromDisk = outcome.fromDisk;
        recordBuild(stage, outcome.fromDisk, outcome.diskBytes,
                    msSince(start));
        builtHere = true;
    });
    if (!builtHere)
        countHit(stage);
    if (span.active()) {
        span.arg("outcome", std::string(builtHere
                                            ? (fromDisk ? "disk-hit"
                                                        : "miss")
                                            : "hit"));
    }
    return entry->value;
}

std::string
ArtifactStore::artifactPath(Stage stage, const Digest &key) const
{
    return (std::filesystem::path(diskDir_) /
            (std::string(stageName(stage)) + "-" + key.hex() + ".tla"))
        .string();
}

std::shared_ptr<const std::vector<WaitGraph>>
ArtifactStore::waitGraphs(
    const Digest &key,
    const std::function<std::vector<WaitGraph>()> &build)
{
    auto erased = getOrBuild(
        Stage::WaitGraphs, key, [&]() -> BuildOutcome {
            if (!diskDir_.empty()) {
                const std::string path =
                    artifactPath(Stage::WaitGraphs, key);
                if (auto payload =
                        loadArtifactFile(path, Stage::WaitGraphs, key)) {
                    std::vector<WaitGraph> graphs;
                    if (WaitGraphCodec::decode(*payload, graphs)) {
                        return {std::make_shared<
                                    const std::vector<WaitGraph>>(
                                    std::move(graphs)),
                                true, payload->size()};
                    }
                }
            }
            auto graphs = std::make_shared<const std::vector<WaitGraph>>(
                build());
            if (!diskDir_.empty()) {
                std::string payload;
                WaitGraphCodec::encode(*graphs, payload);
                storeArtifactFile(artifactPath(Stage::WaitGraphs, key),
                                  Stage::WaitGraphs, key, payload);
                countDiskWrite(Stage::WaitGraphs, payload.size());
            }
            return {std::move(graphs), false, 0};
        });
    return std::static_pointer_cast<const std::vector<WaitGraph>>(
        erased);
}

std::shared_ptr<const AggregatedWaitGraph>
ArtifactStore::awg(const Digest &key,
                   const std::function<AggregatedWaitGraph()> &build)
{
    auto erased = getOrBuild(Stage::Awg, key, [&]() -> BuildOutcome {
        if (!diskDir_.empty()) {
            const std::string path = artifactPath(Stage::Awg, key);
            if (auto payload = loadArtifactFile(path, Stage::Awg, key)) {
                AggregatedWaitGraph awg;
                if (AwgCodec::decode(*payload, awg)) {
                    return {std::make_shared<const AggregatedWaitGraph>(
                                std::move(awg)),
                            true, payload->size()};
                }
            }
        }
        auto awg =
            std::make_shared<const AggregatedWaitGraph>(build());
        if (!diskDir_.empty()) {
            std::string payload;
            AwgCodec::encode(*awg, payload);
            storeArtifactFile(artifactPath(Stage::Awg, key), Stage::Awg,
                              key, payload);
            countDiskWrite(Stage::Awg, payload.size());
        }
        return {std::move(awg), false, 0};
    });
    return std::static_pointer_cast<const AggregatedWaitGraph>(erased);
}

PipelineStats
ArtifactStore::stats() const
{
    // A snapshot view over the registry counters: same struct, same
    // render, no second set of books.
    PipelineStats stats;
    for (std::size_t i = 0; i < kStageCount; ++i) {
        StageStats &s = stats.stages[i];
        const StageCounters &c = counters_[i];
        s.hits = c.hits->value();
        s.misses = c.misses->value();
        s.diskHits = c.diskHits->value();
        s.diskWrites = c.diskWrites->value();
        s.diskBytes = c.diskBytes->value();
        s.buildMs = static_cast<double>(c.buildNs->value()) / 1e6;
    }
    return stats;
}

void
ArtifactStore::countHit(Stage stage)
{
    counters_[static_cast<std::size_t>(stage)].hits->add(1);
}

void
ArtifactStore::recordBuild(Stage stage, bool fromDisk,
                           std::uint64_t diskBytes, double ms)
{
    const StageCounters &c = counters_[static_cast<std::size_t>(stage)];
    if (fromDisk) {
        c.diskHits->add(1);
        c.diskBytes->add(diskBytes);
    } else {
        c.misses->add(1);
    }
    c.buildNs->add(static_cast<std::uint64_t>(ms * 1e6));
}

void
ArtifactStore::countDiskWrite(Stage stage, std::uint64_t bytes)
{
    const StageCounters &c = counters_[static_cast<std::size_t>(stage)];
    c.diskWrites->add(1);
    c.diskBytes->add(bytes);
}

// ---------------------------------------------------------------------
// Codecs
// ---------------------------------------------------------------------

void
WaitGraphCodec::encode(const std::vector<WaitGraph> &graphs,
                       std::string &out)
{
    putU64(out, graphs.size());
    for (const WaitGraph &graph : graphs) {
        const ScenarioInstance &inst = graph.instance_;
        putU32(out, inst.stream);
        putU32(out, inst.scenario);
        putU32(out, inst.tid);
        putI64(out, inst.t0);
        putI64(out, inst.t1);

        putU64(out, graph.nodes_.size());
        for (const WaitGraph::Node &node : graph.nodes_) {
            putI64(out, node.event.timestamp);
            putI64(out, node.event.cost);
            putU32(out, node.event.tid);
            putU32(out, node.event.wtid);
            putU32(out, node.event.stack);
            putU8(out, static_cast<std::uint8_t>(node.event.type));
            putU32(out, node.ref.stream);
            putU32(out, node.ref.index);
            putU32(out, node.unwaitStack);
            putU8(out, node.truncated ? 1 : 0);
            const auto children = graph.children(node);
            putU64(out, children.size());
            for (std::uint32_t child : children)
                putU32(out, child);
        }
        putU64(out, graph.roots_.size());
        for (std::uint32_t root : graph.roots_)
            putU32(out, root);
    }
}

bool
WaitGraphCodec::decode(const std::string &bytes,
                       std::vector<WaitGraph> &graphs)
{
    ByteReader reader(bytes);
    const std::uint64_t graph_count = reader.u64();
    // Minimum bytes per graph: instance + node count + root count.
    if (!reader.countFits(graph_count, 28 + 8 + 8))
        return false;
    graphs.clear();
    graphs.reserve(graph_count);
    for (std::uint64_t g = 0; g < graph_count; ++g) {
        WaitGraph graph;
        graph.instance_.stream = reader.u32();
        graph.instance_.scenario = reader.u32();
        graph.instance_.tid = reader.u32();
        graph.instance_.t0 = reader.i64();
        graph.instance_.t1 = reader.i64();

        const std::uint64_t node_count = reader.u64();
        if (!reader.countFits(node_count, 50)) // fixed node bytes
            return false;
        graph.nodes_.reserve(node_count);
        for (std::uint64_t n = 0; n < node_count; ++n) {
            WaitGraph::Node node;
            node.event.timestamp = reader.i64();
            node.event.cost = reader.i64();
            node.event.tid = reader.u32();
            node.event.wtid = reader.u32();
            node.event.stack = reader.u32();
            const std::uint8_t type = reader.u8();
            if (type > static_cast<std::uint8_t>(
                           EventType::HardwareService))
                return false;
            node.event.type = static_cast<EventType>(type);
            node.ref.stream = reader.u32();
            node.ref.index = reader.u32();
            node.unwaitStack = reader.u32();
            const std::uint8_t truncated = reader.u8();
            if (truncated > 1)
                return false;
            node.truncated = truncated != 0;
            const std::uint64_t child_count = reader.u64();
            if (!reader.countFits(child_count, 4))
                return false;
            // Rebuild the CSR edge arena: nodes arrive in the same
            // order encode() walked them, so appending each node's
            // segment reproduces the builder's layout.
            node.childBegin =
                static_cast<std::uint32_t>(graph.child_arena_.size());
            node.childCount = static_cast<std::uint32_t>(child_count);
            for (std::uint64_t c = 0; c < child_count; ++c) {
                const std::uint32_t child = reader.u32();
                if (child >= node_count)
                    return false;
                graph.child_arena_.push_back(child);
            }
            graph.nodes_.push_back(node);
        }
        const std::uint64_t root_count = reader.u64();
        if (!reader.countFits(root_count, 4))
            return false;
        graph.roots_.reserve(root_count);
        for (std::uint64_t r = 0; r < root_count; ++r) {
            const std::uint32_t root = reader.u32();
            if (root >= node_count)
                return false;
            graph.roots_.push_back(root);
        }
        if (reader.failed())
            return false;
        graphs.push_back(std::move(graph));
    }
    return !reader.failed() && reader.atEnd();
}

void
AwgCodec::encode(const AggregatedWaitGraph &awg, std::string &out)
{
    putU64(out, awg.nodes_.size());
    for (const AggregatedWaitGraph::Node &node : awg.nodes_) {
        putU8(out, static_cast<std::uint8_t>(node.key.status));
        putU32(out, node.key.primary);
        putU32(out, node.key.secondary);
        putI64(out, node.cost);
        putU64(out, node.count);
        putI64(out, node.maxCost);
        putU64(out, node.children.size());
        for (std::uint32_t child : node.children)
            putU32(out, child);
    }
    putU64(out, awg.roots_.size());
    for (std::uint32_t root : awg.roots_)
        putU32(out, root);
    putI64(out, awg.reducedCost_);
    putU64(out, awg.reducedNodes_);
    putU64(out, awg.sourceGraphs_);
}

bool
AwgCodec::decode(const std::string &bytes, AggregatedWaitGraph &awg)
{
    ByteReader reader(bytes);
    const std::uint64_t node_count = reader.u64();
    if (!reader.countFits(node_count, 41)) // fixed node bytes
        return false;
    awg.nodes_.clear();
    awg.nodes_.reserve(node_count);
    for (std::uint64_t n = 0; n < node_count; ++n) {
        AggregatedWaitGraph::Node node;
        const std::uint8_t status = reader.u8();
        if (status > static_cast<std::uint8_t>(AwgStatus::Hardware))
            return false;
        node.key.status = static_cast<AwgStatus>(status);
        node.key.primary = reader.u32();
        node.key.secondary = reader.u32();
        node.cost = reader.i64();
        node.count = reader.u64();
        node.maxCost = reader.i64();
        const std::uint64_t child_count = reader.u64();
        if (!reader.countFits(child_count, 4))
            return false;
        node.children.reserve(child_count);
        for (std::uint64_t c = 0; c < child_count; ++c) {
            const std::uint32_t child = reader.u32();
            if (child >= node_count)
                return false;
            node.children.push_back(child);
        }
        awg.nodes_.push_back(std::move(node));
    }
    const std::uint64_t root_count = reader.u64();
    if (!reader.countFits(root_count, 4))
        return false;
    awg.roots_.clear();
    awg.roots_.reserve(root_count);
    for (std::uint64_t r = 0; r < root_count; ++r) {
        const std::uint32_t root = reader.u32();
        if (root >= node_count)
            return false;
        awg.roots_.push_back(root);
    }
    awg.reducedCost_ = reader.i64();
    awg.reducedNodes_ = reader.u64();
    awg.sourceGraphs_ = reader.u64();
    return !reader.failed() && reader.atEnd();
}

std::uint32_t
artifactCacheVersion()
{
    return kVersion;
}

} // namespace tracelens
