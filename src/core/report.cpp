/**
 * @file
 * Text-report assembly: analyses fan out in parallel via
 * Analyzer::analyzeScenarios, rendering stays serial and ordered.
 */

#include "src/core/report.h"

#include <sstream>

#include "src/impact/breakdown.h"
#include "src/trace/validate.h"
#include "src/util/table.h"
#include "src/util/telemetry.h"

namespace tracelens
{

std::string
buildReport(const Analyzer &analyzer,
            std::span<const ScenarioThresholds> scenarios,
            const ReportOptions &options)
{
    Span span("report.build", "analysis");
    if (span.active())
        span.arg("scenarios",
                 static_cast<std::uint64_t>(scenarios.size()));

    const TraceCorpus &corpus = analyzer.corpus();
    std::ostringstream oss;

    oss << "==================== TraceLens report ===================\n";
    oss << "corpus: " << corpus.streamCount() << " streams, "
        << corpus.instances().size() << " scenario instances, "
        << corpus.totalEvents() << " events\n";
    oss << "validation: " << validateCorpus(corpus).render() << "\n";
    oss << "components: ";
    for (const auto &p : analyzer.components().patterns())
        oss << p << " ";
    oss << "\n\n";

    oss << "---- impact analysis (all scenarios) ----\n";
    oss << analyzer.impactAll().render() << "\n\n";

    oss << "---- impact by component ----\n";
    const auto by_component = impactByComponent(
        corpus, analyzer.graphs(), analyzer.components());
    TextTable component_table({"Component", "Wait", "Run", "Waits"});
    for (std::size_t i = 0;
         i < std::min(options.topComponents, by_component.size());
         ++i) {
        const ComponentImpact &c = by_component[i];
        component_table.addRow({c.component,
                                TextTable::ms(toMs(c.wait)),
                                TextTable::ms(toMs(c.run)),
                                std::to_string(c.waitEvents)});
    }
    oss << component_table.render() << "\n";

    // Analyze every present scenario concurrently, then render the
    // results in input order.
    std::vector<ScenarioThresholds> present;
    for (const ScenarioThresholds &scenario : scenarios) {
        if (corpus.findScenario(scenario.name) != UINT32_MAX)
            present.push_back(scenario);
    }
    const std::vector<ScenarioAnalysis> analyses =
        analyzer.analyzeScenarios(present);

    const KnowledgeBase knowledge = KnowledgeBase::defaults();
    std::size_t next_present = 0;
    for (const ScenarioThresholds &scenario : scenarios) {
        oss << "---- scenario " << scenario.name << " (T_fast="
            << toMs(scenario.tFast) << "ms, T_slow="
            << toMs(scenario.tSlow) << "ms) ----\n";
        if (corpus.findScenario(scenario.name) == UINT32_MAX) {
            oss << "not present in this corpus\n\n";
            continue;
        }
        const ScenarioAnalysis &analysis = analyses[next_present++];
        oss << "classes: " << analysis.classes.fast.size() << " fast / "
            << analysis.classes.middle.size() << " middle / "
            << analysis.classes.slow.size() << " slow\n";
        oss << "slow-class impact: " << analysis.slowImpact.render()
            << "\n";
        oss << "coverage: " << analysis.coverage.render() << "\n";
        oss << "non-optimizable (direct hardware) share: "
            << TextTable::pct(analysis.nonOptimizableShare()) << "\n";

        std::vector<ContrastPattern> patterns =
            analysis.mining.patterns;
        if (options.applyKnowledgeFilter) {
            FilteredMiningResult filtered =
                knowledge.apply(analysis.mining, corpus.symbols());
            if (!filtered.suppressed.empty()) {
                oss << filtered.suppressed.size()
                    << " pattern(s) suppressed as by-design ("
                    << filtered.suppressed.front().reason << ")\n";
            }
            patterns = std::move(filtered.kept);
        }

        const std::size_t top =
            std::min(options.topPatterns, patterns.size());
        for (std::size_t i = 0; i < top; ++i) {
            const ContrastPattern &p = patterns[i];
            oss << "#" << i + 1 << " impact="
                << toMs(static_cast<DurationNs>(p.impact()))
                << "ms N=" << p.count
                << (p.highImpact(scenario.tSlow) ? " [high-impact]"
                                                 : "")
                << "\n"
                << p.tuple.render(corpus.symbols());
        }
        oss << "\n";
    }
    return oss.str();
}

} // namespace tracelens
