/**
 * @file
 * The trace-stream event schema (paper Section 2.1).
 *
 * A trace stream is a time-ordered sequence of events of four types:
 *
 *  - Running: a CPU-usage sample over a constant interval (1 ms in ETW).
 *  - Wait: a thread entered the waiting state on a blocking operation.
 *  - Unwait: a running thread signalled a waiting thread to continue.
 *  - HardwareService: a hardware operation with start time and duration.
 *
 * Each event carries the fields the paper names: callstack e.S, timestamp
 * e.T, cost e.C, thread id e.TID, and (for unwait) the readied thread id
 * e.WTID. Callstacks are interned ids into a per-corpus SymbolTable.
 */

#ifndef TRACELENS_TRACE_EVENT_H
#define TRACELENS_TRACE_EVENT_H

#include <cstdint>
#include <string_view>

#include "src/util/hash.h"
#include "src/util/types.h"

namespace tracelens
{

/** The four trace-event types of the paper's trace-stream schema. */
enum class EventType : std::uint8_t
{
    Running = 0,
    Wait = 1,
    Unwait = 2,
    HardwareService = 3,
};

/** Human-readable name of an event type. */
std::string_view eventTypeName(EventType type);

/**
 * One tracing event. Compact (32 bytes) because corpora hold millions.
 *
 * Cost semantics by type:
 *  - Running: the sampling interval the sample accounts for.
 *  - Wait: the wait duration; emitted as 0 by tracers and *restored*
 *    from the paired unwait's timestamp during wait-graph construction,
 *    exactly as the paper describes.
 *  - Unwait: always 0 (an instantaneous signal).
 *  - HardwareService: the hardware operation's service time.
 */
struct Event
{
    TimeNs timestamp = 0;       //!< e.T — start time.
    DurationNs cost = 0;        //!< e.C — duration (see above).
    ThreadId tid = kNoThread;   //!< e.TID — triggering thread.
    ThreadId wtid = kNoThread;  //!< e.WTID — readied thread (Unwait only).
    CallstackId stack = kNoCallstack; //!< e.S — interned callstack.
    EventType type = EventType::Running;

    /** End time of the interval this event accounts for. */
    TimeNs end() const { return timestamp + cost; }
};

/**
 * Stable identity of an event across the whole corpus: (stream index,
 * event index within the stream). Used to de-duplicate wait events that
 * appear in the wait graphs of multiple scenario instances when deriving
 * the distinct-wait duration D_waitdist.
 */
struct EventRef
{
    std::uint32_t stream = 0;
    std::uint32_t index = 0;

    friend bool
    operator==(const EventRef &a, const EventRef &b)
    {
        return a.stream == b.stream && a.index == b.index;
    }

    friend auto operator<=>(const EventRef &, const EventRef &) = default;
};

/**
 * Hash functor for EventRef. The two 32-bit fields are packed into one
 * std::uint64_t and run through splitmix64 — NOT shifted into a
 * std::size_t, which on 32-bit targets would shift past the type's
 * width (undefined behaviour) and collapse every stream onto the same
 * hash. The mixed value truncates safely to any size_t width.
 */
struct EventRefHash
{
    std::size_t
    operator()(const EventRef &r) const
    {
        const std::uint64_t packed =
            (static_cast<std::uint64_t>(r.stream) << 32) | r.index;
        return static_cast<std::size_t>(splitmix64(packed));
    }
};

} // namespace tracelens

#endif // TRACELENS_TRACE_EVENT_H
