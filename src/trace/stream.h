/**
 * @file
 * Trace streams, scenario instances, and the corpus container.
 *
 * A TraceStream is the recording of one tracing session on one machine: a
 * time-ordered event sequence. A ScenarioInstance marks the execution of
 * one application scenario (e.g. BrowserTabCreate) inside a stream: the
 * initiating thread and the [t0, t1] window (paper Section 2.1). The
 * TraceCorpus owns the shared symbol table, all streams, and all
 * instances — the unit the impact and causality analyses consume.
 *
 * Events are stored columnar (EventColumns, one contiguous array per
 * field) so the analyzer's linear sweeps stay cache-dense and
 * autovectorizable; events() hands out a materializing EventView and
 * event(i) gathers an Event value, so event-at-a-time consumers are
 * source-compatible with the old array-of-structs storage. The same
 * split applies to scenario instances: instances() keeps the
 * struct-of-record API while instanceDurations()/instanceScenarios()
 * expose the two columns the threshold and classification sweeps scan.
 */

#ifndef TRACELENS_TRACE_STREAM_H
#define TRACELENS_TRACE_STREAM_H

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "src/trace/columns.h"
#include "src/trace/event.h"
#include "src/trace/symbols.h"
#include "src/util/types.h"

namespace tracelens
{

/** One tracing session: a time-ordered event sequence plus metadata. */
class TraceStream
{
  public:
    /** Append an event; timestamps must be non-decreasing. */
    void append(const Event &event);

    /**
     * Replace this stream's events with an already-decoded column set
     * (the bulk TLC1 ingestion path). The columns must be time-ordered;
     * the stream end time is recomputed from the intervals.
     */
    void adopt(EventColumns columns);

    /** Materializing view over the events (Event values, in order). */
    EventView events() const { return events_.view(); }

    /** Columnar storage — the sweepable per-field arrays. */
    const EventColumns &columns() const { return events_; }

    /** Materialize one event by index. */
    Event event(std::uint32_t index) const;

    std::size_t size() const { return events_.size(); }

    /** Timestamp of the last event interval's end (0 when empty). */
    TimeNs endTime() const { return endTime_; }

    /** Optional stream label (machine / session name). */
    std::string name;

    /**
     * Free-form stream metadata ("encrypted" = "1", "disk" = "hdd",
     * ...), recorded by the tracer/generator and used for cohort
     * analysis. Ordered so serialization is deterministic.
     */
    std::map<std::string, std::string> tags;

    /** Tag lookup with a default for untagged streams. */
    std::string tag(const std::string &key,
                    std::string fallback = "unknown") const;

  private:
    EventColumns events_;
    TimeNs endTime_ = 0;
};

/**
 * The execution of one scenario within one stream: the tuple
 * (TS, S, TID, t0, t1) of the paper.
 */
struct ScenarioInstance
{
    std::uint32_t stream = 0;   //!< Index of the enclosing stream.
    std::uint32_t scenario = 0; //!< Interned scenario-name id.
    ThreadId tid = kNoThread;   //!< Initiating thread.
    TimeNs t0 = 0;              //!< Start of the instance window.
    TimeNs t1 = 0;              //!< End of the instance window.

    DurationNs duration() const { return t1 - t0; }
};

/**
 * A collection of trace streams and scenario instances sharing one
 * symbol table — the input to all analyses.
 */
class TraceCorpus
{
  public:
    SymbolTable &symbols() { return symbols_; }
    const SymbolTable &symbols() const { return symbols_; }

    /** Add an empty stream and return its index. */
    std::uint32_t addStream(std::string name = {});

    TraceStream &stream(std::uint32_t index);
    const TraceStream &stream(std::uint32_t index) const;
    std::size_t streamCount() const { return streams_.size(); }

    /** Intern a scenario name (e.g. "BrowserTabCreate"). */
    std::uint32_t internScenario(std::string_view name);

    /** Name of an interned scenario id. */
    const std::string &scenarioName(std::uint32_t id) const;

    /** Scenario id if known, else UINT32_MAX. */
    std::uint32_t findScenario(std::string_view name) const;

    std::size_t scenarioCount() const { return scenarios_.size(); }

    /** Register a scenario instance. */
    void addInstance(const ScenarioInstance &instance);

    const std::vector<ScenarioInstance> &instances() const
    {
        return instances_;
    }

    /**
     * @name Instance columns
     * Duration (t1 - t0) and scenario id per instance, index-aligned
     * with instances() — the two fields the threshold estimation and
     * fast/slow classification sweeps read. Kept as parallel columns
     * so those sweeps never stride over the full 24-byte instance
     * record.
     */
    ///@{
    std::span<const DurationNs> instanceDurations() const
    {
        return instance_durations_;
    }
    std::span<const std::uint32_t> instanceScenarios() const
    {
        return instance_scenarios_;
    }
    ///@}

    /** Indices of instances belonging to the given scenario id. */
    std::vector<std::uint32_t>
    instancesOfScenario(std::uint32_t scenario) const;

    /** Total number of events across all streams. */
    std::size_t totalEvents() const;

    /** Look up (materialize) an event by corpus-wide reference. */
    Event event(const EventRef &ref) const;

  private:
    SymbolTable symbols_;
    StringInterner scenarios_;
    std::vector<TraceStream> streams_;
    std::vector<ScenarioInstance> instances_;
    std::vector<DurationNs> instance_durations_;
    std::vector<std::uint32_t> instance_scenarios_;
};

} // namespace tracelens

#endif // TRACELENS_TRACE_STREAM_H
