/**
 * @file
 * Self-analysis bridge: convert the telemetry layer's recorded spans
 * into a TLC1 corpus so `tracelens analyze` runs on tracelens's own
 * service traces (docs/TELEMETRY.md, "Self-trace corpus").
 *
 * The mapping is deliberately literal:
 *
 *  - every span becomes one Running event whose callstack is
 *    {node, category, name} bottom-to-top, with timestamps in
 *    nanoseconds (span startUs * 1000) and cost = max(durUs, 1) us —
 *    zero-cost events would vanish from duration accounting;
 *  - every "server.request" span additionally becomes a
 *    ScenarioInstance whose scenario name is the request method (the
 *    span's "method" arg), so the analyzer's per-scenario machinery
 *    ranks request handling exactly the way it ranks any workload.
 *
 * One process's spans become one stream; thread ids carry over
 * verbatim, so per-thread interleavings survive the round trip.
 */

#ifndef TRACELENS_TRACE_SELFTRACE_H
#define TRACELENS_TRACE_SELFTRACE_H

#include <string>
#include <vector>

#include "src/trace/stream.h"
#include "src/util/telemetry.h"

namespace tracelens
{

/**
 * Build a single-stream corpus from @p spans. @p node names the
 * process ("server @ host:port") and becomes the bottom stack frame
 * of every event, so multi-node corpora stay attributable after a
 * merge. Spans with empty names are skipped.
 */
TraceCorpus buildSelfTraceCorpus(const std::vector<SpanSnapshot> &spans,
                                 const std::string &node);

/**
 * Write buildSelfTraceCorpus(spans, node) to `<dir>/self-trace.tlc`,
 * creating @p dir if missing. Returns the written path, or "" on
 * failure (logged, never fatal — self-tracing must not take down a
 * drain path).
 */
std::string writeSelfTraceCorpus(const std::vector<SpanSnapshot> &spans,
                                 const std::string &dir,
                                 const std::string &node);

} // namespace tracelens

#endif // TRACELENS_TRACE_SELFTRACE_H
