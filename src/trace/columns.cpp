/**
 * @file
 * Columnar event storage: append/materialize plumbing, the FIFO
 * wait/unwait pairing and effective-end restoration sweeps, and the
 * strided bulk decoder for packed TLC1 event records.
 */

#include "src/trace/columns.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "src/trace/tlcformat.h"
#include "src/util/logging.h"

namespace tracelens
{

void
EventColumns::reserve(std::size_t n)
{
    timestamps_.reserve(n);
    costs_.reserve(n);
    tids_.reserve(n);
    wtids_.reserve(n);
    stacks_.reserve(n);
    types_.reserve(n);
}

void
EventColumns::clear()
{
    timestamps_.clear();
    costs_.clear();
    tids_.clear();
    wtids_.clear();
    stacks_.clear();
    types_.clear();
}

void
EventColumns::append(const Event &event)
{
    timestamps_.push_back(event.timestamp);
    costs_.push_back(event.cost);
    tids_.push_back(event.tid);
    wtids_.push_back(event.wtid);
    stacks_.push_back(event.stack);
    types_.push_back(event.type);
}

std::size_t
EventColumns::residentBytes() const
{
    return timestamps_.capacity() * sizeof(TimeNs) +
           costs_.capacity() * sizeof(DurationNs) +
           tids_.capacity() * sizeof(ThreadId) +
           wtids_.capacity() * sizeof(ThreadId) +
           stacks_.capacity() * sizeof(CallstackId) +
           types_.capacity() * sizeof(EventType);
}

TimeNs
EventColumns::maxEnd() const
{
    TimeNs max_end = 0;
    const std::size_t n = size();
    for (std::size_t i = 0; i < n; ++i)
        max_end = std::max(max_end, timestamps_[i] + costs_[i]);
    return max_end;
}

std::optional<EventColumns::DecodeIssue>
EventColumns::appendTlcRecords(std::span<const std::byte> records,
                               std::uint32_t count,
                               std::uint32_t stack_count)
{
    constexpr std::size_t kStride = tlc::kEventRecordBytes;
    TL_ASSERT(records.size() >= count * kStride,
              "event record block shorter than its count");

    const std::size_t base = size();
    const std::byte *bytes = records.data();
    timestamps_.resize(base + count);
    costs_.resize(base + count);
    tids_.resize(base + count);
    wtids_.resize(base + count);
    stacks_.resize(base + count);
    types_.resize(base + count);

    // Field-at-a-time strided decode: each loop reads one field column
    // out of the packed records into its contiguous array. Violations
    // are *located* in separate passes below so these loops stay
    // branchless and the common (valid) case never forks.
    std::uint32_t bad_type = count;
    for (std::uint32_t j = 0; j < count; ++j) {
        std::int64_t v;
        std::memcpy(&v, bytes + j * kStride + 0, sizeof(v));
        timestamps_[base + j] = v;
    }
    for (std::uint32_t j = 0; j < count; ++j) {
        std::int64_t v;
        std::memcpy(&v, bytes + j * kStride + 8, sizeof(v));
        costs_[base + j] = v;
    }
    for (std::uint32_t j = 0; j < count; ++j) {
        std::uint32_t v;
        std::memcpy(&v, bytes + j * kStride + 16, sizeof(v));
        tids_[base + j] = v;
    }
    for (std::uint32_t j = 0; j < count; ++j) {
        std::uint32_t v;
        std::memcpy(&v, bytes + j * kStride + 20, sizeof(v));
        wtids_[base + j] = v;
    }
    for (std::uint32_t j = 0; j < count; ++j) {
        std::uint32_t v;
        std::memcpy(&v, bytes + j * kStride + 24, sizeof(v));
        stacks_[base + j] = v;
    }
    for (std::uint32_t j = 0; j < count; ++j) {
        std::uint32_t v;
        std::memcpy(&v, bytes + j * kStride + 28, sizeof(v));
        if (v > static_cast<std::uint32_t>(EventType::HardwareService) &&
            j < bad_type)
            bad_type = j;
        types_[base + j] = static_cast<EventType>(v);
    }

    // Validation sweeps over the freshly decoded columns. Each pass
    // finds the first offending index of its kind; the batch fails at
    // the smallest index overall, ties broken in the order the scalar
    // parser checked fields (type, stack, cost, time order) so error
    // reports are byte-identical to the historical decoder.
    std::uint32_t bad_stack = count;
    for (std::uint32_t j = 0; j < count; ++j) {
        const CallstackId s = stacks_[base + j];
        if (s != kNoCallstack && s >= stack_count) {
            bad_stack = j;
            break;
        }
    }
    std::uint32_t bad_cost = count;
    for (std::uint32_t j = 0; j < count; ++j) {
        const DurationNs c = costs_[base + j];
        TimeNs end;
        if (c < 0 ||
            __builtin_add_overflow(timestamps_[base + j], c, &end)) {
            bad_cost = j;
            break;
        }
    }
    std::uint32_t bad_order = count;
    TimeNs prev =
        base == 0 ? std::numeric_limits<TimeNs>::min()
                  : timestamps_[base - 1];
    for (std::uint32_t j = 0; j < count; ++j) {
        if (timestamps_[base + j] < prev) {
            bad_order = j;
            break;
        }
        prev = timestamps_[base + j];
    }

    const std::uint32_t first_bad = std::min(
        std::min(bad_type, bad_stack), std::min(bad_cost, bad_order));
    if (first_bad == count)
        return std::nullopt;

    DecodeIssue issue;
    issue.index = first_bad;
    if (bad_type == first_bad) {
        std::uint32_t raw = 0;
        std::memcpy(&raw, bytes + first_bad * kStride + 28, sizeof(raw));
        issue.reason =
            detail::concat("corpus event has invalid type ", raw);
    } else if (bad_stack == first_bad) {
        issue.reason = "corpus event references unknown stack";
    } else if (bad_cost == first_bad) {
        issue.reason = costs_[base + first_bad] < 0
                           ? "corpus event has negative cost"
                           : "corpus event interval overflows the "
                             "time axis";
    } else {
        issue.reason = "corpus events out of time order";
    }

    timestamps_.resize(base);
    costs_.resize(base);
    tids_.resize(base);
    wtids_.resize(base);
    stacks_.resize(base);
    types_.resize(base);
    return issue;
}

void
ThreadSlotMap::build(std::span<const ThreadId> tids,
                     std::vector<std::uint32_t> &slot_of_event)
{
    ids_.clear();
    slot_of_event.resize(tids.size());

    std::size_t capacity = 64;
    keys_.assign(capacity, 0);
    vals_.assign(capacity, kNoEventIndex);
    mask_ = capacity - 1;

    // First-seen slot ids via insert-or-find; renumbered below.
    std::vector<ThreadId> first_seen;
    const auto rehash = [&] {
        capacity *= 2;
        keys_.assign(capacity, 0);
        vals_.assign(capacity, kNoEventIndex);
        mask_ = capacity - 1;
        for (std::uint32_t raw = 0; raw < first_seen.size(); ++raw) {
            std::size_t h = splitmix64(first_seen[raw]) & mask_;
            while (vals_[h] != kNoEventIndex)
                h = (h + 1) & mask_;
            keys_[h] = first_seen[raw];
            vals_[h] = raw;
        }
    };

    for (std::size_t i = 0; i < tids.size(); ++i) {
        // <= 50% load before every probe chain.
        if (2 * (first_seen.size() + 1) > capacity)
            rehash();
        const ThreadId tid = tids[i];
        std::size_t h = splitmix64(tid) & mask_;
        while (vals_[h] != kNoEventIndex && keys_[h] != tid)
            h = (h + 1) & mask_;
        if (vals_[h] == kNoEventIndex) {
            keys_[h] = tid;
            vals_[h] = static_cast<std::uint32_t>(first_seen.size());
            first_seen.push_back(tid);
        }
        slot_of_event[i] = vals_[h];
    }

    // Renumber first-seen slots into sorted-tid order so slot ids do
    // not depend on event order.
    ids_ = first_seen;
    std::sort(ids_.begin(), ids_.end());
    std::vector<std::uint32_t> rank(first_seen.size());
    for (std::uint32_t raw = 0; raw < first_seen.size(); ++raw) {
        rank[raw] = static_cast<std::uint32_t>(
            std::lower_bound(ids_.begin(), ids_.end(),
                             first_seen[raw]) -
            ids_.begin());
    }
    for (std::uint32_t &v : vals_) {
        if (v != kNoEventIndex)
            v = rank[v];
    }
    for (std::uint32_t &s : slot_of_event)
        s = rank[s];
}

std::uint32_t
ThreadSlotMap::slotOf(ThreadId tid) const
{
    if (vals_.empty())
        return kNoEventIndex;
    std::size_t h = splitmix64(tid) & mask_;
    while (vals_[h] != kNoEventIndex) {
        if (keys_[h] == tid)
            return vals_[h];
        h = (h + 1) & mask_;
    }
    return kNoEventIndex;
}

void
pairWaitsFifo(const EventColumns &events,
              const ThreadSlotMap &slot_map,
              std::span<const std::uint32_t> slot_of_event,
              std::vector<std::uint32_t> &paired_unwait)
{
    const std::size_t n = events.size();
    TL_ASSERT(slot_of_event.size() == n, "slot/event column skew");
    paired_unwait.assign(n, kNoEventIndex);
    const auto types = events.types();
    const auto tids = events.tids();
    const auto wtids = events.wtids();
    const std::size_t slots = slot_map.slots();
    if (slots == 0)
        return;

    // CSR of wait events grouped by thread slot, time order preserved
    // (counting sort over a time-ordered input is stable).
    std::vector<std::uint32_t> offset(slots + 1, 0);
    std::uint32_t wait_count = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
        if (types[i] == EventType::Wait) {
            ++offset[slot_of_event[i] + 1];
            ++wait_count;
        }
    }
    if (wait_count == 0)
        return;
    for (std::size_t s = 0; s < slots; ++s)
        offset[s + 1] += offset[s];
    std::vector<std::uint32_t> waits_of(wait_count);
    {
        std::vector<std::uint32_t> cursor(offset.begin(),
                                          offset.end() - 1);
        for (std::uint32_t i = 0; i < n; ++i) {
            if (types[i] == EventType::Wait)
                waits_of[cursor[slot_of_event[i]]++] = i;
        }
    }

    // The pairing sweep: `seen` counts a thread's waits encountered so
    // far, `head` the ones already paired; the FIFO front is always
    // waits_of[offset[slot] + head[slot]].
    std::vector<std::uint32_t> seen(slots, 0);
    std::vector<std::uint32_t> head(slots, 0);
    for (std::uint32_t i = 0; i < n; ++i) {
        if (types[i] == EventType::Wait) {
            ++seen[slot_of_event[i]];
        } else if (types[i] == EventType::Unwait && wtids[i] != tids[i]) {
            const std::uint32_t slot = slot_map.slotOf(wtids[i]);
            if (slot != kNoEventIndex && head[slot] < seen[slot])
                paired_unwait[waits_of[offset[slot] + head[slot]++]] = i;
        }
    }
}

void
pairWaitsFifo(const EventColumns &events,
              std::vector<std::uint32_t> &paired_unwait)
{
    ThreadSlotMap slot_map;
    std::vector<std::uint32_t> slot_of_event;
    slot_map.build(events.tids(), slot_of_event);
    pairWaitsFifo(events, slot_map, slot_of_event, paired_unwait);
}

void
computeEffectiveEnds(const EventColumns &events,
                     std::span<const std::uint32_t> paired_unwait,
                     TimeNs stream_end,
                     std::vector<TimeNs> &effective_end)
{
    const std::size_t n = events.size();
    TL_ASSERT(paired_unwait.size() == n, "pairing/effective-end skew");
    effective_end.resize(n);
    const auto timestamps = events.timestamps();
    const auto costs = events.costs();
    const auto types = events.types();

    // Dense default: every interval ends at timestamp + cost.
    for (std::size_t i = 0; i < n; ++i)
        effective_end[i] = timestamps[i] + costs[i];

    // Sparse correction: waits end where their unwait fired (stream
    // end when the trace truncated the wait).
    for (std::size_t i = 0; i < n; ++i) {
        if (types[i] != EventType::Wait)
            continue;
        const std::uint32_t u = paired_unwait[i];
        effective_end[i] =
            u == kNoEventIndex ? stream_end : timestamps[u];
    }
}

} // namespace tracelens
