/**
 * @file
 * Binary reader/writer for the TLC1 corpus container (see
 * docs/TRACE_FORMAT.md for the byte-level layout).
 *
 * All decoding funnels through parseCorpus(), a bounds-checked parser
 * over an in-memory byte image: the eager path slurps the file into a
 * buffer first, the mmap path (src/trace/mmapreader.h) hands in the
 * mapped region directly. On-disk counts, string lengths, ids, and
 * record arrays are validated against the actual buffer size before
 * any allocation or access, so truncated and hostile inputs fail with
 * a located SourceError instead of overrunning the buffer.
 */

#include "src/trace/serialize.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <streambuf>

#include "src/trace/merge.h"
#include "src/trace/tlcformat.h"
#include "src/util/logging.h"
#include "src/util/varint.h"

namespace tracelens
{

namespace
{

using tlc::ByteCursor;
using tlc::kEventRecordBytes;
using tlc::kInstanceRecordBytes;
using tlc::kMagic;
using tlc::kVersion;

void
putU32(std::ostream &out, std::uint32_t v)
{
    out.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
putI64(std::ostream &out, std::int64_t v)
{
    out.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
putString(std::ostream &out, const std::string &s)
{
    putU32(out, static_cast<std::uint32_t>(s.size()));
    out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

/** Read a whole file into a byte buffer, or report why not. */
Expected<std::vector<std::byte>>
slurpFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) {
        return SourceError{path, 0,
                           "cannot open '" + path + "' for reading"};
    }
    const std::streamoff size = in.tellg();
    in.seekg(0, std::ios::beg);
    std::vector<std::byte> bytes(static_cast<std::size_t>(size));
    if (size > 0 &&
        !in.read(reinterpret_cast<char *>(bytes.data()), size)) {
        return SourceError{path, 0, "read of '" + path + "' failed"};
    }
    return bytes;
}

/**
 * Encode one stream's events as a delta-varint block: field-major,
 * timestamps and thread/stack ids as zigzag deltas (sorted timestamps
 * and clustered ids make these tiny), costs and types as plain
 * zigzag/varints. Field-major beats record-major here because runs of
 * zero deltas compress to runs of single zero bytes.
 */
std::string
encodeDeltaEvents(const TraceStream &stream)
{
    std::string block;
    block.reserve(stream.size() * 4);
    std::int64_t prev = 0;
    for (const Event &e : stream.events()) {
        putVarint(block, zigzagEncode(e.timestamp - prev));
        prev = e.timestamp;
    }
    for (const Event &e : stream.events())
        putVarint(block, zigzagEncode(e.cost));
    prev = 0;
    for (const Event &e : stream.events()) {
        putVarint(block,
                  zigzagEncode(static_cast<std::int64_t>(e.tid) - prev));
        prev = static_cast<std::int64_t>(e.tid);
    }
    prev = 0;
    for (const Event &e : stream.events()) {
        putVarint(block, zigzagEncode(
                             static_cast<std::int64_t>(e.wtid) - prev));
        prev = static_cast<std::int64_t>(e.wtid);
    }
    prev = 0;
    for (const Event &e : stream.events()) {
        putVarint(block, zigzagEncode(
                             static_cast<std::int64_t>(e.stack) - prev));
        prev = static_cast<std::int64_t>(e.stack);
    }
    for (const Event &e : stream.events())
        putVarint(block, static_cast<std::uint32_t>(e.type));
    return block;
}

} // namespace

void
writeCorpus(const TraceCorpus &corpus, std::ostream &out)
{
    writeCorpus(corpus, out, CorpusWriteOptions{});
}

void
writeCorpus(const TraceCorpus &corpus, std::ostream &out,
            const CorpusWriteOptions &options)
{
    putU32(out, kMagic);
    putU32(out, options.compressEvents ? tlc::kVersionCompressed
                                       : kVersion);

    const SymbolTable &sym = corpus.symbols();

    putU32(out, static_cast<std::uint32_t>(sym.frameCount()));
    for (FrameId f = 0; f < sym.frameCount(); ++f)
        putString(out, sym.frameName(f));

    putU32(out, static_cast<std::uint32_t>(sym.stackCount()));
    for (CallstackId s = 0; s < sym.stackCount(); ++s) {
        const auto frames = sym.stackFrames(s);
        putU32(out, static_cast<std::uint32_t>(frames.size()));
        for (FrameId f : frames)
            putU32(out, f);
    }

    putU32(out, static_cast<std::uint32_t>(corpus.scenarioCount()));
    for (std::uint32_t i = 0; i < corpus.scenarioCount(); ++i)
        putString(out, corpus.scenarioName(i));

    putU32(out, static_cast<std::uint32_t>(corpus.streamCount()));
    for (std::uint32_t i = 0; i < corpus.streamCount(); ++i) {
        const TraceStream &stream = corpus.stream(i);
        putString(out, stream.name);
        putU32(out, static_cast<std::uint32_t>(stream.tags.size()));
        for (const auto &[key, value] : stream.tags) {
            putString(out, key);
            putString(out, value);
        }
        putU32(out, static_cast<std::uint32_t>(stream.size()));
        if (options.compressEvents) {
            const std::string block = encodeDeltaEvents(stream);
            putU32(out, tlc::kEventEncodingDelta);
            putU32(out, static_cast<std::uint32_t>(block.size()));
            out.write(block.data(),
                      static_cast<std::streamsize>(block.size()));
        } else {
            for (const Event &e : stream.events()) {
                putI64(out, e.timestamp);
                putI64(out, e.cost);
                putU32(out, e.tid);
                putU32(out, e.wtid);
                putU32(out, e.stack);
                putU32(out, static_cast<std::uint32_t>(e.type));
            }
        }
    }

    putU32(out, static_cast<std::uint32_t>(corpus.instances().size()));
    for (const ScenarioInstance &inst : corpus.instances()) {
        putU32(out, inst.stream);
        putU32(out, inst.scenario);
        putU32(out, inst.tid);
        putI64(out, inst.t0);
        putI64(out, inst.t1);
    }
}

namespace
{

/** std::streambuf that hashes everything written through it. */
class DigestStreambuf : public std::streambuf
{
  public:
    const Digest &digest() const { return digest_; }

  protected:
    int_type
    overflow(int_type ch) override
    {
        if (ch != traits_type::eof()) {
            const char byte = static_cast<char>(ch);
            digest_.mixBytes(&byte, 1);
        }
        return ch;
    }

    std::streamsize
    xsputn(const char *data, std::streamsize count) override
    {
        digest_.mixBytes(data, static_cast<std::size_t>(count));
        return count;
    }

  private:
    Digest digest_;
};

} // namespace

Digest
digestCorpus(const TraceCorpus &corpus)
{
    DigestStreambuf hasher;
    std::ostream out(&hasher);
    writeCorpus(corpus, out);
    return hasher.digest();
}

void
writeCorpusFile(const TraceCorpus &corpus, const std::string &path,
                const CorpusWriteOptions &options)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        TL_FATAL("cannot open '", path, "' for writing");
    writeCorpus(corpus, out, options);
    if (!out)
        TL_FATAL("write to '", path, "' failed");
}

std::vector<std::string>
writeShardedCorpusDir(const TraceCorpus &corpus, const std::string &dir,
                      std::size_t shards,
                      const CorpusWriteOptions &options)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        TL_FATAL("cannot create shard directory '", dir, "': ",
                 ec.message());
    }
    const std::vector<TraceCorpus> parts = splitCorpus(corpus, shards);
    std::vector<std::string> paths;
    paths.reserve(parts.size());
    for (std::size_t i = 0; i < parts.size(); ++i) {
        std::ostringstream name;
        name << "shard-" << std::setfill('0') << std::setw(4) << i
             << ".tlc";
        const std::string path =
            (std::filesystem::path(dir) / name.str()).string();
        writeCorpusFile(parts[i], path, options);
        paths.push_back(path);
    }
    return paths;
}

Expected<EventColumns>
decodeDeltaEventBlock(std::span<const std::byte> block,
                      std::uint32_t event_count,
                      std::uint32_t stack_count, const std::string &file,
                      std::uint64_t block_offset)
{
    const auto *data =
        reinterpret_cast<const unsigned char *>(block.data());
    const std::size_t size = block.size();
    std::size_t pos = 0;

    const auto fail = [&](const char *what) -> SourceError {
        return SourceError{file, block_offset + pos,
                           detail::concat(
                               "corrupt compressed event block (", what,
                               ")")};
    };

    // Decode field-major into canonical packed records, then run the
    // same bulk columnar decode as the raw path so every validation
    // (type range, cost sanity, stack bounds) applies unchanged.
    std::vector<std::byte> records(
        static_cast<std::size_t>(event_count) * kEventRecordBytes);
    const auto put = [&](std::size_t event, std::size_t field_offset,
                         const void *src, std::size_t n) {
        std::memcpy(records.data() + event * kEventRecordBytes +
                        field_offset,
                    src, n);
    };

    std::uint64_t raw = 0;
    std::int64_t prev = 0;
    for (std::uint32_t i = 0; i < event_count; ++i) {
        if (!getVarint(data, size, pos, raw))
            return fail("timestamp");
        const std::int64_t ts = prev + zigzagDecode(raw);
        prev = ts;
        put(i, 0, &ts, 8);
    }
    for (std::uint32_t i = 0; i < event_count; ++i) {
        if (!getVarint(data, size, pos, raw))
            return fail("cost");
        const std::int64_t cost = zigzagDecode(raw);
        put(i, 8, &cost, 8);
    }
    static constexpr struct {
        std::size_t offset;
        const char *name;
    } kU32DeltaFields[] = {{16, "tid"}, {20, "wtid"}, {24, "stack"}};
    for (const auto &field : kU32DeltaFields) {
        prev = 0;
        for (std::uint32_t i = 0; i < event_count; ++i) {
            if (!getVarint(data, size, pos, raw))
                return fail(field.name);
            const std::int64_t wide = prev + zigzagDecode(raw);
            prev = wide;
            if (wide < 0 || wide > 0xffffffffll) {
                return SourceError{
                    file, block_offset + pos,
                    detail::concat("corrupt compressed event block (",
                                   field.name, " out of u32 range)")};
            }
            const std::uint32_t v = static_cast<std::uint32_t>(wide);
            put(i, field.offset, &v, 4);
        }
    }
    for (std::uint32_t i = 0; i < event_count; ++i) {
        if (!getVarint(data, size, pos, raw))
            return fail("type");
        if (raw > 0xffffffffull)
            return fail("type out of u32 range");
        const std::uint32_t v = static_cast<std::uint32_t>(raw);
        put(i, 28, &v, 4);
    }
    if (pos != size)
        return fail("trailing bytes after last event");

    EventColumns columns;
    columns.reserve(event_count);
    if (auto issue = columns.appendTlcRecords(records, event_count,
                                              stack_count)) {
        return SourceError{file, block_offset, std::move(issue->reason)};
    }
    return columns;
}

Expected<TraceCorpus>
parseCorpus(std::span<const std::byte> bytes, const std::string &file)
{
    ByteCursor cur(bytes, file);
    const auto err = [&]() -> SourceError { return cur.error(); };

    std::uint32_t magic = 0;
    if (!cur.u32(magic, "magic"))
        return err();
    if (magic != kMagic) {
        cur.fail("not a TraceLens corpus (bad magic)");
        return err();
    }
    std::uint32_t version = 0;
    if (!cur.u32(version, "version"))
        return err();
    if (version != kVersion && version != tlc::kVersionCompressed) {
        cur.fail(detail::concat("unsupported corpus version ", version));
        return err();
    }

    TraceCorpus corpus;
    SymbolTable &sym = corpus.symbols();

    std::uint32_t frame_count = 0;
    if (!cur.count(frame_count, sizeof(std::uint32_t), "frame"))
        return err();
    for (std::uint32_t i = 0; i < frame_count; ++i) {
        std::string_view name;
        if (!cur.stringView(name, "frame name"))
            return err();
        if (sym.internFrame(name) != i) {
            cur.fail("corpus contains duplicate frame entries");
            return err();
        }
    }

    std::uint32_t stack_count = 0;
    if (!cur.count(stack_count, sizeof(std::uint32_t), "stack"))
        return err();
    std::vector<FrameId> frames;
    for (std::uint32_t i = 0; i < stack_count; ++i) {
        std::uint32_t len = 0;
        if (!cur.count(len, sizeof(FrameId), "stack frame"))
            return err();
        frames.resize(len);
        for (auto &f : frames) {
            if (!cur.u32(f, "stack frame id"))
                return err();
            if (f >= frame_count) {
                cur.fail("corpus stack references unknown frame");
                return err();
            }
        }
        if (sym.internStack(frames) != i) {
            cur.fail("corpus contains duplicate stack entries");
            return err();
        }
    }

    std::uint32_t scenario_count = 0;
    if (!cur.count(scenario_count, sizeof(std::uint32_t), "scenario"))
        return err();
    for (std::uint32_t i = 0; i < scenario_count; ++i) {
        std::string_view name;
        if (!cur.stringView(name, "scenario name"))
            return err();
        if (corpus.internScenario(name) != i) {
            cur.fail("corpus contains duplicate scenario names");
            return err();
        }
    }

    std::uint32_t stream_count = 0;
    if (!cur.count(stream_count, sizeof(std::uint32_t), "stream"))
        return err();
    for (std::uint32_t i = 0; i < stream_count; ++i) {
        std::string_view name;
        if (!cur.stringView(name, "stream name"))
            return err();
        const std::uint32_t index = corpus.addStream(std::string(name));
        TraceStream &stream = corpus.stream(index);
        std::uint32_t tag_count = 0;
        if (!cur.count(tag_count, 2 * sizeof(std::uint32_t),
                       "stream tag"))
            return err();
        for (std::uint32_t t = 0; t < tag_count; ++t) {
            std::string_view key, value;
            if (!cur.stringView(key, "tag key") ||
                !cur.stringView(value, "tag value"))
                return err();
            stream.tags.emplace(std::string(key), std::string(value));
        }
        std::uint32_t event_count = 0;
        if (!cur.count(event_count,
                       version == kVersion ? kEventRecordBytes : 1,
                       "event"))
            return err();
        std::uint32_t encoding = tlc::kEventEncodingRaw;
        if (version == tlc::kVersionCompressed &&
            !cur.u32(encoding, "event encoding"))
            return err();
        if (encoding == tlc::kEventEncodingRaw) {
            const std::uint64_t block_start = cur.offset();
            std::span<const std::byte> records;
            if (!cur.view(records, event_count * kEventRecordBytes,
                          "event records"))
                return err();
            EventColumns columns;
            columns.reserve(event_count);
            if (auto issue = columns.appendTlcRecords(
                    records, event_count, stack_count)) {
                // The scalar parser read a whole record before
                // validating it, so the historical failure offset is
                // the end of the offending record — reproduce that
                // exactly.
                cur.failAt(block_start +
                               (issue->index + 1) * kEventRecordBytes,
                           std::move(issue->reason));
                return err();
            }
            stream.adopt(std::move(columns));
        } else if (encoding == tlc::kEventEncodingDelta) {
            std::uint32_t encoded_bytes = 0;
            if (!cur.u32(encoded_bytes, "event block size"))
                return err();
            if (event_count >
                encoded_bytes / tlc::kDeltaMinBytesPerEvent) {
                cur.fail(detail::concat(
                    "corrupt corpus file: ", event_count,
                    " events cannot fit in a ", encoded_bytes,
                    "-byte compressed block"));
                return err();
            }
            const std::uint64_t block_start = cur.offset();
            std::span<const std::byte> block;
            if (!cur.view(block, encoded_bytes, "event block"))
                return err();
            Expected<EventColumns> columns = decodeDeltaEventBlock(
                block, event_count, stack_count, file, block_start);
            if (!columns)
                return columns.error();
            stream.adopt(std::move(columns.value()));
        } else {
            cur.fail(detail::concat("unknown event encoding ",
                                    encoding));
            return err();
        }
    }

    std::uint32_t instance_count = 0;
    if (!cur.count(instance_count, kInstanceRecordBytes, "instance"))
        return err();
    for (std::uint32_t i = 0; i < instance_count; ++i) {
        ScenarioInstance inst;
        if (!cur.u32(inst.stream, "instance stream") ||
            !cur.u32(inst.scenario, "instance scenario") ||
            !cur.u32(inst.tid, "instance tid") ||
            !cur.i64(inst.t0, "instance t0") ||
            !cur.i64(inst.t1, "instance t1"))
            return err();
        if (inst.scenario >= scenario_count) {
            cur.fail("corpus instance references unknown scenario");
            return err();
        }
        if (inst.stream >= stream_count) {
            cur.fail("corpus instance references unknown stream");
            return err();
        }
        if (inst.t1 < inst.t0) {
            cur.fail("corpus instance window inverted");
            return err();
        }
        corpus.addInstance(inst);
    }

    return corpus;
}

Expected<TraceCorpus>
readCorpusFileChecked(const std::string &path)
{
    Expected<std::vector<std::byte>> bytes = slurpFile(path);
    if (!bytes)
        return bytes.error();
    return parseCorpus(bytes.value(), path);
}

TraceCorpus
readCorpus(std::istream &in)
{
    std::vector<std::byte> bytes;
    char chunk[64 * 1024];
    while (in.read(chunk, sizeof(chunk)) || in.gcount() > 0) {
        const auto *p = reinterpret_cast<const std::byte *>(chunk);
        bytes.insert(bytes.end(), p, p + in.gcount());
    }
    return parseCorpus(bytes, "<stream>").valueOrFatal();
}

TraceCorpus
readCorpusFile(const std::string &path)
{
    return readCorpusFileChecked(path).valueOrFatal();
}

std::string
dumpStream(const TraceCorpus &corpus, std::uint32_t stream,
           std::size_t max_events)
{
    const TraceStream &ts = corpus.stream(stream);
    const SymbolTable &sym = corpus.symbols();
    std::ostringstream oss;
    oss << "stream " << stream << " '" << ts.name << "' ("
        << ts.size() << " events)\n";
    std::size_t shown = 0;
    for (const Event &e : ts.events()) {
        if (shown++ >= max_events) {
            oss << "  ... (" << ts.size() - max_events
                << " more events)\n";
            break;
        }
        oss << "  [" << std::setw(10) << e.timestamp << "ns] "
            << eventTypeName(e.type) << " tid=" << e.tid;
        if (e.type == EventType::Unwait)
            oss << " wtid=" << e.wtid;
        if (e.cost > 0)
            oss << " cost=" << e.cost << "ns";
        if (e.stack != kNoCallstack) {
            const auto frames = sym.stackFrames(e.stack);
            if (!frames.empty())
                oss << " top=" << sym.frameName(frames.back());
        }
        oss << "\n";
    }
    return oss.str();
}

std::uint32_t
traceFormatVersion()
{
    return tlc::kVersionCompressed;
}

} // namespace tracelens
