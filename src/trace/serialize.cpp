/**
 * @file
 * Binary reader/writer for the TLC1 corpus container (see
 * docs/TRACE_FORMAT.md for the byte-level layout).
 */

#include "src/trace/serialize.h"

#include <cstring>
#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "src/util/logging.h"

namespace tracelens
{

namespace
{

constexpr std::uint32_t kMagic = 0x31434c54; // "TLC1" little-endian
constexpr std::uint32_t kVersion = 2;

void
putU32(std::ostream &out, std::uint32_t v)
{
    out.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
putI64(std::ostream &out, std::int64_t v)
{
    out.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
putString(std::ostream &out, const std::string &s)
{
    putU32(out, static_cast<std::uint32_t>(s.size()));
    out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::uint32_t
getU32(std::istream &in)
{
    std::uint32_t v = 0;
    in.read(reinterpret_cast<char *>(&v), sizeof(v));
    if (!in)
        TL_FATAL("truncated corpus file (u32)");
    return v;
}

std::int64_t
getI64(std::istream &in)
{
    std::int64_t v = 0;
    in.read(reinterpret_cast<char *>(&v), sizeof(v));
    if (!in)
        TL_FATAL("truncated corpus file (i64)");
    return v;
}

std::string
getString(std::istream &in)
{
    const std::uint32_t len = getU32(in);
    std::string s(len, '\0');
    in.read(s.data(), len);
    if (!in)
        TL_FATAL("truncated corpus file (string)");
    return s;
}

} // namespace

void
writeCorpus(const TraceCorpus &corpus, std::ostream &out)
{
    putU32(out, kMagic);
    putU32(out, kVersion);

    const SymbolTable &sym = corpus.symbols();

    putU32(out, static_cast<std::uint32_t>(sym.frameCount()));
    for (FrameId f = 0; f < sym.frameCount(); ++f)
        putString(out, sym.frameName(f));

    putU32(out, static_cast<std::uint32_t>(sym.stackCount()));
    for (CallstackId s = 0; s < sym.stackCount(); ++s) {
        const auto frames = sym.stackFrames(s);
        putU32(out, static_cast<std::uint32_t>(frames.size()));
        for (FrameId f : frames)
            putU32(out, f);
    }

    putU32(out, static_cast<std::uint32_t>(corpus.scenarioCount()));
    for (std::uint32_t i = 0; i < corpus.scenarioCount(); ++i)
        putString(out, corpus.scenarioName(i));

    putU32(out, static_cast<std::uint32_t>(corpus.streamCount()));
    for (std::uint32_t i = 0; i < corpus.streamCount(); ++i) {
        const TraceStream &stream = corpus.stream(i);
        putString(out, stream.name);
        putU32(out, static_cast<std::uint32_t>(stream.tags.size()));
        for (const auto &[key, value] : stream.tags) {
            putString(out, key);
            putString(out, value);
        }
        putU32(out, static_cast<std::uint32_t>(stream.size()));
        for (const Event &e : stream.events()) {
            putI64(out, e.timestamp);
            putI64(out, e.cost);
            putU32(out, e.tid);
            putU32(out, e.wtid);
            putU32(out, e.stack);
            putU32(out, static_cast<std::uint32_t>(e.type));
        }
    }

    putU32(out, static_cast<std::uint32_t>(corpus.instances().size()));
    for (const ScenarioInstance &inst : corpus.instances()) {
        putU32(out, inst.stream);
        putU32(out, inst.scenario);
        putU32(out, inst.tid);
        putI64(out, inst.t0);
        putI64(out, inst.t1);
    }
}

void
writeCorpusFile(const TraceCorpus &corpus, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        TL_FATAL("cannot open '", path, "' for writing");
    writeCorpus(corpus, out);
    if (!out)
        TL_FATAL("write to '", path, "' failed");
}

TraceCorpus
readCorpus(std::istream &in)
{
    if (getU32(in) != kMagic)
        TL_FATAL("not a TraceLens corpus (bad magic)");
    const std::uint32_t version = getU32(in);
    if (version != kVersion)
        TL_FATAL("unsupported corpus version ", version);

    TraceCorpus corpus;
    SymbolTable &sym = corpus.symbols();

    const std::uint32_t frame_count = getU32(in);
    for (std::uint32_t i = 0; i < frame_count; ++i) {
        const FrameId f = sym.internFrame(getString(in));
        if (f != i)
            TL_FATAL("corpus contains duplicate frame entries");
    }

    const std::uint32_t stack_count = getU32(in);
    for (std::uint32_t i = 0; i < stack_count; ++i) {
        const std::uint32_t len = getU32(in);
        std::vector<FrameId> frames(len);
        for (auto &f : frames) {
            f = getU32(in);
            if (f >= frame_count)
                TL_FATAL("corpus stack references unknown frame");
        }
        const CallstackId s = sym.internStack(frames);
        if (s != i)
            TL_FATAL("corpus contains duplicate stack entries");
    }

    const std::uint32_t scenario_count = getU32(in);
    for (std::uint32_t i = 0; i < scenario_count; ++i) {
        if (corpus.internScenario(getString(in)) != i)
            TL_FATAL("corpus contains duplicate scenario names");
    }

    const std::uint32_t stream_count = getU32(in);
    for (std::uint32_t i = 0; i < stream_count; ++i) {
        const std::uint32_t index = corpus.addStream(getString(in));
        TraceStream &stream = corpus.stream(index);
        const std::uint32_t tag_count = getU32(in);
        for (std::uint32_t t = 0; t < tag_count; ++t) {
            std::string key = getString(in);
            stream.tags.emplace(std::move(key), getString(in));
        }
        const std::uint32_t event_count = getU32(in);
        for (std::uint32_t j = 0; j < event_count; ++j) {
            Event e;
            e.timestamp = getI64(in);
            e.cost = getI64(in);
            e.tid = getU32(in);
            e.wtid = getU32(in);
            e.stack = getU32(in);
            const std::uint32_t type = getU32(in);
            if (type > static_cast<std::uint32_t>(
                           EventType::HardwareService)) {
                TL_FATAL("corpus event has invalid type ", type);
            }
            e.type = static_cast<EventType>(type);
            if (e.stack != kNoCallstack && e.stack >= stack_count)
                TL_FATAL("corpus event references unknown stack");
            stream.append(e);
        }
    }

    const std::uint32_t instance_count = getU32(in);
    for (std::uint32_t i = 0; i < instance_count; ++i) {
        ScenarioInstance inst;
        inst.stream = getU32(in);
        inst.scenario = getU32(in);
        inst.tid = getU32(in);
        inst.t0 = getI64(in);
        inst.t1 = getI64(in);
        if (inst.scenario >= scenario_count)
            TL_FATAL("corpus instance references unknown scenario");
        corpus.addInstance(inst);
    }

    return corpus;
}

TraceCorpus
readCorpusFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        TL_FATAL("cannot open '", path, "' for reading");
    return readCorpus(in);
}

std::string
dumpStream(const TraceCorpus &corpus, std::uint32_t stream,
           std::size_t max_events)
{
    const TraceStream &ts = corpus.stream(stream);
    const SymbolTable &sym = corpus.symbols();
    std::ostringstream oss;
    oss << "stream " << stream << " '" << ts.name << "' ("
        << ts.size() << " events)\n";
    std::size_t shown = 0;
    for (const Event &e : ts.events()) {
        if (shown++ >= max_events) {
            oss << "  ... (" << ts.size() - max_events
                << " more events)\n";
            break;
        }
        oss << "  [" << std::setw(10) << e.timestamp << "ns] "
            << eventTypeName(e.type) << " tid=" << e.tid;
        if (e.type == EventType::Unwait)
            oss << " wtid=" << e.wtid;
        if (e.cost > 0)
            oss << " cost=" << e.cost << "ns";
        if (e.stack != kNoCallstack) {
            const auto frames = sym.stackFrames(e.stack);
            if (!frames.empty())
                oss << " top=" << sym.frameName(frames.back());
        }
        oss << "\n";
    }
    return oss.str();
}

} // namespace tracelens
