/**
 * @file
 * TraceSource implementations: eager wrapper/loader, the mmap-backed
 * streaming source with its byte-budget LRU shard cache, and the
 * path-dispatching openSource() factory.
 */

#include "src/trace/source.h"

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "src/trace/merge.h"
#include "src/trace/serialize.h"
#include "src/util/logging.h"
#include "src/util/telemetry.h"

namespace tracelens
{

namespace
{

const std::string kMemoryPath = "<memory>";

/** Process-wide ingestion metrics ("source.cache.*" counters). */
struct SourceMetrics
{
    Counter &cacheHits;
    Counter &cacheMisses;
    Counter &cacheEvictions;
    Counter &shardLoads;
};

SourceMetrics &
sourceMetrics()
{
    static SourceMetrics metrics{
        MetricsRegistry::global().counter("source.cache.hits"),
        MetricsRegistry::global().counter("source.cache.misses"),
        MetricsRegistry::global().counter("source.cache.evictions"),
        MetricsRegistry::global().counter("source.shard_loads"),
    };
    return metrics;
}

std::uint64_t
fileSizeOrZero(const std::string &path)
{
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    return ec ? 0 : static_cast<std::uint64_t>(size);
}

/** Build a ShardSummary from a fully materialized corpus. */
ShardSummary
summarizeCorpus(const TraceCorpus &corpus, std::string path,
                std::uint64_t file_bytes)
{
    ShardSummary summary;
    summary.path = std::move(path);
    summary.fileBytes = file_bytes;
    summary.events = corpus.totalEvents();
    summary.scenarios.reserve(corpus.scenarioCount());
    for (std::uint32_t id = 0; id < corpus.scenarioCount(); ++id)
        summary.scenarios.push_back(corpus.scenarioName(id));
    summary.instances = corpus.instances();
    return summary;
}

} // namespace

std::string
IngestStats::render() const
{
    std::ostringstream oss;
    oss << "shards:   " << shards << " (" << loadedShards
        << " loaded, " << skippedShards << " skipped)\n"
        << "bytes:    " << ingestBytes << " ingested, " << residentBytes
        << " resident\n"
        << "cache:    " << cacheHits << " hits / " << cacheMisses
        << " misses / " << cacheEvictions << " evictions\n";
    for (const SourceError &e : errors)
        oss << "skipped:  " << e.render() << "\n";
    return oss.str();
}

std::size_t
estimateCorpusBytes(const TraceCorpus &corpus)
{
    // Containers carry per-element bookkeeping beyond payload; the
    // constants approximate libstdc++ node/header overheads closely
    // enough for cache budgeting.
    std::size_t bytes = sizeof(TraceCorpus);
    bytes += corpus.totalEvents() * sizeof(Event);
    bytes += corpus.instances().size() * sizeof(ScenarioInstance);
    const SymbolTable &sym = corpus.symbols();
    for (FrameId f = 0;
         f < static_cast<FrameId>(sym.frameCount()); ++f)
        bytes += sym.frameName(f).size() + 48;
    for (CallstackId s = 0;
         s < static_cast<CallstackId>(sym.stackCount()); ++s)
        bytes += sym.stackFrames(s).size() * sizeof(FrameId) + 16;
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(corpus.streamCount()); ++i) {
        const TraceStream &stream = corpus.stream(i);
        bytes += sizeof(TraceStream) + stream.name.size();
        for (const auto &[key, value] : stream.tags)
            bytes += key.size() + value.size() + 64;
    }
    for (std::uint32_t id = 0; id < corpus.scenarioCount(); ++id)
        bytes += corpus.scenarioName(id).size() + 48;
    return bytes;
}

// --------------------------------------------------------------- EagerSource

EagerSource::EagerSource(const TraceCorpus &corpus) : borrowed_(&corpus)
{
    loaded_ = true;
    stats_.shards = 1;
    stats_.loadedShards = 1;
}

EagerSource::EagerSource(TraceCorpus &&corpus) : owned_(std::move(corpus))
{
    loaded_ = true;
    stats_.shards = 1;
    stats_.loadedShards = 1;
}

EagerSource::EagerSource(std::vector<std::string> paths)
    : paths_(std::move(paths)), reported_(paths_.size(), false),
      everLoaded_(paths_.size(), false)
{
    stats_.shards = paths_.size();
}

std::string
EagerSource::describe() const
{
    if (paths_.empty())
        return "eager(in-memory corpus)";
    return "eager(" + std::to_string(paths_.size()) + " shard file" +
           (paths_.size() == 1 ? "" : "s") + ")";
}

std::size_t
EagerSource::shardCount() const
{
    return paths_.empty() ? 1 : paths_.size();
}

const std::string &
EagerSource::shardPath(std::size_t shard) const
{
    if (paths_.empty())
        return kMemoryPath;
    TL_ASSERT(shard < paths_.size(), "bad shard index ", shard);
    return paths_[shard];
}

void
EagerSource::countLoaded(std::size_t shard, std::uint64_t bytes)
{
    if (everLoaded_[shard])
        return;
    everLoaded_[shard] = true;
    stats_.loadedShards++;
    stats_.ingestBytes += bytes;
    sourceMetrics().shardLoads.add(1);
}

void
EagerSource::recordError(std::size_t shard, const SourceError &error)
{
    if (reported_[shard])
        return;
    reported_[shard] = true;
    warn("skipping corrupt shard: ", error.render());
    stats_.skippedShards++;
    stats_.errors.push_back(error);
}

Expected<ShardSummary>
EagerSource::summarize(std::size_t shard)
{
    if (paths_.empty()) {
        return summarizeCorpus(corpus(), kMemoryPath,
                               estimateCorpusBytes(corpus()));
    }
    TL_ASSERT(shard < paths_.size(), "bad shard index ", shard);
    Expected<TraceCorpus> loaded = readCorpusFileChecked(paths_[shard]);
    if (!loaded) {
        recordError(shard, loaded.error());
        return loaded.error();
    }
    countLoaded(shard, fileSizeOrZero(paths_[shard]));
    return summarizeCorpus(loaded.value(), paths_[shard],
                           fileSizeOrZero(paths_[shard]));
}

Expected<CorpusPtr>
EagerSource::shard(std::size_t shard)
{
    if (paths_.empty()) {
        // Alias the wrapped corpus; the caller must not outlive it
        // (same contract as borrowing the corpus directly).
        return CorpusPtr(CorpusPtr{}, &corpus());
    }
    TL_ASSERT(shard < paths_.size(), "bad shard index ", shard);
    Expected<TraceCorpus> loaded = readCorpusFileChecked(paths_[shard]);
    if (!loaded) {
        recordError(shard, loaded.error());
        return loaded.error();
    }
    countLoaded(shard, fileSizeOrZero(paths_[shard]));
    return CorpusPtr(
        std::make_shared<const TraceCorpus>(std::move(loaded.value())));
}

void
EagerSource::ensureLoaded()
{
    if (loaded_)
        return;
    loaded_ = true;
    Span span("source.load-eager", "ingest");
    if (span.active())
        span.arg("shards", static_cast<std::uint64_t>(paths_.size()));
    std::vector<TraceCorpus> parts;
    parts.reserve(paths_.size());
    for (std::size_t i = 0; i < paths_.size(); ++i) {
        Expected<TraceCorpus> part = readCorpusFileChecked(paths_[i]);
        if (!part) {
            recordError(i, part.error());
            continue;
        }
        countLoaded(i, fileSizeOrZero(paths_[i]));
        parts.push_back(std::move(part.value()));
    }
    if (parts.size() == 1)
        owned_ = std::move(parts.front());
    else
        owned_ = mergeCorpora(parts);
    stats_.residentBytes = estimateCorpusBytes(*owned_);
}

const TraceCorpus &
EagerSource::corpus()
{
    if (borrowed_ != nullptr)
        return *borrowed_;
    ensureLoaded();
    return *owned_;
}

const IngestStats &
EagerSource::stats() const
{
    return stats_;
}

// ---------------------------------------------------------------- MmapSource

MmapSource::MmapSource(std::vector<std::string> paths,
                       SourceOptions options)
    : paths_(std::move(paths)), options_(options),
      everLoaded_(paths_.size(), false)
{
    stats_.shards = paths_.size();
    readers_.reserve(paths_.size());
    for (std::size_t i = 0; i < paths_.size(); ++i) {
        Expected<MmapReader> reader = MmapReader::open(paths_[i]);
        if (!reader) {
            readers_.emplace_back(std::nullopt);
            markBad(i, reader.error());
            continue;
        }
        stats_.ingestBytes += reader.value().fileBytes();
        readers_.emplace_back(std::move(reader.value()));
    }
}

std::string
MmapSource::describe() const
{
    return "mmap(" + std::to_string(paths_.size()) + " shard" +
           (paths_.size() == 1 ? "" : "s") + ", cache " +
           std::to_string(options_.cacheBytes) + " bytes)";
}

std::size_t
MmapSource::shardCount() const
{
    return paths_.size();
}

const std::string &
MmapSource::shardPath(std::size_t shard) const
{
    TL_ASSERT(shard < paths_.size(), "bad shard index ", shard);
    return paths_[shard];
}

void
MmapSource::markBad(std::size_t shard, SourceError error)
{
    if (bad_.count(shard) > 0)
        return;
    warn("skipping corrupt shard: ", error.render());
    stats_.skippedShards++;
    stats_.errors.push_back(error);
    bad_.emplace(shard, std::move(error));
}

Expected<ShardSummary>
MmapSource::summarize(std::size_t shard)
{
    TL_ASSERT(shard < paths_.size(), "bad shard index ", shard);
    if (auto it = bad_.find(shard); it != bad_.end())
        return it->second;
    const MmapReader &reader = *readers_[shard];
    ShardSummary summary;
    summary.path = reader.path();
    summary.fileBytes = reader.fileBytes();
    summary.events = reader.index().eventCount;
    summary.scenarios = reader.scenarioNames();
    summary.instances = reader.instances();
    return summary;
}

void
MmapSource::touch(CacheEntry &entry, std::size_t shard)
{
    lru_.erase(entry.lruIt);
    lru_.push_front(shard);
    entry.lruIt = lru_.begin();
}

void
MmapSource::evictOver(std::size_t budget)
{
    // Never evict the most recently used entry: one oversized shard
    // must stay usable under any budget.
    while (stats_.residentBytes > budget && lru_.size() > 1) {
        const std::size_t victim = lru_.back();
        lru_.pop_back();
        auto it = cache_.find(victim);
        TL_ASSERT(it != cache_.end(), "LRU/cache out of sync");
        stats_.residentBytes -= it->second.bytes;
        cache_.erase(it);
        stats_.cacheEvictions++;
        sourceMetrics().cacheEvictions.add(1);
    }
}

Expected<CorpusPtr>
MmapSource::shard(std::size_t shard)
{
    TL_ASSERT(shard < paths_.size(), "bad shard index ", shard);
    if (auto bad = bad_.find(shard); bad != bad_.end())
        return bad->second;

    Span span("source.shard", "ingest");
    if (span.active())
        span.arg("shard", static_cast<std::uint64_t>(shard));

    if (auto it = cache_.find(shard); it != cache_.end()) {
        stats_.cacheHits++;
        sourceMetrics().cacheHits.add(1);
        if (span.active())
            span.arg("outcome", std::string("hit"));
        touch(it->second, shard);
        return it->second.corpus;
    }

    stats_.cacheMisses++;
    sourceMetrics().cacheMisses.add(1);
    if (span.active())
        span.arg("outcome", std::string("miss"));
    Expected<TraceCorpus> materialized = readers_[shard]->materialize();
    if (!materialized) {
        markBad(shard, materialized.error());
        return materialized.error();
    }
    if (!everLoaded_[shard]) {
        everLoaded_[shard] = true;
        stats_.loadedShards++;
        sourceMetrics().shardLoads.add(1);
    }

    CacheEntry entry;
    entry.corpus = std::make_shared<const TraceCorpus>(
        std::move(materialized.value()));
    entry.bytes = estimateCorpusBytes(*entry.corpus);
    lru_.push_front(shard);
    entry.lruIt = lru_.begin();
    stats_.residentBytes += entry.bytes;
    CorpusPtr result = entry.corpus;
    cache_.emplace(shard, std::move(entry));
    evictOver(options_.cacheBytes);
    return result;
}

const TraceCorpus &
MmapSource::corpus()
{
    if (merged_)
        return *merged_;
    if (mergedShard_)
        return *mergedShard_;

    if (paths_.size() == 1) {
        // Single-shard fast path: adopt the materialized corpus
        // without an extra merge copy.
        if (Expected<CorpusPtr> part = shard(0)) {
            mergedShard_ = part.value();
            return *mergedShard_;
        }
        merged_.emplace(); // corrupt single shard: empty corpus
        return *merged_;
    }

    // Walk shards one at a time, releasing each handle before the
    // next materialization, so peak residency during the merge stays
    // bounded by the cache budget plus the merged result itself.
    merged_.emplace();
    for (std::size_t i = 0; i < paths_.size(); ++i) {
        Expected<CorpusPtr> part = shard(i);
        if (!part)
            continue; // isolated and recorded in stats()
        appendCorpus(*merged_, *part.value());
    }
    return *merged_;
}

const IngestStats &
MmapSource::stats() const
{
    return stats_;
}

// ---------------------------------------------------------------- openSource

Expected<std::unique_ptr<TraceSource>>
openSource(const std::string &path, const SourceOptions &options)
{
    std::error_code ec;
    const auto status = std::filesystem::status(path, ec);
    if (ec || status.type() == std::filesystem::file_type::not_found) {
        return SourceError{path, 0,
                           "no such file or directory"};
    }

    std::vector<std::string> shards;
    if (std::filesystem::is_directory(status)) {
        for (const auto &entry :
             std::filesystem::directory_iterator(path, ec)) {
            if (entry.is_regular_file() &&
                isShardFilename(entry.path().filename().string()))
                shards.push_back(entry.path().string());
        }
        if (ec) {
            return SourceError{path, 0,
                               "cannot list directory: " + ec.message()};
        }
        std::sort(shards.begin(), shards.end());
        if (shards.empty()) {
            return SourceError{
                path, 0, "directory contains no *.tlc shard files"};
        }
    } else {
        shards.push_back(path);
    }

    if (options.useMmap) {
        return std::unique_ptr<TraceSource>(
            std::make_unique<MmapSource>(std::move(shards), options));
    }
    return std::unique_ptr<TraceSource>(
        std::make_unique<EagerSource>(std::move(shards)));
}

bool
isShardFilename(std::string_view filename)
{
    if (filename.empty() || filename.front() == '.')
        return false;
    constexpr std::string_view kExt = ".tlc";
    return filename.size() > kExt.size() &&
           filename.substr(filename.size() - kExt.size()) == kExt;
}

} // namespace tracelens
