/**
 * @file
 * Span-buffer -> TLC1 corpus conversion (src/trace/selftrace.h).
 */

#include "src/trace/selftrace.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "src/trace/builder.h"
#include "src/trace/serialize.h"
#include "src/util/logging.h"

namespace tracelens
{

TraceCorpus
buildSelfTraceCorpus(const std::vector<SpanSnapshot> &spans,
                     const std::string &node)
{
    TraceCorpus corpus;
    StreamBuilder builder(corpus, node.empty() ? "self-trace" : node);
    const std::string bottom = node.empty() ? "tracelens" : node;
    for (const SpanSnapshot &span : spans) {
        if (span.name.empty())
            continue;
        const std::vector<std::string> frames = {
            bottom,
            span.category.empty() ? "uncategorized" : span.category,
            span.name};
        const CallstackId stackId = builder.stack(frames);
        const TimeNs t0 =
            static_cast<TimeNs>(span.startUs) * 1000;
        const DurationNs cost =
            static_cast<DurationNs>(std::max<std::uint64_t>(
                span.durUs, 1)) * 1000;
        builder.running(static_cast<ThreadId>(span.tid), t0, cost,
                        stackId);
        if (span.name == "server.request") {
            // The request-dispatch span records the method name as an
            // arg — that method IS the scenario from the analyzer's
            // point of view.
            std::string scenario = "request";
            for (const auto &[key, value] : span.args) {
                if (key == "method" && !value.empty()) {
                    scenario = value;
                    break;
                }
            }
            builder.instance("request:" + scenario,
                             static_cast<ThreadId>(span.tid), t0,
                             t0 + static_cast<TimeNs>(cost));
        }
    }
    builder.finish();
    return corpus;
}

std::string
writeSelfTraceCorpus(const std::vector<SpanSnapshot> &spans,
                     const std::string &dir, const std::string &node)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        TL_LOG(Warn, "self-trace: cannot create ", dir, ": ",
               ec.message());
        return "";
    }
    const TraceCorpus corpus = buildSelfTraceCorpus(spans, node);
    const std::string path =
        (std::filesystem::path(dir) / "self-trace.tlc").string();
    // Not writeCorpusFile(): that is fatal on I/O failure, and a full
    // disk must not take down the daemon's drain path.
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        TL_LOG(Warn, "self-trace: cannot open ", path,
               " for writing");
        return "";
    }
    writeCorpus(corpus, out);
    if (!out) {
        TL_LOG(Warn, "self-trace: write to ", path, " failed");
        return "";
    }
    return path;
}

} // namespace tracelens
