/**
 * @file
 * CSV interchange format for trace corpora.
 *
 * The binary format (serialize.h) is compact but opaque; the CSV form
 * lets users import traces produced by *other* tracing infrastructures
 * (ETW/DTrace exports, custom tooling) and inspect corpora with
 * standard tools.
 *
 * Events file (one row per event):
 *   stream,type,timestamp,cost,tid,wtid,stack
 * where type is one of running|wait|unwait|hardware, and stack is the
 * ';'-joined frame list bottom-to-top (frames must not contain ';' or
 * ',').
 *
 * Instances file (one row per scenario instance):
 *   stream,scenario,tid,t0,t1
 *
 * Events must be grouped by stream and time-ordered within a stream,
 * which is how trace exports naturally arrive. Stream tags (cohort
 * metadata) are not part of the CSV form; use the binary format when
 * tags must round-trip.
 */

#ifndef TRACELENS_TRACE_CSV_H
#define TRACELENS_TRACE_CSV_H

#include <iosfwd>
#include <string>

#include "src/trace/stream.h"

namespace tracelens
{

/** Write all events of @p corpus as CSV (with header row). */
void writeEventsCsv(const TraceCorpus &corpus, std::ostream &out);

/** Write all scenario instances of @p corpus as CSV (with header). */
void writeInstancesCsv(const TraceCorpus &corpus, std::ostream &out);

/**
 * Read a corpus from the two CSV streams. Fatal on malformed rows
 * (wrong column count, unknown event type, unparsable numbers, events
 * out of order).
 */
TraceCorpus readCorpusCsv(std::istream &events, std::istream &instances);

/** Convenience: write both files next to each other. */
void writeCorpusCsvFiles(const TraceCorpus &corpus,
                         const std::string &events_path,
                         const std::string &instances_path);

/** Convenience: read both files. */
TraceCorpus readCorpusCsvFiles(const std::string &events_path,
                               const std::string &instances_path);

} // namespace tracelens

#endif // TRACELENS_TRACE_CSV_H
