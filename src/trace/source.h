/**
 * @file
 * TraceSource: the ingestion boundary between trace storage and the
 * analyses.
 *
 * The original API assumed a fully resident TraceCorpus before any
 * analysis could start. At fleet scale (the paper ran over 19,500 ETW
 * streams) ingestion is the wall, so the pipeline now consumes a
 * TraceSource instead: an abstraction over *where the bytes live* —
 * one file, a sharded directory, or an already-loaded corpus — with
 * two implementations:
 *
 *  - EagerSource   wraps an in-memory TraceCorpus (zero behavior
 *                  change for existing callers) or loads shard files
 *                  through the classic full-read path.
 *  - MmapSource    maps shards zero-copy (MmapReader), answers
 *                  summary queries (instance windows, scenario names,
 *                  event counts) without materializing symbol tables,
 *                  and materializes shards on demand through an LRU
 *                  cache bounded by a configurable byte budget.
 *
 * Both implementations isolate per-shard errors: a corrupt trace file
 * is recorded in IngestStats::errors and skipped — never fatal. The
 * two paths produce bit-identical analysis results (asserted by
 * tests/source_test.cpp).
 */

#ifndef TRACELENS_TRACE_SOURCE_H
#define TRACELENS_TRACE_SOURCE_H

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/trace/mmapreader.h"
#include "src/trace/stream.h"
#include "src/util/expected.h"

namespace tracelens
{

/** Ingestion configuration. */
struct SourceOptions
{
    /**
     * Byte budget for MmapSource's materialized-shard LRU cache. The
     * most recently used shard is always kept resident, even when it
     * alone exceeds the budget — otherwise repeated access to one
     * large shard would thrash.
     */
    std::size_t cacheBytes = 256ull << 20;
    /** openSource(): mmap the shards instead of eager full reads. */
    bool useMmap = false;
};

/** Ingestion counters and the per-shard errors that were isolated. */
struct IngestStats
{
    /** Shard files discovered (or 1 for an in-memory corpus). */
    std::size_t shards = 0;
    /** Shards materialized successfully at least once. */
    std::size_t loadedShards = 0;
    /** Corrupt/unreadable shards reported and skipped. */
    std::size_t skippedShards = 0;
    /** Raw file bytes of the usable shards. */
    std::uint64_t ingestBytes = 0;
    std::size_t cacheHits = 0;
    std::size_t cacheMisses = 0;
    std::size_t cacheEvictions = 0;
    /** Estimated bytes of currently cached materialized shards. */
    std::size_t residentBytes = 0;
    /** One entry per skipped shard: file, offset, reason. */
    std::vector<SourceError> errors;

    /** Multi-line human-readable rendering. */
    std::string render() const;
};

/**
 * What a shard contains, answerable without materializing its symbol
 * table (cheap on the mmap path): classification windows, per-shard
 * scenario names, and size figures.
 */
struct ShardSummary
{
    std::string path;
    std::uint64_t fileBytes = 0;
    std::uint64_t events = 0;
    /** Shard-local scenario names, in interning order. */
    std::vector<std::string> scenarios;
    /** Instance records; .scenario indexes into @ref scenarios. */
    std::vector<ScenarioInstance> instances;
};

/** Shared handle to a materialized (possibly cached) shard corpus. */
using CorpusPtr = std::shared_ptr<const TraceCorpus>;

/**
 * Pure interface the Analyzer (and CLI) ingest through. Implementations
 * are not required to be thread-safe; share one source across threads
 * only behind external synchronization. corpus() may materialize and
 * so may be expensive on first call; it is cached afterwards.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** One-line description ("mmap dir corpus/ (8 shards)", ...). */
    virtual std::string describe() const = 0;

    virtual std::size_t shardCount() const = 0;
    virtual const std::string &shardPath(std::size_t shard) const = 0;

    /** Cheap shard summary; error for a corrupt shard (also recorded
     *  in stats()). */
    virtual Expected<ShardSummary> summarize(std::size_t shard) = 0;

    /**
     * The materialized corpus of one shard. MmapSource serves this
     * through its byte-budget LRU cache; holding the returned
     * CorpusPtr keeps the shard alive across evictions.
     */
    virtual Expected<CorpusPtr> shard(std::size_t shard) = 0;

    /**
     * The merged analysis corpus over all usable shards. Corrupt
     * shards are skipped and recorded in stats().errors; an all-bad
     * source yields an empty corpus, never a fatal error.
     */
    virtual const TraceCorpus &corpus() = 0;

    virtual const IngestStats &stats() const = 0;
};

/**
 * TraceSource over the classic eager-load path: either wrapping an
 * existing in-memory corpus (borrowed or owned — zero behavior
 * change), or reading shard files fully into memory on first use.
 */
class EagerSource : public TraceSource
{
  public:
    /** Borrow an already-built corpus (caller keeps ownership). */
    explicit EagerSource(const TraceCorpus &corpus);
    /** Take ownership of a corpus (rvalues only, so a const lvalue
     * unambiguously borrows). */
    explicit EagerSource(TraceCorpus &&corpus);
    /** Load these shard files eagerly on first corpus()/shard(). */
    explicit EagerSource(std::vector<std::string> paths);

    std::string describe() const override;
    std::size_t shardCount() const override;
    const std::string &shardPath(std::size_t shard) const override;
    Expected<ShardSummary> summarize(std::size_t shard) override;
    Expected<CorpusPtr> shard(std::size_t shard) override;
    const TraceCorpus &corpus() override;
    const IngestStats &stats() const override;

  private:
    void ensureLoaded();
    /** Record a shard's load error in stats (once per shard). */
    void recordError(std::size_t shard, const SourceError &error);

    /** Count shard @p i as loaded (first success only). */
    void countLoaded(std::size_t shard, std::uint64_t bytes);

    const TraceCorpus *borrowed_ = nullptr;
    std::optional<TraceCorpus> owned_;
    std::vector<std::string> paths_;
    bool loaded_ = false;
    /** Shards whose errors were already counted. */
    std::vector<bool> reported_;
    /** Shards that counted toward loadedShards already. */
    std::vector<bool> everLoaded_;
    IngestStats stats_;
};

/**
 * TraceSource over mmap'ed shards: summaries come straight from the
 * zero-copy skip-scan index; full materializations go through an LRU
 * cache bounded by SourceOptions::cacheBytes.
 */
class MmapSource : public TraceSource
{
  public:
    explicit MmapSource(std::vector<std::string> paths,
                        SourceOptions options = {});

    std::string describe() const override;
    std::size_t shardCount() const override;
    const std::string &shardPath(std::size_t shard) const override;
    Expected<ShardSummary> summarize(std::size_t shard) override;
    Expected<CorpusPtr> shard(std::size_t shard) override;
    const TraceCorpus &corpus() override;
    const IngestStats &stats() const override;

  private:
    struct CacheEntry
    {
        CorpusPtr corpus;
        std::size_t bytes = 0;
        std::list<std::size_t>::iterator lruIt;
    };

    /** Record shard @p i as corrupt (first time only). */
    void markBad(std::size_t shard, SourceError error);
    void touch(CacheEntry &entry, std::size_t shard);
    void evictOver(std::size_t budget);

    std::vector<std::string> paths_;
    SourceOptions options_;
    /** Open readers; nullopt for shards that failed to open/index. */
    std::vector<std::optional<MmapReader>> readers_;
    /** Open/materialize error per bad shard. */
    std::unordered_map<std::size_t, SourceError> bad_;
    /** Shards that counted toward loadedShards already. */
    std::vector<bool> everLoaded_;

    std::unordered_map<std::size_t, CacheEntry> cache_;
    /** Front = most recently used shard. */
    std::list<std::size_t> lru_;

    std::optional<TraceCorpus> merged_;
    CorpusPtr mergedShard_; // pins the single-shard fast path
    IngestStats stats_;
};

/**
 * Open @p path as a TraceSource: a regular file is a single-shard
 * corpus; a directory is a sharded corpus of its "*.tlc" files in
 * filename order (see docs/TRACE_FORMAT.md, "Sharded corpora").
 * Fails only when @p path itself is unusable (missing, or a directory
 * with no shards) — corrupt shard *files* are isolated later, per
 * shard.
 */
Expected<std::unique_ptr<TraceSource>>
openSource(const std::string &path, const SourceOptions &options = {});

/**
 * True when @p filename (the final path component, no directory) is a
 * finished shard a corpus-directory scan should pick up: a `*.tlc`
 * name that is not hidden. Dotfiles and any other extension —
 * notably the `*.tmp` staging names of the rename-into-place
 * convention (docs/TRACE_FORMAT.md "Sharded corpora") — are skipped,
 * so a writer racing a reader can never surface a torn shard as a
 * corrupt-input error. Every directory scan (openSource, the
 * coordinator's enumerateShards, the fleet watcher) shares this
 * predicate: shard *selection* feeding shard order IS merge order,
 * so any divergence breaks byte-identity.
 */
bool isShardFilename(std::string_view filename);

/**
 * Estimated resident bytes of a materialized corpus (events,
 * instances, symbol table, stream metadata) — the unit of
 * SourceOptions::cacheBytes accounting.
 */
std::size_t estimateCorpusBytes(const TraceCorpus &corpus);

} // namespace tracelens

#endif // TRACELENS_TRACE_SOURCE_H
