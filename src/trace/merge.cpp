/**
 * @file
 * Corpus merge: re-interns frames/stacks/scenarios of each source
 * corpus into the destination and remaps stream indices.
 */

#include "src/trace/merge.h"

#include <algorithm>
#include <vector>

namespace tracelens
{

void
appendCorpus(TraceCorpus &target, const TraceCorpus &part)
{
    const std::uint32_t stream_base =
        static_cast<std::uint32_t>(target.streamCount());

    // Re-intern frames and stacks; build translation tables.
    const SymbolTable &src = part.symbols();
    SymbolTable &dst = target.symbols();

    std::vector<FrameId> frame_map(src.frameCount());
    for (FrameId f = 0; f < src.frameCount(); ++f)
        frame_map[f] = dst.internFrame(src.frameName(f));

    std::vector<CallstackId> stack_map(src.stackCount());
    std::vector<FrameId> scratch;
    for (CallstackId s = 0; s < src.stackCount(); ++s) {
        const auto frames = src.stackFrames(s);
        scratch.clear();
        scratch.reserve(frames.size());
        for (FrameId f : frames)
            scratch.push_back(frame_map[f]);
        stack_map[s] = dst.internStack(scratch);
    }

    std::vector<std::uint32_t> scenario_map(part.scenarioCount());
    for (std::uint32_t i = 0; i < part.scenarioCount(); ++i)
        scenario_map[i] = target.internScenario(part.scenarioName(i));

    for (std::uint32_t i = 0; i < part.streamCount(); ++i) {
        const TraceStream &source = part.stream(i);
        const std::uint32_t index = target.addStream(source.name);
        TraceStream &stream = target.stream(index);
        stream.tags = source.tags;
        for (Event e : source.events()) {
            if (e.stack != kNoCallstack)
                e.stack = stack_map[e.stack];
            stream.append(e);
        }
    }

    for (ScenarioInstance inst : part.instances()) {
        inst.stream += stream_base;
        inst.scenario = scenario_map[inst.scenario];
        target.addInstance(inst);
    }
}

TraceCorpus
mergeCorpora(std::span<const TraceCorpus> parts)
{
    TraceCorpus merged;
    for (const TraceCorpus &part : parts)
        appendCorpus(merged, part);
    return merged;
}

void
appendCorpusStreams(TraceCorpus &target, const TraceCorpus &part,
                    std::uint32_t first, std::uint32_t count)
{
    const std::uint32_t stream_base =
        static_cast<std::uint32_t>(target.streamCount());

    const SymbolTable &src = part.symbols();
    SymbolTable &dst = target.symbols();

    // Symbols are re-interned lazily so a slice carries only the
    // frames/stacks/scenarios its own streams reference — that is
    // what keeps shard files self-contained without duplicating the
    // whole fleet-level symbol table into every shard.
    std::vector<FrameId> frame_map(src.frameCount(), kNoFrame);
    std::vector<CallstackId> stack_map(src.stackCount(), kNoCallstack);
    std::vector<FrameId> scratch;
    const auto map_stack = [&](CallstackId s) {
        if (stack_map[s] != kNoCallstack)
            return stack_map[s];
        const auto frames = src.stackFrames(s);
        scratch.clear();
        scratch.reserve(frames.size());
        for (FrameId f : frames) {
            if (frame_map[f] == kNoFrame)
                frame_map[f] = dst.internFrame(src.frameName(f));
            scratch.push_back(frame_map[f]);
        }
        stack_map[s] = dst.internStack(scratch);
        return stack_map[s];
    };

    for (std::uint32_t i = first; i < first + count; ++i) {
        const TraceStream &source = part.stream(i);
        const std::uint32_t index = target.addStream(source.name);
        TraceStream &stream = target.stream(index);
        stream.tags = source.tags;
        for (Event e : source.events()) {
            if (e.stack != kNoCallstack)
                e.stack = map_stack(e.stack);
            stream.append(e);
        }
    }

    std::vector<std::uint32_t> scenario_map(part.scenarioCount(),
                                            UINT32_MAX);
    for (ScenarioInstance inst : part.instances()) {
        if (inst.stream < first || inst.stream >= first + count)
            continue;
        if (scenario_map[inst.scenario] == UINT32_MAX) {
            scenario_map[inst.scenario] =
                target.internScenario(part.scenarioName(inst.scenario));
        }
        inst.scenario = scenario_map[inst.scenario];
        inst.stream = inst.stream - first + stream_base;
        target.addInstance(inst);
    }
}

std::vector<TraceCorpus>
splitCorpus(const TraceCorpus &corpus, std::size_t parts)
{
    if (parts == 0)
        parts = 1;
    const auto streams =
        static_cast<std::uint32_t>(corpus.streamCount());
    const std::uint32_t per_part = static_cast<std::uint32_t>(
        (streams + parts - 1) / parts);

    std::vector<TraceCorpus> out(parts);
    for (std::size_t k = 0; k < parts; ++k) {
        const std::uint32_t first =
            std::min(streams, static_cast<std::uint32_t>(k) * per_part);
        const std::uint32_t count =
            std::min(per_part, streams - first);
        appendCorpusStreams(out[k], corpus, first, count);
    }
    return out;
}

} // namespace tracelens
