/**
 * @file
 * Corpus merge: re-interns frames/stacks/scenarios of each source
 * corpus into the destination and remaps stream indices.
 */

#include "src/trace/merge.h"

#include <vector>

namespace tracelens
{

void
appendCorpus(TraceCorpus &target, const TraceCorpus &part)
{
    const std::uint32_t stream_base =
        static_cast<std::uint32_t>(target.streamCount());

    // Re-intern frames and stacks; build translation tables.
    const SymbolTable &src = part.symbols();
    SymbolTable &dst = target.symbols();

    std::vector<FrameId> frame_map(src.frameCount());
    for (FrameId f = 0; f < src.frameCount(); ++f)
        frame_map[f] = dst.internFrame(src.frameName(f));

    std::vector<CallstackId> stack_map(src.stackCount());
    std::vector<FrameId> scratch;
    for (CallstackId s = 0; s < src.stackCount(); ++s) {
        const auto frames = src.stackFrames(s);
        scratch.clear();
        scratch.reserve(frames.size());
        for (FrameId f : frames)
            scratch.push_back(frame_map[f]);
        stack_map[s] = dst.internStack(scratch);
    }

    std::vector<std::uint32_t> scenario_map(part.scenarioCount());
    for (std::uint32_t i = 0; i < part.scenarioCount(); ++i)
        scenario_map[i] = target.internScenario(part.scenarioName(i));

    for (std::uint32_t i = 0; i < part.streamCount(); ++i) {
        const TraceStream &source = part.stream(i);
        const std::uint32_t index = target.addStream(source.name);
        TraceStream &stream = target.stream(index);
        stream.tags = source.tags;
        for (Event e : source.events()) {
            if (e.stack != kNoCallstack)
                e.stack = stack_map[e.stack];
            stream.append(e);
        }
    }

    for (ScenarioInstance inst : part.instances()) {
        inst.stream += stream_base;
        inst.scenario = scenario_map[inst.scenario];
        target.addInstance(inst);
    }
}

TraceCorpus
mergeCorpora(std::span<const TraceCorpus> parts)
{
    TraceCorpus merged;
    for (const TraceCorpus &part : parts)
        appendCorpus(merged, part);
    return merged;
}

} // namespace tracelens
