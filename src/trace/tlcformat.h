/**
 * @file
 * Shared low-level decoding machinery for the TLC1 container: format
 * constants, packed record sizes, and the bounds-checked ByteCursor
 * both decoders are built on (the eager buffer parser in
 * serialize.cpp and the lazy skip-scan indexer in mmapreader.cpp).
 * Internal to src/trace — not part of the public API.
 */

#ifndef TRACELENS_TRACE_TLCFORMAT_H
#define TRACELENS_TRACE_TLCFORMAT_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>

#include "src/util/expected.h"

namespace tracelens
{
namespace tlc
{

inline constexpr std::uint32_t kMagic = 0x31434c54; // "TLC1" LE
inline constexpr std::uint32_t kVersion = 2;

/**
 * Version 3 extends the container with per-stream event-block
 * encodings: each stream carries a u32 encoding tag after its event
 * count. Uncompressed writes still emit version 2 byte-for-byte (the
 * corpus digest — the artifact-cache key — is the hash of the
 * canonical v2 serialization and must stay stable), so version 3
 * appears on disk only when block compression was requested. Readers
 * accept both.
 */
inline constexpr std::uint32_t kVersionCompressed = 3;

/** v3 per-stream event-block encoding tags. */
inline constexpr std::uint32_t kEventEncodingRaw = 0;
inline constexpr std::uint32_t kEventEncodingDelta = 1;

/**
 * Lower bound on the encoded size of one event in a delta block (six
 * fields, each at least a one-byte varint) — the guard that keeps a
 * hostile event count from driving a huge allocation before decode.
 */
inline constexpr std::size_t kDeltaMinBytesPerEvent = 6;

/** Exact on-disk sizes of the packed record types (no padding). */
inline constexpr std::size_t kEventRecordBytes = 32;
inline constexpr std::size_t kInstanceRecordBytes = 28;

/**
 * Bounds-checked little-endian cursor over a byte image. The first
 * failure latches a SourceError (with the byte offset at which the
 * violation was detected) and every subsequent read becomes a no-op
 * returning false, so parse loops can bail out cheaply. All loads go
 * through memcpy: the TLC1 sections are packed with no alignment
 * guarantees (see docs/TRACE_FORMAT.md), so records inside an mmap'ed
 * image must never be dereferenced through reinterpret_cast.
 */
class ByteCursor
{
  public:
    ByteCursor(std::span<const std::byte> bytes, std::string file)
        : bytes_(bytes), file_(std::move(file))
    {
    }

    bool failed() const { return failed_; }
    const SourceError &error() const { return error_; }
    std::uint64_t offset() const { return pos_; }
    std::size_t remaining() const { return bytes_.size() - pos_; }

    /** Latch a failure at the current offset. */
    bool
    fail(std::string reason)
    {
        if (!failed_) {
            failed_ = true;
            error_ = {file_, pos_, std::move(reason)};
        }
        return false;
    }

    /**
     * Latch a failure at an explicit byte offset — for block decoders
     * that consume a whole record section at once and learn the
     * offending record's position only afterwards.
     */
    bool
    failAt(std::uint64_t offset, std::string reason)
    {
        if (!failed_) {
            failed_ = true;
            error_ = {file_, offset, std::move(reason)};
        }
        return false;
    }

    /**
     * Hand out a zero-copy view of the next @p n bytes and advance
     * past them — the entry point for bulk (whole-section) decoders.
     */
    bool
    view(std::span<const std::byte> &out, std::size_t n,
         const char *what)
    {
        if (!need(n, what))
            return false;
        out = bytes_.subspan(pos_, n);
        pos_ += n;
        return true;
    }

    bool
    u32(std::uint32_t &v, const char *what)
    {
        if (!need(sizeof(v), what))
            return false;
        std::memcpy(&v, bytes_.data() + pos_, sizeof(v));
        pos_ += sizeof(v);
        return true;
    }

    bool
    i64(std::int64_t &v, const char *what)
    {
        if (!need(sizeof(v), what))
            return false;
        std::memcpy(&v, bytes_.data() + pos_, sizeof(v));
        pos_ += sizeof(v);
        return true;
    }

    /** Length-prefixed string as a zero-copy view into the buffer. */
    bool
    stringView(std::string_view &sv, const char *what)
    {
        std::uint32_t len = 0;
        if (!u32(len, what))
            return false;
        if (len > remaining()) {
            return fail(detail::concat(
                "truncated corpus file (", what, "): string of ", len,
                " bytes but only ", remaining(), " left"));
        }
        sv = std::string_view(
            reinterpret_cast<const char *>(bytes_.data() + pos_), len);
        pos_ += len;
        return true;
    }

    /** Skip a length-prefixed string without materializing a view. */
    bool
    skipString(const char *what)
    {
        std::string_view sv;
        return stringView(sv, what);
    }

    /** Skip @p n raw bytes (record blobs the caller decodes later). */
    bool
    skip(std::size_t n, const char *what)
    {
        if (!need(n, what))
            return false;
        pos_ += n;
        return true;
    }

    /**
     * Read a record/element count and reject counts that could not
     * possibly fit in the rest of the buffer (each element occupies at
     * least @p min_element_bytes). This is the guard that keeps a
     * hostile count field from driving a multi-gigabyte allocation or
     * a long bogus decode loop.
     */
    bool
    count(std::uint32_t &v, std::size_t min_element_bytes,
          const char *what)
    {
        if (!u32(v, what))
            return false;
        if (v > remaining() / min_element_bytes) {
            return fail(detail::concat(
                "corrupt corpus file: ", what, " count ", v,
                " cannot fit in the ", remaining(),
                " bytes that remain"));
        }
        return true;
    }

  private:
    bool
    need(std::size_t n, const char *what)
    {
        if (failed_)
            return false;
        if (remaining() < n) {
            return fail(
                detail::concat("truncated corpus file (", what, ")"));
        }
        return true;
    }

    std::span<const std::byte> bytes_;
    std::string file_;
    std::uint64_t pos_ = 0;
    bool failed_ = false;
    SourceError error_;
};

} // namespace tlc
} // namespace tracelens

#endif // TRACELENS_TRACE_TLCFORMAT_H
