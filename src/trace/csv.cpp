/**
 * @file
 * CSV reader/writer for events and instances; parses the
 * semicolon-joined stack column through the corpus interner.
 */

#include "src/trace/csv.h"

#include <charconv>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "src/util/logging.h"

namespace tracelens
{

namespace
{

std::string_view
typeToken(EventType type)
{
    switch (type) {
      case EventType::Running:
        return "running";
      case EventType::Wait:
        return "wait";
      case EventType::Unwait:
        return "unwait";
      case EventType::HardwareService:
        return "hardware";
    }
    TL_PANIC("bad event type");
}

EventType
tokenToType(std::string_view token, std::size_t line)
{
    if (token == "running")
        return EventType::Running;
    if (token == "wait")
        return EventType::Wait;
    if (token == "unwait")
        return EventType::Unwait;
    if (token == "hardware")
        return EventType::HardwareService;
    TL_FATAL("CSV line ", line, ": unknown event type '",
             std::string(token), "'");
}

std::vector<std::string_view>
splitCsvRow(std::string_view row)
{
    std::vector<std::string_view> cells;
    std::size_t start = 0;
    while (true) {
        const std::size_t comma = row.find(',', start);
        if (comma == std::string_view::npos) {
            cells.push_back(row.substr(start));
            break;
        }
        cells.push_back(row.substr(start, comma - start));
        start = comma + 1;
    }
    return cells;
}

template <typename T>
T
parseNumber(std::string_view cell, std::size_t line)
{
    T value{};
    const auto [ptr, ec] =
        std::from_chars(cell.data(), cell.data() + cell.size(), value);
    if (ec != std::errc() || ptr != cell.data() + cell.size())
        TL_FATAL("CSV line ", line, ": bad number '", std::string(cell),
                 "'");
    return value;
}

void
writeStack(const SymbolTable &symbols, CallstackId stack,
           std::ostream &out)
{
    if (stack == kNoCallstack)
        return;
    const auto frames = symbols.stackFrames(stack);
    for (std::size_t i = 0; i < frames.size(); ++i) {
        if (i)
            out << ';';
        out << symbols.frameName(frames[i]);
    }
}

CallstackId
parseStack(SymbolTable &symbols, std::string_view cell)
{
    if (cell.empty())
        return kNoCallstack;
    std::vector<FrameId> frames;
    std::size_t start = 0;
    while (true) {
        const std::size_t semi = cell.find(';', start);
        const std::string_view frame =
            semi == std::string_view::npos
                ? cell.substr(start)
                : cell.substr(start, semi - start);
        if (!frame.empty())
            frames.push_back(symbols.internFrame(frame));
        if (semi == std::string_view::npos)
            break;
        start = semi + 1;
    }
    return symbols.internStack(frames);
}

} // namespace

void
writeEventsCsv(const TraceCorpus &corpus, std::ostream &out)
{
    out << "stream,type,timestamp,cost,tid,wtid,stack\n";
    for (std::uint32_t s = 0; s < corpus.streamCount(); ++s) {
        for (const Event &e : corpus.stream(s).events()) {
            out << s << ',' << typeToken(e.type) << ',' << e.timestamp
                << ',' << e.cost << ',' << e.tid << ',';
            if (e.type == EventType::Unwait)
                out << e.wtid;
            out << ',';
            writeStack(corpus.symbols(), e.stack, out);
            out << '\n';
        }
    }
}

void
writeInstancesCsv(const TraceCorpus &corpus, std::ostream &out)
{
    out << "stream,scenario,tid,t0,t1\n";
    for (const ScenarioInstance &inst : corpus.instances()) {
        out << inst.stream << ','
            << corpus.scenarioName(inst.scenario) << ',' << inst.tid
            << ',' << inst.t0 << ',' << inst.t1 << '\n';
    }
}

TraceCorpus
readCorpusCsv(std::istream &events, std::istream &instances)
{
    TraceCorpus corpus;

    std::string row;
    std::size_t line = 0;

    // Events.
    std::getline(events, row); // header
    ++line;
    std::int64_t current_stream = -1;
    while (std::getline(events, row)) {
        ++line;
        if (row.empty())
            continue;
        const auto cells = splitCsvRow(row);
        if (cells.size() != 7)
            TL_FATAL("CSV line ", line, ": expected 7 columns, got ",
                     cells.size());
        const auto stream_id =
            parseNumber<std::uint32_t>(cells[0], line);
        if (static_cast<std::int64_t>(stream_id) != current_stream) {
            if (static_cast<std::int64_t>(stream_id) !=
                current_stream + 1) {
                TL_FATAL("CSV line ", line,
                         ": streams must be grouped in order");
            }
            const std::uint32_t created = corpus.addStream(
                "csv-stream-" + std::to_string(stream_id));
            TL_ASSERT(created == stream_id, "stream id mismatch");
            current_stream = stream_id;
        }

        Event e;
        e.type = tokenToType(cells[1], line);
        e.timestamp = parseNumber<TimeNs>(cells[2], line);
        e.cost = parseNumber<DurationNs>(cells[3], line);
        e.tid = parseNumber<ThreadId>(cells[4], line);
        e.wtid = cells[5].empty()
                     ? kNoThread
                     : parseNumber<ThreadId>(cells[5], line);
        e.stack = parseStack(corpus.symbols(), cells[6]);
        corpus.stream(stream_id).append(e);
    }

    // Instances.
    line = 0;
    std::getline(instances, row); // header
    ++line;
    while (std::getline(instances, row)) {
        ++line;
        if (row.empty())
            continue;
        const auto cells = splitCsvRow(row);
        if (cells.size() != 5)
            TL_FATAL("instances CSV line ", line,
                     ": expected 5 columns, got ", cells.size());
        ScenarioInstance inst;
        inst.stream = parseNumber<std::uint32_t>(cells[0], line);
        if (inst.stream >= corpus.streamCount())
            TL_FATAL("instances CSV line ", line,
                     ": unknown stream ", inst.stream);
        inst.scenario = corpus.internScenario(cells[1]);
        inst.tid = parseNumber<ThreadId>(cells[2], line);
        inst.t0 = parseNumber<TimeNs>(cells[3], line);
        inst.t1 = parseNumber<TimeNs>(cells[4], line);
        corpus.addInstance(inst);
    }

    return corpus;
}

void
writeCorpusCsvFiles(const TraceCorpus &corpus,
                    const std::string &events_path,
                    const std::string &instances_path)
{
    std::ofstream events(events_path);
    if (!events)
        TL_FATAL("cannot open '", events_path, "' for writing");
    writeEventsCsv(corpus, events);

    std::ofstream instances(instances_path);
    if (!instances)
        TL_FATAL("cannot open '", instances_path, "' for writing");
    writeInstancesCsv(corpus, instances);
}

TraceCorpus
readCorpusCsvFiles(const std::string &events_path,
                   const std::string &instances_path)
{
    std::ifstream events(events_path);
    if (!events)
        TL_FATAL("cannot open '", events_path, "'");
    std::ifstream instances(instances_path);
    if (!instances)
        TL_FATAL("cannot open '", instances_path, "'");
    return readCorpusCsv(events, instances);
}

} // namespace tracelens
