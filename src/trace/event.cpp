/**
 * @file
 * Event-type names and event formatting helpers.
 */

#include "src/trace/event.h"

#include "src/util/logging.h"

namespace tracelens
{

std::string_view
eventTypeName(EventType type)
{
    switch (type) {
      case EventType::Running:
        return "Running";
      case EventType::Wait:
        return "Wait";
      case EventType::Unwait:
        return "Unwait";
      case EventType::HardwareService:
        return "HardwareService";
    }
    TL_PANIC("bad event type ", static_cast<int>(type));
}

} // namespace tracelens
