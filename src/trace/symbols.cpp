/**
 * @file
 * Symbol table implementation: frame/stack interning, component
 * extraction, and the per-filter match cache primed by the Analyzer.
 */

#include "src/trace/symbols.h"

#include <algorithm>

#include "src/util/logging.h"

namespace tracelens
{

SymbolTable::SymbolTable(const SymbolTable &other)
    : names_(other.names_), components_(other.components_),
      frames_(other.frames_), framePool_(other.framePool_),
      stacks_(other.stacks_), stackIndex_(other.stackIndex_),
      filterCache_(other.filterCache_)
{
    frameIndex_.reserve(frames_.size());
    for (std::size_t f = 0; f < frames_.size(); ++f)
        frameIndex_.emplace(
            std::string_view(names_.lookup(frames_[f].name)),
            static_cast<FrameId>(f));
}

SymbolTable &
SymbolTable::operator=(const SymbolTable &other)
{
    if (this != &other) {
        SymbolTable copy(other);
        *this = std::move(copy);
    }
    return *this;
}

FrameId
SymbolTable::internFrame(std::string_view signature)
{
    auto it = frameIndex_.find(signature);
    if (it != frameIndex_.end())
        return it->second;

    const std::uint32_t name_id = names_.intern(signature);
    const auto bang = signature.find('!');
    const std::string_view component =
        bang == std::string_view::npos ? signature
                                       : signature.substr(0, bang);
    const std::uint32_t comp_id = components_.intern(component);

    const auto frame = static_cast<FrameId>(frames_.size());
    frames_.push_back({name_id, comp_id});
    frameIndex_.emplace(std::string_view(names_.lookup(name_id)), frame);
    return frame;
}

const std::string &
SymbolTable::frameName(FrameId frame) const
{
    TL_ASSERT(frame < frames_.size(), "bad frame id ", frame);
    return names_.lookup(frames_[frame].name);
}

const std::string &
SymbolTable::componentName(FrameId frame) const
{
    TL_ASSERT(frame < frames_.size(), "bad frame id ", frame);
    return components_.lookup(frames_[frame].component);
}

std::uint32_t
SymbolTable::componentId(FrameId frame) const
{
    TL_ASSERT(frame < frames_.size(), "bad frame id ", frame);
    return frames_[frame].component;
}

std::uint64_t
SymbolTable::hashFrames(std::span<const FrameId> frames)
{
    // FNV-1a over the frame ids.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (FrameId f : frames) {
        h ^= f;
        h *= 0x100000001b3ULL;
    }
    return h;
}

CallstackId
SymbolTable::internStack(std::span<const FrameId> frames)
{
    const std::uint64_t h = hashFrames(frames);
    auto &bucket = stackIndex_[h];
    for (CallstackId candidate : bucket) {
        auto existing = stackFrames(candidate);
        if (std::ranges::equal(existing, frames))
            return candidate;
    }

    const auto offset = static_cast<std::uint32_t>(framePool_.size());
    framePool_.insert(framePool_.end(), frames.begin(), frames.end());
    const auto id = static_cast<CallstackId>(stacks_.size());
    stacks_.emplace_back(offset, static_cast<std::uint32_t>(frames.size()));
    bucket.push_back(id);
    return id;
}

std::span<const FrameId>
SymbolTable::stackFrames(CallstackId stack) const
{
    TL_ASSERT(stack < stacks_.size(), "bad stack id ", stack);
    const auto [offset, length] = stacks_[stack];
    return {framePool_.data() + offset, length};
}

const std::vector<char> &
SymbolTable::filterMatches(const NameFilter &filter) const
{
    std::string key;
    for (const auto &p : filter.patterns()) {
        key += p;
        key += '\x1f';
    }
    auto &matches = filterCache_[key];
    // Extend lazily: frames interned after a previous call get appended.
    for (std::size_t f = matches.size(); f < frames_.size(); ++f) {
        matches.push_back(
            filter.matches(componentName(static_cast<FrameId>(f))) ? 1
                                                                    : 0);
    }
    return matches;
}

void
SymbolTable::primeFilter(const NameFilter &filter) const
{
    filterMatches(filter);
}

FrameId
SymbolTable::topMatchingFrame(CallstackId stack,
                              const NameFilter &filter) const
{
    const auto &matches = filterMatches(filter);
    const auto frames = stackFrames(stack);
    for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
        if (matches[*it])
            return *it;
    }
    return kNoFrame;
}

bool
SymbolTable::stackTouches(CallstackId stack, const NameFilter &filter) const
{
    return topMatchingFrame(stack, filter) != kNoFrame;
}

std::string
SymbolTable::renderStack(CallstackId stack) const
{
    std::string out;
    const auto frames = stackFrames(stack);
    for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
        out += frameName(*it);
        out += "\n";
    }
    return out;
}

} // namespace tracelens
