/**
 * @file
 * Structural corpus validation: unmatched waits/unwaits, unsorted
 * timestamps, out-of-range instances.
 */

#include "src/trace/validate.h"

#include <sstream>
#include <unordered_map>

#include "src/trace/source.h"

namespace tracelens
{

bool
ValidationReport::clean() const
{
    return unpairedWaits == 0 && strayUnwaits == 0 &&
           stacklessEvents == 0 && overrunInstances == 0 &&
           selfUnwaits == 0 && skippedShards == 0 &&
           loadErrors.empty();
}

std::string
ValidationReport::render() const
{
    std::ostringstream oss;
    oss << "streams=" << streams << " events=" << events
        << " instances=" << instances
        << " unpairedWaits=" << unpairedWaits
        << " strayUnwaits=" << strayUnwaits
        << " stacklessEvents=" << stacklessEvents
        << " overrunInstances=" << overrunInstances
        << " selfUnwaits=" << selfUnwaits;
    if (skippedShards > 0)
        oss << " skippedShards=" << skippedShards;
    for (const std::string &error : loadErrors)
        oss << "\nload error: " << error;
    return oss.str();
}

ValidationReport
validateCorpus(const TraceCorpus &corpus)
{
    ValidationReport report;
    report.streams = corpus.streamCount();
    report.instances = corpus.instances().size();

    for (std::uint32_t s = 0; s < corpus.streamCount(); ++s) {
        const TraceStream &stream = corpus.stream(s);
        report.events += stream.size();

        // Per-thread count of outstanding waits, scanned in time order.
        std::unordered_map<ThreadId, std::size_t> waiting;
        for (const Event &e : stream.events()) {
            if (e.stack == kNoCallstack)
                ++report.stacklessEvents;
            switch (e.type) {
              case EventType::Wait:
                ++waiting[e.tid];
                break;
              case EventType::Unwait:
                if (e.wtid == e.tid) {
                    ++report.selfUnwaits;
                } else if (auto it = waiting.find(e.wtid);
                           it != waiting.end() && it->second > 0) {
                    --it->second;
                } else {
                    ++report.strayUnwaits;
                }
                break;
              default:
                break;
            }
        }
        for (const auto &[tid, count] : waiting)
            report.unpairedWaits += count;
    }

    for (const ScenarioInstance &inst : corpus.instances()) {
        const TraceStream &stream = corpus.stream(inst.stream);
        if (inst.t1 > stream.endTime())
            ++report.overrunInstances;
    }

    return report;
}

ValidationReport
validateSource(TraceSource &source)
{
    ValidationReport total;
    for (std::size_t i = 0; i < source.shardCount(); ++i) {
        Expected<CorpusPtr> shard = source.shard(i);
        if (!shard) {
            total.skippedShards++;
            total.loadErrors.push_back(shard.error().render());
            continue;
        }
        // Streams and instances never cross shard boundaries, so
        // validating shard by shard counts exactly what validating
        // the merged corpus would.
        const ValidationReport part = validateCorpus(*shard.value());
        total.streams += part.streams;
        total.events += part.events;
        total.instances += part.instances;
        total.unpairedWaits += part.unpairedWaits;
        total.strayUnwaits += part.strayUnwaits;
        total.stacklessEvents += part.stacklessEvents;
        total.overrunInstances += part.overrunInstances;
        total.selfUnwaits += part.selfUnwaits;
    }
    return total;
}

} // namespace tracelens
