/**
 * @file
 * Convenience builder for constructing trace streams by hand.
 *
 * Tests and examples assemble small streams with known shapes; the
 * builder takes events in any order, interns stacks from string frame
 * lists, and emits a time-sorted stream into the corpus on finish().
 */

#ifndef TRACELENS_TRACE_BUILDER_H
#define TRACELENS_TRACE_BUILDER_H

#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "src/trace/stream.h"

namespace tracelens
{

/** Assembles one TraceStream inside a corpus. */
class StreamBuilder
{
  public:
    /** Begin building a new stream in @p corpus. */
    StreamBuilder(TraceCorpus &corpus, std::string name = {});

    /** Intern a callstack given frames bottom-to-top. */
    CallstackId stack(std::initializer_list<std::string_view> frames);

    /** Intern a callstack from a vector of frames, bottom-to-top. */
    CallstackId stack(const std::vector<std::string> &frames);

    /** Add a Running sample covering [t, t + cost). */
    void running(ThreadId tid, TimeNs t, DurationNs cost,
                 CallstackId stack_id);

    /** Add a Wait event at @p t; duration restored at analysis time. */
    void wait(ThreadId tid, TimeNs t, CallstackId stack_id);

    /**
     * Add a Wait event with an explicit recorded cost (tracers normally
     * record 0; tests of the restoration logic use both forms).
     */
    void waitWithCost(ThreadId tid, TimeNs t, DurationNs cost,
                      CallstackId stack_id);

    /** Add an Unwait: @p tid signals @p wtid at @p t. */
    void unwait(ThreadId tid, TimeNs t, ThreadId wtid,
                CallstackId stack_id);

    /** Add a HardwareService interval [t, t + cost) on @p tid. */
    void hardware(ThreadId tid, TimeNs t, DurationNs cost,
                  CallstackId stack_id);

    /** Register a scenario instance over this stream. */
    void instance(std::string_view scenario, ThreadId tid, TimeNs t0,
                  TimeNs t1);

    /**
     * Sort buffered events by timestamp (stable) and append them to the
     * stream. Returns the stream index. The builder must not be used
     * afterwards.
     */
    std::uint32_t finish();

  private:
    TraceCorpus &corpus_;
    std::uint32_t streamIndex_;
    std::vector<Event> pending_;
    std::vector<ScenarioInstance> pendingInstances_;
    bool finished_ = false;
};

} // namespace tracelens

#endif // TRACELENS_TRACE_BUILDER_H
