/**
 * @file
 * Zero-copy mmap-backed reader for TLC1 corpus files.
 *
 * The eager path (readCorpusFile) pays for the whole file up front:
 * one full read into a heap buffer, then a full decode that interns
 * every frame and materializes every event. At fleet scale that makes
 * ingestion the wall. MmapReader instead maps the file and performs a
 * cheap bounds-checked *skip-scan* that only records section offsets
 * and counts — frame names, callstacks, and event payloads stay
 * untouched (and mostly unpaged) until something actually needs them:
 *
 *  - open()            maps + indexes; validates the structural
 *                      skeleton and the fixed-size instance records.
 *  - instances()       decodes only the 28-byte instance records —
 *                      enough for counting, classification windows,
 *                      and threshold work.
 *  - scenarioNames()   decodes only the scenario string section.
 *  - eventRecords()    zero-copy std::span view of one stream's
 *                      packed event records inside the mapping.
 *  - materialize()     full decode into a TraceCorpus via the shared
 *                      bounds-checked parser; this is the lazy
 *                      symbol-table materialization point.
 *
 * All record access uses memcpy-based decoding: TLC1 sections follow
 * variable-length strings, so nothing in the file is alignment-
 * guaranteed and a reinterpret_cast view would be UB (see
 * docs/TRACE_FORMAT.md, "mmap and alignment").
 */

#ifndef TRACELENS_TRACE_MMAPREADER_H
#define TRACELENS_TRACE_MMAPREADER_H

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/trace/stream.h"
#include "src/util/expected.h"

namespace tracelens
{

/** RAII read-only memory mapping of one file. */
class MappedFile
{
  public:
    MappedFile() = default;
    ~MappedFile();
    MappedFile(MappedFile &&other) noexcept;
    MappedFile &operator=(MappedFile &&other) noexcept;
    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    /** Map @p path read-only (empty files map to an empty span). */
    static Expected<MappedFile> open(const std::string &path);

    std::span<const std::byte> bytes() const
    {
        return {static_cast<const std::byte *>(addr_), size_};
    }
    const std::string &path() const { return path_; }

  private:
    void *addr_ = nullptr;
    std::size_t size_ = 0;
    std::string path_;
};

/** Section offsets/counts recorded by the skip-scan. */
struct TlcShardIndex
{
    std::uint32_t version = 0;
    std::uint32_t frameCount = 0;
    std::uint32_t stackCount = 0;
    std::uint32_t scenarioCount = 0;
    std::uint32_t streamCount = 0;
    std::uint32_t instanceCount = 0;
    /** Events summed over all streams. */
    std::uint64_t eventCount = 0;
    /** Byte offset of the scenario-name section (at its count). */
    std::uint64_t scenariosOffset = 0;
    /** Byte offset of the first packed instance record. */
    std::uint64_t instancesOffset = 0;
};

/** Per-stream extents inside the mapping. */
struct TlcStreamExtent
{
    /** Offset of the stream's name length prefix. */
    std::uint64_t nameOffset = 0;
    /** Offset of the event payload (records or compressed block). */
    std::uint64_t eventsOffset = 0;
    std::uint32_t eventCount = 0;
    /** tlc::kEventEncodingRaw or kEventEncodingDelta (v3 files). */
    std::uint32_t encoding = 0;
    /** Payload size in bytes (count*32 for raw, block size for delta). */
    std::uint64_t encodedBytes = 0;
};

/** Lazy zero-copy view of one TLC1 file. */
class MmapReader
{
  public:
    /**
     * Map and index @p path. Fails (without dying) on unopenable
     * files, bad magic/version, and any structural truncation or
     * hostile count; also fully validates the instance records so
     * instances() cannot fail afterwards. Event payload bytes are
     * validated later, by materialize().
     */
    static Expected<MmapReader> open(const std::string &path);

    const std::string &path() const { return map_.path(); }
    std::size_t fileBytes() const { return map_.bytes().size(); }
    const TlcShardIndex &index() const { return index_; }

    /** Decode the fixed-size instance records (validated at open). */
    std::vector<ScenarioInstance> instances() const;

    /** Decode only the scenario-name section (validated at open). */
    std::vector<std::string> scenarioNames() const;

    /**
     * Zero-copy view of one stream's packed event records
     * (index().eventCount records of 32 bytes, unaligned). Decode
     * individual events with decodeEvent(). Only valid for streams
     * with the raw encoding (every v2 file): compressed blocks have
     * no record view — use decodeStreamColumns() instead.
     */
    std::span<const std::byte> eventRecords(std::uint32_t stream) const;

    /** Decode record @p i of an eventRecords() span. */
    static Event decodeEvent(std::span<const std::byte> records,
                             std::uint32_t i);

    /**
     * Bulk-decode one stream's packed records into columnar storage
     * (the per-stream lazy door onto EventColumns): strided per-field
     * sweeps plus full event validation against this file's stack
     * table, failing with a located SourceError exactly like the full
     * parser would.
     */
    Expected<EventColumns> decodeStreamColumns(std::uint32_t stream) const;

    /** Full decode into an owning corpus (lazy path's slow door). */
    Expected<TraceCorpus> materialize() const;

  private:
    MappedFile map_;
    TlcShardIndex index_;
    std::vector<TlcStreamExtent> streams_;
};

} // namespace tracelens

#endif // TRACELENS_TRACE_MMAPREADER_H
