/**
 * @file
 * Corpus merging: combine per-machine (or per-site) trace corpora into
 * one analysis corpus, re-interning symbols and remapping stream
 * indices. This is how a fleet the size of the paper's (19,500
 * streams collected machine by machine) is assembled from individual
 * trace files.
 */

#ifndef TRACELENS_TRACE_MERGE_H
#define TRACELENS_TRACE_MERGE_H

#include <span>

#include "src/trace/stream.h"

namespace tracelens
{

/**
 * Merge @p parts into one corpus. Streams keep their order (all of
 * part 0's streams, then part 1's, ...); scenario instances are
 * remapped to the new stream indices; frames, stacks, and scenario
 * names are re-interned into the merged symbol table.
 */
TraceCorpus mergeCorpora(std::span<const TraceCorpus> parts);

/** Append all of @p part into @p target (same remapping rules). */
void appendCorpus(TraceCorpus &target, const TraceCorpus &part);

/**
 * Append only streams [first, first + count) of @p part into
 * @p target, carrying the scenario instances those streams own.
 * Symbols are re-interned, so the slice corpus is self-contained.
 */
void appendCorpusStreams(TraceCorpus &target, const TraceCorpus &part,
                         std::uint32_t first, std::uint32_t count);

/**
 * The inverse of mergeCorpora for sharded storage: partition
 * @p corpus into @p parts corpora of contiguous stream blocks (block
 * k holds streams [k*ceil(n/parts), ...)), each with its own
 * re-interned symbol table. Merging the parts back in order yields a
 * corpus with the original stream order; instances follow the stream
 * that owns them. Parts may be empty when parts > streamCount().
 */
std::vector<TraceCorpus> splitCorpus(const TraceCorpus &corpus,
                                     std::size_t parts);

} // namespace tracelens

#endif // TRACELENS_TRACE_MERGE_H
