/**
 * @file
 * Corpus merging: combine per-machine (or per-site) trace corpora into
 * one analysis corpus, re-interning symbols and remapping stream
 * indices. This is how a fleet the size of the paper's (19,500
 * streams collected machine by machine) is assembled from individual
 * trace files.
 */

#ifndef TRACELENS_TRACE_MERGE_H
#define TRACELENS_TRACE_MERGE_H

#include <span>

#include "src/trace/stream.h"

namespace tracelens
{

/**
 * Merge @p parts into one corpus. Streams keep their order (all of
 * part 0's streams, then part 1's, ...); scenario instances are
 * remapped to the new stream indices; frames, stacks, and scenario
 * names are re-interned into the merged symbol table.
 */
TraceCorpus mergeCorpora(std::span<const TraceCorpus> parts);

/** Append all of @p part into @p target (same remapping rules). */
void appendCorpus(TraceCorpus &target, const TraceCorpus &part);

} // namespace tracelens

#endif // TRACELENS_TRACE_MERGE_H
