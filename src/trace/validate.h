/**
 * @file
 * Structural validation of trace corpora.
 *
 * Real-world traces are noisy: truncated waits, unwaits with no matching
 * waiter, instances that overrun the stream. The validator quantifies
 * such defects so analyses (and tests) can assert corpus health.
 */

#ifndef TRACELENS_TRACE_VALIDATE_H
#define TRACELENS_TRACE_VALIDATE_H

#include <cstddef>
#include <string>
#include <vector>

#include "src/trace/stream.h"

namespace tracelens
{

class TraceSource;

/** Counters produced by validateCorpus(). */
struct ValidationReport
{
    std::size_t streams = 0;
    std::size_t events = 0;
    std::size_t instances = 0;

    /** Wait events with no later unwait targeting the same thread. */
    std::size_t unpairedWaits = 0;
    /** Unwait events whose target thread was not waiting at the time. */
    std::size_t strayUnwaits = 0;
    /** Events with a missing callstack. */
    std::size_t stacklessEvents = 0;
    /** Instances whose window exceeds the stream's recorded span. */
    std::size_t overrunInstances = 0;
    /** Unwait events that target the emitting thread itself. */
    std::size_t selfUnwaits = 0;

    /** Shard files that could not be ingested at all. */
    std::size_t skippedShards = 0;
    /** Rendered SourceError per skipped shard (file, offset, reason),
     *  so load failures surface in the same report as structural
     *  defects instead of via ad-hoc exception text. */
    std::vector<std::string> loadErrors;

    /** True when no defects were found. */
    bool clean() const;

    /** One-line-per-counter rendering (plus any load errors). */
    std::string render() const;
};

/** Validate every stream and instance of @p corpus. */
ValidationReport validateCorpus(const TraceCorpus &corpus);

/**
 * Validate a whole source shard by shard. Streams each shard through
 * TraceSource::shard() — on the mmap path memory stays bounded by the
 * source's cache budget instead of the corpus size — and folds
 * corrupt-shard errors into the report's loadErrors.
 */
ValidationReport validateSource(TraceSource &source);

} // namespace tracelens

#endif // TRACELENS_TRACE_VALIDATE_H
