/**
 * @file
 * Symbol table: function-signature frames and interned callstacks.
 *
 * Frames follow the Windows convention "module!Function", e.g.
 * "fv.sys!QueryFileTable". The *component* of a frame is the module part
 * before '!' ("fv.sys"); frames with no '!' (such as the hardware-service
 * dummy signatures "DiskService") are their own component. Callstacks are
 * stored bottom-to-top: index 0 is the outermost caller and back() is the
 * topmost (innermost) frame.
 */

#ifndef TRACELENS_TRACE_SYMBOLS_H
#define TRACELENS_TRACE_SYMBOLS_H

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/util/interner.h"
#include "src/util/types.h"
#include "src/util/wildcard.h"

namespace tracelens
{

/**
 * Per-corpus table interning frames and callstacks.
 *
 * The analyses work on ids only; names are resolved back for reporting.
 */
class SymbolTable
{
  public:
    SymbolTable() = default;

    // frameIndex_ keys are string_views into names_'s storage; a
    // memberwise copy would leave them viewing the source table.
    // The copy rebuilds the index from its own interner, and moves
    // are noexcept so containers of corpora relocate by move.
    SymbolTable(const SymbolTable &other);
    SymbolTable &operator=(const SymbolTable &other);
    SymbolTable(SymbolTable &&) noexcept = default;
    SymbolTable &operator=(SymbolTable &&) noexcept = default;

    /** Intern a frame like "fs.sys!AcquireMDU"; idempotent. */
    FrameId internFrame(std::string_view signature);

    /** Full "module!Function" name of a frame. */
    const std::string &frameName(FrameId frame) const;

    /** Component (module) name of a frame, e.g. "fs.sys". */
    const std::string &componentName(FrameId frame) const;

    /** Interned id of a frame's component, for cheap comparisons. */
    std::uint32_t componentId(FrameId frame) const;

    /**
     * Intern a callstack given bottom-to-top frames; identical stacks
     * share one id.
     */
    CallstackId internStack(std::span<const FrameId> frames);

    /** Frames of a stack, bottom-to-top. */
    std::span<const FrameId> stackFrames(CallstackId stack) const;

    /**
     * The *signature* of a callstack with respect to a component filter:
     * the topmost frame whose component matches (paper, Definition 2's
     * preamble). Returns kNoFrame when no frame matches.
     */
    FrameId topMatchingFrame(CallstackId stack,
                             const NameFilter &filter) const;

    /** True iff any frame on @p stack belongs to a matching component. */
    bool stackTouches(CallstackId stack, const NameFilter &filter) const;

    /** Precompute filter matches for all known frames (idempotent). */
    void primeFilter(const NameFilter &filter) const;

    std::size_t frameCount() const { return frames_.size(); }
    std::size_t stackCount() const { return stacks_.size(); }

    /** Render a stack for debugging, topmost frame first. */
    std::string renderStack(CallstackId stack) const;

  private:
    struct FrameInfo
    {
        std::uint32_t name;      // index into names_
        std::uint32_t component; // index into components_
    };

    struct StackKey
    {
        std::span<const FrameId> frames;
    };

    StringInterner names_;
    StringInterner components_;
    std::vector<FrameInfo> frames_;
    std::unordered_map<std::string_view, FrameId> frameIndex_;

    // Stacks are stored as slices of one pooled frame vector to keep
    // allocation count low.
    std::vector<FrameId> framePool_;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> stacks_;
    std::unordered_map<std::uint64_t, std::vector<CallstackId>>
        stackIndex_;

    // Cache of per-filter frame matches, keyed by the filter's rendered
    // pattern list. Mutable: priming is a pure optimization.
    mutable std::unordered_map<std::string, std::vector<char>>
        filterCache_;

    const std::vector<char> &
    filterMatches(const NameFilter &filter) const;

    static std::uint64_t hashFrames(std::span<const FrameId> frames);
};

} // namespace tracelens

#endif // TRACELENS_TRACE_SYMBOLS_H
