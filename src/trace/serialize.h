/**
 * @file
 * Binary serialization of trace corpora.
 *
 * The on-disk format plays the role ETW's .etl files play for the paper:
 * corpora can be generated once, persisted, and re-analyzed. The format
 * is a simple little-endian stream:
 *
 *   magic "TLC1", version u32,
 *   frames   (count, then length-prefixed signature strings in id order),
 *   stacks   (count, then length-prefixed FrameId arrays in id order),
 *   scenarios(count, then length-prefixed names in id order),
 *   streams  (count, then per stream: name, event count, packed events),
 *   instances(count, then packed ScenarioInstance records).
 *
 * Ids are assigned first-seen densely, so writing in id order and
 * re-interning in read order reproduces identical ids; round-trips are
 * bit-exact (validated by tests).
 */

#ifndef TRACELENS_TRACE_SERIALIZE_H
#define TRACELENS_TRACE_SERIALIZE_H

#include <iosfwd>
#include <string>

#include "src/trace/stream.h"

namespace tracelens
{

/** Serialize @p corpus to a binary ostream. */
void writeCorpus(const TraceCorpus &corpus, std::ostream &out);

/** Serialize @p corpus to the file at @p path (fatal on I/O failure). */
void writeCorpusFile(const TraceCorpus &corpus, const std::string &path);

/**
 * Deserialize a corpus from a binary istream.
 * Fatal on malformed input (bad magic, truncated data, invalid ids).
 */
TraceCorpus readCorpus(std::istream &in);

/** Deserialize a corpus from a file (fatal on I/O failure). */
TraceCorpus readCorpusFile(const std::string &path);

/**
 * Render a human-readable dump of one stream (timestamp-ordered event
 * lines with resolved stacks), for debugging and the examples.
 */
std::string dumpStream(const TraceCorpus &corpus, std::uint32_t stream,
                       std::size_t max_events = 200);

} // namespace tracelens

#endif // TRACELENS_TRACE_SERIALIZE_H
