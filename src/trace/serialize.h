/**
 * @file
 * Binary serialization of trace corpora.
 *
 * The on-disk format plays the role ETW's .etl files play for the paper:
 * corpora can be generated once, persisted, and re-analyzed. The format
 * is a simple little-endian stream:
 *
 *   magic "TLC1", version u32,
 *   frames   (count, then length-prefixed signature strings in id order),
 *   stacks   (count, then length-prefixed FrameId arrays in id order),
 *   scenarios(count, then length-prefixed names in id order),
 *   streams  (count, then per stream: name, event count, packed events),
 *   instances(count, then packed ScenarioInstance records).
 *
 * Ids are assigned first-seen densely, so writing in id order and
 * re-interning in read order reproduces identical ids; round-trips are
 * bit-exact (validated by tests).
 *
 * Decoding is built on one bounds-checked buffer parser, parseCorpus():
 * every count, length, and id on disk is validated against the actual
 * buffer size before use, so truncated or hostile files produce a
 * SourceError (file, byte offset, reason) instead of reading past the
 * end. The legacy readCorpus() / readCorpusFile() entry points keep their
 * fatal-on-bad-input contract by rendering that error into TL_FATAL;
 * the streaming ingestion layer (src/trace/source.h) uses the checked
 * variants and skips bad shards instead.
 */

#ifndef TRACELENS_TRACE_SERIALIZE_H
#define TRACELENS_TRACE_SERIALIZE_H

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "src/trace/stream.h"
#include "src/util/expected.h"
#include "src/util/hash.h"

namespace tracelens
{

/**
 * Writer knobs for the TLC1 container. With @c compressEvents unset
 * the output is the canonical version-2 image, byte-identical to what
 * every prior release wrote (digestCorpus depends on that). With it
 * set, the file is written as version 3 and each stream's event block is
 * delta-of-timestamp + zigzag-varint encoded (see
 * docs/TRACE_FORMAT.md §"Compressed event blocks"), typically 3-5x
 * smaller on generated corpora. Readers accept both versions
 * transparently.
 */
struct CorpusWriteOptions {
    bool compressEvents = false;
};

/** Serialize @p corpus to a binary ostream. */
void writeCorpus(const TraceCorpus &corpus, std::ostream &out);

/** Serialize @p corpus with explicit writer options. */
void writeCorpus(const TraceCorpus &corpus, std::ostream &out,
                 const CorpusWriteOptions &options);

/**
 * Content digest of @p corpus: the streaming hash of its canonical
 * TLC1 serialization (no buffer is materialized). Two corpora digest
 * equal iff their serialized bytes are equal, so the digest identifies
 * a shard's logical content independently of how it reached memory
 * (eager read, mmap materialization, in-memory generation). This is
 * the shard-level input key of the artifact-cached analysis pipeline
 * (src/core/artifacts.h).
 */
Digest digestCorpus(const TraceCorpus &corpus);

/** Serialize @p corpus to the file at @p path (fatal on I/O failure). */
void writeCorpusFile(const TraceCorpus &corpus, const std::string &path,
                     const CorpusWriteOptions &options = {});

/**
 * Split @p corpus into @p shards parts (see splitCorpus) and write
 * them as "shard-NNNN.tlc" files under @p dir (created if missing).
 * Returns the written paths in shard order. Fatal on I/O failure.
 */
std::vector<std::string> writeShardedCorpusDir(const TraceCorpus &corpus,
                                               const std::string &dir,
                                               std::size_t shards,
                                               const CorpusWriteOptions
                                                   &options = {});

/**
 * Decode one delta-varint event block (TLC1 v3, encoding tag 1) into
 * columns. @p block is exactly the encoded payload; @p block_offset is
 * its position in the containing file, used (with @p file) to locate
 * errors. Validation is identical to the raw path: the decoded fields
 * are re-packed into canonical 32-byte records and run through the
 * same bulk columnar decode, so hostile compressed input fails with a
 * SourceError instead of producing events the raw path would reject.
 */
Expected<EventColumns> decodeDeltaEventBlock(
    std::span<const std::byte> block, std::uint32_t event_count,
    std::uint32_t stack_count, const std::string &file,
    std::uint64_t block_offset);

/**
 * Decode a corpus from an in-memory TLC1 image with full bounds
 * checking; @p file names the origin in any SourceError. The returned
 * corpus owns all its data — @p bytes may be released afterwards —
 * but decoding itself is zero-copy: strings are interned straight from
 * views into the buffer and packed records are decoded in place, which
 * is what makes the mmap path fast.
 */
Expected<TraceCorpus> parseCorpus(std::span<const std::byte> bytes,
                                  const std::string &file = "<memory>");

/**
 * Read and decode a corpus file, reporting failures (including open /
 * read errors) as a SourceError instead of exiting.
 */
Expected<TraceCorpus> readCorpusFileChecked(const std::string &path);

/**
 * Deserialize a corpus from a binary istream.
 * Fatal on malformed input (bad magic, truncated data, invalid ids).
 */
TraceCorpus readCorpus(std::istream &in);

/** Deserialize a corpus from a file (fatal on I/O failure). */
TraceCorpus readCorpusFile(const std::string &path);

/**
 * Render a human-readable dump of one stream (timestamp-ordered event
 * lines with resolved stacks), for debugging and the examples.
 */
std::string dumpStream(const TraceCorpus &corpus, std::uint32_t stream,
                       std::size_t max_events = 200);

/** On-disk corpus (TLC1) format revision (`tracelens version`). */
std::uint32_t traceFormatVersion();

} // namespace tracelens

#endif // TRACELENS_TRACE_SERIALIZE_H
