/**
 * @file
 * TraceStream / TraceCorpus containers: columnar event storage,
 * instance registration, and scenario lookup.
 */

#include "src/trace/stream.h"

#include <algorithm>
#include <limits>

#include "src/util/logging.h"

namespace tracelens
{

void
TraceStream::append(const Event &event)
{
    if (!events_.empty()) {
        TL_ASSERT(event.timestamp >= events_.timestamps().back(),
                  "events must be appended in time order");
    }
    events_.append(event);
    endTime_ = std::max(endTime_, event.end());
}

void
TraceStream::adopt(EventColumns columns)
{
    events_ = std::move(columns);
    endTime_ = events_.maxEnd();
}

Event
TraceStream::event(std::uint32_t index) const
{
    TL_ASSERT(index < events_.size(), "bad event index ", index);
    return events_[index];
}

std::string
TraceStream::tag(const std::string &key, std::string fallback) const
{
    auto it = tags.find(key);
    return it == tags.end() ? std::move(fallback) : it->second;
}

std::uint32_t
TraceCorpus::addStream(std::string name)
{
    const auto index = static_cast<std::uint32_t>(streams_.size());
    streams_.emplace_back();
    streams_.back().name = std::move(name);
    return index;
}

TraceStream &
TraceCorpus::stream(std::uint32_t index)
{
    TL_ASSERT(index < streams_.size(), "bad stream index ", index);
    return streams_[index];
}

const TraceStream &
TraceCorpus::stream(std::uint32_t index) const
{
    TL_ASSERT(index < streams_.size(), "bad stream index ", index);
    return streams_[index];
}

std::uint32_t
TraceCorpus::internScenario(std::string_view name)
{
    return scenarios_.intern(name);
}

const std::string &
TraceCorpus::scenarioName(std::uint32_t id) const
{
    return scenarios_.lookup(id);
}

std::uint32_t
TraceCorpus::findScenario(std::string_view name) const
{
    return scenarios_.find(name);
}

void
TraceCorpus::addInstance(const ScenarioInstance &instance)
{
    TL_ASSERT(instance.stream < streams_.size(),
              "instance references unknown stream");
    TL_ASSERT(instance.t1 >= instance.t0, "instance window inverted");
    instances_.push_back(instance);
    instance_durations_.push_back(instance.duration());
    instance_scenarios_.push_back(instance.scenario);
}

std::vector<std::uint32_t>
TraceCorpus::instancesOfScenario(std::uint32_t scenario) const
{
    std::vector<std::uint32_t> out;
    for (std::uint32_t i = 0; i < instance_scenarios_.size(); ++i) {
        if (instance_scenarios_[i] == scenario)
            out.push_back(i);
    }
    return out;
}

std::size_t
TraceCorpus::totalEvents() const
{
    std::size_t n = 0;
    for (const auto &s : streams_)
        n += s.size();
    return n;
}

Event
TraceCorpus::event(const EventRef &ref) const
{
    return stream(ref.stream).event(ref.index);
}

} // namespace tracelens
